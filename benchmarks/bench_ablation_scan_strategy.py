"""Ablation — thread-based vs warp-based selection scan inside eIM.

The engine-level companion to Fig. 3: with the paper's default workload
the thread-based scan must win on datasets that generate many RRR sets.
"""

from repro.engines import EIMEngine
from repro.experiments.rendering import Series, format_series


def test_ablation_scan_strategy(benchmark, config, report_writer):
    codes = config.datasets[:6]

    def run_all():
        rows = []
        for code in codes:
            graph = config.graph(code, "IC")
            common = dict(rng=config.seed, bounds=config.bounds(sweep=True),
                          device_spec=config.device())
            thread = EIMEngine(thread_scan=True).run(
                graph, 100, config.default_epsilon, "IC", **common)
            warp = EIMEngine(thread_scan=False).run(
                graph, 100, config.default_epsilon, "IC", **common)
            rows.append((code, thread, warp))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    ratio = Series("selection cycles (thread/warp)")
    for code, thread, warp in rows:
        ratio.add(code, thread.breakdown["selection_scan"]
                  / warp.breakdown["selection_scan"])
    report_writer(
        "ablation_scan_strategy",
        format_series([ratio], "[ablation] thread vs warp scan (eIM, IC, k=100)",
                      "dataset", "thread / warp"),
    )
    # at k=100/eps=0.05 theta is large: thread-based must win on most
    wins = sum(r < 1.0 for r in ratio.y)
    assert wins >= len(ratio.y) // 2
