"""Table 1 — graph statistics of the 16 evaluation networks."""

from repro.experiments import tables


def test_table1_datasets(benchmark, config, report_writer):
    result = benchmark.pedantic(
        tables.table1_datasets, args=(config,), rounds=1, iterations=1
    )
    report_writer("table1_datasets", result.render())
    assert len(result.rows) == len(config.datasets)


def test_table1_calibration_metrics(benchmark, config, report_writer):
    result = benchmark.pedantic(
        tables.table1_calibration, args=(config,), rounds=1, iterations=1
    )
    report_writer("table1b_calibration", result.render())
    assert len(result.rows) == len(config.datasets)
