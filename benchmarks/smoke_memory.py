"""Memory-governor smoke benchmark — writes ``BENCH_pr10_memory.json``.

CI-sized end-to-end check of PR 10's tiered RRR storage and
pressure-aware serving, three gates:

* **bit-identical seeds at every budget** — the same ``run_imm``
  workload unbounded, at a *tight* budget (half the unbounded peak),
  and at a *tiny* budget (an eighth) returns identical seed sets and
  theta; only wall-clock and residency may differ, and no
  ``MemoryError`` surfaces at any budget;
* **the tight run actually tiers** — its peak accounted residency is
  **<= 50 %** of the unbounded peak and it completed via demotion
  (``memory.demotions > 0``), not by luck;
* **a budgeted service storm stays up** — a concurrent mixed-stream
  storm against a small-budget service resolves every query (served,
  degraded, or cleanly shed with ``ServiceOverloadedError``), with
  zero host OOMs and zero leaked shared-memory segments afterwards.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke_memory.py
"""

from __future__ import annotations

import argparse
import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.imm.imm import run_imm
from repro.imm.options import IMMOptions
from repro.memory.budget import budget_scope, governor, reset_governor
from repro.rrr.store import clear_stores
from repro.service import InfluenceQuery, InfluenceService, ServiceOptions
from repro.shm.segments import REGISTRY
from repro.utils.errors import ServiceError, ServiceOverloadedError

DATASET = "WV"
K, EPSILON = 8, 0.25
CHUNK_SETS = 64  # small chunks so a tiny budget has something to demote
OPTIONS = IMMOptions(model="IC")
#: the storm: k-variants across two stream identities (entropy differs)
STORM = [(entropy, k) for entropy in (0, 1) for k in (2, 4, 6, 8)] * 2


def _graph():
    config = ExperimentConfig.from_env(scale="tiny", datasets=(DATASET,),
                                       seed=11)
    return config.graph(DATASET, "IC")


def run_at_budget(graph, budget) -> dict:
    """One full run at ``budget`` bytes (None = unbounded), on a fresh
    governor so peaks and demotion counts are the run's own."""
    clear_stores()
    reset_governor()
    from repro.rrr.store import RRRStore

    store = RRRStore(graph, model=OPTIONS.model, chunk_sets=CHUNK_SETS)
    start = time.perf_counter()
    oom = False
    try:
        with budget_scope(budget):
            result = run_imm(graph, K, EPSILON, rng=3, options=OPTIONS,
                             store=store)
            snap = governor().snapshot()
    except MemoryError:
        result, snap, oom = None, governor().snapshot(), True
    seconds = time.perf_counter() - start
    store.close()
    return {
        "budget_bytes": budget,
        "seconds": round(seconds, 4),
        "oom": oom,
        "seeds": None if result is None else result.seeds.tolist(),
        "theta": None if result is None else int(result.theta),
        "peak_charged_bytes": int(snap["peak_charged_bytes"]),
        "demotions": int(snap["demotions"]),
        "promotions": int(snap["promotions"]),
        "spilled_bytes": int(snap["spilled_bytes"]),
    }


def run_service_storm(graph, budget_mb: float) -> dict:
    """A mixed-stream storm against a deliberately small service."""
    clear_stores()
    reset_governor()
    service = InfluenceService(
        ServiceOptions(max_inflight=4, max_queue_depth=4,
                       chunk_sets=CHUNK_SETS, exact_cache_size=4,
                       max_substrates=2, memory_budget_mb=budget_mb)
    )
    service.register_graph("g", graph)
    outcomes = {"served": 0, "degraded": 0, "shed": 0, "failed": 0}
    host_ooms = 0
    try:
        def one(cell):
            entropy, k = cell
            query = InfluenceQuery("g", k=k, epsilon=EPSILON,
                                   entropy=entropy, options=OPTIONS)
            try:
                outcome = service.query(query)
            except ServiceOverloadedError:
                return "shed"
            except MemoryError:
                return "oom"
            except ServiceError:
                return "failed"
            return "degraded" if outcome.degraded else "served"

        with ThreadPoolExecutor(max_workers=8) as clients:
            for verdict in clients.map(one, STORM):
                if verdict == "oom":
                    host_ooms += 1
                else:
                    outcomes[verdict] += 1
        health = service.health()
    finally:
        service.close()
    clear_stores()
    return {
        "budget_mb": budget_mb,
        "queries": len(STORM),
        "outcomes": outcomes,
        "host_ooms": host_ooms,
        "memory_pressure_events": int(
            health["counters"].get("service.memory_pressure", 0)
        ),
        "memory_evictions": int(
            health["counters"].get("service.memory_evictions", 0)
        ),
        "oom_tier_counters": {
            name: count for name, count in health["counters"].items()
            if name.startswith("service.oom_tier.")
        },
        "leaked_segments": int(REGISTRY.active_count),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_pr10_memory.json"),
        help="output JSON path (default: <repo root>/BENCH_pr10_memory.json)",
    )
    args = parser.parse_args(argv)

    graph = _graph()
    unbounded = run_at_budget(graph, None)
    tight_budget = max(unbounded["peak_charged_bytes"] // 2, 4096)
    tiny_budget = max(unbounded["peak_charged_bytes"] // 8, 4096)
    tight = run_at_budget(graph, tight_budget)
    tiny = run_at_budget(graph, tiny_budget)
    storm = run_service_storm(graph, budget_mb=1.0)

    report = {
        "benchmark": "pr10_memory",
        "dataset": DATASET,
        "k": K,
        "epsilon": EPSILON,
        "chunk_sets": CHUNK_SETS,
        "unbounded": unbounded,
        "tight": tight,
        "tiny": tiny,
        "residency_ratio_tight": round(
            tight["peak_charged_bytes"]
            / max(unbounded["peak_charged_bytes"], 1), 3),
        "service_storm": storm,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n",
                              encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"[written to {args.out}]")

    failures = []
    for name, run in (("tight", tight), ("tiny", tiny)):
        if run["oom"]:
            failures.append(f"{name} budget OOMed instead of demoting")
        elif run["seeds"] != unbounded["seeds"] or \
                run["theta"] != unbounded["theta"]:
            failures.append(f"{name}-budget seeds/theta diverged "
                            f"from unbounded")
    if unbounded["oom"]:
        failures.append("unbounded run OOMed")
    if tight["peak_charged_bytes"] > unbounded["peak_charged_bytes"] // 2:
        failures.append(
            f"tight peak {tight['peak_charged_bytes']} > 50% of "
            f"unbounded peak {unbounded['peak_charged_bytes']}")
    if tight["demotions"] == 0:
        failures.append("tight run never demoted — budget had no effect")
    if storm["host_ooms"]:
        failures.append(f"service storm hit {storm['host_ooms']} host OOMs")
    if storm["leaked_segments"]:
        failures.append(
            f"{storm['leaked_segments']} shm segments leaked after close")
    resolved = sum(storm["outcomes"].values())
    if resolved != storm["queries"]:
        failures.append(f"storm resolved {resolved}/{storm['queries']}")
    if storm["outcomes"]["failed"]:
        failures.append(
            f"{storm['outcomes']['failed']} storm queries failed outright")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
