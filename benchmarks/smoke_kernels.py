"""Word-parallel kernels smoke benchmark — writes ``BENCH_pr9_kernels.json``.

CI-sized check of the bitset kernels (PR 9), covering both hot paths:

* **sampling** — IC RRR sampling on a *deep-cascade* recipe (a ring
  lattice whose cascades run for hundreds of rounds) timed under
  ``visited_mode='sorted'`` vs ``'bitset'``.  The sorted path re-merges
  the whole visited key array every lockstep round, so deep cascades
  are exactly the regime the dense visited plane accelerates.
* **selection** — the fig3 sweep pattern (greedy selection over growing
  prefixes of one stream, across a small k-sweep) on the same dense
  deep-cascade collection, run with ``coverage_scan='csr'`` vs
  ``'bitset'``, comparing the element-touch counters the two scans
  publish (scalar posting reads vs popcounted words).

Gates (exit code 1 on violation):

* bitset sampling throughput >= **1.5x** sorted (sets/s) on the
  deep-cascade recipe;
* the bitset scan touches >= **2x** fewer elements (word popcounts vs
  scalar posting reads) over the fig3 sweep;
* **zero parity failures**: collections, seeds and stats bit-identical
  across modes in every cell;
* ``auto`` never exceeds the kernel memory budget: the accounted
  visited plane stays under ``REPRO_KERNEL_BUDGET_MB`` and a
  tiny-budget run falls back without building a plane.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke_kernels.py
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.imm.coverage import CoverageIndex
from repro.imm.seed_selection import select_seeds
from repro.kernels import ENV_BUDGET_MB, plane_budget_bytes
from repro.rrr import get_sampler

# -- sampling: deep-cascade ring recipe -------------------------------------
RING_N = 8000
RING_NEIGHBORS = 4
RING_P = 0.6
SAMPLE_SETS = 2000
BATCH_SIZE = 2048

# -- selection: the fig3 sweep pattern (smoke_selection conventions) over
#    the deep-cascade stream sampled above --------------------------------
PHASE_THETAS = (SAMPLE_SETS // 4, SAMPLE_SETS // 2, SAMPLE_SETS)
K_SWEEP = (4, 8, 16)


def _ring_graph():
    """A directed ring lattice: every vertex has in-edges from its
    ``RING_NEIGHBORS`` ring predecessors, all with probability
    ``RING_P`` — cascades crawl the ring for hundreds of rounds."""
    from repro.graphs.csc import DirectedGraph

    n, k = RING_N, RING_NEIGHBORS
    offsets = np.arange(1, k + 1)
    src = ((np.arange(n)[:, None] - offsets[None, :]) % n).reshape(-1)
    indptr = np.arange(n + 1) * k
    return DirectedGraph(indptr, src.astype(np.int32),
                         weights=np.full(n * k, RING_P))


def _identical_collections(a, b) -> bool:
    return bool(
        np.array_equal(a.flat, b.flat)
        and np.array_equal(a.offsets, b.offsets)
        and np.array_equal(a.sources, b.sources)
    )


def run_sampling(graph) -> tuple[dict, "object"]:
    """Deep-cascade sampling timed per visited mode, plus parity.

    Returns the report dict and the sampled collection (reused as the
    selection workload)."""
    sampler = get_sampler("IC")
    sampler(graph, 100, rng=1)  # warmup (allocator, caches)
    out = {}
    collections = {}
    for mode in ("sorted", "bitset"):
        start = time.perf_counter()
        coll, trace = sampler(graph, SAMPLE_SETS, rng=11,
                              visited_mode=mode, batch_size=BATCH_SIZE)
        seconds = time.perf_counter() - start
        collections[mode] = coll
        out[mode] = {
            "seconds": round(seconds, 4),
            "sets_per_second": round(SAMPLE_SETS / seconds, 1),
        }
    coll = collections["sorted"]
    out["avg_set_size"] = round(coll.total_elements / coll.num_sets, 1)
    out["speedup"] = round(
        out["sorted"]["seconds"] / max(out["bitset"]["seconds"], 1e-9), 3
    )
    out["parity"] = _identical_collections(collections["sorted"],
                                           collections["bitset"])
    return out, collections["bitset"]


def run_selection(collection) -> dict:
    """The fig3 sweep per scan mode: wall-clock, element touches, parity."""
    out = {}
    all_seeds = {}
    for scan in ("csr", "bitset"):
        index = CoverageIndex(collection.n)
        seeds = []
        start = time.perf_counter()
        with obs.profiled() as handle:
            for k in K_SWEEP:
                for theta in PHASE_THETAS:
                    prefix = collection.prefix(theta)
                    index.extend_to(prefix)
                    sel = select_seeds(prefix, k, index=index, scan=scan)
                    seeds.append(sel.seeds.tolist())
        seconds = time.perf_counter() - start
        counters = handle.report().counters
        all_seeds[scan] = seeds
        out[scan] = {
            "seconds": round(seconds, 4),
            "element_touches": int(
                counters.get("selection.scan.posting_reads", 0)
                + counters.get("selection.scan.words_touched", 0)
            ),
        }
    out["touch_ratio"] = round(
        out["csr"]["element_touches"] / max(out["bitset"]["element_touches"], 1), 3
    )
    out["parity"] = all_seeds["csr"] == all_seeds["bitset"]
    return out


def run_budget_check(graph) -> dict:
    """``auto`` respects the kernel memory budget on both sides."""
    sampler = get_sampler("IC")
    budget = plane_budget_bytes()
    with obs.profiled() as handle:
        sampler(graph, 256, rng=3, visited_mode="auto", batch_size=256)
    report = handle.report()
    plane_bytes = int(report.gauges.get("kernels.bitset.plane_bytes", 0))
    tiles = int(report.counters.get("kernels.bitset.tiles", 0))
    within = plane_bytes <= budget

    # a tiny budget must fall back to sorted without building any plane
    prior = os.environ.get(ENV_BUDGET_MB)
    os.environ[ENV_BUDGET_MB] = "0.001"
    try:
        with obs.profiled() as handle:
            sampler(graph, 256, rng=3, visited_mode="auto", batch_size=256)
        fallback_report = handle.report()
    finally:
        if prior is None:
            del os.environ[ENV_BUDGET_MB]
        else:
            os.environ[ENV_BUDGET_MB] = prior
    fell_back = (
        fallback_report.counters.get("kernels.bitset.fallbacks", 0) >= 1
        and fallback_report.gauges.get("kernels.bitset.plane_bytes", 0) == 0
    )
    return {
        "budget_bytes": budget,
        "plane_bytes": plane_bytes,
        "tiles": tiles,
        "plane_within_budget": bool(within and plane_bytes > 0 and tiles > 0),
        "tiny_budget_falls_back": bool(fell_back),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pr9_kernels.json"),
        help="output JSON path (default: <repo root>/BENCH_pr9_kernels.json)",
    )
    args = parser.parse_args(argv)

    graph = _ring_graph()
    sampling, collection = run_sampling(graph)
    selection = run_selection(collection)
    budget = run_budget_check(graph)

    report = {
        "benchmark": "pr9_kernels",
        "sampling_recipe": {
            "kind": "ring_lattice", "n": RING_N,
            "neighbors": RING_NEIGHBORS, "p": RING_P,
            "num_sets": SAMPLE_SETS, "batch_size": BATCH_SIZE,
        },
        "selection_recipe": {
            "num_sets": SAMPLE_SETS,
            "phase_thetas": list(PHASE_THETAS), "k_sweep": list(K_SWEEP),
        },
        "sampling": sampling,
        "selection": selection,
        "budget": budget,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"[written to {args.out}]")

    failed = False
    if not sampling["parity"]:
        print("FAIL: visited modes produced different collections")
        failed = True
    if not selection["parity"]:
        print("FAIL: coverage scans selected different seeds")
        failed = True
    if sampling["speedup"] < 1.5:
        print(f"FAIL: bitset sampling speedup {sampling['speedup']:.2f} < 1.5")
        failed = True
    if selection["touch_ratio"] < 2.0:
        print(f"FAIL: element-touch ratio {selection['touch_ratio']:.2f} < 2.0")
        failed = True
    if not budget["plane_within_budget"]:
        print("FAIL: auto built a visited plane over the memory budget")
        failed = True
    if not budget["tiny_budget_falls_back"]:
        print("FAIL: auto did not fall back under a tiny budget")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
