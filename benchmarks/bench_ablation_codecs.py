"""Ablation — RRR-store codecs: log encoding vs Huffman vs bitmap (§3.1).

The paper chooses log encoding "due to its fast decompression and
reduced cache misses" over the Huffman/bitmap codecs of CPU-side prior
work (HBMax).  This bench quantifies both sides on real RRR samples:

* compression ratio (payload bytes / raw 32-bit bytes) — Huffman often
  wins, exploiting the skewed vertex-frequency distribution;
* decode wall-time — log encoding's fixed-width gather is vectorizable
  (GPU-friendly), Huffman's variable-length chain is inherently
  sequential.
"""

import time

import numpy as np

from repro.encoding.bitmap import bitmap_encode
from repro.encoding.bitpack import pack, required_bits
from repro.encoding.huffman import huffman_decode, huffman_encode
from repro.experiments.rendering import Series, format_series
from repro.rrr import sample_rrr_ic

NUM_SETS = 3000


def test_ablation_codecs(benchmark, config, report_writer):
    codes = config.datasets[:4]

    def run():
        rows = []
        for code in codes:
            graph = config.graph(code, "IC")
            coll, _ = sample_rrr_ic(graph, NUM_SETS, rng=config.seed)
            raw_bytes = 4 * coll.total_elements
            packed = pack(coll.flat, n_bits=required_bits(max(graph.n - 1, 1)))
            t0 = time.perf_counter()
            packed.unpack()
            t_log = time.perf_counter() - t0
            huff = huffman_encode(coll.flat)
            t0 = time.perf_counter()
            huffman_decode(huff)
            t_huff = time.perf_counter() - t0
            bmp = bitmap_encode(coll)
            rows.append((code, raw_bytes, packed.nbytes_packed,
                         huff.nbytes_total, bmp.nbytes_total(), t_log, t_huff))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    log_ratio = Series("log-encoding bytes ratio")
    huff_ratio = Series("Huffman bytes ratio")
    bitmap_ratio = Series("hybrid bitmap bytes ratio")
    decode_penalty = Series("Huffman/log decode time")
    for code, raw, log_b, huff_b, bmp_b, t_log, t_huff in rows:
        log_ratio.add(code, log_b / raw)
        huff_ratio.add(code, huff_b / raw)
        bitmap_ratio.add(code, bmp_b / raw)
        decode_penalty.add(code, t_huff / max(t_log, 1e-9))
    report_writer(
        "ablation_codecs",
        format_series(
            [log_ratio, huff_ratio, bitmap_ratio, decode_penalty],
            "[ablation] RRR-store codecs (payload vs raw 32-bit; decode penalty)",
            "dataset", "ratio",
        ),
    )
    # both bit-level codecs compress; Huffman decode is orders slower
    assert all(r < 1.0 for r in log_ratio.y)
    assert all(r < 1.0 for r in huff_ratio.y)
    assert all(p > 10.0 for p in decode_penalty.y)
