"""Extension — the full engine lineage: CPU Ripples -> cuRipples -> gIM -> eIM.

The paper's §2.3 narrative as one chart: each generation's design change
(host-only -> host-offloaded GPU -> device-resident GPU -> eIM's memory
and scan optimizations) buys a speedup.  Reported as cycles normalized
to the CPU baseline.
"""

from repro.engines import CuRipplesEngine, EIMEngine, GIMEngine, RipplesCPUEngine
from repro.experiments.rendering import Series, format_series
from repro.imm import run_imm


def test_extension_cpu_lineage(benchmark, config, report_writer):
    codes = config.datasets[:6]

    def run():
        rows = []
        for code in codes:
            graph = config.graph(code, "IC")
            bounds = config.bounds(sweep=True)
            vanilla = run_imm(graph, config.default_k, config.default_epsilon,
                              "IC", rng=config.seed, bounds=bounds)
            shared = dict(bounds=bounds, device_spec=config.device(),
                          imm_result=vanilla)
            cpu = RipplesCPUEngine().run(graph, config.default_k,
                                         config.default_epsilon, "IC", **shared)
            cur = CuRipplesEngine().run(graph, config.default_k,
                                        config.default_epsilon, "IC", **shared)
            gim = GIMEngine().run(graph, config.default_k,
                                  config.default_epsilon, "IC", **shared)
            eim = EIMEngine().run(graph, config.default_k,
                                  config.default_epsilon, "IC",
                                  rng=config.seed, bounds=bounds,
                                  device_spec=config.device())
            rows.append((code, cpu, cur, gim, eim))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    series = {name: Series(f"speedup vs CPU [{name}]")
              for name in ("cuRipples", "gIM", "eIM")}
    for code, cpu, cur, gim, eim in rows:
        series["cuRipples"].add(code, cpu.total_cycles / cur.total_cycles)
        series["gIM"].add(code, cpu.total_cycles / gim.total_cycles)
        series["eIM"].add(code, cpu.total_cycles / eim.total_cycles)
    report_writer(
        "extension_cpu_lineage",
        format_series(list(series.values()),
                      "[extension] engine lineage speedups over CPU Ripples (IC)",
                      "dataset", "speedup (x)"),
    )
    for code, cpu, cur, gim, eim in rows:
        # each generation at least matches its predecessor's order
        assert gim.total_cycles < cpu.total_cycles
        assert eim.total_cycles <= gim.total_cycles * 1.2
