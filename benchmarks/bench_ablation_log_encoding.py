"""Ablation — log encoding on/off inside eIM.

DESIGN.md §5: packing must cut the RRR+graph footprint substantially
(Fig. 4) while leaving running time nearly unchanged (§3.1 claims
"minimal impact on the running time" thanks to cheap decompression).
"""

from repro.engines import EIMEngine
from repro.experiments.rendering import Series, format_series


def _run(config, code, log_encoding):
    graph = config.graph(code, "IC")
    return EIMEngine(log_encoding=log_encoding).run(
        graph, config.default_k, config.default_epsilon, "IC",
        rng=config.seed, bounds=config.bounds(sweep=True),
        device_spec=config.device(),
    )


def test_ablation_log_encoding(benchmark, config, report_writer):
    codes = config.datasets[:6]

    def run_all():
        rows = []
        for code in codes:
            packed = _run(config, code, True)
            raw = _run(config, code, False)
            rows.append((code, packed, raw))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    mem = Series("memory ratio (packed/raw)")
    time = Series("cycle ratio (packed/raw)")
    for code, packed, raw in rows:
        mem.add(code, packed.rrr_store_bytes / raw.rrr_store_bytes)
        time.add(code, packed.total_cycles / raw.total_cycles)
    report_writer(
        "ablation_log_encoding",
        format_series([mem, time], "[ablation] log encoding on/off (eIM, IC)",
                      "dataset", "packed / raw"),
    )
    assert all(m < 0.8 for m in mem.y)  # clear memory win
    assert all(t < 1.15 for t in time.y)  # near-neutral runtime
