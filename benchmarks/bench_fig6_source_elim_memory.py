"""Figure 6 — percent change in R-store memory from source elimination.

Paper: an average reduction of 8.65%, strongest above 50% singleton
fraction, with a few networks slightly increasing (fewer but larger
sets).
"""

import numpy as np

from repro.experiments import figures


def test_fig6_source_elim_memory(benchmark, config, report_writer):
    result = benchmark.pedantic(
        figures.fig6_source_elim_memory, args=(config,), rounds=1, iterations=1
    )
    report_writer("fig6_source_elim_memory", result.render())
    _, change = result.series
    assert np.mean(change.y) < 10.0  # memory must not systematically blow up
