"""Extension — multi-GPU eIM scaling (the paper's future-work item).

Stripes theta across 1..16 simulated devices and reports the speedup
curve: near-linear for the sampling-dominated regime, saturating as the
per-iteration count all-reduce grows with device count.
"""

from repro.experiments.rendering import Series, format_series
from repro.gpu.multi import run_multi_device_eim
from repro.imm import run_imm


def test_extension_multi_gpu_scaling(benchmark, config, report_writer):
    graph = config.graph("CY", "IC")
    spec = config.device()

    def run():
        imm = run_imm(graph, config.default_k, config.default_epsilon, "IC",
                      rng=config.seed, eliminate_sources=True,
                      bounds=config.bounds(sweep=True))
        return {d: run_multi_device_eim(imm, graph, spec, d)
                for d in (1, 2, 4, 8, 16)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base = results[1].total_cycles
    speedup = Series("speedup vs 1 GPU")
    efficiency = Series("parallel efficiency")
    for d, res in results.items():
        speedup.add(d, base / res.total_cycles)
        efficiency.add(d, base / res.total_cycles / d)
    report_writer(
        "extension_multi_gpu",
        format_series([speedup, efficiency],
                      "[extension] multi-GPU eIM scaling (CY, IC)",
                      "devices", "speedup"),
    )
    assert speedup.y[1] > 1.2  # 2 GPUs clearly help
    assert efficiency.y[-1] < efficiency.y[0]  # collectives erode efficiency
