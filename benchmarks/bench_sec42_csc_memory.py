"""§4.2 (text) — CSC memory saved by log encoding per dataset.

Paper: up to 28.8% on small networks, still >14% on large ones, under
conservative accounting (integer arrays packed, float weights raw).
Scaled-down synthetics have narrower vertex ids, so absolute percentages
run higher here; the declining-with-size trend is the reproduced shape.
"""

from repro.experiments import figures


def test_sec42_csc_memory(benchmark, config, report_writer):
    result = benchmark.pedantic(
        figures.sec42_csc_memory, args=(config,), rounds=1, iterations=1
    )
    report_writer("sec42_csc_memory", result.render())
    conservative = result.series[0]
    assert all(y > 14.0 for y in conservative.y)  # paper's floor holds
