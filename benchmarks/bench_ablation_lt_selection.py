"""Ablation — LT activating-neighbor selection: prefix scan vs atomics.

§3.3 tried both and rejected the atomic-accumulation variant because it
serializes the warp; the shfl_up prefix scan reduces the per-step cost
from O(d) to O(log d).
"""

from repro.engines import EIMEngine
from repro.experiments.rendering import Series, format_series


def test_ablation_lt_selection(benchmark, config, report_writer):
    codes = config.datasets[:6]

    def run_all():
        rows = []
        for code in codes:
            graph = config.graph(code, "LT")
            common = dict(rng=config.seed, bounds=config.bounds(sweep=True),
                          device_spec=config.device())
            scan = EIMEngine(lt_prefix_scan=True).run(
                graph, config.default_k, config.default_epsilon, "LT", **common)
            atomic = EIMEngine(lt_prefix_scan=False).run(
                graph, config.default_k, config.default_epsilon, "LT", **common)
            rows.append((code, scan, atomic))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    ratio = Series("sampling cycles (scan/atomic)")
    for code, scan, atomic in rows:
        ratio.add(code, scan.breakdown["sampling"] / atomic.breakdown["sampling"])
    report_writer(
        "ablation_lt_selection",
        format_series([ratio], "[ablation] LT prefix scan vs atomic accumulation",
                      "dataset", "scan / atomic"),
    )
    assert all(r < 1.0 for r in ratio.y)  # the scan variant always wins
