"""Sampling-pipeline smoke benchmark — writes ``BENCH_pr2_sampling.json``.

CI-sized check of the two cross-cell sampling optimizations:

* the Fig. 7 workload on a dataset subset with a resident
  :class:`~repro.rrr.parallel.SamplerPool` (``n_jobs=2``) shared by all
  cells — exercises the multiprocess fan-out end to end;
* a tiny k-sweep run twice — resampling every cell from scratch vs
  topping up warm-start :class:`~repro.rrr.store.RRRStore` streams —
  recording wall-clock and the ``rrr.sets_sampled`` counter for both.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke_warm_start.py

The JSON lands next to the repository root by default (``--out`` to
relocate).  No pytest-benchmark dependency: one timed round per
measurement is all a smoke check needs.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro import obs
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import compare_engines
from repro.rrr.parallel import shutdown_pools
from repro.rrr.store import clear_stores

DATASETS = ("WV", "EE")
K_SWEEP = (4, 8, 12, 16, 20)
EPSILON = 0.3
THETA_SCALE = 0.2


def _config(**overrides) -> ExperimentConfig:
    base = dict(scale="tiny", datasets=DATASETS, seed=7,
                theta_scale=THETA_SCALE, sweep_theta_scale=THETA_SCALE)
    base.update(overrides)
    return ExperimentConfig(**base)


def run_fig7_with_pool(n_jobs: int = 2) -> dict:
    """The Fig. 7 IC-speedup workload on a shared resident pool."""
    config = _config(n_jobs=n_jobs)
    start = time.perf_counter()
    result = figures.fig7_ic_speedups(config)
    seconds = time.perf_counter() - start
    vs_gim, vs_cur = result.series
    return {
        "n_jobs": n_jobs,
        "seconds": round(seconds, 4),
        "median_speedup_vs_gim": round(float(sorted(vs_gim.y)[len(vs_gim.y) // 2]), 3),
        "median_speedup_vs_curipples": round(float(sorted(vs_cur.y)[len(vs_cur.y) // 2]), 3),
    }


def run_k_sweep(warm_start: bool) -> dict:
    """One cold or warm k-sweep over the first dataset; counters + time."""
    clear_stores()
    config = _config(datasets=DATASETS[:1], warm_start=warm_start)
    start = time.perf_counter()
    with obs.profiled() as handle:
        for k in K_SWEEP:
            compare_engines(DATASETS[0], k, EPSILON, "IC", config,
                            include_curipples=False)
    seconds = time.perf_counter() - start
    counters = handle.report().counters
    return {
        "seconds": round(seconds, 4),
        "sets_sampled": int(counters.get("rrr.sets_sampled", 0)),
        "reused_sets": int(counters.get("rrr.store.reused_sets", 0)),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pr2_sampling.json"),
        help="output JSON path (default: <repo root>/BENCH_pr2_sampling.json)",
    )
    args = parser.parse_args(argv)

    fig7 = run_fig7_with_pool()
    cold = run_k_sweep(warm_start=False)
    warm = run_k_sweep(warm_start=True)
    shutdown_pools()
    clear_stores()

    report = {
        "benchmark": "pr2_sampling",
        "scale": "tiny",
        "datasets": list(DATASETS),
        "theta_scale": THETA_SCALE,
        "fig7_shared_pool": fig7,
        "k_sweep": {
            "ks": list(K_SWEEP),
            "epsilon": EPSILON,
            "cold": cold,
            "warm_start": warm,
            "wallclock_speedup": round(cold["seconds"] / warm["seconds"], 3),
            "sets_sampled_ratio": round(warm["sets_sampled"] / cold["sets_sampled"], 3),
        },
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"[written to {args.out}]")

    if not warm["sets_sampled"] < cold["sets_sampled"]:
        print("FAIL: warm start did not reduce sampled sets")
        return 1
    if warm["reused_sets"] == 0:
        print("FAIL: warm start reused nothing")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
