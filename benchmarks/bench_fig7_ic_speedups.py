"""Figure 7 — eIM speedups over cuRipples and gIM under IC (k=50, eps=0.05).

Paper shape: eIM beats both baselines on (nearly) every dataset, and the
gap to cuRipples widens with network size; absolute magnitudes are
compressed at reduced scale (see EXPERIMENTS.md).
"""

import numpy as np

from repro.experiments import figures


def test_fig7_ic_speedups(benchmark, config, report_writer):
    result = benchmark.pedantic(
        figures.fig7_ic_speedups, args=(config,), rounds=1, iterations=1
    )
    report_writer("fig7_ic_speedups", result.render())
    vs_gim, vs_cur = result.series
    assert np.median(vs_gim.y) > 1.0
    assert all(c > 1.0 for c in vs_cur.y)  # cuRipples always loses
    # cuRipples is slower than gIM everywhere (host traffic)
    assert all(c >= g for g, c in zip(vs_gim.y, vs_cur.y))
