"""Extension — IC with uniform random edge weights (future work item 2).

The paper's conclusion: "to expand support for the IC model with random
edge weights, which covers different influence propagation scenarios."
The samplers and engines already accept arbitrary weights; this bench
quantifies what the paper warns about in §2.1 — random weights remove
the 1/d_in damping, so reverse traversals run hotter: larger RRR sets,
more edges examined, and a bigger store for the same theta.
"""

import numpy as np

from repro.experiments.rendering import Series, format_series
from repro.graphs.weights import assign_ic_weights
from repro.rrr import sample_rrr_ic

NUM_SETS = 20_000


def test_extension_random_weights(benchmark, config, report_writer):
    codes = config.datasets[:6]

    def run():
        rows = []
        for code in codes:
            base = config.graph(code, "IC")  # topology; weights reassigned below
            weighted_cascade = assign_ic_weights(base, scheme="indegree")
            random_capped = assign_ic_weights(
                base, scheme="uniform_random", rng=config.seed, p=0.1
            )
            random_full = assign_ic_weights(
                base, scheme="uniform_random", rng=config.seed, p=1.0
            )
            trivalency = assign_ic_weights(base, scheme="trivalency", rng=config.seed)
            out = {}
            for name, graph in (
                ("weighted-cascade", weighted_cascade),
                ("uniform(0,0.1)", random_capped),
                ("uniform(0,1)", random_full),
                ("trivalency", trivalency),
            ):
                coll, trace = sample_rrr_ic(graph, NUM_SETS, rng=config.seed)
                out[name] = (coll, trace)
            rows.append((code, out))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    series = {name: Series(f"mean set size [{name}]")
              for name in ("weighted-cascade", "uniform(0,0.1)",
                           "uniform(0,1)", "trivalency")}
    edges = Series("edges ratio (unif(0,1)/wc)")
    for code, out in rows:
        for name, (coll, _) in out.items():
            series[name].add(code, float(coll.sizes().mean()))
        edges.add(code, out["uniform(0,1)"][1].total_edges_examined()
                  / max(out["weighted-cascade"][1].total_edges_examined(), 1))
    report_writer(
        "extension_random_weights",
        format_series(list(series.values()) + [edges],
                      "[extension] IC weight schemes: RRR set shape",
                      "dataset", "mean elements / ratio"),
    )
    # every scheme produces valid non-trivial samples
    for code, out in rows:
        for coll, _ in out.values():
            assert coll.num_sets == NUM_SETS
            assert coll.sizes().min() >= 1
        # the §2.1 warning: uncapped random weights are supercritical and
        # blow up reverse traversals relative to the weighted cascade
        wc = out["weighted-cascade"][0].sizes().mean()
        full = out["uniform(0,1)"][0].sizes().mean()
        assert full > wc
