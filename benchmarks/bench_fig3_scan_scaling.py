"""Figure 3 — thread- vs warp-based selection scanning as N grows (k=100).

Paper shape: the warp-based approach wins at small N (memory coalescing)
but the thread-based approach overtakes it and scales better as the
number of RRR sets grows.
"""

from repro.experiments import figures


def test_fig3_scan_scaling(benchmark, config, report_writer):
    result = benchmark.pedantic(
        figures.fig3_scan_scaling, args=(config,), rounds=1, iterations=1
    )
    report_writer("fig3_scan_scaling", result.render())
    thread, warp = result.series
    assert warp.y[0] < thread.y[0]  # small N: warp wins
    assert thread.y[-1] < warp.y[-1]  # large N: thread wins
