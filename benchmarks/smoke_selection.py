"""Incremental-selection smoke benchmark — writes ``BENCH_pr6_selection.json``.

CI-sized check of the incremental coverage index (PR 6): the IMM
phase-loop selection pattern — greedy selection repeated over growing
prefixes of one RRR stream, across the cells of a small k-sweep — run
two ways:

* **rebuild**: every ``select_seeds`` call derives the vertex->position
  inverted index from scratch (the pre-PR behaviour);
* **incremental**: one :class:`~repro.imm.coverage.CoverageIndex` is
  extended as the stream grows and shared by every call, the way
  ``run_imm`` and the warm-start store now do it.

Recorded per mode: selection wall-clock and the
``selection.index.built_elements`` counter (elements counting-sorted
into the index — the redundant work the incremental path eliminates).
Gates:

* identical seeds in both modes on every (phase, k) cell;
* the incremental index touches **>= 2x fewer** index-build elements
  over the 3-phase run pattern (acceptance: >= 50% of per-phase
  index-build work eliminated);
* the ``lazy`` strategy returns bit-identical seeds/stats to ``fast``.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke_selection.py
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.experiments.config import ExperimentConfig
from repro.imm.coverage import CoverageIndex
from repro.imm.seed_selection import select_seeds
from repro.rrr import get_sampler

DATASET = "WV"
NUM_SETS = 9000
#: 3-phase estimation pattern: theta doubles per phase (IMM's geometric
#: guess schedule), final phase consumes the whole stream
PHASE_THETAS = (NUM_SETS // 4, NUM_SETS // 2, NUM_SETS)
K_SWEEP = (4, 8, 16)


def _collection():
    config = ExperimentConfig.from_env(scale="tiny", datasets=(DATASET,), seed=11)
    graph = config.graph(DATASET, "IC")
    collection, _ = get_sampler("IC")(graph, NUM_SETS, rng=config.seed)
    return collection


def run_phase_loop(collection, incremental: bool) -> dict:
    """The sweep-of-phase-loops selection workload in one mode.

    Every k cell replays the 3-phase loop; in incremental mode a single
    index rides across phases *and* cells (the store-backed sweep
    pattern), in rebuild mode each call derives its own.
    """
    seeds = []
    index = CoverageIndex(collection.n) if incremental else None
    start = time.perf_counter()
    with obs.profiled() as handle:
        for k in K_SWEEP:
            for theta in PHASE_THETAS:
                prefix = collection.prefix(theta)
                if index is not None:
                    index.extend_to(prefix)
                sel = select_seeds(prefix, k, index=index)
                seeds.append(sel.seeds.tolist())
    seconds = time.perf_counter() - start
    counters = handle.report().counters
    return {
        "seconds": round(seconds, 4),
        "index_built_elements": int(counters.get("selection.index.built_elements", 0)),
        "phases_per_cell": len(PHASE_THETAS),
        "cells": len(K_SWEEP),
        "seeds": seeds,
    }


def run_single_run_ratio(collection) -> dict:
    """Index-build elements of ONE 3-phase run, rebuild vs incremental."""
    totals = {}
    for mode in ("rebuild", "incremental"):
        index = CoverageIndex(collection.n) if mode == "incremental" else None
        with obs.profiled() as handle:
            for theta in PHASE_THETAS:
                prefix = collection.prefix(theta)
                if index is not None:
                    index.extend_to(prefix)
                select_seeds(prefix, K_SWEEP[0], index=index)
        counters = handle.report().counters
        totals[mode] = int(counters.get("selection.index.built_elements", 0))
    return {
        "rebuild_elements": totals["rebuild"],
        "incremental_elements": totals["incremental"],
        "ratio": round(totals["rebuild"] / max(totals["incremental"], 1), 3),
    }


def run_lazy_vs_fast(collection, k: int = 32) -> dict:
    """Full-stream selection: lazy must match fast bit for bit."""
    index = CoverageIndex.build(collection)
    timings = {}
    results = {}
    for strategy in ("fast", "lazy"):
        start = time.perf_counter()
        results[strategy] = select_seeds(collection, k, strategy, index=index)
        timings[strategy] = round(time.perf_counter() - start, 4)
    fast, lazy = results["fast"], results["lazy"]
    identical = bool(
        np.array_equal(fast.seeds, lazy.seeds)
        and np.array_equal(fast.marginal_gains, lazy.marginal_gains)
        and np.array_equal(fast.stats.sets_scanned, lazy.stats.sets_scanned)
        and np.array_equal(
            fast.stats.elements_decremented, lazy.stats.elements_decremented
        )
    )
    return {"k": k, "fast_seconds": timings["fast"],
            "lazy_seconds": timings["lazy"], "identical": identical}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pr6_selection.json"),
        help="output JSON path (default: <repo root>/BENCH_pr6_selection.json)",
    )
    args = parser.parse_args(argv)

    collection = _collection()
    rebuild = run_phase_loop(collection, incremental=False)
    incremental = run_phase_loop(collection, incremental=True)
    single = run_single_run_ratio(collection)
    lazy = run_lazy_vs_fast(collection)

    seeds_match = rebuild.pop("seeds") == incremental.pop("seeds")
    ratio = rebuild["index_built_elements"] / max(
        incremental["index_built_elements"], 1
    )
    report = {
        "benchmark": "pr6_selection",
        "dataset": DATASET,
        "num_sets": NUM_SETS,
        "phase_thetas": list(PHASE_THETAS),
        "k_sweep": list(K_SWEEP),
        "phase_loop": {
            "rebuild": rebuild,
            "incremental": incremental,
            "built_elements_ratio": round(ratio, 3),
            "wallclock_speedup": round(
                rebuild["seconds"] / max(incremental["seconds"], 1e-9), 3
            ),
            "seeds_match": seeds_match,
        },
        "single_run_3_phases": single,
        "lazy_vs_fast": lazy,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"[written to {args.out}]")

    if not seeds_match:
        print("FAIL: incremental index changed the selected seeds")
        return 1
    if ratio < 2.0:
        print(f"FAIL: index-build elements ratio {ratio:.2f} < 2.0")
        return 1
    if not lazy["identical"]:
        print("FAIL: lazy strategy diverged from fast")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
