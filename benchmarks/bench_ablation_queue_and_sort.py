"""Ablation — queue placement and the sorted-insertion trade-off.

Two DESIGN.md §5 questions answered with the cost model on real traces:

1. global pre-allocated queues (eIM) vs shared queues with dynamic spill
   (gIM) as traversals deepen — shared wins on shallow sets, loses once
   sets overflow the block's shared memory;
2. the paper's §3.2 observation that paying an in-warp sort at store time
   is repaid by binary-search selection ("the benefit ... outweighs the
   overhead of sorting").
"""

import numpy as np

from repro.gpu.cost_model import CostModel
from repro.imm.imm import run_imm
from repro.experiments.rendering import Series, format_series


def test_ablation_queue_and_sort(benchmark, config, report_writer):
    graph = config.graph("CA", "IC")  # deep-cascade network
    device = config.device()
    cost = CostModel(device)

    def run():
        return run_imm(graph, 100, config.default_epsilon, "IC",
                       rng=config.seed, bounds=config.bounds(sweep=True))

    imm = benchmark.pedantic(run, rounds=1, iterations=1)
    trace = imm.trace

    # queue placement sweep: shared capacity shrinks relative to sets
    queue = Series("shared/global queue cycle ratio")
    for cap in (16, 64, 256, 4096):
        shared, _ = cost.queue_ops_cycles(trace.sizes, "shared",
                                          shared_capacity_elems=cap)
        glob, _ = cost.queue_ops_cycles(trace.sizes, "global")
        queue.add(f"cap={cap}", float(shared.sum() / glob.sum()))

    # sort trade-off: (sort + thread/binary-search scan) vs (no sort +
    # warp/linear scan), both on the identical selection workload
    stats = imm.selection.stats
    sort_cost = float(cost.sort_cycles(trace.sizes).sum()) / device.resident_blocks
    sorted_total = sort_cost + cost.thread_scan_cycles(stats, encoded=True, element_bits=12)
    unsorted_total = cost.warp_scan_cycles(stats, encoded=False)
    tradeoff = Series("cycles")
    tradeoff.add("sort+binary-search", sorted_total)
    tradeoff.add("no-sort+linear-scan", unsorted_total)

    report_writer(
        "ablation_queue_and_sort",
        format_series([queue], "[ablation] shared vs global queue", "capacity", "ratio")
        + "\n\n"
        + format_series([tradeoff], "[ablation] sorted-insertion trade-off (CA, k=100)",
                        "strategy", "cycles"),
    )
    # shared memory wins with big capacity, loses when sets overflow it
    assert queue.y[-1] < 1.0
    assert queue.y[0] > queue.y[-1]
    # the paper's claim: sorting pays for itself at large theta
    assert sorted_total < unsorted_total
