"""Ablation — device geometry sensitivity of the Fig. 3 crossover.

§3.5's inequality ``ceil(N/W_n)·C_w > ceil(N/T_n)·C_t`` says the
thread-vs-warp crossover position is set by the device's launchable
thread/warp counts.  Sweeping the simulated SM count shows the crossover
moving proportionally — the evidence that running the paper's
comparison on a scaled device preserves its conclusion, and a
sensitivity check on the scaling methodology itself (docs/gpu_cost_model.md).
"""

import numpy as np

from repro.experiments.rendering import Series, format_series
from repro.gpu.cost_model import CostModel
from repro.gpu.device import RTX_A6000
from repro.imm import select_seeds
from repro.rrr import sample_rrr_ic

N_VALUES = (500, 2_000, 8_000, 32_000, 128_000)


def _crossover(cost: CostModel, stats_by_n) -> float:
    """Smallest N where the thread-based scan wins (inf if never)."""
    for n_sets, stats in stats_by_n:
        if cost.thread_scan_cycles(stats, encoded=True) < cost.warp_scan_cycles(stats):
            return float(n_sets)
    return float("inf")


def test_ablation_device_geometry(benchmark, config, report_writer):
    graph = config.graph("SE", "IC")
    k = min(100, graph.n)

    def run():
        collection, _ = sample_rrr_ic(graph, max(N_VALUES), rng=config.seed)
        return [
            (n_sets, select_seeds(collection.prefix(n_sets), k).stats)
            for n_sets in N_VALUES
        ]

    stats_by_n = benchmark.pedantic(run, rounds=1, iterations=1)
    crossover = Series("crossover N (thread starts winning)")
    tn = Series("launchable threads T_n")
    for sms in (2, 8, 28, 84):
        spec = RTX_A6000.scaled(1, 84 / sms)
        cost = CostModel(spec)
        crossover.add(f"{spec.num_sms} SMs", _crossover(cost, stats_by_n))
        tn.add(f"{spec.num_sms} SMs", spec.launchable_threads)
    report_writer(
        "ablation_device_geometry",
        format_series([tn, crossover],
                      "[ablation] Fig. 3 crossover vs device size (SE, k=100)",
                      "device", "N / threads"),
    )
    finite = [c for c in crossover.y if np.isfinite(c)]
    assert finite, "thread-based scan must win somewhere on every device"
    # bigger devices push the crossover to larger N (more warps to saturate)
    assert crossover.y == sorted(crossover.y)
