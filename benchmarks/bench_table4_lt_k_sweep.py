"""Table 4 — eIM speedup over gIM under LT while increasing k (eps=0.05)."""

from repro.experiments import tables


def test_table4_lt_k_sweep(benchmark, config, report_writer):
    result = benchmark.pedantic(
        tables.table4_lt_k_sweep, args=(config,), rounds=1, iterations=1
    )
    report_writer("table4_lt_k_sweep", result.render())
    # eIM wins the clear majority of non-OOM cells (paper: "most cases")
    wins = total = 0
    for comparison in result.cells.values():
        if comparison.gim.oom or comparison.eim.oom:
            continue
        total += 1
        wins += comparison.speedup_vs_gim > 1.0
    assert wins > 0.6 * total
