"""Extension — TIM vs IMM sample counts (the §2.2 lineage, quantified).

IMM's contribution over its predecessor TIM is a tighter lower bound on
the required number of RRR sets; this bench measures the theta ratio on
real workloads at identical (k, epsilon, guarantee) settings.
"""

from repro.experiments.rendering import Series, format_series
from repro.imm import run_imm
from repro.imm.tim import run_tim


def test_extension_tim_vs_imm(benchmark, config, report_writer):
    codes = config.datasets[:6]

    def run():
        rows = []
        for code in codes:
            graph = config.graph(code, "IC")
            bounds = config.bounds(sweep=True)
            tim = run_tim(graph, 20, 0.2, rng=config.seed, bounds=bounds)
            imm = run_imm(graph, 20, 0.2, rng=config.seed, bounds=bounds)
            rows.append((code, tim, imm))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    tim_theta = Series("TIM theta")
    imm_theta = Series("IMM theta")
    ratio = Series("TIM/IMM")
    for code, tim, imm in rows:
        tim_theta.add(code, tim.theta)
        imm_theta.add(code, imm.theta)
        ratio.add(code, tim.theta / imm.theta)
    report_writer(
        "extension_tim_vs_imm",
        format_series([tim_theta, imm_theta, ratio],
                      "[extension] TIM vs IMM required sample counts (IC, k=20, eps=0.2)",
                      "dataset", "RRR sets"),
    )
    assert all(r > 1.0 for r in ratio.y)  # IMM's bound is strictly tighter here
