"""Data-plane smoke benchmark — writes ``BENCH_pr4_dataplane.json``.

CI-sized comparison of the two parent<->worker data planes
(:mod:`repro.shm`) on one synthetic graph big enough for the graph
arrays to dominate worker memory:

* **worker residency** — per-worker private bytes (USS, from
  ``/proc/<pid>/smaps_rollup``) after the pool is warm.  The pickle
  plane gives every worker a private copy of the CSC arrays; the shm
  plane maps one shared publication, so per-worker private bytes drop
  by roughly the graph size.  Pools run under the ``spawn`` start
  method: that is where the pickle plane's per-worker copy physically
  materializes (the macOS/Windows default, and fork hides the copy
  behind COW), so both planes are measured on the portable semantics.
* **IPC volume** — the ``ipc.bytes_sent`` counter: raw pickled arrays
  vs log-encoded :class:`~repro.shm.transport.PackedResult` payloads.
* **wall-clock** — the same sampling request on both planes must not
  regress.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke_dataplane.py

The JSON lands next to the repository root by default (``--out`` to
relocate).  One timed round per cell — this is a smoke check, not a
rigorous benchmark.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.graphs.generators import erdos_renyi_directed
from repro.graphs.weights import assign_ic_weights
from repro.rrr.parallel import SamplerPool
from repro.shm import REGISTRY

N_VERTICES = 60_000
N_EDGES = 1_500_000
NUM_SETS = 1_200
N_JOBS_GRID = (1, 2, 4)
RNG_SEED = 2024


def _worker_private_bytes(executor) -> list[int]:
    """Per-worker USS (private clean+dirty KB from smaps_rollup), bytes.

    Empty on platforms without /proc — the JSON then reports residency
    as null and the residency gate is skipped.
    """
    out = []
    for pid in list(getattr(executor, "_processes", {}) or {}):
        path = Path(f"/proc/{pid}/smaps_rollup")
        try:
            text = path.read_text()
        except OSError:
            continue
        private = 0
        for line in text.splitlines():
            if line.startswith(("Private_Clean:", "Private_Dirty:")):
                private += int(line.split()[1]) * 1024
        out.append(private)
    return out


def run_cell(graph, plane: str, n_jobs: int) -> dict:
    pool = SamplerPool(graph, n_jobs, data_plane=plane, mp_context="spawn")
    try:
        # warm the executor (spawn + import + graph delivery) off the clock
        pool.sample("IC", 4 * n_jobs, rng=np.random.default_rng(0))
        rng = np.random.default_rng(RNG_SEED)
        with obs.profiled() as handle:
            start = time.perf_counter()
            collection, _ = pool.sample("IC", NUM_SETS, rng=rng)
            seconds = time.perf_counter() - start
        workers = (
            _worker_private_bytes(pool._executor)
            if pool._executor is not None
            else []
        )
        counters = handle.report().counters
        return {
            "plane": pool.data_plane,
            "n_jobs": n_jobs,
            "seconds": round(seconds, 4),
            "num_sets": collection.num_sets,
            "checksum": int(collection.flat.sum()),
            "ipc_bytes_sent": int(counters.get("ipc.bytes_sent", 0)),
            "ipc_bytes_raw": int(counters.get("ipc.bytes_raw", 0)),
            "worker_private_bytes_mean": (
                int(sum(workers) / len(workers)) if workers else None
            ),
            "shm_resident_bytes": REGISTRY.resident_bytes,
        }
    finally:
        pool.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_pr4_dataplane.json"
        ),
        help="output JSON path (default: <repo root>/BENCH_pr4_dataplane.json)",
    )
    args = parser.parse_args(argv)

    graph = assign_ic_weights(
        erdos_renyi_directed(N_VERTICES, N_EDGES, rng=RNG_SEED)
    )
    graph_bytes = (
        graph.indptr.nbytes + graph.indices.nbytes + graph.weights.nbytes
    )
    cells = [
        run_cell(graph, plane, n_jobs)
        for n_jobs in N_JOBS_GRID
        for plane in ("pickle", "shm")
    ]

    report = {
        "benchmark": "pr4_dataplane",
        "graph": {"n": graph.n, "m": graph.m, "csc_bytes": graph_bytes},
        "num_sets": NUM_SETS,
        "cells": cells,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"[written to {args.out}]")

    by_key = {(c["plane"], c["n_jobs"]): c for c in cells}
    failures = []

    # bit-identity across planes at every fan-out
    for n_jobs in N_JOBS_GRID:
        if by_key[("pickle", n_jobs)]["checksum"] != by_key[("shm", n_jobs)]["checksum"]:
            failures.append(f"checksum mismatch across planes at n_jobs={n_jobs}")

    # >= 30% IPC reduction wherever the request actually fanned out
    for n_jobs in (2, 4):
        raw = by_key[("pickle", n_jobs)]["ipc_bytes_sent"]
        packed = by_key[("shm", n_jobs)]["ipc_bytes_sent"]
        if not (0 < packed <= 0.7 * raw):
            failures.append(
                f"IPC not reduced >=30% at n_jobs={n_jobs}: {packed} vs {raw}"
            )

    # >= 2x reduction in per-worker resident *graph* bytes at n_jobs=4:
    # the pickle worker carries a private CSC copy, the shm worker at
    # most half of one (baseline interpreter noise cancels in the delta)
    pickle_uss = by_key[("pickle", 4)]["worker_private_bytes_mean"]
    shm_uss = by_key[("shm", 4)]["worker_private_bytes_mean"]
    if pickle_uss is not None and shm_uss is not None:
        if pickle_uss - shm_uss < graph_bytes / 2:
            failures.append(
                f"worker residency not reduced by >= csc_bytes/2: "
                f"pickle={pickle_uss} shm={shm_uss} csc={graph_bytes}"
            )

    # no wall-clock regression beyond smoke-run noise
    pickle_s = by_key[("pickle", 4)]["seconds"]
    shm_s = by_key[("shm", 4)]["seconds"]
    if shm_s > 1.5 * pickle_s:
        failures.append(f"shm plane regressed wall-clock: {shm_s}s vs {pickle_s}s")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
