"""Serving-resilience smoke benchmark — writes ``BENCH_pr8_resilience.json``.

CI-sized acceptance drill for the resilient serving tier (PR 8) on the
WV tiny dataset.  Three deterministic chaos sessions, then leak gates:

* **Session A — deadline storm**: a concurrent burst where some queries
  carry deadlines far too tight to finish while injected ``slow``
  faults stretch execution.  Gates: every submitted future resolves, at
  least one deadline expiry is recorded, and every *non-degraded*
  completed answer is bit-identical to a direct ``run_imm`` against a
  fresh same-identity store.
* **Session B — breaker drill**: injected substrate OOMs trip the
  per-stream circuit breaker; while open, cached answers serve degraded
  and uncached cells fast-fail; after the reset timeout a probe heals
  it.  Gates: the breaker opened, served degraded, and closed again.
* **Session C — worker-thread crash**: an injected serving-tier fault
  fails exactly one future; the worker thread, and the service, keep
  serving.

Leak gates close the drill: zero service worker threads and zero
shared-memory segments survive the three sessions.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke_resilient_service.py
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.imm.imm import run_imm
from repro.imm.options import IMMOptions
from repro.resilience.faults import ENV_VAR, InjectedFaultError
from repro.rrr.store import RRRStore
from repro.service import (
    InfluenceQuery,
    InfluenceService,
    ServiceOptions,
)
from repro.shm.segments import REGISTRY
from repro.utils.errors import CircuitOpenError, DeadlineExceededError

DATASET = "WV"
CHUNK_SETS = 512
BURST = [(k, eps) for k in (2, 4, 8, 16) for eps in (0.25, 0.3)]
OPTIONS = IMMOptions(model="IC")


def _graph():
    config = ExperimentConfig.from_env(scale="tiny", datasets=(DATASET,),
                                       seed=11)
    return config.graph(DATASET, "IC")


def _truth(graph) -> dict:
    results = {}
    for k, eps in BURST:
        store = RRRStore(graph, model=OPTIONS.model, chunk_sets=CHUNK_SETS)
        results[(k, eps)] = run_imm(graph, k, eps, options=OPTIONS,
                                    store=store)
        store.close()
    return results


def _service(graph, plan: str, **options) -> InfluenceService:
    os.environ[ENV_VAR] = plan
    try:
        options.setdefault("chunk_sets", CHUNK_SETS)
        service = InfluenceService(ServiceOptions(**options))
    finally:
        os.environ.pop(ENV_VAR, None)
    service.register_graph("g", graph)
    return service


def _worker_threads():
    return [
        t for t in threading.enumerate()
        if t.name.startswith("repro-service-worker") and t.is_alive()
    ]


def session_deadline_storm(graph, truth, failures: list) -> dict:
    """Session A: tight deadlines under injected slow faults."""
    service = _service(
        graph, "slow(0.3)@queries#0,3,6",
        max_inflight=4, max_queue_depth=256,
    )
    queries = []
    for repeat in range(2):
        for idx, (k, eps) in enumerate(BURST):
            n = repeat * len(BURST) + idx
            deadline = 0.002 if n % 5 == 4 else None
            queries.append(InfluenceQuery("g", k=k, epsilon=eps,
                                          options=OPTIONS, deadline=deadline))
    futures = []
    try:
        with ThreadPoolExecutor(max_workers=8) as clients:
            futures = list(clients.map(service.submit, queries))
        resolved, expired, mismatches = 0, 0, []
        for query, future in zip(queries, futures):
            try:
                outcome = future.result(timeout=300)
            except DeadlineExceededError:
                resolved += 1
                expired += 1
                continue
            resolved += 1
            if outcome.degraded:
                continue
            expect = truth[(query.k, query.epsilon)]
            if not np.array_equal(outcome.seeds, expect.seeds):
                mismatches.append([query.k, query.epsilon])
        health = service.health()
    finally:
        service.close()
    counters = health["counters"]
    if resolved != len(futures):
        failures.append(f"A: {len(futures) - resolved} futures unresolved")
    if counters.get("service.deadline_expired", 0) < 1:
        failures.append("A: no deadline expiry recorded under the storm")
    if mismatches:
        failures.append(f"A: non-degraded answers diverged: {mismatches}")
    return {
        "submitted": len(futures),
        "resolved": resolved,
        "deadline_expired_futures": expired,
        "mismatches": mismatches,
        "counters": counters,
    }


def session_breaker_drill(graph, truth, failures: list) -> dict:
    """Session B: substrate OOMs trip the breaker, a probe heals it."""
    service = _service(
        graph, "oom@substrate#1,2,3",
        max_inflight=2, breaker_failure_threshold=3,
        breaker_reset_timeout=0.2,
    )
    events = {"oom": 0, "degraded": 0, "fast_fail": 0}
    try:
        healthy = service.query(
            InfluenceQuery("g", k=2, epsilon=0.25, options=OPTIONS)
        )
        for k in (4, 8, 16):  # occurrences 1-3: injected OOM x3 -> open
            try:
                service.query(InfluenceQuery("g", k=k, epsilon=0.25,
                                             options=OPTIONS))
            except MemoryError:
                events["oom"] += 1
        degraded = service.query(
            InfluenceQuery("g", k=2, epsilon=0.25, options=OPTIONS)
        )
        if degraded.degraded:
            events["degraded"] += 1
        relaxed = service.query(
            InfluenceQuery("g", k=2, epsilon=0.4, options=OPTIONS)
        )
        if relaxed.degraded:
            events["degraded"] += 1
        try:
            service.query(InfluenceQuery("g", k=24, epsilon=0.25,
                                         options=OPTIONS))
        except CircuitOpenError:
            events["fast_fail"] += 1
        time.sleep(0.3)  # reset timeout elapses
        probe = service.query(
            InfluenceQuery("g", k=4, epsilon=0.25, options=OPTIONS)
        )
        health = service.health()
        breaker_states = [b["state"] for b in health["breakers"].values()]
        counters = health["counters"]
        if events["oom"] != 3:
            failures.append(f"B: expected 3 injected OOMs, saw {events['oom']}")
        if counters.get("service.breaker.opened", 0) < 1:
            failures.append("B: breaker never opened")
        if events["degraded"] != 2 or counters.get("service.degraded", 0) < 2:
            failures.append("B: degraded serving did not kick in while open")
        if events["fast_fail"] != 1:
            failures.append("B: uncached cell did not fast-fail while open")
        if breaker_states != ["closed"]:
            failures.append(f"B: probe did not heal breaker: {breaker_states}")
        if probe.degraded or not np.array_equal(
            probe.seeds, truth[(4, 0.25)].seeds
        ):
            failures.append("B: post-recovery answer not clean/bit-identical")
        if not np.array_equal(degraded.seeds, healthy.seeds):
            failures.append("B: degraded exact hit changed the answer")
    finally:
        service.close()
    return {"events": events, "counters": counters,
            "breaker_states": breaker_states}


def session_worker_crash(graph, truth, failures: list) -> dict:
    """Session C: a serving-tier fault fails one future only."""
    service = _service(graph, "crash@worker-thread#0", max_inflight=2)
    try:
        crashed = False
        try:
            service.query(InfluenceQuery("g", k=4, epsilon=0.25,
                                         options=OPTIONS))
        except InjectedFaultError:
            crashed = True
        after = service.query(
            InfluenceQuery("g", k=4, epsilon=0.25, options=OPTIONS)
        )
        health = service.health()
        if not crashed:
            failures.append("C: injected worker-thread fault never fired")
        if health["workers_alive"] != 2:
            failures.append(
                f"C: worker threads died: {health['workers_alive']}/2"
            )
        if not np.array_equal(after.seeds, truth[(4, 0.25)].seeds):
            failures.append("C: post-crash answer diverged")
    finally:
        service.close()
    return {"crashed": crashed, "workers_alive": health["workers_alive"],
            "counters": health["counters"]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_pr8_resilience.json"),
        help="output JSON path "
             "(default: <repo root>/BENCH_pr8_resilience.json)",
    )
    args = parser.parse_args(argv)

    ambient = os.environ.pop(ENV_VAR, None)  # sessions set their own plans
    graph = _graph()
    truth = _truth(graph)
    failures: list[str] = []

    start = time.perf_counter()
    sessions = {
        "deadline_storm": session_deadline_storm(graph, truth, failures),
        "breaker_drill": session_breaker_drill(graph, truth, failures),
        "worker_crash": session_worker_crash(graph, truth, failures),
    }

    leaked_threads = len(_worker_threads())
    leaked_segments = REGISTRY.active_count
    if leaked_threads:
        failures.append(f"leak: {leaked_threads} worker threads survived")
    if leaked_segments:
        failures.append(f"leak: {leaked_segments} shm segments survived")
    if ambient is not None:
        os.environ[ENV_VAR] = ambient

    report = {
        "benchmark": "pr8_resilience",
        "dataset": DATASET,
        "chunk_sets": CHUNK_SETS,
        "seconds": round(time.perf_counter() - start, 4),
        "sessions": sessions,
        "leaked_worker_threads": leaked_threads,
        "leaked_shm_segments": leaked_segments,
        "ok": not failures,
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n",
                              encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"[written to {args.out}]")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
