"""Table 3 — eIM speedup over gIM under IC while decreasing eps (k=100).

Paper shape: speedup grows as eps shrinks (more RRR sets -> eIM's
advantages compound); the memory-hog datasets OOM for gIM at small eps.
"""

from repro.experiments import tables


def test_table3_ic_eps_sweep(benchmark, config, report_writer):
    result = benchmark.pedantic(
        tables.table3_ic_eps_sweep, args=(config,), rounds=1, iterations=1
    )
    report_writer("table3_ic_eps_sweep", result.render())
    import numpy as np

    ratios = []
    for code in config.datasets:
        loose, tight = result.cells[(code, 0.5)], result.cells[(code, 0.05)]
        if not (loose.gim.oom or tight.gim.oom):
            ratios.append(tight.speedup_vs_gim / loose.speedup_vs_gim)
    assert np.median(ratios) > 1.0
