"""Serving-tier smoke benchmark — writes ``BENCH_pr7_service.json``.

CI-sized check of the influence-query service (PR 7) on the WV tiny
dataset, three gates:

* **determinism** — every seed set the service returns, at every cache
  tier, is bit-identical to a direct ``run_imm`` against a fresh
  same-identity store;
* **coalescing** — a concurrent 8-query burst of ``(k, ε)`` variants
  sharing one stream identity samples **>= 3x fewer** RRR sets through
  the service (one shared substrate, O(max θ)) than the same 8 queries
  as independent runs (O(Σθ));
* **exact cache** — repeating the whole burst samples **0** new sets
  and answers every query from the ``exact`` tier.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke_service.py
"""

from __future__ import annotations

import argparse
import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.imm.imm import run_imm
from repro.imm.options import IMMOptions
from repro.rrr.store import RRRStore
from repro.service import InfluenceQuery, InfluenceService, ServiceOptions

DATASET = "WV"
CHUNK_SETS = 512
#: the burst: 8 (k, eps) cells over one stream identity — a k-sweep with
#: two epsilons, the dashboard-fanning-out-variants pattern
BURST = [(k, eps) for k in (2, 4, 8, 16) for eps in (0.25, 0.3)]
OPTIONS = IMMOptions(model="IC")


def _graph():
    config = ExperimentConfig.from_env(scale="tiny", datasets=(DATASET,), seed=11)
    return config.graph(DATASET, "IC")


def run_direct(graph) -> dict:
    """Ground truth: every cell independently, each on a fresh store."""
    start = time.perf_counter()
    results = {}
    sampled = 0
    for k, eps in BURST:
        store = RRRStore(graph, model=OPTIONS.model, chunk_sets=CHUNK_SETS)
        results[(k, eps)] = run_imm(graph, k, eps, options=OPTIONS, store=store)
        sampled += store.num_cached
        store.close()
    return {
        "seconds": round(time.perf_counter() - start, 4),
        "sampled_sets": int(sampled),
        "results": results,
    }


def run_burst(service) -> dict:
    """The same 8 cells as one concurrent burst through the service."""
    queries = [
        InfluenceQuery("g", k=k, epsilon=eps, options=OPTIONS)
        for k, eps in BURST
    ]
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=len(queries)) as clients:
        outcomes = list(clients.map(service.query, queries))
    return {
        "seconds": round(time.perf_counter() - start, 4),
        "sampled_sets": int(sum(o.sampled_sets for o in outcomes)),
        "tiers": sorted(o.cache_tier for o in outcomes),
        "coalesced": int(sum(o.coalesced for o in outcomes)),
        "outcomes": {(q.k, q.epsilon): o for q, o in zip(queries, outcomes)},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pr7_service.json"),
        help="output JSON path (default: <repo root>/BENCH_pr7_service.json)",
    )
    args = parser.parse_args(argv)

    graph = _graph()
    direct = run_direct(graph)

    service = InfluenceService(
        ServiceOptions(max_inflight=4, max_queue_depth=64,
                       chunk_sets=CHUNK_SETS)
    )
    service.register_graph("g", graph)
    try:
        burst = run_burst(service)
        repeat = run_burst(service)
    finally:
        service.close()

    mismatches = []
    for cell, truth in direct["results"].items():
        for phase, outcomes in (("burst", burst), ("repeat", repeat)):
            outcome = outcomes["outcomes"][cell]
            if not np.array_equal(outcome.seeds, truth.seeds):
                mismatches.append({"cell": list(cell), "phase": phase})

    ratio = direct["sampled_sets"] / max(burst["sampled_sets"], 1)
    report = {
        "benchmark": "pr7_service",
        "dataset": DATASET,
        "burst": [list(c) for c in BURST],
        "chunk_sets": CHUNK_SETS,
        "direct": {k: direct[k] for k in ("seconds", "sampled_sets")},
        "service_burst": {k: burst[k] for k in
                          ("seconds", "sampled_sets", "tiers", "coalesced")},
        "service_repeat": {k: repeat[k] for k in
                           ("seconds", "sampled_sets", "tiers")},
        "coalescing_ratio": round(ratio, 3),
        "seeds_bit_identical": not mismatches,
        "mismatches": mismatches,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"[written to {args.out}]")

    if mismatches:
        print("FAIL: service seeds diverged from direct run_imm")
        return 1
    if ratio < 3.0:
        print(f"FAIL: coalescing ratio {ratio:.2f} < 3.0 "
              f"(direct {direct['sampled_sets']} vs burst {burst['sampled_sets']})")
        return 1
    if repeat["sampled_sets"] != 0 or set(repeat["tiers"]) != {"exact"}:
        print(f"FAIL: repeated burst was not a pure exact-cache hit "
              f"(sampled {repeat['sampled_sets']}, tiers {repeat['tiers']})")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
