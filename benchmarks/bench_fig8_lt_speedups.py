"""Figure 8 — eIM speedups over cuRipples and gIM under LT (k=50, eps=0.05).

Paper shape: same trends as IC, with the largest speedups on networks
that generate many singleton sets; one dataset (p2p-gnutella) is allowed
to favor gIM.
"""

import numpy as np

from repro.experiments import figures


def test_fig8_lt_speedups(benchmark, config, report_writer):
    result = benchmark.pedantic(
        figures.fig8_lt_speedups, args=(config,), rounds=1, iterations=1
    )
    report_writer("fig8_lt_speedups", result.render())
    vs_gim, vs_cur = result.series
    assert np.median(vs_gim.y) > 1.0
    assert all(c > 1.0 for c in vs_cur.y)
