"""Figure 5 — speedup from source-vertex elimination vs the fraction of
singleton (source-only) RRR sets.

Paper shape: networks whose samples are dominated by singleton sets gain
the most from the heuristic.
"""

import numpy as np

from repro.experiments import figures


def test_fig5_source_elim_speedup(benchmark, config, report_writer):
    result = benchmark.pedantic(
        figures.fig5_source_elim_speedup, args=(config,), rounds=1, iterations=1
    )
    report_writer("fig5_source_elim_speedup", result.render())
    singles, speedup = result.series
    # positive correlation between singleton fraction and speedup
    if len(singles.y) >= 4:
        corr = np.corrcoef(singles.y, speedup.y)[0, 1]
        assert corr > 0.0
