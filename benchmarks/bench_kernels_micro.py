"""Micro-benchmarks of the actual Python kernels (wall-clock).

Unlike the table/figure benches — which report *simulated device cycles*
— these measure the real NumPy implementations with pytest-benchmark:
sampler throughput, greedy selection, bit-packing, and a forward cascade.
They guard against performance regressions in the host library itself.
"""

import numpy as np

from repro.encoding.bitpack import pack
from repro.imm import select_seeds
from repro.rrr import sample_rrr_ic, sample_rrr_lt


def test_sampler_ic_throughput(benchmark, config):
    graph = config.graph("SE", "IC")
    coll, _ = benchmark(sample_rrr_ic, graph, 20_000, rng=1)
    assert coll.num_sets == 20_000


def test_sampler_lt_throughput(benchmark, config):
    graph = config.graph("SE", "LT")
    coll, _ = benchmark(sample_rrr_lt, graph, 20_000, rng=1)
    assert coll.num_sets == 20_000


def test_seed_selection_throughput(benchmark, config):
    graph = config.graph("SE", "IC")
    coll, _ = sample_rrr_ic(graph, 50_000, rng=2)
    result = benchmark(select_seeds, coll, 50)
    assert result.seeds.size == 50


def test_bitpack_throughput(benchmark):
    values = np.random.default_rng(0).integers(0, 2**20, size=1_000_000)
    packed = benchmark(pack, values)
    assert packed.count == 1_000_000


def test_bitunpack_throughput(benchmark):
    values = np.random.default_rng(0).integers(0, 2**20, size=1_000_000)
    packed = pack(values)
    out = benchmark(packed.unpack)
    assert out.size == 1_000_000


def test_forward_cascade_throughput(benchmark, config):
    from repro.diffusion import simulate_ic

    graph = config.graph("CY", "IC")
    rng = np.random.default_rng(3)
    seeds = rng.choice(graph.n, size=50, replace=False)
    active = benchmark(simulate_ic, graph, seeds, rng)
    assert active.sum() >= 50
