"""Shared benchmark plumbing.

Every ``bench_*`` module regenerates one of the paper's tables or figures
and measures it with pytest-benchmark.  The rendered paper-style rows are
printed and also written to ``benchmarks/reports/<name>.txt`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves the complete set of
regenerated artifacts on disk.

Scale knobs come from :class:`repro.experiments.ExperimentConfig` and its
``REPRO_*`` environment overrides; the defaults regenerate everything at
tiny scale with the theta scaling recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """The benchmark campaign configuration (env-overridable)."""
    return ExperimentConfig.from_env()


@pytest.fixture(scope="session")
def report_writer():
    """Writes a rendered table/figure to the reports directory and stdout."""
    REPORTS_DIR.mkdir(exist_ok=True)

    def write(name: str, rendered: str) -> None:
        path = REPORTS_DIR / f"{name}.txt"
        path.write_text(rendered + "\n", encoding="utf-8")
        print(f"\n{rendered}\n[written to {path}]")

    return write
