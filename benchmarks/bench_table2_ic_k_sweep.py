"""Table 2 — eIM speedup over gIM under IC while increasing k (eps=0.05).

Paper shape: speedup generally grows with k; gIM hits OOM on the
memory-hog datasets at every k while eIM completes (cells print the
paper's OOM/<eIM seconds> convention).
"""

from repro.experiments import tables


def test_table2_ic_k_sweep(benchmark, config, report_writer):
    result = benchmark.pedantic(
        tables.table2_ic_k_sweep, args=(config,), rounds=1, iterations=1
    )
    report_writer("table2_ic_k_sweep", result.render())
    # shape check: the median dataset speeds up more at k=100 than k=20
    import numpy as np

    ratios = []
    for code in config.datasets:
        lo, hi = result.cells[(code, 20)], result.cells[(code, 100)]
        if not (lo.gim.oom or hi.gim.oom):
            ratios.append(hi.speedup_vs_gim / lo.speedup_vs_gim)
    assert np.median(ratios) > 1.0
