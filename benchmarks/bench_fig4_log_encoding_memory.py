"""Figure 4 — memory saved by log encoding (RRR sets + network data).

Paper: up to 54% saved on small networks, >=16.6% on the large ones.
"""

from repro.experiments import figures


def test_fig4_log_encoding_memory(benchmark, config, report_writer):
    result = benchmark.pedantic(
        figures.fig4_log_encoding_memory, args=(config,), rounds=1, iterations=1
    )
    report_writer("fig4_log_encoding_memory", result.render())
    total = result.series[0]
    assert all(y > 16.0 for y in total.y)
