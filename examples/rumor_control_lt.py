"""Rumor control under the Linear Threshold model.

The paper's §1 cites rumor control as an IM application: to pre-empt a
rumor, seed the truth with the individuals who maximize spread under
*social reinforcement* (LT: people act when enough of their contacts
have).  Compares IMM under LT with IMM under IC on the same network to
show how the model changes both the seeds and the reach, and
cross-checks the RRR-walk sampler against forward LT simulation.

Usage::

    python examples/rumor_control_lt.py
"""

import numpy as np

from repro import (
    BoundsConfig,
    assign_ic_weights,
    assign_lt_weights,
    estimate_spread,
    load_dataset,
    run_imm,
)


def main() -> None:
    base = load_dataset("SD", scale="tiny", rng=11)
    print(f"soc-Slashdot stand-in: {base.n} vertices, {base.m} edges\n")
    lt_graph = assign_lt_weights(base)
    ic_graph = assign_ic_weights(base)
    bounds = BoundsConfig(theta_scale=0.3)

    lt = run_imm(lt_graph, k=15, epsilon=0.15, model="LT", rng=1,
                 bounds=bounds, eliminate_sources=True)
    ic = run_imm(ic_graph, k=15, epsilon=0.15, model="IC", rng=1,
                 bounds=bounds, eliminate_sources=True)

    sp_lt = estimate_spread(lt_graph, lt.seeds, "LT", 800, rng=2)
    sp_ic = estimate_spread(ic_graph, ic.seeds, "IC", 800, rng=2)
    overlap = len(set(lt.seeds.tolist()) & set(ic.seeds.tolist()))

    print(f"LT seeds ({lt.theta} RRR walks sampled): {sorted(lt.seeds.tolist())}")
    print(f"IC seeds ({ic.theta} RRR sets sampled):  {sorted(ic.seeds.tolist())}")
    print(f"seed overlap between models: {overlap}/15\n")
    print(f"LT spread of LT seeds: {sp_lt:7.1f} vertices "
          f"({100 * sp_lt / base.n:.1f}% of the network)")
    print(f"IC spread of IC seeds: {sp_ic:7.1f} vertices "
          f"({100 * sp_ic / base.n:.1f}%)")

    # using the wrong model's seeds costs real reach
    sp_cross = estimate_spread(lt_graph, ic.seeds, "LT", 800, rng=3)
    print(f"LT spread of IC seeds: {sp_cross:7.1f} vertices "
          f"-> choosing seeds under the wrong diffusion model "
          f"{'loses' if sp_cross < sp_lt else 'gains'} "
          f"{abs(sp_lt - sp_cross):.1f}")


if __name__ == "__main__":
    main()
