"""Quickstart: find influential vertices in a synthetic social network.

Runs the full IMM pipeline on the wiki-Vote stand-in and checks the
selected seed set's expected influence with forward Monte-Carlo
simulation.

Usage::

    python examples/quickstart.py
"""

from repro import (
    BoundsConfig,
    assign_ic_weights,
    estimate_spread,
    load_dataset,
    run_imm,
)


def main() -> None:
    # 1. load a network (synthetic stand-in for SNAP wiki-Vote; scale
    #    "tiny" is ~1/1000 of the paper's size, "paper" is full size)
    graph = load_dataset("WV", scale="tiny", rng=0)
    print(f"network: {graph.n} vertices, {graph.m} edges")

    # 2. assign IC weights the paper's way: p_uv = 1 / in-degree(v)
    graph = assign_ic_weights(graph)

    # 3. run IMM: a (1 - 1/e - eps)-approximate seed set of size k
    result = run_imm(
        graph,
        k=10,
        epsilon=0.1,
        model="IC",
        rng=0,
        eliminate_sources=True,  # eIM's §3.4 heuristic
        bounds=BoundsConfig(theta_scale=0.5),  # lighter bounds for a demo
    )
    print(f"sampled theta = {result.theta} RRR sets "
          f"(lower bound on OPT: {result.lower_bound:.1f})")
    print(f"seeds: {sorted(result.seeds.tolist())}")
    print(f"RIS influence estimate: {result.influence_estimate():.1f} vertices")

    # 4. validate with ground-truth forward simulation
    spread = estimate_spread(graph, result.seeds, model="IC",
                             num_samples=2000, rng=1)
    print(f"Monte-Carlo spread:     {spread:.1f} vertices "
          f"({100 * spread / graph.n:.1f}% of the network)")


if __name__ == "__main__":
    main()
