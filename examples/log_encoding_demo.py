"""Log encoding walkthrough — the paper's Fig. 1, then a whole graph.

Shows bit-level packing of the exact array from Figure 1, then encodes a
full CSC network and prints the §4.2-style memory report.

Usage::

    python examples/log_encoding_demo.py
"""

from repro import assign_ic_weights, encode_graph, load_dataset, pack, required_bits


def main() -> None:
    # --- Figure 1: [1, 123, 2, 83, 115] ---------------------------------
    values = [1, 123, 2, 83, 115]
    print(f"array: {values}")
    print(f"max element 123 -> {required_bits(123)} bits per field")
    packed = pack(values, container_bits=32)
    print(f"raw:    {packed.nbytes_raw * 8} bits ({packed.nbytes_raw} bytes as int32)")
    print(f"packed: {packed.count * packed.n_bits} bits of payload in "
          f"{packed.nbytes_packed} bytes ({packed.nbytes_packed * 8} container bits)")
    words = ", ".join(f"0b{int(w):032b}" for w in packed.words[:-1])
    print(f"containers: {words}")
    print(f"roundtrip: {packed.unpack().tolist()}")
    assert packed.unpack().tolist() == values

    # thread-safe single-field update (what concurrent warps do)
    packed.set_element(1, 99)
    print(f"after set_element(1, 99): {packed.unpack().tolist()}\n")

    # --- a whole network -------------------------------------------------
    graph = assign_ic_weights(load_dataset("CY", scale="tiny", rng=0))
    print(f"com-Youtube stand-in: {graph.n} vertices, {graph.m} edges")
    raw = graph.nbytes_csc()

    implicit = encode_graph(graph)  # degree weights recoverable -> dropped
    conservative = encode_graph(graph, weight_mode="raw32")
    print(f"raw CSC:                    {raw:>9,} bytes")
    print(f"packed, weights raw (§4.2): {conservative.nbytes_packed():>9,} bytes "
          f"({conservative.memory_report(graph).percent_saved:.1f}% saved)")
    print(f"packed, weights implicit:   {implicit.nbytes_packed():>9,} bytes "
          f"({implicit.memory_report(graph).percent_saved:.1f}% saved)")

    decoded = implicit.decode()
    assert (decoded.indices == graph.indices).all()
    print("decode roundtrip: exact")


if __name__ == "__main__":
    main()
