"""Run eIM against gIM and cuRipples on one network (a mini Figure 7).

Shows the simulated-device comparison: per-kernel cycle breakdowns,
RRR-store footprints, and the speedups the paper reports — plus the OOM
behaviour when the same workload meets a tighter memory budget.

Usage::

    python examples/engine_comparison.py
"""

from repro import BoundsConfig, CuRipplesEngine, EIMEngine, GIMEngine, assign_ic_weights, load_dataset
from repro.gpu import RTX_A6000


def show(result) -> None:
    print(f"\n== {result.engine} ==")
    if result.oom:
        print(f"   OUT OF MEMORY: {result.oom_detail}")
        return
    print(f"   simulated time: {result.seconds * 1e3:.3f} ms "
          f"({result.total_cycles:.3e} cycles)")
    print(f"   theta = {result.theta} RRR sets, coverage {result.coverage:.2f}")
    print(f"   RRR store: {result.rrr_store_bytes:,} B, "
          f"device peak: {result.peak_device_bytes:,} B")
    for label, cycles in sorted(result.breakdown.items(), key=lambda t: -t[1]):
        print(f"     {label:<22s} {cycles:>12.3e} cycles")


def main() -> None:
    graph = assign_ic_weights(load_dataset("EE", scale="tiny", rng=2))
    print(f"email-EuAll stand-in: {graph.n} vertices, {graph.m} edges")
    device = RTX_A6000.scaled(1000)  # a proportionally scaled-down A6000
    bounds = BoundsConfig(theta_scale=0.5)
    kwargs = dict(k=50, epsilon=0.1, model="IC", rng=0,
                  bounds=bounds, device_spec=device)

    eim = EIMEngine().run(graph, **kwargs)
    gim = GIMEngine().run(graph, **kwargs)
    cur = CuRipplesEngine().run(graph, **kwargs)
    for result in (eim, gim, cur):
        show(result)

    print(f"\nspeedup of eIM: {eim.speedup_over(gim):.2f}x over gIM, "
          f"{eim.speedup_over(cur):.2f}x over cuRipples")

    # same workload on a budget sitting between the two engines' peak
    # footprints: gIM's raw store plus per-block temporaries stop fitting
    # while eIM's packed store still does — the paper's OOM mechanism
    budget = (eim.peak_device_bytes + gim.peak_device_bytes) // 2
    tight = device.scaled(device.global_mem_bytes / budget)
    print(f"\n-- retry on a device with {tight.global_mem_bytes:,} B --")
    gim_tight = GIMEngine().run(graph, **{**kwargs, "device_spec": tight})
    eim_tight = EIMEngine().run(graph, **{**kwargs, "device_spec": tight})
    print(f"gIM: {'OOM' if gim_tight.oom else 'ok'}   "
          f"eIM: {'OOM' if eim_tight.oom else 'ok'} "
          f"(packed store = {eim_tight.rrr_store_bytes:,} B, "
          f"gIM needed > {gim.peak_device_bytes:,} B)")


if __name__ == "__main__":
    main()
