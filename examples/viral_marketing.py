"""Viral marketing: choose campaign ambassadors under a budget sweep.

The paper's motivating application (§1): a brand can activate k
individuals; word of mouth then cascades through the network.  This
example sweeps the budget k, showing the submodular diminishing returns
of influence, and compares IMM's seeds against the two heuristics
practitioners reach for first (highest degree, random).

Usage::

    python examples/viral_marketing.py
"""

import numpy as np

from repro import BoundsConfig, assign_ic_weights, estimate_spread, load_dataset, run_imm


def main() -> None:
    graph = assign_ic_weights(load_dataset("SE", scale="tiny", rng=7))
    print(f"soc-Epinions stand-in: {graph.n} vertices, {graph.m} edges\n")
    rng = np.random.default_rng(1)
    bounds = BoundsConfig(theta_scale=0.3)

    print(f"{'budget k':>8}  {'IMM spread':>10}  {'top-degree':>10}  {'random':>8}  {'IMM gain/seed':>13}")
    previous = 0.0
    for k in (1, 2, 5, 10, 20, 40):
        imm = run_imm(graph, k, epsilon=0.15, rng=2, bounds=bounds,
                      eliminate_sources=True)
        sp_imm = estimate_spread(graph, imm.seeds, "IC", 800, rng=rng)
        degree_seeds = np.argsort(graph.out_degrees())[-k:]
        sp_degree = estimate_spread(graph, degree_seeds, "IC", 800, rng=rng)
        random_seeds = rng.choice(graph.n, size=k, replace=False)
        sp_random = estimate_spread(graph, random_seeds, "IC", 800, rng=rng)
        gain = (sp_imm - previous) / max(k, 1)
        previous = sp_imm
        print(f"{k:>8}  {sp_imm:>10.1f}  {sp_degree:>10.1f}  {sp_random:>8.1f}  {gain:>13.2f}")

    print("\nDiminishing returns per added seed are the submodularity the")
    print("greedy (1 - 1/e - eps) guarantee rests on; IMM consistently")
    print("matches or beats the degree heuristic and crushes random picks.")


if __name__ == "__main__":
    main()
