"""Multi-GPU eIM scaling — the paper's future-work item, modeled.

Runs one IMM workload, then stripes it over 1..16 simulated devices and
prints the scaling curve: sampling parallelizes almost perfectly, but
the per-greedy-iteration count reconciliation is a serial term that
caps the speedup (classic Amdahl behaviour).

Usage::

    python examples/multi_gpu_scaling.py
"""

from repro import BoundsConfig, assign_ic_weights, load_dataset, run_imm
from repro.gpu import RTX_A6000, run_multi_device_eim


def main() -> None:
    graph = assign_ic_weights(load_dataset("CY", scale="tiny", rng=0))
    print(f"com-Youtube stand-in: {graph.n} vertices, {graph.m} edges")
    spec = RTX_A6000.scaled(1000)
    imm = run_imm(graph, k=50, epsilon=0.1, rng=1, eliminate_sources=True,
                  bounds=BoundsConfig(theta_scale=0.5))
    print(f"workload: theta = {imm.theta} RRR sets, "
          f"{imm.collection.total_elements} stored elements\n")

    print(f"{'devices':>8}  {'total cycles':>13}  {'sampling':>10}  "
          f"{'selection':>10}  {'collectives':>11}  {'speedup':>8}  {'efficiency':>10}")
    base = None
    for devices in (1, 2, 4, 8, 16):
        res = run_multi_device_eim(imm, graph, spec, devices)
        if base is None:
            base = res.total_cycles
        speedup = base / res.total_cycles
        print(f"{devices:>8}  {res.total_cycles:>13.3e}  {res.sampling_cycles:>10.3e}  "
              f"{res.selection_cycles:>10.3e}  {res.collective_cycles:>11.3e}  "
              f"{speedup:>8.2f}  {speedup / devices:>10.2f}")

    print("\nSampling scales ~linearly (independent RRR sets); the count")
    print("all-reduce per greedy iteration grows with device count and")
    print("eventually dominates — the scalability ceiling a real multi-GPU")
    print("eIM would have to engineer around.")


if __name__ == "__main__":
    main()
