"""Outbreak detection: place monitors to catch cascades early.

The network-monitoring application the paper cites (§1, Leskovec et al.'s
outbreak detection): a contagion starts at a random vertex and spreads;
we pick k monitor vertices maximizing the probability that at least one
monitor is reached.  That objective is exactly reverse-reachable
coverage, so the RRR machinery solves it directly: a monitor set covering
fraction F of RRR sets detects a random cascade with probability ~F.

Usage::

    python examples/outbreak_detection.py
"""

import numpy as np

from repro import assign_ic_weights, load_dataset, sample_rrr_ic, select_seeds, simulate_ic


def detection_rate(graph, monitors, trials, rng) -> float:
    """Empirical fraction of random cascades that reach a monitor."""
    monitors = set(np.asarray(monitors).tolist())
    hits = 0
    for _ in range(trials):
        source = int(rng.integers(0, graph.n))
        active = simulate_ic(graph, [source], rng)
        if monitors & set(np.flatnonzero(active).tolist()):
            hits += 1
    return hits / trials


def main() -> None:
    graph = assign_ic_weights(load_dataset("EE", scale="tiny", rng=3))
    print(f"email network stand-in: {graph.n} vertices, {graph.m} edges")

    # detection is about *forward* reach: a cascade from random source s is
    # caught iff a monitor lies in s's forward cascade.  Forward cascades
    # of the original graph are exactly reverse cascades of the transpose,
    # so we run the RRR sampler on graph.reverse() — each sampled set is
    # "the vertices that would detect this random outbreak", and greedy
    # max coverage places the monitors.
    forward_view = graph.reverse()
    collection, trace = sample_rrr_ic(forward_view, 40_000, rng=4)
    print(f"sampled {collection.num_sets} reverse cascades "
          f"({100 * trace.raw_singleton_fraction:.0f}% never spread past the source)\n")

    rng = np.random.default_rng(5)
    print(f"{'monitors k':>10}  {'predicted detection':>19}  {'measured detection':>18}  {'random placement':>16}")
    for k in (1, 3, 5, 10, 20):
        selection = select_seeds(collection, k)
        predicted = selection.coverage_fraction
        measured = detection_rate(graph, selection.seeds, 600, rng)
        random_monitors = rng.choice(graph.n, size=k, replace=False)
        baseline = detection_rate(graph, random_monitors, 600, rng)
        print(f"{k:>10}  {predicted:>19.2%}  {measured:>18.2%}  {baseline:>16.2%}")

    print("\nPredicted coverage (from RRR sets alone) tracks the measured")
    print("detection rate — the estimator IMM's guarantees are built on.")


if __name__ == "__main__":
    main()
