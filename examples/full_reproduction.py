"""Miniature end-to-end reproduction: every experiment on four datasets.

Runs the complete evaluation pipeline — Table 1, the memory studies,
source-elimination figures, the engine speedup comparison and one sweep
table — on a four-dataset subset so the whole thing finishes in a couple
of minutes.  The full 16-dataset campaign is
``pytest benchmarks/ --benchmark-only`` (reports in benchmarks/reports/).

Usage::

    python examples/full_reproduction.py
"""

import time

from repro.experiments import ExperimentConfig, figures, tables

STEPS = (
    ("Table 1 (graph statistics)", tables.table1_datasets),
    ("Table 1b (calibration metrics)", tables.table1_calibration),
    ("Fig. 3 (scan-strategy scaling)", figures.fig3_scan_scaling),
    ("§4.2 (CSC memory savings)", figures.sec42_csc_memory),
    ("Fig. 4 (log-encoding memory)", figures.fig4_log_encoding_memory),
    ("Fig. 5 (source-elim speedup)", figures.fig5_source_elim_speedup),
    ("Fig. 6 (source-elim memory)", figures.fig6_source_elim_memory),
    ("Fig. 7 (IC speedups)", figures.fig7_ic_speedups),
    ("Table 2 (IC k sweep)", tables.table2_ic_k_sweep),
)


def main() -> None:
    config = ExperimentConfig(
        datasets=("WV", "SE", "EE", "CA"),
        sweep_theta_scale=0.15,
    )
    print(f"configuration: scale={config.scale}, datasets={config.datasets}, "
          f"device={config.device().name}\n")
    for title, driver in STEPS:
        t0 = time.time()
        result = driver(config)
        print(result.render())
        print(f"  [{title}: {time.time() - t0:.1f}s]\n")


if __name__ == "__main__":
    main()
