"""The :class:`MemoryBudget` ledger: one accountant for every byte.

Before PR 10 each subsystem guessed at memory on its own: the kernel
planes checked a private ``REPRO_KERNEL_BUDGET_MB`` ceiling, the
RRR store and chunk arena grew without bound, and the serving tier
found out about host pressure only when ``MemoryError`` surfaced.
HBMax's central observation — compressed, *budgeted* RRR storage is
what lets parallel IM scale on bounded-memory machines — needs the
opposite: a single ledger that every byte-holder reports to, and a
tiering policy that frees bytes *before* the host runs out.

The governor tracks three tiers per account:

* ``resident`` — hot, directly addressable arrays (heap or shm);
* ``compressed`` — in-memory but bitpacked (still RAM, so it counts
  against the budget alongside ``resident``);
* ``spilled`` — on disk; free as far as the budget is concerned.

A *reservation* (:meth:`MemoryBudget.request`) that would push
``resident + compressed`` past the budget walks the registered
pressure handlers (RRR chunk demotion first, then service-cache
trims) until the reservation fits or nothing more can be freed; the
caller proceeds either way — the budget is a target the governor
actively steers toward, never a hard wall that turns into a crash
(overshoot is counted as ``memory.overcommits``).

Budget resolution, highest precedence first: an explicit
:meth:`set_budget` / :func:`budget_scope` (how
``IMMOptions(memory_budget_mb=)`` and ``--memory-budget-mb`` apply),
then ``REPRO_MEMORY_BUDGET_MB``, then the legacy
``REPRO_KERNEL_BUDGET_MB`` (kept as an alias — it used to gate only
the kernel planes, now it feeds the shared accountant), else
unbounded.
"""

from __future__ import annotations

import gc
import os
import threading
from contextlib import contextmanager
from typing import Callable, Optional

from repro import obs
from repro.utils.errors import ValidationError

ENV_MEMORY_BUDGET_MB = "REPRO_MEMORY_BUDGET_MB"
#: pre-PR-10 kernel-plane budget, kept as an alias for the shared one
ENV_KERNEL_BUDGET_MB = "REPRO_KERNEL_BUDGET_MB"

#: storage tiers, cheapest-to-touch first
TIERS = ("resident", "compressed", "spilled")

_MB = 1024 * 1024


def _parse_mb(raw: str, name: str) -> int:
    try:
        budget = int(float(str(raw).strip()) * _MB)
    except ValueError:
        raise ValidationError(
            f"{name} must be a number of MiB, got {raw!r}"
        ) from None
    if budget <= 0:
        raise ValidationError(f"{name} must be positive, got {raw!r}")
    return budget


def env_budget_bytes() -> Optional[int]:
    """The budget the environment asks for (``None`` = unbounded)."""
    for name in (ENV_MEMORY_BUDGET_MB, ENV_KERNEL_BUDGET_MB):
        raw = os.environ.get(name)
        if raw is not None and str(raw).strip():
            return _parse_mb(raw, name)
    return None


class MemoryBudget:
    """Process-wide accounted memory budget with demotion hooks.

    Thread-safe.  Subsystems report byte deltas with :meth:`account`
    and, when they can shed load, register a *pressure handler* — a
    callable ``handler(deficit_bytes) -> freed_bytes`` invoked (outside
    the ledger lock) whenever a reservation needs room.  Handlers must
    be idempotent and must never raise; freeing less than asked (or
    nothing) is fine.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._accounts: dict[str, dict[str, int]] = {}
        self._explicit: Optional[int] = None
        self._explicit_set = False
        self._handlers: list[tuple[int, int, Callable[[int], int]]] = []
        self._next_handle = 0
        self._peak_charged = 0
        self._demotions = 0
        self._promotions = 0
        self._overcommits = 0

    # -- budget resolution ---------------------------------------------------
    @property
    def budget_bytes(self) -> Optional[int]:
        """The active budget: explicit override, else environment."""
        with self._lock:
            if self._explicit_set:
                return self._explicit
        return env_budget_bytes()

    def set_budget(self, nbytes: Optional[int]) -> None:
        """Pin the budget explicitly (``None`` = explicitly unbounded).

        Overrides the environment until :meth:`clear_budget`.
        """
        if nbytes is not None and nbytes <= 0:
            raise ValidationError("memory budget must be positive (or None)")
        with self._lock:
            self._explicit = None if nbytes is None else int(nbytes)
            self._explicit_set = True

    def clear_budget(self) -> None:
        """Drop the explicit override; the environment decides again."""
        with self._lock:
            self._explicit = None
            self._explicit_set = False

    # -- the ledger ----------------------------------------------------------
    def account(self, name: str, tier: str, delta: int) -> None:
        """Report ``delta`` bytes moving in (+) or out (-) of a tier."""
        if tier not in TIERS:
            raise ValidationError(f"unknown memory tier {tier!r}; use {TIERS}")
        delta = int(delta)
        if delta == 0:
            return
        with self._lock:
            entry = self._accounts.setdefault(
                name, {tier: 0 for tier in TIERS}
            )
            entry[tier] = max(0, entry[tier] + delta)
            self._publish_locked()

    def _totals_locked(self) -> dict[str, int]:
        totals = {tier: 0 for tier in TIERS}
        for entry in self._accounts.values():
            for tier in TIERS:
                totals[tier] += entry[tier]
        return totals

    def _publish_locked(self) -> None:
        totals = self._totals_locked()
        charged = totals["resident"] + totals["compressed"]
        if charged > self._peak_charged:
            self._peak_charged = charged
        obs.gauge_set("memory.resident_bytes", totals["resident"])
        obs.gauge_set("memory.compressed_bytes", totals["compressed"])
        obs.gauge_set("memory.spilled_bytes", totals["spilled"])
        obs.gauge_max("memory.peak_charged_bytes", charged)

    def tier_bytes(self, tier: str) -> int:
        with self._lock:
            return self._totals_locked()[tier]

    @property
    def charged_bytes(self) -> int:
        """RAM the governor is answerable for: resident + compressed."""
        with self._lock:
            totals = self._totals_locked()
        return totals["resident"] + totals["compressed"]

    @property
    def peak_charged_bytes(self) -> int:
        with self._lock:
            return self._peak_charged

    def headroom(self) -> Optional[int]:
        """Bytes left under the budget (``None`` = unbounded; may be
        negative while overcommitted)."""
        budget = self.budget_bytes
        if budget is None:
            return None
        return budget - self.charged_bytes

    def would_fit(self, nbytes: int) -> bool:
        """Whether ``nbytes`` more RAM fits without demoting anything.

        The kernel planes gate their dense-plane allocations on this
        (plus their own per-plane ceiling).
        """
        headroom = self.headroom()
        return headroom is None or int(nbytes) <= headroom

    def overcommitted(self) -> bool:
        """True while ``resident + compressed`` exceeds the budget."""
        headroom = self.headroom()
        return headroom is not None and headroom < 0

    # -- pressure ------------------------------------------------------------
    def add_pressure_handler(
        self, handler: Callable[[int], int], priority: int = 0
    ) -> int:
        """Register a demotion hook; lower ``priority`` runs first.

        Returns a handle for :meth:`remove_pressure_handler`.
        """
        with self._lock:
            handle = self._next_handle
            self._next_handle += 1
            self._handlers.append((int(priority), handle, handler))
            self._handlers.sort(key=lambda entry: (entry[0], entry[1]))
        return handle

    def remove_pressure_handler(self, handle: int) -> None:
        with self._lock:
            self._handlers = [
                entry for entry in self._handlers if entry[1] != handle
            ]

    def request(self, nbytes: int = 0) -> bool:
        """Make room for ``nbytes`` more resident bytes, demoting if needed.

        Returns ``True`` when the reservation fits (possibly after
        demotions), ``False`` when the process proceeds overcommitted —
        never raises: a budget is steering, not a wall.  ``request(0)``
        is a pure rebalance back under the budget.
        """
        nbytes = int(nbytes)
        budget = self.budget_bytes
        if budget is None:
            return True
        if self.charged_bytes + nbytes <= budget:
            return True
        with self._lock:
            handlers = list(self._handlers)
        for _, _, handler in handlers:
            deficit = self.charged_bytes + nbytes - budget
            if deficit <= 0:
                return True
            try:
                handler(deficit)
            except Exception:  # noqa: BLE001 — a bad handler must not
                continue  # turn an allocation into a crash
        if self.charged_bytes + nbytes <= budget:
            return True
        # last resort: charged bytes may belong to holders that are
        # unreachable but sitting in collection cycles — their
        # finalizers credit the ledger, so one sweep can clear phantom
        # charge no handler can reach
        gc.collect()
        if self.charged_bytes + nbytes <= budget:
            return True
        with self._lock:
            self._overcommits += 1
        obs.counter_add("memory.overcommits", 1)
        return False

    # -- tier-movement bookkeeping -------------------------------------------
    def note_demotion(self, count: int = 1) -> None:
        with self._lock:
            self._demotions += int(count)
        obs.counter_add("memory.demotions", count)

    def note_promotion(self, count: int = 1) -> None:
        with self._lock:
            self._promotions += int(count)
        obs.counter_add("memory.promotions", count)

    def exhausted_tier(self) -> str:
        """Which tier ran out when an OOM surfaced (breaker forensics).

        ``"host"`` with no budget (the host itself was the limit);
        otherwise the deepest tier the governor had already pushed data
        into — if chunks were spilling and the host *still* OOMed, the
        disk tier was the last line, not the arena.
        """
        if self.budget_bytes is None:
            return "host"
        with self._lock:
            totals = self._totals_locked()
        for tier in reversed(TIERS):
            if totals[tier] > 0:
                return tier
        return "resident"

    # -- introspection -------------------------------------------------------
    def snapshot(self) -> dict:
        """The ledger as a dict (health endpoints, debugging)."""
        budget = self.budget_bytes
        with self._lock:
            totals = self._totals_locked()
            accounts = {
                name: dict(entry) for name, entry in self._accounts.items()
            }
            peak = self._peak_charged
            demotions = self._demotions
            promotions = self._promotions
            overcommits = self._overcommits
        return {
            "budget_bytes": budget,
            "resident_bytes": totals["resident"],
            "compressed_bytes": totals["compressed"],
            "spilled_bytes": totals["spilled"],
            "peak_charged_bytes": peak,
            "demotions": demotions,
            "promotions": promotions,
            "overcommits": overcommits,
            "accounts": accounts,
        }


#: the process-wide governor every subsystem registers with
_GOVERNOR = MemoryBudget()


def governor() -> MemoryBudget:
    """The process-wide :class:`MemoryBudget`."""
    return _GOVERNOR


def reset_governor() -> MemoryBudget:
    """Replace the process governor with a fresh one (tests only).

    Subsystems that cached handler registrations re-register lazily,
    so a reset between tests cannot leak pressure handlers (or their
    strong references) across test cases.
    """
    global _GOVERNOR
    _GOVERNOR = MemoryBudget()
    return _GOVERNOR


@contextmanager
def budget_scope(nbytes: Optional[int]):
    """Pin the governor's budget for a block, restoring the prior state.

    How a per-run ``IMMOptions(memory_budget_mb=)`` applies: the budget
    is process-wide state (demotion has to see every account), so a run
    that carries its own budget installs it for the duration and puts
    the previous explicit-or-env resolution back afterwards.
    """
    gov = governor()
    with gov._lock:
        prior = (gov._explicit, gov._explicit_set)
    gov.set_budget(nbytes)
    try:
        yield gov
    finally:
        with gov._lock:
            gov._explicit, gov._explicit_set = prior
