"""``repro.memory`` — the process-wide memory governor.

Every byte-holding subsystem of the library registers its footprint
with one shared accountant, the :class:`~repro.memory.budget.MemoryBudget`
governor (:func:`governor`):

* the :class:`~repro.shm.arena.ChunkArena` and the warm-start
  :class:`~repro.rrr.store.RRRStore`'s chunk payloads (account
  ``rrr.chunks`` / the concat cache ``rrr.concat``);
* the dense kernel planes —
  :class:`~repro.kernels.planes.VisitedPlane` /
  :class:`~repro.kernels.planes.MembershipPlane` (account
  ``kernels.planes``);
* the serving tier's :class:`~repro.service.cache.SubstrateTable` and
  :class:`~repro.service.cache.ExactResultCache` (accounts
  ``service.substrates`` / ``service.results``).

With no budget configured the governor is a pure ledger (the gauges
still publish).  With a budget — ``IMMOptions(memory_budget_mb=)``,
``REPRO_MEMORY_BUDGET_MB``, or ``--memory-budget-mb``; the pre-PR-10
``REPRO_KERNEL_BUDGET_MB`` is kept as an alias — reservations that
would overshoot trigger *demotion* through registered pressure
handlers: hot RRR chunks compress in place
(:mod:`repro.memory.tiers`, bit-identical bitpack round-trip), then
spill to disk in the atomic-npz checkpoint format, and idle service
state is trimmed.  Results are bit-identical at every budget — only
wall-clock and residency change.
"""

from repro.memory.budget import (
    ENV_MEMORY_BUDGET_MB,
    MemoryBudget,
    budget_scope,
    governor,
    reset_governor,
)

__all__ = [
    "ENV_MEMORY_BUDGET_MB",
    "MemoryBudget",
    "budget_scope",
    "governor",
    "reset_governor",
    "HOT",
    "COMPRESSED",
    "SPILLED",
    "CompressedChunk",
    "TieredChunk",
]

_TIER_EXPORTS = ("HOT", "COMPRESSED", "SPILLED", "CompressedChunk", "TieredChunk")


def __getattr__(name: str):
    # repro.memory.tiers needs the RRR collection/trace types, which sit
    # on the other side of repro.kernels -> repro.memory.budget in the
    # import graph; loading it lazily keeps the budget importable from
    # anywhere without a cycle
    if name in _TIER_EXPORTS:
        from repro.memory import tiers

        return getattr(tiers, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
