"""Tiered storage for warm-start RRR chunks (hot / compressed / spilled).

The warm-start :class:`~repro.rrr.store.RRRStore` keeps every chunk it
ever sampled — that is the whole point of the store — which makes its
chunk list the library's largest unbounded byte-holder.  Tiering keeps
the *stream* (chunks stay pure functions of ``(key, j)``) while letting
the *representation* move down a cost ladder under memory pressure:

``hot``
    Plain arrays — private heap or a shared-memory
    :class:`~repro.shm.arena.ChunkArena` segment.  Zero-cost to read.
``compressed``
    Every column bitpacked in RAM via :mod:`repro.encoding.bitpack`
    (the paper's log encoding): ``flat`` at ``bit_length(max vertex)``
    bits, ``offsets`` delta-encoded to sizes first, trace columns
    likewise, ``kept_mask`` at one bit per attempt.  Decode-on-touch,
    and the round-trip is bit-identical by construction — the unpack
    of a pack is the original array.
``spilled``
    The chunk's arrays live only on disk, in exactly the atomic-npz
    format of :mod:`repro.resilience.checkpoint` (a spilled chunk *is*
    a chunk checkpoint).  Stores that already checkpoint spill for
    free: the bytes are on disk before pressure ever asks.

Demotions and promotions are reported to the process governor
(:func:`repro.memory.budget.governor`) so ``memory.{resident,
compressed,spilled}_bytes`` and ``memory.{demotions,promotions}``
always reflect where the stream physically lives.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.encoding.bitpack import PackedArray, pack
from repro.memory.budget import governor
from repro.rrr.collection import RRRCollection
from repro.rrr.trace import SampleTrace
from repro.utils.errors import ValidationError

HOT, COMPRESSED, SPILLED = "hot", "compressed", "spilled"

#: the governor account tiered chunks report under
ACCOUNT = "rrr.chunks"


def _pack64(values: np.ndarray) -> PackedArray:
    """Bitpack a non-negative integer column into 64-bit containers."""
    return pack(np.asarray(values, dtype=np.int64), container_bits=64)


def chunk_nbytes(collection: RRRCollection, trace: SampleTrace) -> int:
    """Hot bytes of one chunk: collection arrays plus trace columns."""
    total = collection.flat.nbytes + collection.offsets.nbytes
    total += collection.counts.nbytes
    if collection.sources is not None:
        total += collection.sources.nbytes
    total += trace.sizes.nbytes + trace.rounds.nbytes
    total += trace.edges_examined.nbytes + trace.kept_mask.nbytes
    total += trace.sources.nbytes
    return int(total)


@dataclass
class CompressedChunk:
    """One chunk's columns, bitpacked in RAM (decode restores them
    bit for bit)."""

    n: int
    num_sets: int
    flat: PackedArray
    sizes: PackedArray  # delta-encoded offsets
    sources: Optional[PackedArray]
    trace_sizes: PackedArray
    trace_rounds: PackedArray
    trace_edges: PackedArray
    trace_kept: PackedArray  # 1 bit per attempted set
    trace_sources: PackedArray
    raw_singletons: int
    resilience: object

    @property
    def nbytes(self) -> int:
        cols = [
            self.flat, self.sizes, self.trace_sizes, self.trace_rounds,
            self.trace_edges, self.trace_kept, self.trace_sources,
        ]
        if self.sources is not None:
            cols.append(self.sources)
        return sum(c.nbytes_packed for c in cols)

    @classmethod
    def encode(
        cls, collection: RRRCollection, trace: SampleTrace
    ) -> "CompressedChunk":
        return cls(
            n=collection.n,
            num_sets=collection.num_sets,
            flat=_pack64(collection.flat),
            sizes=_pack64(np.diff(collection.offsets)),
            sources=(
                None if collection.sources is None
                else _pack64(collection.sources)
            ),
            trace_sizes=_pack64(trace.sizes),
            trace_rounds=_pack64(trace.rounds),
            trace_edges=_pack64(trace.edges_examined),
            trace_kept=pack(
                trace.kept_mask.astype(np.int64), n_bits=1, container_bits=64
            ),
            trace_sources=_pack64(trace.sources),
            raw_singletons=int(trace.raw_singletons),
            resilience=trace.resilience,
        )

    def decode(self) -> tuple[RRRCollection, SampleTrace]:
        sizes = self.sizes.unpack()
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        collection = RRRCollection(
            self.flat.unpack().astype(np.int32),
            offsets,
            self.n,
            sources=(
                None if self.sources is None
                else self.sources.unpack()
            ),
            check=False,
        )
        trace = SampleTrace(
            sizes=self.trace_sizes.unpack(),
            rounds=self.trace_rounds.unpack(),
            edges_examined=self.trace_edges.unpack(),
            kept_mask=self.trace_kept.unpack().astype(bool),
            raw_singletons=self.raw_singletons,
            sources=self.trace_sources.unpack(),
            resilience=self.resilience,
        )
        return collection, trace


class TieredChunk:
    """One RRR chunk whose representation migrates across tiers.

    ``touch`` stamps an LRU clock the owning store uses to demote cold
    chunks first; reads either *promote* (the decoded arrays become the
    hot representation again) or stay *transient* (decode, hand out,
    keep the cheap tier) — a full-store materialization under a tight
    budget streams transient decodes so residency never spikes to the
    hot footprint.
    """

    _clock = 0  # class-wide LRU tick; ints are atomic enough under the GIL

    def __init__(
        self,
        index: int,
        collection: RRRCollection,
        trace: SampleTrace,
        spill_path: Optional[Path] = None,
        arena_release: Optional[Callable[[RRRCollection], int]] = None,
        on_disk: bool = False,
    ):
        self.index = int(index)
        self.state = HOT
        self.n = int(collection.n)
        self.num_sets = collection.num_sets
        self.nbytes_hot = chunk_nbytes(collection, trace)
        self._hot: Optional[tuple[RRRCollection, SampleTrace]] = (
            collection, trace
        )
        self._compressed: Optional[CompressedChunk] = None
        self._spill_path = spill_path
        self._on_disk = bool(on_disk)  # already checkpointed => free spill
        self._spilled_nbytes = 0
        # arena-backed hot chunks are accounted by the arena itself;
        # heap-backed ones land on the chunk account here
        self._arena_release = arena_release
        self._hot_accounted = 0 if arena_release is not None else self.nbytes_hot
        if self._hot_accounted:
            governor().account(ACCOUNT, "resident", self._hot_accounted)
        self.touch()

    # -- LRU -----------------------------------------------------------------
    def touch(self) -> None:
        TieredChunk._clock += 1
        self.last_touch = TieredChunk._clock

    # -- reads ---------------------------------------------------------------
    def get(self, promote: bool = True) -> tuple[RRRCollection, SampleTrace]:
        """The chunk's arrays, decoding/loading as needed.

        ``promote=True`` re-caches the decoded arrays as the hot tier
        (and accounts the move); ``promote=False`` is a streaming read
        that leaves the chunk wherever it lives.
        """
        self.touch()
        if self._hot is not None:
            return self._hot
        value = self._decode()
        governor().note_promotion()
        if promote:
            self._drop_cheap_tiers()
            self._hot = value
            self._hot_accounted = self.nbytes_hot
            governor().account(ACCOUNT, "resident", self._hot_accounted)
            self.state = HOT
        return value

    def _decode(self) -> tuple[RRRCollection, SampleTrace]:
        if self._compressed is not None:
            return self._compressed.decode()
        if self._spill_path is None or not self._spill_path.exists():
            raise ValidationError(
                f"tiered chunk {self.index} has no surviving representation"
            )
        from repro.resilience.checkpoint import _load_chunk

        return _load_chunk(self._spill_path, self.n)

    # -- demotion ------------------------------------------------------------
    def demote(self) -> int:
        """Move one tier down; returns the RAM bytes this freed.

        ``hot -> compressed`` packs the columns and releases the hot
        arrays (unlinking the arena segment when the chunk lived in
        one); ``compressed -> spilled`` writes the checkpoint-format
        npz (skipped when the store already checkpointed this chunk)
        and drops the packed columns.  Spilled chunks have nothing
        left to shed.
        """
        if self.state == HOT and self._hot is not None:
            collection, trace = self._hot
            self._compressed = CompressedChunk.encode(collection, trace)
            packed_bytes = self._compressed.nbytes
            governor().account(ACCOUNT, "compressed", packed_bytes)
            freed = self.nbytes_hot
            self._hot = None
            if self._hot_accounted:
                governor().account(ACCOUNT, "resident", -self._hot_accounted)
                self._hot_accounted = 0
            if self._arena_release is not None:
                self._arena_release(collection)
                self._arena_release = None
            self.state = COMPRESSED
            governor().note_demotion()
            return max(0, freed - packed_bytes)
        if self.state == COMPRESSED and self._compressed is not None:
            if self._spill_path is None:
                return 0  # nowhere to spill; stay compressed
            if not self._on_disk:
                collection, trace = self._compressed.decode()
                from repro.resilience.checkpoint import save_chunk

                save_chunk(
                    self._spill_path.parent, self.index, collection, trace
                )
                self._on_disk = True
            freed = self._compressed.nbytes
            self._spilled_nbytes = self.nbytes_hot
            governor().account(ACCOUNT, "compressed", -freed)
            governor().account(ACCOUNT, "spilled", self._spilled_nbytes)
            self._compressed = None
            self.state = SPILLED
            governor().note_demotion()
            return freed
        return 0

    def _drop_cheap_tiers(self) -> None:
        """Release compressed/spilled accounting on promotion to hot.

        The spill file itself stays on disk — a later demotion reuses
        it instead of re-writing — but the governor stops counting it
        once the hot tier is authoritative again.
        """
        if self._compressed is not None:
            governor().account(ACCOUNT, "compressed", -self._compressed.nbytes)
            self._compressed = None
        if self._spilled_nbytes:
            governor().account(ACCOUNT, "spilled", -self._spilled_nbytes)
            self._spilled_nbytes = 0

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Release every tier's accounting (store teardown); idempotent."""
        if self._hot is not None:
            collection, _ = self._hot
            self._hot = None
            if self._hot_accounted:
                governor().account(ACCOUNT, "resident", -self._hot_accounted)
                self._hot_accounted = 0
            if self._arena_release is not None:
                self._arena_release(collection)
                self._arena_release = None
        self._drop_cheap_tiers()

    def __del__(self):  # pragma: no cover - GC backstop
        # a chunk dropped without close() (a store that was simply
        # garbage-collected) must still credit the ledger, or the
        # governor steers against bytes that no longer exist
        try:
            self.close()
        except Exception:
            pass
