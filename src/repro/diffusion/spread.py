"""Influence-spread estimation ``E[I(S)]``.

Monte-Carlo forward simulation for general graphs, plus an exact
enumeration of the IC live-edge distribution for very small graphs, used
as the oracle in unit tests.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.diffusion.ic import simulate_ic
from repro.diffusion.lt import simulate_lt
from repro.graphs.csc import DirectedGraph
from repro.utils.errors import ValidationError
from repro.utils.rng import as_generator

_SIMULATORS = {"IC": simulate_ic, "LT": simulate_lt}


def estimate_spread(
    graph: DirectedGraph,
    seeds,
    model: str = "IC",
    num_samples: int = 1000,
    rng=None,
) -> float:
    """Monte-Carlo estimate of the expected influence of ``seeds``.

    Averages the number of activated vertices over ``num_samples``
    independent forward cascades under ``model`` ("IC" or "LT").
    """
    model = model.upper()
    if model not in _SIMULATORS:
        raise ValidationError(f"unknown diffusion model {model!r}; choose IC or LT")
    if num_samples < 1:
        raise ValidationError("num_samples must be >= 1")
    gen = as_generator(rng)
    simulate = _SIMULATORS[model]
    total = 0
    for _ in range(num_samples):
        total += int(simulate(graph, seeds, gen).sum())
    return total / num_samples


def exact_spread_ic(graph: DirectedGraph, seeds) -> float:
    """Exact ``E[I(S)]`` under IC by enumerating all live-edge worlds.

    Sums over every subset of edges weighted by its probability; only
    feasible for ``m <= ~20`` edges, which is exactly the regime the unit
    tests exercise it in.
    """
    if graph.weights is None:
        raise ValidationError("exact_spread_ic requires edge weights")
    if graph.m > 20:
        raise ValidationError(
            f"exact enumeration over 2^{graph.m} live-edge worlds is infeasible"
        )
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    src = graph.indices.astype(np.int64)
    dst = np.repeat(np.arange(graph.n, dtype=np.int64), graph.in_degrees())
    p = graph.weights
    expected = 0.0
    for world in product((0, 1), repeat=graph.m):
        live = np.asarray(world, dtype=bool)
        prob = float(np.prod(np.where(live, p, 1.0 - p)))
        if prob == 0.0:
            continue
        # BFS on the live subgraph
        active = np.zeros(graph.n, dtype=bool)
        active[seeds] = True
        frontier = seeds
        while frontier.size:
            mask = live & np.isin(src, frontier)
            nxt = np.unique(dst[mask & ~active[dst]])
            active[nxt] = True
            frontier = nxt
        expected += prob * float(active.sum())
    return expected
