"""Forward diffusion simulators (IC and LT) and influence-spread estimation.

These are the ground-truth processes that IMM's reverse sampling
approximates; the library uses them to verify that every engine's seed set
achieves the same expected influence (the paper's §4.1 quality claim) and
to power the examples.
"""

from repro.diffusion.ic import simulate_ic
from repro.diffusion.lt import simulate_lt
from repro.diffusion.spread import estimate_spread, exact_spread_ic

__all__ = ["estimate_spread", "exact_spread_ic", "simulate_ic", "simulate_lt"]
