"""Forward Independent Cascade simulation (vectorized frontier BFS).

IC semantics (§2.1): every vertex activated at step ``t`` gets exactly one
chance to activate each still-inactive out-neighbor ``v`` with probability
``p_uv``; the process stops when a step activates nobody.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csc import DirectedGraph
from repro.utils.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.segments import segmented_arange


def simulate_ic(graph: DirectedGraph, seeds, rng=None) -> np.ndarray:
    """Run one IC cascade from ``seeds``; returns the final active mask.

    Each out-edge of an activated vertex is attempted exactly once (even
    when several frontier vertices point at the same target, each edge is
    an independent Bernoulli trial, matching the model).
    """
    if graph.weights is None:
        raise ValidationError("simulate_ic requires IC edge weights (assign_ic_weights)")
    gen = as_generator(rng)
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if seeds.size and (seeds.min() < 0 or seeds.max() >= graph.n):
        raise ValidationError("seed ids out of range")
    csr_indptr, csr_indices, csr_weights = graph.csr()
    active = np.zeros(graph.n, dtype=bool)
    active[seeds] = True
    frontier = seeds
    while frontier.size:
        starts = csr_indptr[frontier]
        lengths = csr_indptr[frontier + 1] - starts
        edge_idx = segmented_arange(starts, lengths)
        if edge_idx.size == 0:
            break
        targets = csr_indices[edge_idx].astype(np.int64)
        hit = gen.random(edge_idx.size) <= csr_weights[edge_idx]
        cand = targets[hit & ~active[targets]]
        frontier = np.unique(cand)
        active[frontier] = True
    return active
