"""Forward Linear Threshold simulation (vectorized weight accumulation).

LT semantics (§2.1): each vertex draws a threshold ``tau_v ~ U[0,1]`` once;
``v`` activates as soon as the summed weight of its activated in-neighbors
reaches ``tau_v``.  The incremental form below pushes each newly-activated
vertex's out-weights into an accumulator, which equals the sum over
activated in-neighbors at every step.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csc import DirectedGraph
from repro.utils.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.segments import segmented_arange


def simulate_lt(graph: DirectedGraph, seeds, rng=None, thresholds=None) -> np.ndarray:
    """Run one LT cascade from ``seeds``; returns the final active mask.

    ``thresholds`` may be supplied (shape ``(n,)``) for deterministic
    testing; otherwise they are drawn uniformly per call.
    """
    if graph.weights is None:
        raise ValidationError("simulate_lt requires LT edge weights (assign_lt_weights)")
    gen = as_generator(rng)
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if seeds.size and (seeds.min() < 0 or seeds.max() >= graph.n):
        raise ValidationError("seed ids out of range")
    if thresholds is None:
        # U(0,1]: a threshold of exactly 0 would self-activate isolated
        # vertices, which the model excludes (activation needs weight >= tau > 0)
        thresholds = 1.0 - gen.random(graph.n)
    else:
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if thresholds.shape != (graph.n,):
            raise ValidationError("thresholds must have shape (n,)")

    csr_indptr, csr_indices, csr_weights = graph.csr()
    active = np.zeros(graph.n, dtype=bool)
    active[seeds] = True
    accum = np.zeros(graph.n, dtype=np.float64)
    frontier = seeds
    while frontier.size:
        starts = csr_indptr[frontier]
        lengths = csr_indptr[frontier + 1] - starts
        edge_idx = segmented_arange(starts, lengths)
        if edge_idx.size == 0:
            break
        targets = csr_indices[edge_idx].astype(np.int64)
        np.add.at(accum, targets, csr_weights[edge_idx])
        cand = np.unique(targets)
        newly = cand[~active[cand] & (accum[cand] >= thresholds[cand])]
        active[newly] = True
        frontier = newly
    return active
