"""Span-based tracing: nested wall-clock timing of named code regions.

A :class:`Tracer` hands out context managers via :meth:`Tracer.span`;
entering a span pushes it on a stack (so spans nest lexically) and
exiting records a :class:`SpanRecord` carrying the full slash-separated
path, the nesting depth, and start/duration in seconds.

The default installed tracer is a :class:`NullTracer` whose ``span``
returns one shared, allocation-free context manager — the zero-cost
path every hot loop takes when profiling is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class SpanRecord:
    """One completed span."""

    name: str  # leaf name, e.g. "imm.estimation.phase_1"
    path: str  # full nesting path, e.g. "imm.run/imm.estimation.phase_1"
    depth: int  # 0 for root spans
    start: float  # clock value at entry (perf_counter seconds)
    duration: float  # seconds


class _ActiveSpan:
    """Context manager for one live span of a :class:`Tracer`."""

    __slots__ = ("_tracer", "_name", "_path", "_depth", "_start")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        tracer._stack.append(self._name)
        self._depth = len(tracer._stack) - 1
        self._path = "/".join(tracer._stack)
        self._start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        end = tracer._clock()
        tracer._stack.pop()
        tracer.records.append(
            SpanRecord(
                name=self._name,
                path=self._path,
                depth=self._depth,
                start=self._start,
                duration=end - self._start,
            )
        )
        return False


class Tracer:
    """Collects :class:`SpanRecord` entries in completion order.

    ``clock`` is injectable (defaults to :func:`time.perf_counter`) so
    tests can drive deterministic timings.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._stack: list[str] = []
        self.records: list[SpanRecord] = []

    def span(self, name: str) -> _ActiveSpan:
        """A context manager timing the enclosed region as ``name``."""
        return _ActiveSpan(self, name)

    def reset(self) -> None:
        self._stack.clear()
        self.records.clear()


class _NullSpan:
    """Shared no-op context manager; never allocates per call."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: records nothing, allocates nothing."""

    __slots__ = ()

    #: always-empty record list (shared tuple, satisfies the read API)
    records: tuple = ()

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def reset(self) -> None:  # pragma: no cover - trivially nothing
        pass
