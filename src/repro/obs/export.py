"""Profile exporters: human-readable table and JSON (dict / lines).

A :class:`ProfileReport` is the frozen result of one profiled run —
span records plus a metrics snapshot — detached from the live tracer
so it survives :func:`repro.obs.uninstall`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.tracer import SpanRecord


@dataclass
class ProfileReport:
    """Everything one profiled run recorded."""

    spans: list[SpanRecord] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)

    def span_names(self) -> list[str]:
        return [s.name for s in self.spans]

    def find_spans(self, name: str) -> list[SpanRecord]:
        """All spans whose leaf name equals ``name``."""
        return [s for s in self.spans if s.name == name]

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span named ``name``."""
        return sum(s.duration for s in self.find_spans(name))


def build_report(tracer, metrics) -> ProfileReport:
    """Snapshot a live tracer + registry into a detached report."""
    snap = metrics.snapshot()
    return ProfileReport(
        spans=list(tracer.records),
        counters=snap["counters"],
        gauges=snap["gauges"],
        histograms=snap["histograms"],
    )


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.3f}"
    return f"{int(value):,}"


def render_table(report: ProfileReport) -> str:
    """A profile as text: the span tree, then counters/gauges/histograms."""
    lines = ["== spans =============================================="]
    if report.spans:
        width = max(2 * s.depth + len(s.name) for s in report.spans)
        for s in sorted(report.spans, key=lambda r: (r.start, r.depth)):
            label = "  " * s.depth + s.name
            lines.append(f"{label:<{width}}  {1e3 * s.duration:>10.3f} ms")
    else:
        lines.append("(no spans recorded)")
    if report.counters:
        lines.append("== counters ===========================================")
        width = max(len(k) for k in report.counters)
        for name in sorted(report.counters):
            lines.append(f"{name:<{width}}  {_fmt_value(report.counters[name])}")
    if report.gauges:
        lines.append("== gauges =============================================")
        width = max(len(k) for k in report.gauges)
        for name in sorted(report.gauges):
            lines.append(f"{name:<{width}}  {_fmt_value(report.gauges[name])}")
    if report.histograms:
        lines.append("== histograms =========================================")
        for name in sorted(report.histograms):
            h = report.histograms[name]
            lines.append(
                f"{name}  count={h['count']}  mean={h['mean']:.2f}  "
                f"min={h['min']:.2f}  max={h['max']:.2f}"
            )
    return "\n".join(lines)


def to_json(report: ProfileReport) -> dict:
    """A JSON-serializable dict of the full report."""
    return {
        "spans": [
            {
                "name": s.name,
                "path": s.path,
                "depth": s.depth,
                "start": s.start,
                "duration_s": s.duration,
            }
            for s in report.spans
        ],
        "counters": dict(report.counters),
        "gauges": dict(report.gauges),
        "histograms": {k: dict(v) for k, v in report.histograms.items()},
    }


def write_json(report: ProfileReport, path) -> None:
    """Write the report as one indented JSON document."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_json(report), fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_jsonl(report: ProfileReport, path) -> None:
    """Write the report as JSON lines (one record per span/metric), the
    append-friendly format the ``benchmarks/`` trajectory consumes."""
    with open(path, "w", encoding="utf-8") as fh:
        for s in report.spans:
            fh.write(json.dumps({
                "kind": "span", "name": s.name, "path": s.path,
                "depth": s.depth, "start": s.start, "duration_s": s.duration,
            }) + "\n")
        for name, value in sorted(report.counters.items()):
            fh.write(json.dumps({"kind": "counter", "name": name, "value": value}) + "\n")
        for name, value in sorted(report.gauges.items()):
            fh.write(json.dumps({"kind": "gauge", "name": name, "value": value}) + "\n")
        for name, summary in sorted(report.histograms.items()):
            fh.write(json.dumps({"kind": "histogram", "name": name, **summary}) + "\n")
