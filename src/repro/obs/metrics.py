"""The metrics registry: counters, gauges, and histograms.

* **Counters** accumulate (``rrr.edges_examined``, ``selection.decrements``).
* **Gauges** hold the last value set; :meth:`MetricsRegistry.gauge_max`
  keeps a running maximum instead — how peak byte sizes of the ``flat``
  / ``offsets`` arrays are tracked across IMM's growing sample.
* **Histograms** store raw observations and summarize on demand
  (count / sum / min / max / mean).

:class:`NullMetrics` is the no-op twin installed by default.
"""

from __future__ import annotations

import math


class MetricsRegistry:
    """In-memory metric store; all values are plain Python numbers."""

    __slots__ = ("counters", "gauges", "_observations")

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._observations: dict[str, list[float]] = {}

    # -- write paths ---------------------------------------------------------
    def counter_add(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        prev = self.gauges.get(name, -math.inf)
        if value > prev:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        self._observations.setdefault(name, []).append(float(value))

    # -- read paths ----------------------------------------------------------
    def histogram_summary(self, name: str) -> dict[str, float]:
        obs = self._observations.get(name, [])
        if not obs:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": len(obs),
            "sum": sum(obs),
            "min": min(obs),
            "max": max(obs),
            "mean": sum(obs) / len(obs),
        }

    def histograms(self) -> dict[str, dict[str, float]]:
        return {name: self.histogram_summary(name) for name in self._observations}

    def snapshot(self) -> dict:
        """A JSON-ready view of everything recorded."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": self.histograms(),
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self._observations.clear()


class NullMetrics:
    """The disabled registry: every write is a no-op, every read empty."""

    __slots__ = ()

    counters: dict = {}
    gauges: dict = {}

    def counter_add(self, name: str, value: float = 1) -> None:
        pass

    def gauge_set(self, name: str, value: float) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def histogram_summary(self, name: str) -> dict[str, float]:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}

    def histograms(self) -> dict[str, dict[str, float]]:
        return {}

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:  # pragma: no cover - trivially nothing
        pass
