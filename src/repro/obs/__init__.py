"""Observability: span tracing, metrics, and profile exporters.

The library's hot paths call the module-level hooks below
(``obs.span``, ``obs.counter_add``, ...) unconditionally.  By default
those route to no-op singletons — a shared context manager and a
write-discarding registry — so instrumentation costs nothing when
profiling is off.  :func:`install` swaps in live collectors for the
duration of a measured run:

    from repro import obs

    handle = obs.install()
    result = run_imm(graph, k, eps, rng=0)
    report = obs.report()
    obs.uninstall()
    print(obs.render_table(report))

or, scoped::

    with obs.profiled() as handle:
        run_imm(...)
    print(obs.render_table(handle.report()))

``run_imm(..., profile=True)`` wraps exactly this and attaches the
report to ``IMMResult.profile``; the CLI's ``--profile`` flag prints it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs.export import (
    ProfileReport,
    build_report,
    render_table,
    to_json,
    write_json,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.tracer import NullTracer, SpanRecord, Tracer

__all__ = [
    "MetricsRegistry",
    "NullMetrics",
    "NullTracer",
    "ProfileReport",
    "SpanRecord",
    "Tracer",
    "counter_add",
    "current_metrics",
    "current_tracer",
    "enabled",
    "gauge_max",
    "gauge_set",
    "install",
    "observe",
    "profiled",
    "render_table",
    "report",
    "span",
    "to_json",
    "uninstall",
    "write_json",
    "write_jsonl",
]

_NULL_TRACER = NullTracer()
_NULL_METRICS = NullMetrics()


@dataclass
class ObsHandle:
    """What :func:`install` returned; snapshot with :meth:`report`."""

    tracer: Tracer
    metrics: MetricsRegistry

    def report(self) -> ProfileReport:
        return build_report(self.tracer, self.metrics)


class _ObsState:
    __slots__ = ("tracer", "metrics")

    def __init__(self):
        self.tracer = _NULL_TRACER
        self.metrics = _NULL_METRICS


_state = _ObsState()


def enabled() -> bool:
    """True when a live tracer is installed."""
    return _state.tracer is not _NULL_TRACER


def install(tracer: Tracer | None = None, metrics: MetricsRegistry | None = None) -> ObsHandle:
    """Swap in live collectors (fresh ones by default) and return them."""
    _state.tracer = tracer if tracer is not None else Tracer()
    _state.metrics = metrics if metrics is not None else MetricsRegistry()
    return ObsHandle(tracer=_state.tracer, metrics=_state.metrics)


def uninstall() -> None:
    """Restore the no-op collectors."""
    _state.tracer = _NULL_TRACER
    _state.metrics = _NULL_METRICS


@contextmanager
def profiled(tracer: Tracer | None = None, metrics: MetricsRegistry | None = None):
    """Install live collectors for the enclosed block, then restore."""
    handle = install(tracer=tracer, metrics=metrics)
    try:
        yield handle
    finally:
        uninstall()


def report() -> ProfileReport:
    """Snapshot whatever the currently installed collectors hold."""
    return build_report(_state.tracer, _state.metrics)


def current_tracer():
    return _state.tracer


def current_metrics():
    return _state.metrics


# -- hot-path hooks (no-ops unless installed) -------------------------------
def span(name: str):
    """Context manager timing ``name`` on the installed tracer."""
    return _state.tracer.span(name)


def counter_add(name: str, value: float = 1) -> None:
    _state.metrics.counter_add(name, value)


def gauge_set(name: str, value: float) -> None:
    _state.metrics.gauge_set(name, value)


def gauge_max(name: str, value: float) -> None:
    _state.metrics.gauge_max(name, value)


def observe(name: str, value: float) -> None:
    _state.metrics.observe(name, value)
