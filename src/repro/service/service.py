"""`InfluenceService`: the asynchronous influence-query serving tier.

Every caller used to drive :func:`~repro.imm.imm.run_imm` directly, so
concurrent queries against the same graph each paid their own theta
estimation and sampling.  The service turns the shareable substrate the
library already has — prefix-deterministic
:class:`~repro.rrr.store.RRRStore` streams and the persistent
:class:`~repro.imm.coverage.CoverageIndex` — into a serving discipline:

* queries are **admitted** through a bounded scheduler
  (:class:`~repro.service.scheduler.QueryScheduler`): limited in-flight
  work, limited queue depth, fail-fast
  :class:`~repro.utils.errors.ServiceOverloadedError` backpressure;
* compatible queries — same coalescing key (graph fingerprint, model,
  elimination, entropy, fan-out/batch geometry) — are **coalesced**
  onto one substrate: one ``RRRStore.ensure(max θ)`` stream and one
  coverage index, so a burst of ``(k, ε)`` variants costs O(max θ)
  sampling total instead of O(Σθ);
* answers come out of a **multi-tier cache**
  (:mod:`repro.service.cache`): exact repeats are served from the
  result LRU without touching a sampler, new ``(k, ε)`` cells against a
  warm substrate reuse the indexed RRR prefix and only re-run greedy
  selection.

Determinism is inherited, not re-proved: a substrate's stream is a pure
function of its key, so every served seed set is bit-identical to a
direct ``run_imm`` against a fresh store with the same identity —
coalescing, caching, eviction, retries, and thread scheduling are all
invisible in the results.

Resilience: query execution runs under the library's supervised
sampling pipeline (each query's ``IMMOptions.resilience``), so a
crashed or hung worker *pool* degrades that query (retries, then serial
fallback), and a query that still fails fails *its future* only — the
service, its workers, and its caches keep serving.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Optional, Union

from repro import obs
from repro.graphs.csc import DirectedGraph
from repro.imm.imm import IMMResult, run_imm
from repro.service.cache import ExactResultCache, SubstrateTable
from repro.service.options import ServiceOptions
from repro.service.query import InfluenceQuery, QueryOutcome
from repro.service.scheduler import QueryScheduler, ScheduledJob
from repro.utils.errors import ServiceClosedError, ValidationError


class InfluenceService:
    """A long-lived server of influence-maximization queries.

    Usage::

        service = InfluenceService(ServiceOptions(max_inflight=4))
        service.register_graph("wv", graph)
        future = service.submit(InfluenceQuery("wv", k=10, epsilon=0.2))
        outcome = future.result()        # QueryOutcome
        print(outcome.seeds, outcome.cache_tier)

    ``query()`` is the blocking convenience wrapper.  The service is
    thread-safe: any number of client threads may submit concurrently.
    """

    def __init__(self, options: Optional[ServiceOptions] = None):
        self.options = options if options is not None else ServiceOptions()
        self._graphs: dict[str, DirectedGraph] = {}
        self._graphs_lock = threading.Lock()
        self._results = ExactResultCache(self.options.exact_cache_size)
        self._substrates = SubstrateTable(self.options.max_substrates)
        self._scheduler = QueryScheduler(
            self.options.max_inflight,
            self.options.max_queue_depth,
            self._execute,
        )
        self._closed = False

    # -- graph registry ------------------------------------------------------
    def register_graph(self, name: str, graph: DirectedGraph) -> None:
        """Register ``graph`` so queries can reference it by ``name``."""
        if graph.weights is None:
            raise ValidationError(
                "service graphs must be weighted (assign_*_weights)"
            )
        with self._graphs_lock:
            self._graphs[str(name)] = graph

    def registered_graphs(self) -> tuple[str, ...]:
        with self._graphs_lock:
            return tuple(self._graphs)

    def _resolve_graph(self, ref: Union[DirectedGraph, str]) -> DirectedGraph:
        if isinstance(ref, DirectedGraph):
            return ref
        with self._graphs_lock:
            graph = self._graphs.get(ref)
        if graph is None:
            raise ValidationError(
                f"unknown graph {ref!r}; registered: "
                f"{sorted(self._graphs) or 'none'}"
            )
        return graph

    # -- querying ------------------------------------------------------------
    def submit(self, query: InfluenceQuery) -> "Future[QueryOutcome]":
        """Admit ``query`` and return a future for its outcome.

        Raises :class:`~repro.utils.errors.ServiceOverloadedError` when
        the queue is full (backpressure — retry later) and
        :class:`~repro.utils.errors.ServiceClosedError` after
        :meth:`close`.  Graph-reference and parameter validation happen
        here, synchronously; execution failures fail the future.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        graph = self._resolve_graph(query.graph)
        if query.k > graph.n:
            raise ValidationError(
                f"k must be in [1, n]={graph.n}, got {query.k}"
            )
        key = query.coalesce_key(graph, self.options.chunk_sets)
        obs.counter_add("service.queries", 1)
        return self._scheduler.submit(ScheduledJob(query=query, key=key))

    def query(self, query: InfluenceQuery,
              timeout: Optional[float] = None) -> QueryOutcome:
        """Blocking submit: admit ``query`` and wait for its outcome."""
        return self.submit(query).result(timeout=timeout)

    # -- execution (scheduler workers land here) -----------------------------
    def _substrate_factory(self, query: InfluenceQuery, graph: DirectedGraph):
        from repro.rrr.store import RRRStore

        def factory():
            return RRRStore(
                graph,
                model=query.options.model,
                eliminate_sources=query.options.eliminate_sources,
                entropy=query.entropy,
                n_jobs=query.options.n_jobs,
                chunk_sets=self.options.chunk_sets,
                batch_size=query.options.batch_size,
                checkpoint_dir=self.options.checkpoint_dir,
                resilience=query.options.resilience,
                data_plane=query.options.data_plane,
            )

        return factory

    def _execute(self, job: ScheduledJob) -> QueryOutcome:
        query = job.query
        start = time.perf_counter()
        with obs.span("service.query"):
            graph = self._resolve_graph(query.graph)
            result_key = query.result_key(graph, self.options.chunk_sets)
            cached = self._results.get(result_key)
            if cached is not None:
                return self._hit(query, cached, "exact", start, job.coalesced)
            substrate, warm = self._substrates.acquire(
                job.key, self._substrate_factory(query, graph)
            )
            try:
                with substrate.lock:
                    # a coalesced sibling may have finished this exact
                    # cell while we waited for the substrate
                    cached = self._results.get(result_key)
                    if cached is not None:
                        return self._hit(
                            query, cached, "exact", start, job.coalesced
                        )
                    assert substrate.store.key() == job.key  # by construction
                    before = substrate.store.num_cached
                    with obs.span("service.run"):
                        result = run_imm(
                            graph,
                            query.k,
                            query.epsilon,
                            options=query.options,
                            store=substrate.store,
                        )
                    sampled = substrate.store.num_cached - before
            finally:
                self._substrates.release(substrate)
            tier = "prefix" if warm and sampled == 0 else "cold"
            if tier == "prefix":
                obs.counter_add("service.cache_hits", 1)
                obs.counter_add("service.cache_hits.prefix", 1)
            obs.counter_add("service.sampled_sets", sampled)
            self._results.put(result_key, result)
            return QueryOutcome(
                query=query,
                result=result,
                cache_tier=tier,
                sampled_sets=sampled,
                seconds=time.perf_counter() - start,
                coalesced=job.coalesced,
            )

    def _hit(self, query: InfluenceQuery, result: IMMResult, tier: str,
             start: float, coalesced: bool) -> QueryOutcome:
        obs.counter_add("service.cache_hits", 1)
        obs.counter_add(f"service.cache_hits.{tier}", 1)
        return QueryOutcome(
            query=query,
            result=result,
            cache_tier=tier,
            sampled_sets=0,
            seconds=time.perf_counter() - start,
            coalesced=coalesced,
        )

    # -- introspection / lifecycle -------------------------------------------
    def stats(self) -> dict:
        """A point-in-time snapshot of the service's state."""
        return {
            "closed": self._closed,
            "queue_depth": self._scheduler.queue_depth,
            "exact_cache_entries": len(self._results),
            "substrates": len(self._substrates),
            "registered_graphs": len(self._graphs),
        }

    def drain(self, timeout: Optional[float] = None) -> None:
        """Wait for every admitted query to finish executing."""
        self._scheduler.drain(timeout)

    def close(self, wait: bool = True) -> None:
        """Stop admitting queries, finish in-flight ones, free caches."""
        if self._closed:
            return
        self._closed = True
        self._scheduler.close(wait=wait)
        self._substrates.close()
        self._results.clear()

    def __enter__(self) -> "InfluenceService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
