"""`InfluenceService`: the asynchronous influence-query serving tier.

Every caller used to drive :func:`~repro.imm.imm.run_imm` directly, so
concurrent queries against the same graph each paid their own theta
estimation and sampling.  The service turns the shareable substrate the
library already has — prefix-deterministic
:class:`~repro.rrr.store.RRRStore` streams and the persistent
:class:`~repro.imm.coverage.CoverageIndex` — into a serving discipline:

* queries are **admitted** through a bounded scheduler
  (:class:`~repro.service.scheduler.QueryScheduler`): limited in-flight
  work, limited queue depth, fail-fast
  :class:`~repro.utils.errors.ServiceOverloadedError` backpressure;
* compatible queries — same coalescing key (graph fingerprint, model,
  elimination, entropy, fan-out/batch geometry) — are **coalesced**
  onto one substrate: one ``RRRStore.ensure(max θ)`` stream and one
  coverage index, so a burst of ``(k, ε)`` variants costs O(max θ)
  sampling total instead of O(Σθ);
* answers come out of a **multi-tier cache**
  (:mod:`repro.service.cache`): exact repeats are served from the
  result LRU without touching a sampler, new ``(k, ε)`` cells against a
  warm substrate reuse the indexed RRR prefix and only re-run greedy
  selection.

Determinism is inherited, not re-proved: a substrate's stream is a pure
function of its key, so every served seed set is bit-identical to a
direct ``run_imm`` against a fresh store with the same identity —
coalescing, caching, eviction, retries, and thread scheduling are all
invisible in the results.

Resilience, beyond the supervised sampling pipeline each query already
runs under (``IMMOptions.resilience``):

* **deadlines** — each query carries a wall-clock budget (its own
  ``deadline`` or the service's ``default_deadline``), enforced
  cooperatively from the queue through the sampling rounds via an
  ambient :class:`~repro.resilience.deadline.Deadline` token; expiry
  fails *that future* with
  :class:`~repro.utils.errors.DeadlineExceededError` and frees its
  worker slot;
* **circuit breakers** — consecutive substrate failures (crashes past
  the retry budget, OOM) open a per-stream breaker
  (:mod:`repro.service.breaker`); while open, queries are answered
  *degraded* from cache (exact, or epsilon-relaxed within
  ``degraded_epsilon_slack``) or fail fast with
  :class:`~repro.utils.errors.CircuitOpenError` — never queued behind
  a substrate that keeps dying;
* **graceful lifecycle** — :meth:`close` fails still-queued futures
  with :class:`~repro.utils.errors.ServiceClosedError` (no admitted
  future is ever stranded), :meth:`drain` reports whether it finished,
  and :meth:`health` snapshots queue depth, breaker states, and
  substrate residency for readiness probes;
* **chaos hooks** — service-scoped ``REPRO_FAULTS`` clauses
  (``slow@queries``, ``oom@substrate``, ``crash@worker-thread``) fire
  deterministically inside the serving tier so every one of these
  paths is exercised in CI.
"""

from __future__ import annotations

import os
import threading
import time
from collections import Counter
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Optional, Union

from repro import obs
from repro.graphs.csc import DirectedGraph
from repro.imm.imm import IMMResult, run_imm
from repro.memory.budget import governor
from repro.resilience.deadline import Deadline, deadline_scope
from repro.resilience.faults import (
    ENV_VAR,
    InjectedFaultError,
    service_injector,
)
from repro.service.breaker import CircuitBreaker
from repro.service.cache import ExactResultCache, SubstrateTable
from repro.service.options import ServiceOptions
from repro.service.query import InfluenceQuery, QueryOutcome
from repro.service.scheduler import QueryScheduler, ScheduledJob
from repro.utils.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ResilienceError,
    ServiceClosedError,
    ServiceOverloadedError,
    ValidationError,
)

#: exceptions that count as *substrate* failures for the circuit breaker
#: (deadline expiry and validation say nothing about substrate health)
_BREAKER_FAILURES = (ResilienceError, MemoryError, InjectedFaultError)


class InfluenceService:
    """A long-lived server of influence-maximization queries.

    Usage::

        service = InfluenceService(ServiceOptions(max_inflight=4))
        service.register_graph("wv", graph)
        future = service.submit(InfluenceQuery("wv", k=10, epsilon=0.2))
        outcome = future.result()        # QueryOutcome
        print(outcome.seeds, outcome.cache_tier)

    ``query()`` is the blocking convenience wrapper.  The service is
    thread-safe: any number of client threads may submit concurrently.
    """

    def __init__(self, options: Optional[ServiceOptions] = None):
        self.options = options if options is not None else ServiceOptions()
        if self.options.memory_budget_mb is not None:
            governor().set_budget(
                int(self.options.memory_budget_mb * 1024 * 1024)
            )
        self._graphs: dict[str, DirectedGraph] = {}
        self._graphs_lock = threading.Lock()
        self._results = ExactResultCache(self.options.exact_cache_size)
        self._substrates = SubstrateTable(self.options.max_substrates)
        self._counters: "Counter[str]" = Counter()
        self._counters_lock = threading.Lock()
        self._breaker = CircuitBreaker(
            self.options.breaker_failure_threshold,
            self.options.breaker_reset_timeout,
            counter=self._count,
        )
        self._faults = service_injector(os.environ.get(ENV_VAR, "").strip())
        self._scheduler = QueryScheduler(
            self.options.max_inflight,
            self.options.max_queue_depth,
            self._execute,
            counter=self._count,
        )
        self._closed = False

    def _count(self, name: str) -> None:
        """Bump a service counter: the obs facade plus a local mirror
        (``health()`` must work even when obs isn't installed)."""
        obs.counter_add(name, 1)
        with self._counters_lock:
            self._counters[name] += 1

    # -- graph registry ------------------------------------------------------
    def register_graph(self, name: str, graph: DirectedGraph) -> None:
        """Register ``graph`` so queries can reference it by ``name``."""
        if graph.weights is None:
            raise ValidationError(
                "service graphs must be weighted (assign_*_weights)"
            )
        with self._graphs_lock:
            self._graphs[str(name)] = graph

    def registered_graphs(self) -> tuple[str, ...]:
        with self._graphs_lock:
            return tuple(self._graphs)

    def _resolve_graph(self, ref: Union[DirectedGraph, str]) -> DirectedGraph:
        if isinstance(ref, DirectedGraph):
            return ref
        with self._graphs_lock:
            graph = self._graphs.get(ref)
        if graph is None:
            raise ValidationError(
                f"unknown graph {ref!r}; registered: "
                f"{sorted(self._graphs) or 'none'}"
            )
        return graph

    # -- querying ------------------------------------------------------------
    def submit(self, query: InfluenceQuery) -> "Future[QueryOutcome]":
        """Admit ``query`` and return a future for its outcome.

        Raises :class:`~repro.utils.errors.ServiceOverloadedError` when
        the queue is full (backpressure — retry later),
        :class:`~repro.utils.errors.ServiceClosedError` after
        :meth:`close`, and :class:`~repro.utils.errors.CircuitOpenError`
        when the query's stream breaker is open and no degraded answer
        is cached.  Graph-reference and parameter validation happen
        here, synchronously; execution failures fail the future.
        """
        future, _ = self._admit(query)
        return future

    def _admit(
        self, query: InfluenceQuery
    ) -> "tuple[Future[QueryOutcome], Deadline]":
        if self._closed:
            raise ServiceClosedError("service is closed")
        graph = self._resolve_graph(query.graph)
        if query.k > graph.n:
            raise ValidationError(
                f"k must be in [1, n]={graph.n}, got {query.k}"
            )
        key = query.coalesce_key(graph, self.options.chunk_sets)
        self._count("service.queries")
        # every query carries a deadline token; an unbounded one still
        # gives query(timeout=) a cooperative cancellation handle
        seconds = (
            query.deadline
            if query.deadline is not None
            else self.options.default_deadline
        )
        deadline = Deadline.after(seconds) if seconds else Deadline.never()
        start = time.perf_counter()

        decision = self._breaker.admit(key)
        if decision == "open":
            return self._serve_degraded(query, graph, key, start), deadline

        # memory admission: consult the governor's ledger before taking
        # on work that allocates.  request(0) is a pure rebalance —
        # demote cold chunks, shed caches — and only if the process is
        # *still* overcommitted afterwards is the query shed/degraded
        # (the PR 8 degraded paths) rather than marched toward an OOM.
        gov = governor()
        if (
            self.options.shed_on_memory_pressure
            and gov.overcommitted()
            and not gov.request(0)
        ):
            self._count("service.memory_pressure")
            if decision == "probe":
                self._breaker.release_probe(key)
            if self.options.degraded_serving:
                degraded = self._degraded_outcome(query, graph, key, start)
                if degraded is not None:
                    self._count("service.memory_pressure.degraded")
                    resolved: "Future[QueryOutcome]" = Future()
                    resolved.set_result(degraded)
                    return resolved, deadline
            self._count("service.memory_pressure.shed")
            raise ServiceOverloadedError(
                "memory budget exhausted "
                f"(charged {gov.charged_bytes} of {gov.budget_bytes} bytes); "
                "retry later or raise --memory-budget-mb"
            )

        job = ScheduledJob(query=query, key=key, deadline=deadline)
        try:
            future = self._scheduler.submit(job)
        except ServiceOverloadedError:
            if decision == "probe":
                self._breaker.release_probe(key)
            if self.options.degraded_serving:
                # sustained overload: a cached answer beats a reject
                degraded = self._degraded_outcome(query, graph, key, start)
                if degraded is not None:
                    self._count("service.admission_rejects.degraded")
                    resolved: "Future[QueryOutcome]" = Future()
                    resolved.set_result(degraded)
                    return resolved, deadline
            raise
        except ServiceClosedError:
            if decision == "probe":
                self._breaker.release_probe(key)
            raise
        if decision == "probe":
            # if the probe leaves without substrate evidence (queued
            # expiry, exact hit, close), let the next arrival probe
            future.add_done_callback(
                lambda _f, key=key: self._breaker.release_probe(key)
            )
        return future, deadline

    def _degraded_outcome(
        self,
        query: InfluenceQuery,
        graph: DirectedGraph,
        key: tuple,
        start: float,
    ) -> Optional[QueryOutcome]:
        """Best cached stand-in for ``query``, flagged degraded."""
        result_key = query.result_key(graph, self.options.chunk_sets)
        cached = self._results.get(result_key)
        if cached is not None:
            return self._hit(query, cached, "exact", start, False, degraded=True)
        relaxed = self._results.find_relaxed(
            result_key, self.options.degraded_epsilon_slack
        )
        if relaxed is not None:
            return self._hit(
                query, relaxed[1], "exact", start, False, degraded=True
            )
        return None

    def _serve_degraded(
        self,
        query: InfluenceQuery,
        graph: DirectedGraph,
        key: tuple,
        start: float,
    ) -> "Future[QueryOutcome]":
        """Open-breaker path: cached degraded answer or bounded fast-fail."""
        from repro.service.breaker import key_digest

        if self.options.degraded_serving:
            outcome = self._degraded_outcome(query, graph, key, start)
            if outcome is not None:
                future: "Future[QueryOutcome]" = Future()
                future.set_result(outcome)
                return future
        self._count("service.breaker.rejects")
        raise CircuitOpenError(key_digest(key), self._breaker.retry_after(key))

    def query(self, query: InfluenceQuery,
              timeout: Optional[float] = None) -> QueryOutcome:
        """Blocking submit: admit ``query`` and wait for its outcome.

        On ``timeout`` the admitted job no longer leaks a worker slot:
        the job is cancelled if still queued, or its deadline token is
        cancelled so a running job aborts cooperatively at its next
        check, before the timeout error propagates.
        """
        future, deadline = self._admit(query)
        try:
            return future.result(timeout=timeout)
        except DeadlineExceededError:
            raise
        except FuturesTimeoutError:
            if not future.cancel():
                deadline.cancel()
            raise

    # -- execution (scheduler workers land here) -----------------------------
    def _substrate_factory(self, query: InfluenceQuery, graph: DirectedGraph):
        from repro.rrr.store import RRRStore

        def factory():
            return RRRStore(
                graph,
                model=query.options.model,
                eliminate_sources=query.options.eliminate_sources,
                entropy=query.entropy,
                n_jobs=query.options.n_jobs,
                chunk_sets=self.options.chunk_sets,
                batch_size=query.options.batch_size,
                checkpoint_dir=self.options.checkpoint_dir,
                resilience=query.options.resilience,
                data_plane=query.options.data_plane,
                visited_mode=query.options.visited_mode,
            )

        return factory

    def _execute(self, job: ScheduledJob) -> QueryOutcome:
        query = job.query
        start = time.perf_counter()
        with deadline_scope(job.deadline), obs.span("service.query"):
            if self._faults is not None:
                self._faults.fire("worker-thread")
                self._faults.fire("queries")
            if job.deadline is not None:
                job.deadline.check("query admission")
            graph = self._resolve_graph(query.graph)
            result_key = query.result_key(graph, self.options.chunk_sets)
            cached = self._results.get(result_key)
            if cached is not None:
                return self._hit(query, cached, "exact", start, job.coalesced)
            substrate, warm = self._substrates.acquire(
                job.key, self._substrate_factory(query, graph)
            )
            try:
                with substrate.lock:
                    # a coalesced sibling may have finished this exact
                    # cell while we waited for the substrate
                    cached = self._results.get(result_key)
                    if cached is not None:
                        return self._hit(
                            query, cached, "exact", start, job.coalesced
                        )
                    if job.deadline is not None:
                        job.deadline.check("substrate wait")
                    assert substrate.store.key() == job.key  # by construction
                    before = substrate.store.num_cached
                    try:
                        if self._faults is not None:
                            self._faults.fire("substrate")
                        with obs.span("service.run"):
                            result = run_imm(
                                graph,
                                query.k,
                                query.epsilon,
                                options=query.options,
                                store=substrate.store,
                            )
                    except _BREAKER_FAILURES as exc:
                        if isinstance(exc, MemoryError):
                            # forensics for the runbook: which tier was
                            # exhausted when the allocation failed —
                            # "spilled" means even disk-backed tiering
                            # couldn't keep the working set resident
                            self._count(
                                "service.oom_tier."
                                + governor().exhausted_tier()
                            )
                        self._breaker.record_failure(job.key)
                        raise
                    self._breaker.record_success(job.key)
                    sampled = substrate.store.num_cached - before
            finally:
                self._substrates.release(substrate)
            tier = "prefix" if warm and sampled == 0 else "cold"
            if tier == "prefix":
                self._count("service.cache_hits")
                self._count("service.cache_hits.prefix")
            obs.counter_add("service.sampled_sets", sampled)
            self._results.put(result_key, result)
            return QueryOutcome(
                query=query,
                result=result,
                cache_tier=tier,
                sampled_sets=sampled,
                seconds=time.perf_counter() - start,
                coalesced=job.coalesced,
            )

    def _hit(self, query: InfluenceQuery, result: IMMResult, tier: str,
             start: float, coalesced: bool,
             degraded: bool = False) -> QueryOutcome:
        self._count("service.cache_hits")
        self._count(f"service.cache_hits.{tier}")
        if degraded:
            self._count("service.degraded")
        return QueryOutcome(
            query=query,
            result=result,
            cache_tier=tier,
            sampled_sets=0,
            seconds=time.perf_counter() - start,
            coalesced=coalesced,
            degraded=degraded,
        )

    # -- introspection / lifecycle -------------------------------------------
    def stats(self) -> dict:
        """A point-in-time snapshot of the service's state."""
        return {
            "closed": self._closed,
            "queue_depth": self._scheduler.queue_depth,
            "exact_cache_entries": len(self._results),
            "substrates": len(self._substrates),
            "registered_graphs": len(self._graphs),
        }

    def health(self) -> dict:
        """A readiness snapshot: serving state, load, and breaker health.

        ``status`` is ``"ok"`` while serving, ``"closed"`` after
        :meth:`close`.  Everything else is observational: queue depth
        and in-flight count, worker-thread liveness, per-stream breaker
        states, substrate residency (cached sets / in-flight /
        lifetime queries per stream), and the service's counter mirror
        (deadline expiries, breaker transitions, degraded serves, ...).
        """
        with self._counters_lock:
            counters = dict(self._counters)
        return {
            "status": "closed" if self._closed else "ok",
            "queue_depth": self._scheduler.queue_depth,
            "inflight": self._scheduler.inflight,
            "workers_alive": sum(
                1 for w in self._scheduler._workers if w.is_alive()
            ),
            "max_inflight": self.options.max_inflight,
            "max_queue_depth": self.options.max_queue_depth,
            "breakers": self._breaker.snapshot(),
            "substrates": self._substrates.residency(),
            "exact_cache_entries": len(self._results),
            "registered_graphs": len(self._graphs),
            "memory": governor().snapshot(),
            "counters": counters,
        }

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every admitted query to finish executing.

        Returns ``True`` when the queue fully drained, ``False`` when
        ``timeout`` expired with work still running — the caller
        decides whether to wait again or close anyway.
        """
        return self._scheduler.drain(timeout)

    def close(self, wait: bool = True) -> None:
        """Stop admitting queries and shut down.

        In-flight queries finish; still-queued queries fail their
        futures with :class:`ServiceClosedError` (counted as
        ``service.closed_rejects``) — no admitted future is ever left
        unresolved.  Then substrate stores close and caches clear.
        """
        if self._closed:
            return
        self._closed = True
        self._scheduler.close(wait=wait)
        self._substrates.close()
        self._results.clear()

    def __enter__(self) -> "InfluenceService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
