"""JSON-lines front-ends for :class:`~repro.service.service.InfluenceService`.

One request per line, one response per line — the simplest protocol
that composes with ``nc``, shell pipes, and three-line Python clients.
Two transports share the same request handler:

* **TCP** (:func:`serve_tcp`): a threading socket server; each
  connection streams any number of requests.
* **stdin batch** (:func:`serve_stdin`): requests are read line by line
  from a stream (e.g. a file of queries), responses written to another;
  exits when input ends.  This is the scriptable/CI mode.

Request schema (all keys optional unless noted)::

    {"graph": "<registered name>",        # or:
     "dataset": "WV", "scale": "tiny", "graph_seed": 0,
     "k": 10,                             # required
     "epsilon": 0.2,                      # required
     "model": "IC", "eliminate_sources": false,
     "entropy": 0, "selection_strategy": "fast",
     "n_jobs": 1, "theta_scale": null,
     "deadline": 5.0}                     # per-query budget, seconds

    {"health": true}                      # readiness snapshot instead

Responses::

    {"ok": true, "seeds": [...], "k": 10, "epsilon": 0.2,
     "theta": 1234, "influence": 56.7, "cache": "cold|prefix|exact",
     "coalesced": false, "degraded": false,
     "sampled_sets": 1234, "seconds": 0.04}
    {"ok": false, "error": "...", "overloaded": true|false,
     "deadline_expired": true|false, "circuit_open": true|false,
     "closed": true|false}

Unknown request fields are rejected (fail-fast beats silently ignoring
a typoed ``epsilon``); an overloaded service answers
``overloaded: true`` so clients know to back off and retry.

Connection-level robustness: a request line longer than
``max_request_bytes`` or an idle read past ``read_timeout`` errors and
closes *that* connection only; malformed JSON errors the one request
and keeps the connection; a client that disconnects mid-request (or
mid-response) just ends its handler thread.  The accept loop outlives
all of it.  ``SIGTERM`` triggers a graceful drain: stop accepting,
finish admitted queries (bounded by ``drain_timeout``), close the
service.
"""

from __future__ import annotations

import json
import signal
import socket
import socketserver
import threading
from typing import Optional

from repro.graphs.datasets import DATASETS, load_dataset
from repro.graphs.weights import assign_ic_weights, assign_lt_weights
from repro.imm.bounds import BoundsConfig
from repro.imm.options import IMMOptions
from repro.service.query import InfluenceQuery
from repro.service.service import InfluenceService
from repro.utils.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
    ValidationError,
)

_REQUEST_FIELDS = {
    "graph", "dataset", "scale", "graph_seed", "k", "epsilon", "model",
    "eliminate_sources", "entropy", "selection_strategy", "n_jobs",
    "batch_size", "theta_scale", "data_plane", "visited_mode",
    "coverage_scan", "deadline",
}

#: default ceiling on one request line (a JSON query fits in a fraction)
DEFAULT_MAX_REQUEST_BYTES = 1 << 20

#: graphs loaded on demand for ``dataset`` requests are registered under
#: this name pattern so repeat requests share substrates and caches
_DATASET_NAME = "{code}:{scale}:{seed}:{model}"


def _dataset_graph(service: InfluenceService, request: dict, model: str):
    code = str(request["dataset"]).upper()
    if code not in DATASETS:
        raise ValidationError(
            f"unknown dataset {code!r}; choose from {sorted(DATASETS)}"
        )
    scale = str(request.get("scale", "tiny"))
    seed = int(request.get("graph_seed", 0))
    name = _DATASET_NAME.format(code=code, scale=scale, seed=seed, model=model)
    if name not in service.registered_graphs():
        graph = load_dataset(code, scale=scale, rng=seed)
        assign = assign_ic_weights if model == "IC" else assign_lt_weights
        service.register_graph(name, assign(graph))
    return name


def build_query(service: InfluenceService, request: dict) -> InfluenceQuery:
    """Translate one request dict into an :class:`InfluenceQuery`."""
    if not isinstance(request, dict):
        raise ValidationError("request must be a JSON object")
    unknown = set(request) - _REQUEST_FIELDS
    if unknown:
        raise ValidationError(f"unknown request fields: {sorted(unknown)}")
    for required in ("k", "epsilon"):
        if required not in request:
            raise ValidationError(f"request is missing {required!r}")
    model = str(request.get("model", "IC")).upper()
    if "graph" in request:
        graph_ref = str(request["graph"])
    elif "dataset" in request:
        graph_ref = _dataset_graph(service, request, model)
    else:
        raise ValidationError("request needs 'graph' (registered name) "
                              "or 'dataset' (registry code)")
    theta_scale = request.get("theta_scale")
    bounds = None if theta_scale is None else BoundsConfig(
        theta_scale=float(theta_scale)
    )
    options = IMMOptions(
        model=model,
        eliminate_sources=bool(request.get("eliminate_sources", False)),
        bounds=bounds,
        selection_strategy=str(request.get("selection_strategy", "fast")),
        n_jobs=int(request.get("n_jobs", 1)),
        batch_size=int(request.get("batch_size", 16384)),
        data_plane=request.get("data_plane"),
        visited_mode=request.get("visited_mode"),
        coverage_scan=request.get("coverage_scan"),
    )
    entropy = request.get("entropy", 0)
    if isinstance(entropy, list):
        entropy = tuple(entropy)
    deadline = request.get("deadline")
    return InfluenceQuery(
        graph=graph_ref,
        k=int(request["k"]),
        epsilon=float(request["epsilon"]),
        options=options,
        entropy=entropy,
        deadline=None if deadline is None else float(deadline),
    )


def _error_response(exc: Exception) -> dict:
    response = {"ok": False, "error": str(exc), "overloaded": False}
    if isinstance(exc, ServiceOverloadedError):
        response["overloaded"] = True
    elif isinstance(exc, DeadlineExceededError):
        response["deadline_expired"] = True
    elif isinstance(exc, CircuitOpenError):
        response["circuit_open"] = True
        response["retry_after"] = round(exc.retry_after, 3)
    elif isinstance(exc, ServiceClosedError):
        response["closed"] = True
    return response


def handle_request(service: InfluenceService, request: dict) -> dict:
    """Execute one request dict and return its response dict.

    Never raises: every failure — bad request, overload, an expired
    deadline, an open breaker, a query whose execution died — comes
    back as an ``ok: false`` response, which is what keeps one poisoned
    request from wedging a connection.
    """
    if isinstance(request, dict) and request.get("health"):
        return {"ok": True, "health": service.health()}
    try:
        query = build_query(service, request)
        outcome = service.query(query)
    except (ReproError, ValueError, TypeError, KeyError, MemoryError) as exc:
        return _error_response(exc)
    result = outcome.result
    return {
        "ok": True,
        "seeds": [int(s) for s in result.seeds],
        "k": query.k,
        "epsilon": query.epsilon,
        "model": result.model,
        "theta": int(result.theta),
        "influence": float(result.influence_estimate()),
        "cache": outcome.cache_tier,
        "coalesced": bool(outcome.coalesced),
        "degraded": bool(outcome.degraded),
        "sampled_sets": int(outcome.sampled_sets),
        "seconds": round(outcome.seconds, 6),
    }


def serve_stdin(service: InfluenceService, in_stream, out_stream) -> int:
    """Batch mode: one JSON request per input line, one response out."""
    served = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            response = {"ok": False, "error": f"bad JSON: {exc}",
                        "overloaded": False}
        else:
            response = handle_request(service, request)
        out_stream.write(json.dumps(response) + "\n")
        out_stream.flush()
        served += 1
    return served


class _LineHandler(socketserver.StreamRequestHandler):
    def setup(self) -> None:  # pragma: no cover - exercised via TCP tests
        # StreamRequestHandler applies self.timeout to the connection
        # socket during setup -> per-connection read timeout
        self.timeout = self.server.read_timeout
        super().setup()

    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        limit = self.server.max_request_bytes
        while True:
            try:
                line = self.rfile.readline(limit + 1)
            except (socket.timeout, TimeoutError):
                self._reply({"ok": False, "overloaded": False,
                             "error": "read timeout; closing connection"})
                return
            except (ConnectionError, OSError):
                return  # client vanished mid-request
            if not line:
                return
            if len(line) > limit:
                # the line is mid-frame; we can't resync, so error+close
                self._reply({
                    "ok": False, "overloaded": False,
                    "error": f"request exceeds {limit} bytes; "
                             "closing connection",
                })
                return
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                response = {"ok": False, "error": f"bad JSON: {exc}",
                            "overloaded": False}
            else:
                response = handle_request(self.server.service, request)
            if not self._reply(response):
                return

    def _reply(self, response: dict) -> bool:
        try:
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            return True
        except (ConnectionError, OSError):
            return False  # client vanished mid-response


class InfluenceTCPServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-lines TCP server bound to an `InfluenceService`.

    ``port=0`` binds an ephemeral port (tests); the bound address is on
    ``server_address``.  Client connections each get a thread, but all
    execution funnels through the service's admission-controlled
    scheduler — the socket layer adds no concurrency beyond parsing.
    Per-connection failures (timeouts, oversized frames, disconnects)
    end that handler thread only; the accept loop keeps running.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: InfluenceService, host: str = "127.0.0.1",
                 port: int = 7473, read_timeout: Optional[float] = None,
                 max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES):
        self.service = service
        self.read_timeout = read_timeout
        self.max_request_bytes = int(max_request_bytes)
        super().__init__((host, port), _LineHandler)


def serve_tcp(
    service: InfluenceService,
    host: str = "127.0.0.1",
    port: int = 7473,
    ready: Optional[threading.Event] = None,
    read_timeout: Optional[float] = None,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    drain_timeout: float = 30.0,
) -> None:
    """Run a blocking TCP server until interrupted.

    ``SIGTERM`` (when running on the main thread) stops the accept
    loop, drains admitted queries for up to ``drain_timeout`` seconds,
    and closes the service — still-queued work resolves either way, by
    finishing or by :class:`ServiceClosedError`.  Ctrl-C returns
    without draining.
    """
    with InfluenceTCPServer(
        service, host, port,
        read_timeout=read_timeout, max_request_bytes=max_request_bytes,
    ) as server:
        terminated = threading.Event()

        def _on_sigterm(signum, frame):  # pragma: no cover - signal path
            terminated.set()
            # shutdown() must not run on the serve_forever thread
            threading.Thread(target=server.shutdown, daemon=True).start()

        previous = None
        try:
            previous = signal.signal(signal.SIGTERM, _on_sigterm)
        except ValueError:  # not the main thread (embedded/test use)
            pass
        if ready is not None:
            server.ready_address = server.server_address
            ready.set()
        try:
            server.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            if previous is not None:
                signal.signal(signal.SIGTERM, previous)
        if terminated.is_set():  # pragma: no cover - signal path
            service.drain(timeout=drain_timeout)
            service.close()


def request_once(host: str, port: int, request: dict,
                 timeout: float = 30.0) -> dict:
    """One-shot client: send ``request``, return the parsed response."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall((json.dumps(request) + "\n").encode("utf-8"))
        buffer = b""
        while not buffer.endswith(b"\n"):
            chunk = conn.recv(65536)
            if not chunk:
                break
            buffer += chunk
    return json.loads(buffer.decode("utf-8"))
