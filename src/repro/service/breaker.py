"""Per-stream circuit breakers for the serving tier.

A substrate that keeps failing — sampler workers crashing past their
retry budget, simulated or real OOM — should stop costing a worker slot
per query.  The service keys one breaker per *stream identity* (the
coalescing key: one breaker per substrate, not per ``(k, ε)`` cell) and
runs the classic three-state machine:

* **closed** — normal serving; consecutive substrate failures are
  counted, any success resets the count;
* **open** — after ``failure_threshold`` consecutive failures (or a
  failed probe) new queries skip the queue entirely: the service
  serves a degraded cached answer when it has one, else fails fast
  with :class:`~repro.utils.errors.CircuitOpenError` — bounded-time
  either way, never a stranded worker slot;
* **half-open** — once ``reset_timeout`` has passed, exactly one
  *probe* query is admitted through to the substrate; its success
  closes the breaker, its failure re-opens it (and restarts the
  timer).

Only substrate health trips a breaker: the service classifies
:class:`~repro.utils.errors.ResilienceError` and :class:`MemoryError`
as failures, while deadline expiries and validation errors say nothing
about the substrate and leave the breaker alone.  Probes that are
answered from the exact cache also do not close the breaker — only a
query that actually exercised the substrate counts as evidence.

The clock is injectable so the state machine unit-tests run on a fake
clock; transitions are published as ``service.breaker.*`` counters and
the full per-stream state rides on ``InfluenceService.health()``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.utils.errors import ValidationError

#: breaker states
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


def key_digest(key: tuple) -> str:
    """A short stable digest naming a stream key in health snapshots."""
    return hashlib.sha1(repr(key).encode("utf-8")).hexdigest()[:12]


@dataclass
class _BreakerState:
    """The mutable per-stream record behind one coalescing key."""

    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    probe_inflight: bool = False
    failures_total: int = 0
    opened_total: int = 0


class CircuitBreaker:
    """Thread-safe registry of per-stream breaker state machines."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        counter: Optional[Callable[[str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValidationError("failure_threshold must be >= 1")
        if not reset_timeout > 0:
            raise ValidationError("reset_timeout must be positive")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._count = counter or (lambda name: None)
        self._states: dict[tuple, _BreakerState] = {}
        self._lock = threading.Lock()

    def admit(self, key: tuple) -> str:
        """Admission decision for one arriving query on ``key``.

        Returns ``"closed"`` (serve normally), ``"probe"`` (serve — and
        this query's outcome decides the breaker), or ``"open"``
        (degrade or fast-fail; do not queue).
        """
        with self._lock:
            state = self._states.get(key)
            if state is None or state.state == CLOSED:
                return CLOSED
            if state.state == OPEN:
                if self._clock() - state.opened_at >= self.reset_timeout:
                    state.state = HALF_OPEN
                    state.probe_inflight = True
                    self._count("service.breaker.half_open")
                    return "probe"
                return OPEN
            # half-open: one probe at a time; everyone else degrades
            if not state.probe_inflight:
                state.probe_inflight = True
                return "probe"
            return OPEN

    def retry_after(self, key: tuple) -> float:
        """Seconds until an open ``key`` will admit its next probe."""
        with self._lock:
            state = self._states.get(key)
            if state is None or state.state != OPEN:
                return 0.0
            return max(
                0.0, state.opened_at + self.reset_timeout - self._clock()
            )

    def record_success(self, key: tuple) -> None:
        """A query on ``key`` exercised the substrate and succeeded."""
        with self._lock:
            state = self._states.get(key)
            if state is None:
                return
            reopened = state.state != CLOSED
            state.state = CLOSED
            state.consecutive_failures = 0
            state.probe_inflight = False
        if reopened:
            self._count("service.breaker.closed")

    def record_failure(self, key: tuple) -> None:
        """A query on ``key`` hit a substrate failure (crash/OOM)."""
        with self._lock:
            state = self._states.setdefault(key, _BreakerState())
            state.consecutive_failures += 1
            state.failures_total += 1
            trip = (
                state.state == HALF_OPEN
                or state.consecutive_failures >= self.failure_threshold
            )
            opened = trip and state.state != OPEN
            if trip:
                state.state = OPEN
                state.opened_at = self._clock()
                state.probe_inflight = False
                if opened:
                    state.opened_total += 1
        if opened:
            self._count("service.breaker.opened")

    def release_probe(self, key: tuple) -> None:
        """A probe left the system without substrate evidence (deadline
        expiry, exact-cache hit): let the next arrival probe instead."""
        with self._lock:
            state = self._states.get(key)
            if state is not None and state.state == HALF_OPEN:
                state.probe_inflight = False

    def state(self, key: tuple) -> str:
        with self._lock:
            state = self._states.get(key)
            return CLOSED if state is None else state.state

    def snapshot(self) -> dict:
        """Per-stream breaker state for health/readiness reporting."""
        with self._lock:
            return {
                key_digest(key): {
                    "state": state.state,
                    "consecutive_failures": state.consecutive_failures,
                    "failures_total": state.failures_total,
                    "opened_total": state.opened_total,
                }
                for key, state in self._states.items()
            }
