"""The service's multi-tier result cache.

Two tiers, from cheapest to most expensive:

* **Tier 1 — exact results** (:class:`ExactResultCache`): an LRU of
  finished :class:`~repro.imm.imm.IMMResult` objects keyed by the full
  result key.  A repeat query costs a dictionary lookup and samples
  zero new RRR sets.
* **Tier 2 — sampling substrates** (:class:`SubstrateTable`): an LRU of
  :class:`Substrate` objects — one warm-start
  :class:`~repro.rrr.store.RRRStore` (whose chunks are
  prefix-deterministic) plus the persistent
  :class:`~repro.imm.coverage.CoverageIndex` riding on it — keyed by
  the coalescing key.  A new ``(k, ε)`` against a warm substrate reuses
  the indexed RRR prefix and only re-runs lazy selection; only a theta
  beyond the cached prefix samples, and only the deficit.

Both tiers are thread-safe; the substrate table additionally tracks
in-flight use so eviction never closes a store a worker is reading.
Evictions are published as ``service.evictions``.

Both tiers also register with the process memory governor
(:mod:`repro.memory.budget`): cached results pin the RRR prefix views
they carry, so under memory pressure the result cache sheds LRU
entries (releasing those pins) and the substrate table closes *idle*
substrates — never one with an in-flight query, the same invariant its
capacity eviction already honors.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro import obs
from repro.memory.budget import governor

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.imm.imm import IMMResult
    from repro.rrr.store import RRRStore

#: governor account for tier-1 cached results (their owned arrays only;
#: the RRR views they pin are accounted by the store that built them)
RESULTS_ACCOUNT = "service.results"
#: governor account marker for tier-2 substrates (the stores themselves
#: account their bytes under ``rrr.*``; the table contributes pressure
#: handling, not bytes)
SUBSTRATES_ACCOUNT = "service.substrates"


def _result_owned_nbytes(result: "IMMResult") -> int:
    """The bytes a cached result *owns* (seed array and friends).

    Deliberately excludes ``result.collection`` — that is a view over
    the producing store's concat cache, already on the ledger under
    ``rrr.concat``; charging it here would double-count.  Entries that
    are not :class:`IMMResult` objects (test doubles) get a nominal
    charge so the LRU accounting still moves.
    """
    seeds = getattr(result, "seeds", None)
    if seeds is None or not hasattr(seeds, "nbytes"):
        return 256
    total = int(seeds.nbytes)
    try:
        total += int(result.selection.coverage_history.nbytes)
    except AttributeError:
        pass
    return total


class ExactResultCache:
    """Thread-safe LRU over finished query results (tier 1)."""

    def __init__(self, capacity: int):
        self._capacity = int(capacity)
        self._entries: "OrderedDict[tuple, IMMResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._accounted = 0
        self._gov = None
        self._gov_handle: Optional[int] = None

    def _ensure_governed_locked(self) -> None:
        gov = governor()
        if self._gov is not gov:
            self._gov = gov
            # results are pure cache: shed them late, after chunk
            # demotion (10) but before idle substrates close (30).
            # Weak ref: the process-global governor must not pin caches
            # (and the result views they hold) past their service.
            ref = weakref.ref(self)

            def _handler(deficit: int, ref=ref) -> int:
                cache = ref()
                return 0 if cache is None else cache._relieve(deficit)

            self._gov_handle = gov.add_pressure_handler(_handler, priority=20)

    def _relieve(self, deficit: int) -> int:
        """Pressure hook: drop LRU results until the cache is empty or
        the (estimated) pinned bytes shed reach ``deficit``.

        The freed estimate counts each entry's pinned prefix view —
        dropping the last reference to a demoted store's concat is the
        actual memory win, even though those bytes sit on the store's
        account, not this one.
        """
        freed = 0
        with self._lock:
            while self._entries and freed < deficit:
                _, result = self._entries.popitem(last=False)
                owned = _result_owned_nbytes(result)
                self._accounted = max(0, self._accounted - owned)
                governor().account(RESULTS_ACCOUNT, "resident", -owned)
                freed += owned
                collection = getattr(result, "collection", None)
                if collection is not None:
                    freed += int(collection.flat.nbytes)
                obs.counter_add("service.evictions", 1)
                obs.counter_add("service.memory_evictions", 1)
        return freed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> "Optional[IMMResult]":
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
            return result

    def put(self, key: tuple, result: "IMMResult") -> None:
        if self._capacity == 0:
            return
        with self._lock:
            self._ensure_governed_locked()
            previous = self._entries.get(key)
            delta = _result_owned_nbytes(result)
            if previous is not None:
                delta -= _result_owned_nbytes(previous)
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                _, dropped = self._entries.popitem(last=False)
                delta -= _result_owned_nbytes(dropped)
                obs.counter_add("service.evictions", 1)
            self._accounted = max(0, self._accounted + delta)
            governor().account(RESULTS_ACCOUNT, "resident", delta)

    def find_relaxed(
        self, key: tuple, slack: float
    ) -> "Optional[tuple[float, IMMResult]]":
        """Best epsilon-relaxed stand-in for ``key`` (degraded serving).

        Scans for entries that differ from ``key`` only in epsilon
        (result-key index ``-3``) and whose epsilon is at most
        ``slack * key_epsilon``; returns ``(cached_epsilon, result)``
        for the tightest such entry, preferring any ``epsilon' <=
        epsilon`` (a strictly better answer) over looser ones.  Does
        not touch LRU order — degraded reads shouldn't pin entries the
        healthy path isn't using.
        """
        epsilon = float(key[-3])
        best: "Optional[tuple[float, IMMResult]]" = None
        with self._lock:
            for entry_key, result in self._entries.items():
                if entry_key[:-3] != key[:-3] or entry_key[-2:] != key[-2:]:
                    continue
                cached_eps = float(entry_key[-3])
                if cached_eps > slack * epsilon:
                    continue
                if best is None or cached_eps < best[0]:
                    best = (cached_eps, result)
        return best

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            if self._accounted:
                governor().account(RESULTS_ACCOUNT, "resident", -self._accounted)
                self._accounted = 0
            if self._gov is not None and self._gov_handle is not None:
                self._gov.remove_pressure_handler(self._gov_handle)
                self._gov = None
                self._gov_handle = None

    def __del__(self):  # pragma: no cover - GC backstop
        # a cache dropped without clear() must credit its ledger bytes
        try:
            self.clear()
        except Exception:
            pass


@dataclass
class Substrate:
    """The shared sampling state behind one coalescing key.

    ``lock`` serializes same-key queries onto the store (the coalescing
    discipline: one ``ensure(max θ)`` stream, one index — never two
    threads growing the same chunks).  ``inflight`` guards eviction;
    ``queries`` counts lifetime traffic for introspection.
    """

    key: tuple
    store: "RRRStore"
    lock: threading.Lock = field(default_factory=threading.Lock)
    inflight: int = 0
    queries: int = 0


class SubstrateTable:
    """Thread-safe LRU of sampling substrates (tier 2).

    ``acquire`` returns the substrate for a key — creating it via
    ``factory`` on first use — with its in-flight count already bumped,
    so a concurrent eviction sweep cannot close it mid-query.  Callers
    must pair every ``acquire`` with ``release``.
    """

    def __init__(self, capacity: int):
        self._capacity = int(capacity)
        self._entries: "OrderedDict[tuple, Substrate]" = OrderedDict()
        self._lock = threading.Lock()
        self._gov = None
        self._gov_handle: Optional[int] = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list:
        with self._lock:
            return list(self._entries)

    def _ensure_governed_locked(self) -> None:
        gov = governor()
        if self._gov is not gov:
            self._gov = gov
            # closing a warm substrate forfeits its whole cached stream:
            # last resort, after chunk demotion (10) and result-cache
            # shedding (20).  Weak ref, same as the other handlers —
            # the governor must not keep substrate tables (and their
            # stores' segments) alive past their service.
            ref = weakref.ref(self)

            def _handler(deficit: int, ref=ref) -> int:
                table = ref()
                return 0 if table is None else table._relieve(deficit)

            self._gov_handle = gov.add_pressure_handler(_handler, priority=30)

    def _relieve(self, deficit: int) -> int:
        """Pressure hook: close LRU *idle* substrates.

        The in-flight guard is the same one capacity eviction honors —
        a worker mid-query holds views into its substrate's store (and,
        on the shm plane, attachments to its arena segments), so a
        busy substrate is never closed, no matter how deep the deficit.
        Non-blocking on the table lock: pressure raised *by* an acquire
        on this table must not deadlock against it.
        """
        if not self._lock.acquire(blocking=False):
            return 0
        try:
            victims: list[Substrate] = []
            freed = 0
            while freed < deficit:
                victim_key = next(
                    (k for k, s in self._entries.items() if s.inflight == 0),
                    None,
                )
                if victim_key is None:
                    break
                victim = self._entries.pop(victim_key)
                victims.append(victim)
                freed += victim.store.governed_nbytes()
        finally:
            self._lock.release()
        for victim in victims:
            victim.store.close()
            obs.counter_add("service.evictions", 1)
            obs.counter_add("service.memory_evictions", 1)
        return freed

    def acquire(self, key: tuple, factory) -> tuple[Substrate, bool]:
        """``(substrate, was_warm)`` for ``key``, pinned against eviction."""
        evicted: list[Substrate] = []
        with self._lock:
            self._ensure_governed_locked()
            substrate = self._entries.get(key)
            warm = substrate is not None
            if substrate is None:
                substrate = Substrate(key=key, store=factory())
                self._entries[key] = substrate
                # evict least-recently-used *idle* substrates over capacity
                while len(self._entries) > self._capacity:
                    victim_key = next(
                        (k for k, s in self._entries.items()
                         if s.inflight == 0 and k != key),
                        None,
                    )
                    if victim_key is None:
                        break  # everything is busy; stay temporarily over
                    evicted.append(self._entries.pop(victim_key))
            self._entries.move_to_end(key)
            substrate.inflight += 1
            substrate.queries += 1
        for victim in evicted:
            victim.store.close()
            obs.counter_add("service.evictions", 1)
        return substrate, warm

    def release(self, substrate: Substrate) -> None:
        with self._lock:
            substrate.inflight -= 1

    def residency(self) -> list[dict]:
        """Per-substrate occupancy for health reporting (no key material
        beyond a digest — stream keys embed graph fingerprints)."""
        from repro.service.breaker import key_digest

        with self._lock:
            return [
                {
                    "key": key_digest(key),
                    "cached_sets": substrate.store.num_cached,
                    "inflight": substrate.inflight,
                    "queries": substrate.queries,
                }
                for key, substrate in self._entries.items()
            ]

    def close(self) -> None:
        """Close every substrate store (service shutdown)."""
        with self._lock:
            entries, self._entries = list(self._entries.values()), OrderedDict()
            if self._gov is not None and self._gov_handle is not None:
                self._gov.remove_pressure_handler(self._gov_handle)
                self._gov = None
                self._gov_handle = None
        for substrate in entries:
            substrate.store.close()

    def __del__(self):  # pragma: no cover - GC backstop
        # only the handler entry needs reaping: the substrates' stores
        # carry their own finalizers, and a shared store must not be
        # force-closed by a dying table
        try:
            if self._gov is not None and self._gov_handle is not None:
                self._gov.remove_pressure_handler(self._gov_handle)
        except Exception:
            pass
