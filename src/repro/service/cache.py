"""The service's multi-tier result cache.

Two tiers, from cheapest to most expensive:

* **Tier 1 — exact results** (:class:`ExactResultCache`): an LRU of
  finished :class:`~repro.imm.imm.IMMResult` objects keyed by the full
  result key.  A repeat query costs a dictionary lookup and samples
  zero new RRR sets.
* **Tier 2 — sampling substrates** (:class:`SubstrateTable`): an LRU of
  :class:`Substrate` objects — one warm-start
  :class:`~repro.rrr.store.RRRStore` (whose chunks are
  prefix-deterministic) plus the persistent
  :class:`~repro.imm.coverage.CoverageIndex` riding on it — keyed by
  the coalescing key.  A new ``(k, ε)`` against a warm substrate reuses
  the indexed RRR prefix and only re-runs lazy selection; only a theta
  beyond the cached prefix samples, and only the deficit.

Both tiers are thread-safe; the substrate table additionally tracks
in-flight use so eviction never closes a store a worker is reading.
Evictions are published as ``service.evictions``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.imm.imm import IMMResult
    from repro.rrr.store import RRRStore


class ExactResultCache:
    """Thread-safe LRU over finished query results (tier 1)."""

    def __init__(self, capacity: int):
        self._capacity = int(capacity)
        self._entries: "OrderedDict[tuple, IMMResult]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> "Optional[IMMResult]":
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
            return result

    def put(self, key: tuple, result: "IMMResult") -> None:
        if self._capacity == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                obs.counter_add("service.evictions", 1)

    def find_relaxed(
        self, key: tuple, slack: float
    ) -> "Optional[tuple[float, IMMResult]]":
        """Best epsilon-relaxed stand-in for ``key`` (degraded serving).

        Scans for entries that differ from ``key`` only in epsilon
        (result-key index ``-3``) and whose epsilon is at most
        ``slack * key_epsilon``; returns ``(cached_epsilon, result)``
        for the tightest such entry, preferring any ``epsilon' <=
        epsilon`` (a strictly better answer) over looser ones.  Does
        not touch LRU order — degraded reads shouldn't pin entries the
        healthy path isn't using.
        """
        epsilon = float(key[-3])
        best: "Optional[tuple[float, IMMResult]]" = None
        with self._lock:
            for entry_key, result in self._entries.items():
                if entry_key[:-3] != key[:-3] or entry_key[-2:] != key[-2:]:
                    continue
                cached_eps = float(entry_key[-3])
                if cached_eps > slack * epsilon:
                    continue
                if best is None or cached_eps < best[0]:
                    best = (cached_eps, result)
        return best

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


@dataclass
class Substrate:
    """The shared sampling state behind one coalescing key.

    ``lock`` serializes same-key queries onto the store (the coalescing
    discipline: one ``ensure(max θ)`` stream, one index — never two
    threads growing the same chunks).  ``inflight`` guards eviction;
    ``queries`` counts lifetime traffic for introspection.
    """

    key: tuple
    store: "RRRStore"
    lock: threading.Lock = field(default_factory=threading.Lock)
    inflight: int = 0
    queries: int = 0


class SubstrateTable:
    """Thread-safe LRU of sampling substrates (tier 2).

    ``acquire`` returns the substrate for a key — creating it via
    ``factory`` on first use — with its in-flight count already bumped,
    so a concurrent eviction sweep cannot close it mid-query.  Callers
    must pair every ``acquire`` with ``release``.
    """

    def __init__(self, capacity: int):
        self._capacity = int(capacity)
        self._entries: "OrderedDict[tuple, Substrate]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list:
        with self._lock:
            return list(self._entries)

    def acquire(self, key: tuple, factory) -> tuple[Substrate, bool]:
        """``(substrate, was_warm)`` for ``key``, pinned against eviction."""
        evicted: list[Substrate] = []
        with self._lock:
            substrate = self._entries.get(key)
            warm = substrate is not None
            if substrate is None:
                substrate = Substrate(key=key, store=factory())
                self._entries[key] = substrate
                # evict least-recently-used *idle* substrates over capacity
                while len(self._entries) > self._capacity:
                    victim_key = next(
                        (k for k, s in self._entries.items()
                         if s.inflight == 0 and k != key),
                        None,
                    )
                    if victim_key is None:
                        break  # everything is busy; stay temporarily over
                    evicted.append(self._entries.pop(victim_key))
            self._entries.move_to_end(key)
            substrate.inflight += 1
            substrate.queries += 1
        for victim in evicted:
            victim.store.close()
            obs.counter_add("service.evictions", 1)
        return substrate, warm

    def release(self, substrate: Substrate) -> None:
        with self._lock:
            substrate.inflight -= 1

    def residency(self) -> list[dict]:
        """Per-substrate occupancy for health reporting (no key material
        beyond a digest — stream keys embed graph fingerprints)."""
        from repro.service.breaker import key_digest

        with self._lock:
            return [
                {
                    "key": key_digest(key),
                    "cached_sets": substrate.store.num_cached,
                    "inflight": substrate.inflight,
                    "queries": substrate.queries,
                }
                for key, substrate in self._entries.items()
            ]

    def close(self) -> None:
        """Close every substrate store (service shutdown)."""
        with self._lock:
            entries, self._entries = list(self._entries.values()), OrderedDict()
        for substrate in entries:
            substrate.store.close()
