"""Admission-controlled, coalescing-aware query scheduler.

The scheduler is the service's traffic cop: a bounded FIFO feeding a
fixed pool of worker threads.  Its jobs:

* **admission control** — at most ``max_queue_depth`` queries wait; a
  submit beyond that fails fast with
  :class:`~repro.utils.errors.ServiceOverloadedError` (counted as
  ``service.admission_rejects``) instead of letting latency grow
  unbounded.  ``service.queue_depth`` gauges the live depth.
* **coalescing bookkeeping** — it tracks how many admitted queries
  share each coalescing key; a query arriving while a same-key query is
  queued or running is *coalesced* (``service.coalesced``): it will
  ride the sibling's substrate, paying only the theta deficit.  The
  actual sharing is enforced one level down by the substrate's lock —
  the scheduler only needs to not fight it, which FIFO + per-key
  serialization guarantees.
* **deadline hygiene** — a job whose deadline expired while it was
  still queued is dropped at dequeue (``service.deadline_expired``)
  without costing a worker slot; the expiry is delivered on its future
  as :class:`~repro.utils.errors.DeadlineExceededError`.
* **fault isolation** — a query that raises (worker crash exhausting
  its retry budget, validation error, simulated OOM) fails *its
  future* (``service.errors``); the worker thread, and the service,
  keep running.

Every admitted future resolves, no matter how the scheduler goes down:
``close()`` fails still-queued jobs with
:class:`~repro.utils.errors.ServiceClosedError` rather than stranding
their waiters, and admission is serialized with closing so a submit
can never slip a job into a queue no worker will read again.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.resilience.deadline import Deadline
from repro.service.query import InfluenceQuery
from repro.utils.errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
)

_SENTINEL = object()


def _fail_future(future: Future, exc: BaseException) -> None:
    """Deliver ``exc`` unless the waiter already cancelled the future."""
    try:
        future.set_exception(exc)
    except InvalidStateError:  # cancelled concurrently; waiter is gone
        pass


@dataclass
class ScheduledJob:
    """One admitted query riding the scheduler's queue."""

    query: InfluenceQuery
    key: tuple  # coalescing key, resolved at admission time
    future: Future = field(default_factory=Future)
    coalesced: bool = False
    deadline: Optional[Deadline] = None


class QueryScheduler:
    """Bounded queue + worker threads executing one job at a time each."""

    def __init__(
        self,
        max_inflight: int,
        max_queue_depth: int,
        execute: Callable[[ScheduledJob], object],
        counter: Optional[Callable[[str], None]] = None,
    ):
        self._execute = execute
        self._count = counter or (lambda name: obs.counter_add(name, 1))
        self._max_queue_depth = int(max_queue_depth)
        self._queue: "queue.Queue" = queue.Queue()
        self._active_keys: dict[tuple, int] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._queued = 0  # jobs admitted but not yet picked up
        self._inflight = 0  # jobs currently executing on a worker
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            for i in range(int(max_inflight))
        ]
        for worker in self._workers:
            worker.start()

    # -- admission -----------------------------------------------------------
    def submit(self, job: ScheduledJob) -> Future:
        """Admit ``job`` (or reject it) and return its future.

        The whole admission — closed check, depth check, coalescing
        bookkeeping, enqueue — happens under one lock, so it can never
        interleave with :meth:`close` in a way that strands the job in
        a queue no worker will drain.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if self._queued >= self._max_queue_depth:
                self._count("service.admission_rejects")
                raise ServiceOverloadedError(
                    self._queued, self._max_queue_depth
                )
            active = self._active_keys.get(job.key, 0)
            job.coalesced = active > 0
            self._active_keys[job.key] = active + 1
            self._queued += 1
            self._queue.put_nowait(job)
            depth = self._queued
        if job.coalesced:
            self._count("service.coalesced")
        obs.gauge_max("service.queue_depth", depth)
        return job.future

    def _release_key(self, key: tuple) -> None:
        with self._lock:
            self._release_key_locked(key)

    def _release_key_locked(self, key: tuple) -> None:
        remaining = self._active_keys.get(key, 1) - 1
        if remaining <= 0:
            self._active_keys.pop(key, None)
        else:
            self._active_keys[key] = remaining

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queued

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    # -- execution -----------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _SENTINEL:
                self._queue.task_done()
                return
            with self._lock:
                self._queued -= 1
            if not job.future.set_running_or_notify_cancel():
                self._release_key(job.key)
                self._queue.task_done()
                continue
            if job.deadline is not None and job.deadline.expired:
                # expired while queued: don't waste the worker slot
                self._count("service.deadline_expired")
                _fail_future(
                    job.future,
                    DeadlineExceededError(
                        "queued wait", cancelled=job.deadline.cancelled
                    ),
                )
                self._release_key(job.key)
                self._queue.task_done()
                continue
            with self._lock:
                self._inflight += 1
            try:
                outcome = self._execute(job)
            except BaseException as exc:  # noqa: BLE001 — isolate the worker
                if isinstance(exc, DeadlineExceededError):
                    self._count("service.deadline_expired")
                else:
                    self._count("service.errors")
                _fail_future(job.future, exc)
            else:
                job.future.set_result(outcome)
            finally:
                with self._lock:
                    self._inflight -= 1
                    self._release_key_locked(job.key)
                self._queue.task_done()

    # -- lifecycle -----------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop admitting, fail queued jobs, and stop the workers.

        Jobs already executing finish normally; jobs still queued fail
        with :class:`ServiceClosedError` so no admitted future is ever
        stranded.
        """
        with self._lock:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
        if already:
            if wait:
                for worker in self._workers:
                    worker.join()
            return
        # Drain still-queued jobs.  Workers may race us for them — both
        # outcomes are fine: either the worker executes the job (it was
        # admitted before close) or we fail it here.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            with self._lock:
                self._queued -= 1
            self._count("service.closed_rejects")
            _fail_future(job.future, ServiceClosedError("service is closed"))
            self._release_key(job.key)
            self._queue.task_done()
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        if wait:
            for worker in self._workers:
                worker.join()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted job has finished executing.

        Returns ``True`` if the queue fully drained, ``False`` if
        ``timeout`` expired first (work may still be running).
        """
        if timeout is None:
            self._queue.join()
            return True
        done = threading.Event()
        waiter = threading.Thread(
            target=lambda: (self._queue.join(), done.set()), daemon=True
        )
        waiter.start()
        return done.wait(timeout)
