"""Admission-controlled, coalescing-aware query scheduler.

The scheduler is the service's traffic cop: a bounded FIFO feeding a
fixed pool of worker threads.  Its three jobs:

* **admission control** — at most ``max_queue_depth`` queries wait; a
  submit beyond that fails fast with
  :class:`~repro.utils.errors.ServiceOverloadedError` (counted as
  ``service.admission_rejects``) instead of letting latency grow
  unbounded.  ``service.queue_depth`` gauges the live depth.
* **coalescing bookkeeping** — it tracks how many admitted queries
  share each coalescing key; a query arriving while a same-key query is
  queued or running is *coalesced* (``service.coalesced``): it will
  ride the sibling's substrate, paying only the theta deficit.  The
  actual sharing is enforced one level down by the substrate's lock —
  the scheduler only needs to not fight it, which FIFO + per-key
  serialization guarantees.
* **fault isolation** — a query that raises (worker crash exhausting
  its retry budget, validation error, simulated OOM) fails *its
  future* (``service.errors``); the worker thread, and the service,
  keep running.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.service.query import InfluenceQuery
from repro.utils.errors import ServiceClosedError, ServiceOverloadedError

_SENTINEL = object()


@dataclass
class ScheduledJob:
    """One admitted query riding the scheduler's queue."""

    query: InfluenceQuery
    key: tuple  # coalescing key, resolved at admission time
    future: Future = field(default_factory=Future)
    coalesced: bool = False


class QueryScheduler:
    """Bounded queue + worker threads executing one job at a time each."""

    def __init__(
        self,
        max_inflight: int,
        max_queue_depth: int,
        execute: Callable[[ScheduledJob], object],
    ):
        self._execute = execute
        self._max_queue_depth = int(max_queue_depth)
        self._queue: "queue.Queue" = queue.Queue(maxsize=self._max_queue_depth)
        self._active_keys: dict[tuple, int] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            for i in range(int(max_inflight))
        ]
        for worker in self._workers:
            worker.start()

    # -- admission -----------------------------------------------------------
    def submit(self, job: ScheduledJob) -> Future:
        """Admit ``job`` (or reject it) and return its future."""
        if self._closed:
            raise ServiceClosedError("service is closed")
        with self._lock:
            active = self._active_keys.get(job.key, 0)
            job.coalesced = active > 0
            self._active_keys[job.key] = active + 1
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self._release_key(job.key)
            obs.counter_add("service.admission_rejects", 1)
            raise ServiceOverloadedError(
                self._queue.qsize(), self._max_queue_depth
            ) from None
        if job.coalesced:
            obs.counter_add("service.coalesced", 1)
        obs.gauge_max("service.queue_depth", self._queue.qsize())
        return job.future

    def _release_key(self, key: tuple) -> None:
        with self._lock:
            remaining = self._active_keys.get(key, 1) - 1
            if remaining <= 0:
                self._active_keys.pop(key, None)
            else:
                self._active_keys[key] = remaining

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # -- execution -----------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _SENTINEL:
                self._queue.task_done()
                return
            if not job.future.set_running_or_notify_cancel():
                self._release_key(job.key)
                self._queue.task_done()
                continue
            try:
                outcome = self._execute(job)
            except BaseException as exc:  # noqa: BLE001 — isolate the worker
                obs.counter_add("service.errors", 1)
                job.future.set_exception(exc)
            else:
                job.future.set_result(outcome)
            finally:
                self._release_key(job.key)
                self._queue.task_done()

    # -- lifecycle -----------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop admitting, drain the queue, and stop the workers."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        if wait:
            for worker in self._workers:
                worker.join()

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every admitted job has finished executing."""
        if timeout is None:
            self._queue.join()
            return
        done = threading.Event()
        waiter = threading.Thread(target=lambda: (self._queue.join(), done.set()),
                                  daemon=True)
        waiter.start()
        done.wait(timeout)
