"""The influence query and its served outcome.

:class:`InfluenceQuery` is the unit of work an
:class:`~repro.service.service.InfluenceService` accepts: a graph
reference, the workload ``(k, epsilon)``, the algorithmic
:class:`~repro.imm.options.IMMOptions`, and the ``entropy`` that names
the query's RRR stream.  Two keys derive from it:

* the **coalescing key** — everything that shapes the RRR stream
  (graph fingerprint, model, elimination, entropy, fan-out/batch
  geometry).  Queries sharing it share one warm-start
  :class:`~repro.rrr.store.RRRStore` and one
  :class:`~repro.imm.coverage.CoverageIndex`, so a burst of ``(k, ε)``
  variants costs O(max θ) sampling total;
* the **result key** — the coalescing key plus everything that shapes
  the *answer* (``k``, ``epsilon``, bounds, selection strategy).  It
  addresses the tier-1 exact cache.

Because the substrate's stream is prefix-deterministic (a pure function
of the coalescing key), a served seed set is bit-identical to a direct
:func:`~repro.imm.imm.run_imm` against a fresh store with the same
identity — caching and coalescing are invisible in the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

from repro.graphs.csc import DirectedGraph
from repro.imm.options import IMMOptions
from repro.utils.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.imm.imm import IMMResult

#: how a query's answer was produced, from cheapest to most expensive
CACHE_TIERS = ("exact", "prefix", "cold")


@dataclass(frozen=True, eq=False)
class InfluenceQuery:
    """One influence-maximization request against the serving tier.

    Attributes
    ----------
    graph:
        A weighted :class:`~repro.graphs.csc.DirectedGraph`, or the name
        of a graph previously registered on the service
        (:meth:`InfluenceService.register_graph`).
    k:
        Seed-set size.
    epsilon:
        IMM approximation parameter.
    options:
        The algorithmic knob bundle for this query (model, elimination,
        bounds, selection strategy, fan-out, ...).
    entropy:
        Root entropy of the query's RRR stream (an int or tuple of
        ints).  Queries that should share sampling work must share it;
        it plays the role ``rng`` plays in direct ``run_imm`` calls.
    deadline:
        Wall-clock budget in seconds for this query, queue wait
        included (``None`` → the service's ``default_deadline``).  On
        expiry the query fails with
        :class:`~repro.utils.errors.DeadlineExceededError` and its
        worker slot is freed; deadlines never change the answer of a
        query that completes.
    """

    graph: Union[DirectedGraph, str]
    k: int
    epsilon: float
    options: IMMOptions = field(default_factory=IMMOptions)
    entropy: object = 0
    deadline: Union[float, None] = None

    def __post_init__(self):
        if not isinstance(self.graph, (DirectedGraph, str)):
            raise ValidationError(
                "graph must be a DirectedGraph or a registered graph name"
            )
        if self.k < 1:
            raise ValidationError(f"k must be >= 1, got {self.k}")
        if not 0.0 < float(self.epsilon) <= 1.0:
            raise ValidationError(
                f"epsilon must be in (0, 1], got {self.epsilon}"
            )
        if not isinstance(self.options, IMMOptions):
            raise ValidationError("options must be an IMMOptions instance")
        if self.deadline is not None and not float(self.deadline) > 0:
            raise ValidationError(
                f"deadline must be positive or None, got {self.deadline}"
            )

    # -- keys ----------------------------------------------------------------
    def coalesce_key(self, graph: DirectedGraph, chunk_sets: int) -> tuple:
        """The stream-identity tuple compatible queries share.

        Mirrors :meth:`repro.rrr.store.RRRStore.key` exactly — this
        tuple *is* the substrate store's registry key, which is what
        makes "coalesced queries share one store" true by construction.
        """
        from repro.rrr.store import _normalize_entropy

        return (
            graph.fingerprint(),
            self.options.model,
            self.options.eliminate_sources,
            _normalize_entropy(self.entropy),
            self.options.n_jobs,
            int(chunk_sets),
            self.options.batch_size,
        )

    def result_key(self, graph: DirectedGraph, chunk_sets: int) -> tuple:
        """The tier-1 exact-cache address: coalescing key + answer shape."""
        return self.coalesce_key(graph, chunk_sets) + (
            int(self.k),
            float(self.epsilon),
            self.options.bounds,
            self.options.selection_strategy,
        )


@dataclass
class QueryOutcome:
    """What the service returned for one query.

    ``cache_tier`` records how the answer was produced: ``"exact"``
    (tier-1 hit, zero work), ``"prefix"`` (the substrate's cached RRR
    prefix covered the whole run — only selection re-ran), or
    ``"cold"`` (new RRR sets were sampled).  ``sampled_sets`` counts the
    sets this query added to its substrate (0 for both hit tiers).

    ``degraded`` marks answers served from cache while the stream's
    circuit breaker was open: correct for *some* recent query on the
    stream, but possibly stale or computed at a relaxed epsilon
    (``result.epsilon`` tells which).  Non-degraded outcomes keep the
    bit-identical-to-``run_imm`` contract.
    """

    query: InfluenceQuery
    result: "IMMResult"
    cache_tier: str
    sampled_sets: int
    seconds: float
    coalesced: bool = False
    degraded: bool = False

    @property
    def seeds(self):
        """The selected seed vertices (convenience passthrough)."""
        return self.result.seeds
