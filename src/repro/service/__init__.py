"""repro.service — the asynchronous influence-query serving tier.

See :mod:`repro.service.service` for the architecture overview
(admission control, coalescing, multi-tier caching, deadlines, circuit
breakers, degraded serving) and ``docs/architecture.md`` ("Serving" and
"Serving resilience") for the operator's view.
"""

from repro.resilience.deadline import Deadline
from repro.service.breaker import CircuitBreaker
from repro.service.options import ServiceOptions
from repro.service.query import CACHE_TIERS, InfluenceQuery, QueryOutcome
from repro.service.service import InfluenceService
from repro.utils.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)

__all__ = [
    "CACHE_TIERS",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceededError",
    "InfluenceQuery",
    "InfluenceService",
    "QueryOutcome",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOptions",
    "ServiceOverloadedError",
]
