"""repro.service — the asynchronous influence-query serving tier.

See :mod:`repro.service.service` for the architecture overview
(admission control, coalescing, multi-tier caching) and
``docs/architecture.md`` ("Serving") for the operator's view.
"""

from repro.service.options import ServiceOptions
from repro.service.query import CACHE_TIERS, InfluenceQuery, QueryOutcome
from repro.service.service import InfluenceService
from repro.utils.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)

__all__ = [
    "CACHE_TIERS",
    "InfluenceQuery",
    "InfluenceService",
    "QueryOutcome",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOptions",
    "ServiceOverloadedError",
]
