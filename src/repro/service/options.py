"""Frozen configuration for the influence-query serving tier.

:class:`ServiceOptions` follows the same frozen-options pattern as
:class:`~repro.imm.options.IMMOptions` and
:class:`~repro.resilience.options.ResilienceOptions`: hashable, eagerly
validated, safely shareable.  It configures the *operational* envelope
of an :class:`~repro.service.service.InfluenceService` — concurrency,
queue depth, cache capacities — never the algorithm; algorithmic knobs
ride on each query's own ``IMMOptions``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class ServiceOptions:
    """Operational knobs of one :class:`InfluenceService`.

    Attributes
    ----------
    max_inflight:
        Worker threads executing queries concurrently.  Queries that
        share a coalescing key are serialized onto one substrate
        regardless, so raising this only helps mixed-key traffic.
    max_queue_depth:
        Queries allowed to wait for a worker.  A submit beyond this
        raises :class:`~repro.utils.errors.ServiceOverloadedError`
        (admission control / backpressure) instead of queueing unbounded.
    exact_cache_size:
        Capacity of the tier-1 exact result cache (LRU over
        ``(stream key, k, epsilon, bounds, selection strategy)`` →
        :class:`~repro.imm.imm.IMMResult`).  ``0`` disables the tier.
    max_substrates:
        Capacity of the tier-2 substrate table (LRU over coalescing key
        → shared :class:`~repro.rrr.store.RRRStore` +
        :class:`~repro.imm.coverage.CoverageIndex`).  Evicting a
        substrate releases its cached RRR stream; queries on that key
        start cold again.
    chunk_sets:
        Chunk granularity of the substrate stores (forwarded to
        :class:`~repro.rrr.store.RRRStore`); part of each stream's
        identity, so changing it changes every coalescing key.
    checkpoint_dir:
        Base directory for substrate chunk checkpoints (``None``
        disables persistence); a restarted service re-warms its
        substrates from disk.
    default_deadline:
        Wall-clock budget in seconds applied to queries that carry no
        deadline of their own (``None`` → unbounded).  Expiry fails the
        query with :class:`~repro.utils.errors.DeadlineExceededError`
        whether it is still queued or already sampling.
    breaker_failure_threshold:
        Consecutive substrate failures (worker crashes past the retry
        budget, OOM) on one stream identity before its circuit breaker
        opens.
    breaker_reset_timeout:
        Seconds an open breaker waits before letting one probe query
        through (half-open).
    degraded_serving:
        When ``True``, queries arriving at an open breaker are answered
        from cache where possible — exact hits, or a cached result for
        the same ``(stream, k)`` whose epsilon is within
        ``degraded_epsilon_slack`` — and the outcome is flagged
        ``degraded``.  When ``False`` (or on cache miss) they fail fast
        with :class:`~repro.utils.errors.CircuitOpenError`.
    degraded_epsilon_slack:
        Multiplicative slack for the relaxed cache lookup: a cached
        answer computed at ``epsilon' <= slack * epsilon`` may stand in
        for ``epsilon`` while degraded.  ``1.0`` restricts degraded
        serving to exact-tier hits.
    memory_budget_mb:
        Process memory budget in MiB, installed on the shared governor
        (:mod:`repro.memory.budget`) when the service starts.  ``None``
        leaves whatever ``REPRO_MEMORY_BUDGET_MB`` (or an earlier
        explicit setting) resolved.
    shed_on_memory_pressure:
        When ``True`` (default), a query arriving while the governor is
        overcommitted — *after* a demotion rebalance failed to free
        enough RAM — is answered degraded from cache where possible or
        rejected with
        :class:`~repro.utils.errors.ServiceOverloadedError`, instead of
        being admitted toward a host OOM.  No-op while no budget is
        configured.
    """

    max_inflight: int = 2
    max_queue_depth: int = 64
    exact_cache_size: int = 128
    max_substrates: int = 8
    chunk_sets: int = 1024
    checkpoint_dir: str | None = None
    default_deadline: float | None = None
    breaker_failure_threshold: int = 3
    breaker_reset_timeout: float = 30.0
    degraded_serving: bool = True
    degraded_epsilon_slack: float = 2.0
    memory_budget_mb: float | None = None
    shed_on_memory_pressure: bool = True

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ValidationError("max_inflight must be >= 1")
        if self.max_queue_depth < 1:
            raise ValidationError("max_queue_depth must be >= 1")
        if self.exact_cache_size < 0:
            raise ValidationError("exact_cache_size must be >= 0")
        if self.max_substrates < 1:
            raise ValidationError("max_substrates must be >= 1")
        if self.chunk_sets < 1:
            raise ValidationError("chunk_sets must be >= 1")
        if self.default_deadline is not None and not self.default_deadline > 0:
            raise ValidationError("default_deadline must be positive or None")
        if self.breaker_failure_threshold < 1:
            raise ValidationError("breaker_failure_threshold must be >= 1")
        if not self.breaker_reset_timeout > 0:
            raise ValidationError("breaker_reset_timeout must be positive")
        if not self.degraded_epsilon_slack >= 1.0:
            raise ValidationError("degraded_epsilon_slack must be >= 1.0")
        if self.memory_budget_mb is not None and not self.memory_budget_mb > 0:
            raise ValidationError("memory_budget_mb must be positive or None")

    def replace(self, **changes) -> "ServiceOptions":
        """A copy with ``changes`` applied (frozen-dataclass convenience)."""
        return replace(self, **changes)
