"""Frozen configuration for the influence-query serving tier.

:class:`ServiceOptions` follows the same frozen-options pattern as
:class:`~repro.imm.options.IMMOptions` and
:class:`~repro.resilience.options.ResilienceOptions`: hashable, eagerly
validated, safely shareable.  It configures the *operational* envelope
of an :class:`~repro.service.service.InfluenceService` — concurrency,
queue depth, cache capacities — never the algorithm; algorithmic knobs
ride on each query's own ``IMMOptions``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class ServiceOptions:
    """Operational knobs of one :class:`InfluenceService`.

    Attributes
    ----------
    max_inflight:
        Worker threads executing queries concurrently.  Queries that
        share a coalescing key are serialized onto one substrate
        regardless, so raising this only helps mixed-key traffic.
    max_queue_depth:
        Queries allowed to wait for a worker.  A submit beyond this
        raises :class:`~repro.utils.errors.ServiceOverloadedError`
        (admission control / backpressure) instead of queueing unbounded.
    exact_cache_size:
        Capacity of the tier-1 exact result cache (LRU over
        ``(stream key, k, epsilon, bounds, selection strategy)`` →
        :class:`~repro.imm.imm.IMMResult`).  ``0`` disables the tier.
    max_substrates:
        Capacity of the tier-2 substrate table (LRU over coalescing key
        → shared :class:`~repro.rrr.store.RRRStore` +
        :class:`~repro.imm.coverage.CoverageIndex`).  Evicting a
        substrate releases its cached RRR stream; queries on that key
        start cold again.
    chunk_sets:
        Chunk granularity of the substrate stores (forwarded to
        :class:`~repro.rrr.store.RRRStore`); part of each stream's
        identity, so changing it changes every coalescing key.
    checkpoint_dir:
        Base directory for substrate chunk checkpoints (``None``
        disables persistence); a restarted service re-warms its
        substrates from disk.
    """

    max_inflight: int = 2
    max_queue_depth: int = 64
    exact_cache_size: int = 128
    max_substrates: int = 8
    chunk_sets: int = 1024
    checkpoint_dir: str | None = None

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ValidationError("max_inflight must be >= 1")
        if self.max_queue_depth < 1:
            raise ValidationError("max_queue_depth must be >= 1")
        if self.exact_cache_size < 0:
            raise ValidationError("exact_cache_size must be >= 0")
        if self.max_substrates < 1:
            raise ValidationError("max_substrates must be >= 1")
        if self.chunk_sets < 1:
            raise ValidationError("chunk_sets must be >= 1")

    def replace(self, **changes) -> "ServiceOptions":
        """A copy with ``changes`` applied (frozen-dataclass convenience)."""
        return replace(self, **changes)
