"""repro — reproduction of *eIM: GPU-Accelerated Efficient Influence
Maximization in Large-Scale Social Networks* (SC Workshops '25).

Quick start::

    from repro import IMMOptions, load_dataset, assign_ic_weights, run_imm

    graph = assign_ic_weights(load_dataset("WV", scale="tiny", rng=0))
    result = run_imm(graph, k=10, epsilon=0.2, rng=0,
                     options=IMMOptions(model="IC"))
    print(result.seeds, result.influence_estimate())

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.graphs` — CSC graphs, generators, the 16-dataset registry;
* :mod:`repro.encoding` — log encoding (bit-packing) of arrays/graphs;
* :mod:`repro.diffusion` — forward IC/LT cascades, spread estimation;
* :mod:`repro.rrr` — reverse-reachable set sampling and storage;
* :mod:`repro.imm` — the IMM algorithm plus RIS and CELF baselines;
* :mod:`repro.gpu` — the simulated SIMT device and cost models;
* :mod:`repro.engines` — eIM, gIM, cuRipples on the simulated device;
* :mod:`repro.experiments` — drivers for every paper table and figure;
* :mod:`repro.obs` — span tracing, metrics, and profile exporters
  (no-op unless installed; see ``run_imm(..., profile=True)``);
* :mod:`repro.resilience` — fault-tolerant sampling: supervised
  retries, serial degradation, RRR-store checkpointing, and the
  ``REPRO_FAULTS`` fault-injection harness.
"""

from repro.diffusion import estimate_spread, simulate_ic, simulate_lt
from repro.encoding import PackedArray, encode_graph, pack, required_bits
from repro.engines import CuRipplesEngine, EIMEngine, GIMEngine
from repro.graphs import (
    DATASETS,
    DirectedGraph,
    assign_ic_weights,
    assign_lt_weights,
    load_dataset,
    load_edgelist,
)
from repro.imm import (
    BoundsConfig,
    CoverageIndex,
    IMMOptions,
    IMMResult,
    InfluenceOracle,
    run_celf_greedy,
    run_imm,
    run_ris,
    run_tim,
    select_seeds,
)
from repro.resilience import ResilienceOptions, ResilienceReport
from repro.rrr import RRRCollection, sample_rrr_ic, sample_rrr_lt

__version__ = "1.0.0"

__all__ = [
    "BoundsConfig",
    "CoverageIndex",
    "CuRipplesEngine",
    "DATASETS",
    "DirectedGraph",
    "EIMEngine",
    "GIMEngine",
    "IMMOptions",
    "IMMResult",
    "InfluenceOracle",
    "PackedArray",
    "RRRCollection",
    "ResilienceOptions",
    "ResilienceReport",
    "__version__",
    "assign_ic_weights",
    "assign_lt_weights",
    "encode_graph",
    "estimate_spread",
    "load_dataset",
    "load_edgelist",
    "pack",
    "required_bits",
    "run_celf_greedy",
    "run_imm",
    "run_ris",
    "run_tim",
    "sample_rrr_ic",
    "sample_rrr_lt",
    "select_seeds",
    "simulate_ic",
    "simulate_lt",
]
