"""repro — reproduction of *eIM: GPU-Accelerated Efficient Influence
Maximization in Large-Scale Social Networks* (SC Workshops '25).

The package's stable surface lives in :mod:`repro.api` and is
re-exported here.  Quick start::

    from repro.api import IMMOptions, run_imm
    from repro.api import assign_ic_weights, load_dataset

    graph = assign_ic_weights(load_dataset("WV", scale="tiny", rng=0))
    result = run_imm(graph, k=10, epsilon=0.2,
                     options=IMMOptions(model="IC"))
    print(result.seeds, result.influence_estimate())

Serving::

    from repro.api import InfluenceService, InfluenceQuery

    service = InfluenceService()
    service.register_graph("wv", graph)
    outcome = service.query(InfluenceQuery("wv", k=10, epsilon=0.2))

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.api` — the blessed public surface (stability-guaranteed);
* :mod:`repro.graphs` — CSC graphs, generators, the 16-dataset registry;
* :mod:`repro.encoding` — log encoding (bit-packing) of arrays/graphs;
* :mod:`repro.diffusion` — forward IC/LT cascades, spread estimation;
* :mod:`repro.rrr` — reverse-reachable set sampling and storage;
* :mod:`repro.imm` — the IMM algorithm plus RIS and CELF baselines;
* :mod:`repro.gpu` — the simulated SIMT device and cost models;
* :mod:`repro.engines` — eIM, gIM, cuRipples on the simulated device;
* :mod:`repro.service` — the asynchronous influence-query serving tier
  (admission control, coalescing, multi-tier result cache);
* :mod:`repro.experiments` — drivers for every paper table and figure;
* :mod:`repro.obs` — span tracing, metrics, and profile exporters
  (no-op unless installed; see ``run_imm(..., profile=True)``);
* :mod:`repro.resilience` — fault-tolerant sampling: supervised
  retries, serial degradation, RRR-store checkpointing, and the
  ``REPRO_FAULTS`` fault-injection harness.
"""

from repro.api import *  # noqa: F401,F403 — the blessed surface
from repro.api import __all__ as _api_all

# Legacy convenience re-exports.  These predate the repro.api facade and
# stay importable from the top level for compatibility, but they are NOT
# part of the stable surface — prefer the submodules (repro.diffusion,
# repro.encoding, repro.imm, repro.rrr) or repro.api.
from repro.diffusion import estimate_spread, simulate_ic, simulate_lt
from repro.encoding import PackedArray, encode_graph, pack, required_bits
from repro.imm import (
    CoverageIndex,
    InfluenceOracle,
    run_celf_greedy,
    run_ris,
    run_tim,
    select_seeds,
)
from repro.rrr import RRRCollection, sample_rrr_ic, sample_rrr_lt

__version__ = "1.1.0"

__all__ = sorted(
    set(_api_all)
    | {
        "CoverageIndex",
        "InfluenceOracle",
        "PackedArray",
        "RRRCollection",
        "__version__",
        "encode_graph",
        "estimate_spread",
        "pack",
        "required_bits",
        "run_celf_greedy",
        "run_ris",
        "run_tim",
        "sample_rrr_ic",
        "sample_rrr_lt",
        "select_seeds",
        "simulate_ic",
        "simulate_lt",
    }
)
