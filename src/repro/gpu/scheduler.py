"""Block-level scheduling of per-set traversal work (§3.2's round robin).

RRR generation assigns sets to blocks dynamically: whenever a block
finishes a set it grabs the next one (``while count < theta``).  That is
classic list scheduling, simulated exactly with a min-heap of block finish
times for moderate set counts and bounded analytically for very large
ones (list scheduling's makespan lies within ``max_cost`` of the ideal
``total / workers``, and the dynamic round robin self-balances, so the
analytic form is the same bound the exact simulation converges to).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.utils.errors import ValidationError

#: Above this many work items the heap simulation gives way to the
#: analytic bound (the two agree to <1% well before this point).
EXACT_LIMIT = 200_000


def makespan(costs: np.ndarray, num_workers: int, exact_limit: int = EXACT_LIMIT) -> float:
    """Completion time of list-scheduling ``costs`` onto ``num_workers``.

    Items are assigned in order to the earliest-free worker, mirroring the
    kernels' dynamic set assignment.
    """
    if num_workers < 1:
        raise ValidationError("need at least one worker")
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size == 0:
        return 0.0
    if np.any(costs < 0):
        raise ValidationError("work costs must be non-negative")
    total = float(costs.sum())
    longest = float(costs.max())
    if costs.size <= num_workers:
        return longest
    if costs.size > exact_limit:
        # ideal balance plus the straggler bound of greedy list scheduling
        return max(total / num_workers, longest) + longest * (1.0 - 1.0 / num_workers)
    finish = [0.0] * num_workers
    heapq.heapify(finish)
    for c in costs.tolist():
        earliest = heapq.heappop(finish)
        heapq.heappush(finish, earliest + c)
    return max(finish)
