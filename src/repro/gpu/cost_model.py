"""Cycle-cost model for the three engines' kernels.

Every method converts *operation counts that the real algorithms
produced* (sampler traces, greedy-selection statistics) into device
cycles using the :class:`DeviceSpec` throughput table.  The engines
differ only in which methods they call — global vs shared queues,
single vs double store copies, thread vs warp scanning, packed vs raw
accesses, device-resident vs host-offloaded RRR sets — which is exactly
the design axis the paper evaluates.

All per-set methods are vectorized over NumPy arrays (one entry per RRR
set); selection methods are vectorized over greedy iterations.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.imm.seed_selection import SelectionStats
from repro.utils.errors import ValidationError


def _pack_factor(encoded: bool, element_bits: int) -> float:
    """Bandwidth scale of packed accesses: bits moved / 32."""
    if not encoded:
        return 1.0
    return max(element_bits, 1) / 32.0


class CostModel:
    """Charges cycles for the kernel operations of §3.2-§3.5."""

    def __init__(self, spec: DeviceSpec):
        self.spec = spec

    # ------------------------------------------------------------------
    # sampling-phase building blocks (per attempted RRR set)
    # ------------------------------------------------------------------
    def ic_expansion_cycles(
        self, edges_examined: np.ndarray, encoded: bool, element_bits: int = 32
    ) -> np.ndarray:
        """Warp-parallel in-neighbor probing (Alg. 2 lines 15-20).

        Per examined edge: one coalesced CSC read (scaled by the packing
        factor when the graph is log-encoded, plus a 2-ALU decode), one
        RNG draw, compare, and an amortized visited-bitmask check.
        """
        s = self.spec
        per_edge = (
            s.global_coalesced_per_elem * _pack_factor(encoded, element_bits)
            + (s.alu_cycles if encoded else 0.0)  # field extract
            + s.rng_cycles
            + 2.0 * s.alu_cycles
            + s.global_random_per_elem / 8.0  # M bitmask probe, mostly cached
        )
        return np.asarray(edges_examined, dtype=np.float64) * per_edge / s.warp_size

    def lt_expansion_cycles(
        self,
        edges_examined: np.ndarray,
        steps: np.ndarray,
        encoded: bool,
        element_bits: int = 32,
        use_prefix_scan: bool = True,
    ) -> np.ndarray:
        """LT walk advancement (§3.3).

        Each step reads the current vertex's whole in-edge segment and
        picks the activating neighbor either with the shfl_up prefix scan
        (``log2(warp)`` shuffles per 32-edge chunk) or with the serialized
        atomic-accumulation variant the paper rejects (one shared-atomic
        round trip per edge).
        """
        s = self.spec
        edges = np.asarray(edges_examined, dtype=np.float64)
        steps = np.asarray(steps, dtype=np.float64)
        read = edges * (
            s.global_coalesced_per_elem * _pack_factor(encoded, element_bits)
            + (s.alu_cycles if encoded else 0.0)
        ) / s.warp_size
        if use_prefix_scan:
            chunks = np.ceil(np.maximum(edges, 1.0) / s.warp_size)
            select = chunks * 5.0 * s.shfl_cycles + steps * s.rng_cycles
        else:
            select = edges * s.atomic_shared_cycles + steps * s.rng_cycles
        return read + select

    def queue_ops_cycles(
        self,
        sizes: np.ndarray,
        queue: str,
        shared_capacity_elems: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Enqueue/dequeue traffic for the BFS queue.

        ``queue="global"`` is eIM's pre-allocated global pool (§3.2):
        every enqueue is one coalesced global write plus the tail atomic.
        ``queue="shared"`` is gIM's design: cheap shared-memory ops until
        the queue overflows the block's shared capacity, after which each
        overflow chunk costs a device ``malloc`` plus a bulk copy.

        Returns ``(cycles_per_set, spill_allocations_per_set)``.
        """
        s = self.spec
        sizes = np.asarray(sizes, dtype=np.float64)
        if queue == "global":
            cycles = sizes * (s.global_coalesced_per_elem + s.atomic_global_cycles / s.warp_size)
            return cycles, np.zeros_like(sizes)
        if queue != "shared":
            raise ValidationError(f"unknown queue kind {queue!r}")
        if shared_capacity_elems is None or shared_capacity_elems < 1:
            raise ValidationError("shared queue needs a positive capacity")
        in_shared = np.minimum(sizes, shared_capacity_elems)
        overflow = np.maximum(sizes - shared_capacity_elems, 0.0)
        spills = np.ceil(overflow / shared_capacity_elems)
        cycles = (
            in_shared * (s.shared_per_elem + s.atomic_shared_cycles / s.warp_size)
            + overflow * (s.global_coalesced_per_elem + s.atomic_global_cycles / s.warp_size)
            + spills * (s.malloc_cycles + shared_capacity_elems * s.global_coalesced_per_elem / s.warp_size)
        )
        return cycles, spills

    def sort_cycles(self, sizes: np.ndarray) -> np.ndarray:
        """In-warp bitonic sort of each finished queue (§3.2's ascending
        insertion): ``size * log2(size)^2`` comparator passes across the
        warp."""
        s = self.spec
        sizes = np.asarray(sizes, dtype=np.float64)
        logs = np.log2(np.maximum(sizes, 2.0))
        return s.sort_pass_cycles * sizes * logs * logs

    def store_cycles(
        self,
        sizes: np.ndarray,
        encoded: bool,
        element_bits: int,
        copies: int = 1,
    ) -> np.ndarray:
        """Copy a finished queue into R and bump C (Alg. 2 lines 21-28).

        ``copies=2`` models gIM's temporary-then-final double write.
        Packed stores move fewer bytes but pay a 2-ALU field insert per
        element; the per-vertex ``atomicAdd(C[v])`` is address-scattered,
        so contention is charged at 1/4 the serialized atomic rate.
        """
        s = self.spec
        sizes = np.asarray(sizes, dtype=np.float64)
        write = (
            s.global_coalesced_per_elem * _pack_factor(encoded, element_bits)
            + (s.alu_cycles if encoded else 0.0)  # field insert
        )
        per_set = (
            sizes * copies * write / s.warp_size  # all 32 lanes cooperate
            + sizes * (s.atomic_global_cycles / 4.0) / s.warp_size
            + s.atomic_global_cycles  # the offset atomic, once per set
        )
        return per_set

    def per_set_fixed_cycles(self, num_sets: int) -> float:
        """Source draw + init per set (Alg. 2 lines 5-10)."""
        return self.spec.rng_cycles + 4.0 * self.spec.alu_cycles

    # ------------------------------------------------------------------
    # seed-selection building blocks (per greedy iteration)
    # ------------------------------------------------------------------
    def argmax_cycles(self, n: int, iterations: int) -> float:
        """Grid-wide argmax over the count array C, once per iteration."""
        s = self.spec
        # runs inside the selection kernel (atomicMax reduction), so no
        # per-iteration launch overhead
        per_iter = (
            np.ceil(n / s.launchable_threads) * s.global_coalesced_per_elem * s.warp_size
            + np.log2(max(n, 2)) * s.alu_cycles
        )
        return float(per_iter * iterations)

    def thread_scan_cycles(
        self, stats: SelectionStats, encoded: bool, element_bits: int = 32
    ) -> float:
        """eIM's selection scan (Alg. 3): one *thread* per RRR set, binary
        search for the selected vertex, then count decrements for found
        sets."""
        s = self.spec
        depth = np.ceil(np.log2(stats.avg_set_size + 2.0))
        probe = s.global_random_per_elem + (2.0 * s.alu_cycles if encoded else 0.0)
        c_t = depth * probe + 2.0 * s.alu_cycles
        iters = np.ceil(stats.sets_scanned / s.launchable_threads)
        scan = iters * (c_t + s.scan_iteration_overhead_cycles)
        update = self._update_cycles(stats, encoded, element_bits)
        return float(scan.sum() + update)

    def warp_scan_cycles(
        self, stats: SelectionStats, encoded: bool = False, element_bits: int = 32
    ) -> float:
        """gIM's selection scan: one *warp* per RRR set, coalesced linear
        sweep with a ballot."""
        s = self.spec
        chunks = np.ceil(max(stats.avg_set_size, 1.0) / s.warp_size)
        c_w = chunks * (
            s.global_coalesced_per_elem * _pack_factor(encoded, element_bits)
            + s.alu_cycles
            + s.shfl_cycles
        )
        iters = np.ceil(stats.sets_scanned / s.launchable_warps)
        scan = iters * (c_w + s.scan_iteration_overhead_cycles)
        update = self._update_cycles(stats, encoded, element_bits)
        return float(scan.sum() + update)

    def bitset_scan_cycles(
        self, stats: SelectionStats, encoded: bool = False, element_bits: int = 32
    ) -> float:
        """Word-parallel selection scan: the covered flags and each
        vertex's set membership live in packed 64-bit words, so one
        iteration is popcount(membership AND NOT covered) streamed over
        ``ceil(theta / 64)`` words instead of a probe per set.

        Charged as two coalesced word reads + one write per word (the
        AND-NOT and the covered OR-back) plus one popcount ALU op, with
        all launchable threads cooperating; count updates are identical
        to the other scans.
        """
        s = self.spec
        words = np.ceil(np.maximum(stats.sets_scanned, 1.0) / 64.0)
        per_word = 3.0 * s.global_coalesced_per_elem + 2.0 * s.alu_cycles
        iters = np.ceil(words / s.launchable_threads)
        scan = iters * (per_word * s.warp_size + s.scan_iteration_overhead_cycles)
        update = self._update_cycles(stats, encoded, element_bits)
        return float(scan.sum() + update)

    def _update_cycles(
        self, stats: SelectionStats, encoded: bool, element_bits: int
    ) -> float:
        """Decrementing counts of covered sets' members (Alg. 3 lines 10-12)."""
        s = self.spec
        found = np.maximum(stats.sets_found, 1)
        per_elem = (
            s.global_coalesced_per_elem * _pack_factor(encoded, element_bits)
            + (2.0 * s.alu_cycles if encoded else 0.0)
            + s.atomic_global_cycles / 4.0
        )
        # found sets are processed concurrently by their finder threads;
        # the iteration waits on the average per-thread share
        per_iter = (stats.elements_decremented / found) * per_elem
        return float(per_iter.sum())

    def cpu_scan_cycles(self, stats: SelectionStats, set_fraction: float) -> float:
        """cuRipples' host-side share of selection: the CPU linearly scans
        its ``set_fraction`` of the RRR sets every greedy iteration."""
        if not 0.0 <= set_fraction <= 1.0:
            raise ValidationError("set_fraction must be in [0, 1]")
        s = self.spec
        per_set = max(stats.avg_set_size, 1.0) * s.cpu_cycles_per_element
        scans = stats.sets_scanned.astype(np.float64) * set_fraction
        cores = 16.0  # the paper's 16-core host
        return float((scans * per_set / cores).sum())
