"""Device geometry and the simulated-device facade.

Defaults model the paper's NVIDIA RTX A6000 (84 SMs, 48 GB GDDR6, PCIe
4.0 x16 host link).  :meth:`DeviceSpec.scaled` shrinks *memory capacity*
along with the synthetic datasets so out-of-memory boundaries appear at
the same workload-to-capacity ratios as on real hardware; compute
geometry is left alone because occupancy ratios (threads vs warps, the
Fig. 3 crossover) are scale-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.gpu.memory import GlobalMemoryPool
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class DeviceSpec:
    """Geometry, capacities and throughput-cost table of a simulated GPU.

    Cost entries are *issue-slot* cycles per warp-level operation with
    memory latency amortized by occupancy — a throughput model, the right
    regime for kernels with thousands of resident warps.
    """

    name: str = "RTX A6000 (simulated)"
    num_sms: int = 84
    max_blocks_per_sm: int = 16
    max_threads_per_sm: int = 1536
    warp_size: int = 32
    shared_mem_per_block: int = 48 * 1024
    global_mem_bytes: int = 48 * 2**30
    clock_ghz: float = 1.8
    pcie_gbytes_per_s: float = 16.0

    # throughput costs, in cycles
    global_coalesced_per_elem: float = 2.0
    global_random_per_elem: float = 24.0
    shared_per_elem: float = 1.0
    atomic_global_cycles: float = 30.0
    atomic_shared_cycles: float = 8.0
    shfl_cycles: float = 1.0
    alu_cycles: float = 1.0
    rng_cycles: float = 8.0
    malloc_cycles: float = 4000.0
    transfer_setup_cycles: float = 20000.0
    kernel_launch_cycles: float = 5000.0
    #: fixed per-scan-iteration overhead (loop bookkeeping, divergence
    #: reconvergence); the term that makes warp-based scanning lose at
    #: large set counts (Fig. 3)
    scan_iteration_overhead_cycles: float = 12.0
    #: per-element-per-log-pass constant of the in-warp bitonic sort eIM
    #: runs before storing each set (§3.2)
    sort_pass_cycles: float = 0.25
    #: CPU element-processing cost relative to a GPU cycle (cuRipples'
    #: host-side remainder of seed selection)
    cpu_cycles_per_element: float = 60.0

    def __post_init__(self):
        if self.num_sms < 1 or self.warp_size < 1:
            raise ValidationError("device geometry must be positive")
        if self.global_mem_bytes < 1:
            raise ValidationError("global memory must be positive")

    # -- occupancy ----------------------------------------------------------
    @property
    def resident_blocks(self) -> int:
        """Concurrent blocks when each block is a single warp (§3.2)."""
        per_sm = min(self.max_blocks_per_sm, self.max_threads_per_sm // self.warp_size)
        return self.num_sms * per_sm

    @property
    def launchable_threads(self) -> int:
        """T_n of §3.5."""
        return self.num_sms * self.max_threads_per_sm

    @property
    def launchable_warps(self) -> int:
        """W_n of §3.5."""
        return self.launchable_threads // self.warp_size

    # -- conversions -----------------------------------------------------------
    def seconds(self, cycles: float) -> float:
        """Convert modeled cycles to simulated seconds."""
        return cycles / (self.clock_ghz * 1e9)

    def transfer_cycles(self, nbytes: int) -> float:
        """Host<->device copy cost over the PCIe link."""
        if nbytes < 0:
            raise ValidationError("cannot transfer negative bytes")
        bandwidth_cycles = nbytes * self.clock_ghz / self.pcie_gbytes_per_s
        return self.transfer_setup_cycles + bandwidth_cycles

    def scaled(self, memory_divisor: float, compute_divisor: float | None = None) -> "DeviceSpec":
        """A proportionally smaller device for scaled-down datasets.

        Dividing only memory would leave an 84-SM GPU with megabytes of
        RAM — per-SM overheads (eIM's per-block queue pool, gIM's
        temporaries) would be wildly out of proportion.  Real product
        lines shrink both together (Jetson-class parts pair 1-2 SMs with
        a few GB), so ``compute_divisor`` defaults to ``memory_divisor``;
        SM count is floored at 2 so warp/thread occupancy ratios — the
        Fig. 3 axis — stay meaningful.
        """
        if memory_divisor <= 0:
            raise ValidationError("memory_divisor must be positive")
        if compute_divisor is None:
            compute_divisor = memory_divisor
        if compute_divisor <= 0:
            raise ValidationError("compute_divisor must be positive")
        return replace(
            self,
            name=f"{self.name} / mem÷{memory_divisor:g} sm÷{compute_divisor:g}",
            global_mem_bytes=max(1, int(self.global_mem_bytes / memory_divisor)),
            num_sms=max(2, int(round(self.num_sms / compute_divisor))),
        )


#: The paper's evaluation GPU.
RTX_A6000 = DeviceSpec()


class SimulatedDevice:
    """A device instance: spec + live memory pool + cycle ledger.

    Engines allocate through :attr:`memory` (raising
    :class:`~repro.utils.errors.DeviceOOMError` past capacity) and record
    kernel costs through :meth:`charge`; :attr:`timeline` keeps the
    per-kernel breakdown the experiment reports print.
    """

    def __init__(self, spec: DeviceSpec | None = None):
        self.spec = spec or RTX_A6000
        self.memory = GlobalMemoryPool(self.spec.global_mem_bytes)
        self.timeline: list[tuple[str, float]] = []

    def charge(self, label: str, cycles: float) -> float:
        """Record ``cycles`` of work under ``label``; returns the cycles."""
        if cycles < 0:
            raise ValidationError(f"negative cycle charge for {label!r}")
        self.timeline.append((label, float(cycles)))
        return float(cycles)

    @property
    def elapsed_cycles(self) -> float:
        """Total cycles charged so far."""
        return float(sum(c for _, c in self.timeline))

    def elapsed_seconds(self) -> float:
        return self.spec.seconds(self.elapsed_cycles)

    def breakdown(self) -> dict[str, float]:
        """Cycles grouped by label."""
        out: dict[str, float] = {}
        for label, cycles in self.timeline:
            out[label] = out.get(label, 0.0) + cycles
        return out
