"""Warp-level primitives implemented with the hardware's actual dataflow.

§3.3 replaces atomic accumulation with a ``__shfl_up_sync`` inclusive
prefix scan: each lane adds the value from 1, then 2, then 4, ... lanes
below it, converging in ``log2(warp_size)`` shuffle rounds.  These
functions run that exact doubling dataflow (not ``np.cumsum``) so tests
can verify the device algorithm itself, and they report the shuffle-round
count the cost models charge.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError

WARP_SIZE = 32


def warp_inclusive_scan(values: np.ndarray, warp_size: int = WARP_SIZE) -> tuple[np.ndarray, int]:
    """Inclusive prefix sum via the shfl_up doubling network.

    Returns ``(scanned, shuffle_rounds)``; input length must not exceed
    the warp size (one value per lane).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size > warp_size:
        raise ValidationError(f"warp scan takes <= {warp_size} lane values")
    acc = values.copy()
    rounds = 0
    offset = 1
    while offset < values.size:
        shifted = np.zeros_like(acc)
        shifted[offset:] = acc[:-offset]  # lane i receives lane i-offset
        acc += shifted
        offset *= 2
        rounds += 1
    return acc, rounds


def warp_reduce_sum(values: np.ndarray, warp_size: int = WARP_SIZE) -> tuple[float, int]:
    """Butterfly (shfl_down) warp sum; returns ``(total, shuffle_rounds)``."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size > warp_size:
        raise ValidationError(f"warp reduce takes <= {warp_size} lane values")
    acc = values.copy()
    rounds = 0
    width = 1
    while width < acc.size:
        shifted = np.zeros_like(acc)
        shifted[:-width] = acc[width:]
        acc += shifted
        width *= 2
        rounds += 1
    return float(acc[0]) if acc.size else 0.0, rounds


def warp_ballot(predicate: np.ndarray, warp_size: int = WARP_SIZE) -> int:
    """``__ballot_sync``: bitmask of lanes whose predicate holds."""
    predicate = np.asarray(predicate, dtype=bool)
    if predicate.ndim != 1 or predicate.size > warp_size:
        raise ValidationError(f"ballot takes <= {warp_size} lane predicates")
    mask = 0
    for lane, flag in enumerate(predicate):
        if flag:
            mask |= 1 << lane
    return mask


def lt_select_activating_lane(
    weights: np.ndarray, tau: float, warp_size: int = WARP_SIZE
) -> tuple[int, int]:
    """§3.3's activating-neighbor pick: the first lane whose *inclusive*
    prefix sum crosses ``tau`` while its *exclusive* sum stays below.

    Returns ``(lane_index or -1, shuffle_rounds)``.
    """
    scanned, rounds = warp_inclusive_scan(weights, warp_size)
    exclusive = scanned - np.asarray(weights, dtype=np.float64)
    crossing = (scanned >= tau) & (exclusive < tau)
    lanes = np.flatnonzero(crossing)
    return (int(lanes[0]) if lanes.size else -1), rounds
