"""Global-memory pool with allocation tracking and OOM faults.

gIM's failure mode in the paper's Tables 2-5 is exhausting device memory
through its raw RRR store and repeated dynamic allocations; this pool
makes that observable: every engine allocation is labeled and counted,
and exceeding capacity raises :class:`DeviceOOMError` exactly where a
CUDA ``cudaMalloc`` would fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.errors import DeviceOOMError, ValidationError


@dataclass
class Allocation:
    """Handle to one live device allocation."""

    label: str
    nbytes: int
    alloc_id: int
    freed: bool = False


class GlobalMemoryPool:
    """Tracks simulated device allocations against a fixed capacity."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 1:
            raise ValidationError("capacity must be positive")
        self.capacity = int(capacity_bytes)
        self.in_use = 0
        self.peak = 0
        self.alloc_count = 0
        self._live: dict[int, Allocation] = {}

    def allocate(self, nbytes: int, label: str = "") -> Allocation:
        """Reserve ``nbytes``; raises :class:`DeviceOOMError` past capacity."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValidationError(f"cannot allocate {nbytes} bytes")
        if self.in_use + nbytes > self.capacity:
            raise DeviceOOMError(nbytes, self.in_use, self.capacity, label)
        self.alloc_count += 1
        alloc = Allocation(label, nbytes, self.alloc_count)
        self._live[alloc.alloc_id] = alloc
        self.in_use += nbytes
        self.peak = max(self.peak, self.in_use)
        return alloc

    def free(self, alloc: Allocation) -> None:
        """Release an allocation (idempotent frees are an error)."""
        if alloc.freed or alloc.alloc_id not in self._live:
            raise ValidationError(f"double free of allocation {alloc.alloc_id}")
        alloc.freed = True
        del self._live[alloc.alloc_id]
        self.in_use -= alloc.nbytes

    def live_bytes_by_label(self) -> dict[str, int]:
        """Current usage grouped by allocation label."""
        out: dict[str, int] = {}
        for alloc in self._live.values():
            out[alloc.label] = out.get(alloc.label, 0) + alloc.nbytes
        return out

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.in_use
