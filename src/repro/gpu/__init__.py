"""Simulated SIMT execution substrate.

The paper's engine comparisons are CUDA-vs-CUDA on an RTX A6000; this
package replaces the hardware with an analytic device model so the same
comparisons run anywhere:

* :class:`DeviceSpec` — SM/warp/occupancy geometry, memory capacities and
  a throughput-oriented cycle-cost table;
* :class:`GlobalMemoryPool` — allocation tracking with OOM faults (the
  mechanism behind the paper's ``OOM`` table entries);
* warp primitives — an actual ``__shfl_up_sync``-style inclusive scan and
  ballot, used by the LT kernel model and validated against NumPy;
* :class:`CostModel` — cycles charged per memory transaction class,
  atomic, RNG draw, shuffle, dynamic allocation and PCIe transfer;
* :func:`makespan` — list scheduling of per-set traversal costs onto the
  device's resident blocks (the round-robin dynamic assignment of §3.2).

Absolute cycle counts are a model, not a measurement; every paper-shape
claim (who wins, crossovers, OOM onsets) depends only on cost *ratios*
that follow from operation counts the real algorithms produce.
"""

from repro.gpu.atomics import AtomicCounter
from repro.gpu.cost_model import CostModel
from repro.gpu.device import RTX_A6000, DeviceSpec, SimulatedDevice
from repro.gpu.memory import Allocation, GlobalMemoryPool
from repro.gpu.multi import MultiDeviceResult, run_multi_device_eim
from repro.gpu.scheduler import makespan
from repro.gpu.warp import warp_ballot, warp_inclusive_scan, warp_reduce_sum

__all__ = [
    "Allocation",
    "AtomicCounter",
    "CostModel",
    "DeviceSpec",
    "GlobalMemoryPool",
    "MultiDeviceResult",
    "RTX_A6000",
    "SimulatedDevice",
    "makespan",
    "run_multi_device_eim",
    "warp_ballot",
    "warp_inclusive_scan",
    "warp_reduce_sum",
]
