"""The SIMT machine: warp context, device arrays and operation counters.

A kernel here is an ordinary Python function written in *explicit SIMT
style*: every value that differs per lane is a NumPy vector of length
``warp_size`` and every control decision carries an active-lane mask,
exactly as a CUDA kernel's divergence semantics require.  The
:class:`WarpContext` supplies the hardware primitives — per-lane RNG,
warp-serialized atomics, shuffles, ballots — and counts each operation
class so a kernel run can be replayed through the analytic cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.rng import as_generator


@dataclass
class OpCounts:
    """Operation tallies of one kernel execution."""

    global_reads: int = 0
    global_writes: int = 0
    shared_ops: int = 0
    atomics: int = 0
    rng_draws: int = 0
    shuffles: int = 0
    ballots: int = 0
    divergent_branches: int = 0

    def merged(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            self.global_reads + other.global_reads,
            self.global_writes + other.global_writes,
            self.shared_ops + other.shared_ops,
            self.atomics + other.atomics,
            self.rng_draws + other.rng_draws,
            self.shuffles + other.shuffles,
            self.ballots + other.ballots,
            self.divergent_branches + other.divergent_branches,
        )


class DeviceArrays:
    """Global-memory arrays of a kernel launch, with growable R.

    Mirrors the device allocations of Alg. 2: the flat store ``R``
    (grown geometrically like a pre-sized arena), offsets ``O``, counts
    ``C``, the visited bitmap ``M`` and one BFS queue per block.
    """

    def __init__(self, n: int, theta: int, queue_capacity: int):
        if theta < 0 or n < 1:
            raise ValidationError("need n >= 1 and theta >= 0")
        self.n = n
        self.theta = theta
        self.R = np.zeros(max(4 * theta, 64), dtype=np.int32)
        self.O = np.zeros(theta + 1, dtype=np.int64)
        self.C = np.zeros(n, dtype=np.int64)
        self.M = np.zeros(n, dtype=np.int8)
        self.queue = np.zeros(queue_capacity, dtype=np.int32)
        self.sources = np.zeros(theta, dtype=np.int64)
        #: device-global atomics (Alg. 2's `count` and `offset`)
        self.count = 0
        self.offset = 0

    def ensure_r_capacity(self, needed: int) -> None:
        """Grow R geometrically (arena-style, no per-set malloc)."""
        if needed <= self.R.size:
            return
        new_size = self.R.size
        while new_size < needed:
            new_size *= 2
        grown = np.zeros(new_size, dtype=np.int32)
        grown[: self.R.size] = self.R
        self.R = grown


class WarpContext:
    """One warp's view of the machine: 32 lanes plus hardware primitives."""

    def __init__(self, warp_size: int = 32, rng=None):
        if warp_size < 1:
            raise ValidationError("warp_size must be positive")
        self.warp_size = warp_size
        self.lane_ids = np.arange(warp_size, dtype=np.int64)
        self.rng = as_generator(rng)
        self.ops = OpCounts()

    # -- per-lane randomness -------------------------------------------------
    def lane_random(self, active: np.ndarray) -> np.ndarray:
        """One U[0,1) draw per lane (inactive lanes draw too, as real
        divergent warps do — the instruction issues for the whole warp)."""
        self.ops.rng_draws += self.warp_size
        return self.rng.random(self.warp_size) * 1.0 + 0.0 * (~active)

    def thread0_random_int(self, high: int) -> int:
        """A single lane-0 draw (Alg. 2 line 6)."""
        self.ops.rng_draws += 1
        return int(self.rng.integers(0, high))

    def thread0_random(self) -> float:
        """A single lane-0 uniform draw (LT thresholds, §3.3)."""
        self.ops.rng_draws += 1
        return float(self.rng.random())

    # -- warp collectives -----------------------------------------------------
    def ballot(self, predicate: np.ndarray) -> int:
        """``__ballot_sync``: bitmask over lanes."""
        self.ops.ballots += 1
        mask = 0
        for lane in np.flatnonzero(predicate):
            mask |= 1 << int(lane)
        return mask

    def shfl_up(self, values: np.ndarray, delta: int) -> np.ndarray:
        """``__shfl_up_sync``: lane i receives lane i-delta's value
        (lanes below ``delta`` keep their own)."""
        self.ops.shuffles += 1
        out = values.copy()
        if delta > 0:
            out[delta:] = values[:-delta]
        return out

    def inclusive_scan(self, values: np.ndarray) -> np.ndarray:
        """The §3.3 doubling prefix sum built from :meth:`shfl_up`."""
        acc = np.asarray(values, dtype=np.float64).copy()
        offset = 1
        while offset < self.warp_size:
            received = self.shfl_up(acc, offset)
            add_mask = self.lane_ids >= offset
            acc = np.where(add_mask, acc + received, acc)
            offset *= 2
        return acc

    # -- warp-serialized atomics ---------------------------------------------
    def atomic_add_scalar(self, obj, attr: str, delta: int) -> int:
        """Lane-0 atomicAdd on a device-global scalar; returns old value."""
        self.ops.atomics += 1
        old = getattr(obj, attr)
        setattr(obj, attr, old + delta)
        return old

    def atomic_enqueue(self, active: np.ndarray, values: np.ndarray,
                       queue: np.ndarray, obj, tail_attr: str) -> None:
        """Each active lane atomically claims a queue slot (Alg. 2 lines
        19-20); lane order is the hardware's serialization order."""
        for lane in np.flatnonzero(active):
            slot = getattr(obj, tail_attr)
            setattr(obj, tail_attr, slot + 1)
            queue[slot] = values[lane]
            self.ops.atomics += 1
            self.ops.global_writes += 1

    def atomic_add_array(self, array: np.ndarray, indices: np.ndarray,
                         active: np.ndarray, delta: int) -> None:
        """Per-lane atomicAdd into a device array (C updates)."""
        idx = indices[active]
        np.add.at(array, idx, delta)
        self.ops.atomics += int(active.sum())

    # -- memory traffic accounting ---------------------------------------------
    def global_read(self, count: int = 1) -> None:
        self.ops.global_reads += count

    def global_write(self, count: int = 1) -> None:
        self.ops.global_writes += count

    def shared_op(self, count: int = 1) -> None:
        self.ops.shared_ops += count

    def diverge(self) -> None:
        """Record a divergent branch (both sides execute)."""
        self.ops.divergent_branches += 1
