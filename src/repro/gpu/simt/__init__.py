"""Lane-level SIMT execution of the paper's kernels.

The analytic cost model in :mod:`repro.gpu.cost_model` converts operation
counts into cycles; this package is the other half of the substrate: a
small SIMT machine that *executes* Algorithm 2 (RRR sampling, IC and LT)
and Algorithm 3 (count updates during seed selection) with explicit
warp semantics — 32-wide lane vectors, active masks, warp-serialized
atomics, ``shfl_up`` scans and ballots.

It exists for fidelity and validation, not speed: the vectorized batch
samplers in :mod:`repro.rrr` are the production path, and the tests in
``tests/integration/test_simt_vs_batch.py`` prove the two produce
equivalent RRR distributions (and byte-identical stores on deterministic
inputs).  It also counts every operation class as it executes, so the
analytic cost model's inputs can be cross-checked against a real kernel
run.
"""

from repro.gpu.simt.machine import DeviceArrays, OpCounts, WarpContext
from repro.gpu.simt.sampling import simt_sample_ic, simt_sample_lt
from repro.gpu.simt.selection import simt_select_seeds

__all__ = [
    "DeviceArrays",
    "OpCounts",
    "WarpContext",
    "simt_sample_ic",
    "simt_sample_lt",
    "simt_select_seeds",
]
