"""Algorithm 2 executed lane-by-lane: RRR sampling under IC and LT.

These kernels follow the paper's pseudocode line by line — thread 0
draws the source and walks the queue head, the warp expands in-neighbor
chunks 32 lanes at a time, hits are marked in ``M`` *before* the
serialized atomic enqueue (the ordering §3.2 calls out), finished queues
are sorted ascending and copied straight into ``R`` under the global
offset atomic.  Blocks interleave round-robin on the shared ``count``
atomic exactly like the device's dynamic set assignment.

Execution is intentionally literal (Python loop per warp chunk): it is
the *reference semantics* against which the vectorized batch samplers
and the analytic cost model are validated, at small scale.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.simt.machine import DeviceArrays, OpCounts, WarpContext
from repro.graphs.csc import DirectedGraph
from repro.rrr.collection import RRRCollection
from repro.utils.errors import ValidationError
from repro.utils.rng import spawn_generators


class _Block:
    """One block: a single warp plus its private queue cursors."""

    def __init__(self, warp_size: int, rng, queue_capacity: int):
        self.ctx = WarpContext(warp_size, rng)
        self.queue = np.zeros(queue_capacity, dtype=np.int32)
        self.q_head = 0
        self.q_tail = 0


def _expand_ic(block: _Block, graph: DirectedGraph, dev: DeviceArrays, u: int) -> None:
    """Alg. 2 lines 15-20: warp-parallel probabilistic expansion of u."""
    ctx = block.ctx
    start = int(graph.indptr[u])
    end = int(graph.indptr[u + 1])
    for chunk in range(start, end, ctx.warp_size):
        hi = min(chunk + ctx.warp_size, end)
        width = hi - chunk
        active = ctx.lane_ids < width
        v = np.zeros(ctx.warp_size, dtype=np.int64)
        p = np.zeros(ctx.warp_size, dtype=np.float64)
        v[:width] = graph.indices[chunk:hi]
        p[:width] = graph.weights[chunk:hi]
        ctx.global_read(width)  # coalesced neighbor+weight fetch
        r = ctx.lane_random(active)
        hit = active & (r <= p)
        if hit.any() and not hit.all():
            ctx.diverge()
        # mark-then-enqueue, in hardware lane serialization order; the
        # M check re-runs per lane so same-chunk duplicates stay out
        for lane in np.flatnonzero(hit):
            vertex = int(v[lane])
            ctx.global_read(1)  # M probe
            if dev.M[vertex] == 0:
                dev.M[vertex] = 1
                ctx.global_write(1)
                slot = block.q_tail
                block.q_tail += 1
                block.queue[slot] = vertex
                ctx.ops.atomics += 1
                ctx.global_write(1)


def _select_lt_neighbor(block: _Block, graph: DirectedGraph, u: int, tau: float) -> int:
    """§3.3: shfl_up prefix scan picks the first threshold-crossing
    in-neighbor of ``u``; returns -1 when no crossing."""
    ctx = block.ctx
    start = int(graph.indptr[u])
    end = int(graph.indptr[u + 1])
    base = 0.0
    for chunk in range(start, end, ctx.warp_size):
        hi = min(chunk + ctx.warp_size, end)
        width = hi - chunk
        active = ctx.lane_ids < width
        w = np.zeros(ctx.warp_size, dtype=np.float64)
        w[:width] = graph.weights[chunk:hi]
        ctx.global_read(width)
        inclusive = ctx.inclusive_scan(w) + base
        exclusive = inclusive - w
        crossing = active & (inclusive >= tau) & (exclusive < tau)
        lanes = np.flatnonzero(crossing)
        if lanes.size:
            return int(graph.indices[chunk + int(lanes[0])])
        base = float(inclusive[width - 1])
    return -1


def _finish_set(
    block: _Block,
    dev: DeviceArrays,
    source: int,
    eliminate_sources: bool,
) -> bool:
    """Alg. 2 lines 21-28: sort the queue, strip the source if asked,
    store into R/O/C, reset M.  Returns False when the set emptied and
    was discarded (it does not count toward theta)."""
    ctx = block.ctx
    size = block.q_tail
    members = np.sort(block.queue[:size].astype(np.int64))
    # in-warp bitonic sort: ~size * log2(size)^2 comparator shuffles
    logs = int(np.ceil(np.log2(max(size, 2))))
    ctx.ops.shuffles += size * logs * logs
    # reset M for next set regardless of keep/discard
    dev.M[members] = 0
    ctx.global_write(size)
    if eliminate_sources:
        members = members[members != source]
    if eliminate_sources and members.size == 0:
        return False
    my_set = dev.count
    dev.count += 1
    ctx.ops.atomics += 1
    old_offset = ctx.atomic_add_scalar(dev, "offset", members.size)
    dev.ensure_r_capacity(old_offset + members.size)
    dev.O[my_set + 1] = old_offset + members.size
    dev.R[old_offset : old_offset + members.size] = members
    ctx.global_write(members.size)
    np.add.at(dev.C, members, 1)
    ctx.ops.atomics += members.size
    dev.sources[my_set] = source
    return True


def _run_sampling(
    graph: DirectedGraph,
    theta: int,
    rng,
    warp_size: int,
    num_blocks: int,
    eliminate_sources: bool,
    step_fn,
) -> tuple[RRRCollection, OpCounts]:
    if graph.weights is None:
        raise ValidationError("SIMT sampling requires a weighted graph")
    if theta < 0:
        raise ValidationError("theta must be non-negative")
    dev = DeviceArrays(graph.n, theta, queue_capacity=graph.n)
    streams = spawn_generators(rng, max(num_blocks, 1))
    blocks = [_Block(warp_size, s, graph.n) for s in streams]
    attempts = 0
    max_attempts = 64 * max(theta, 1) + 1024
    while dev.count < theta:
        for block in blocks:
            if dev.count >= theta:
                break
            attempts += 1
            if attempts > max_attempts:
                raise ValidationError(
                    "source elimination discarded nearly every set in the "
                    "SIMT sampler; the graph has too few edges"
                )
            step_fn(block, graph, dev, eliminate_sources)
    counts = OpCounts()
    for block in blocks:
        counts = counts.merged(block.ctx.ops)
    collection = RRRCollection(
        dev.R[: dev.offset].copy(),
        dev.O[: theta + 1].copy(),
        graph.n,
        sources=dev.sources[:theta].copy(),
        check=False,
    )
    return collection, counts


def _ic_step(block: _Block, graph: DirectedGraph, dev: DeviceArrays,
             eliminate_sources: bool) -> None:
    """Generate one IC RRR set on this block (Alg. 2 body)."""
    ctx = block.ctx
    source = ctx.thread0_random_int(graph.n)
    dev.M[source] = 1
    block.queue[0] = source
    block.q_head, block.q_tail = 0, 1
    ctx.global_write(2)
    while block.q_head < block.q_tail:
        u = int(block.queue[block.q_head])
        block.q_head += 1
        ctx.global_read(1)
        _expand_ic(block, graph, dev, u)
    _finish_set(block, dev, source, eliminate_sources)


def _lt_step(block: _Block, graph: DirectedGraph, dev: DeviceArrays,
             eliminate_sources: bool) -> None:
    """Generate one LT RRR walk on this block (§3.3 modification)."""
    ctx = block.ctx
    source = ctx.thread0_random_int(graph.n)
    dev.M[source] = 1
    block.queue[0] = source
    block.q_head, block.q_tail = 0, 1
    ctx.global_write(2)
    while block.q_head < block.q_tail:
        u = int(block.queue[block.q_head])
        block.q_head += 1
        ctx.global_read(1)
        tau = ctx.thread0_random()
        chosen = _select_lt_neighbor(block, graph, u, tau)
        if chosen < 0:
            continue
        ctx.global_read(1)  # M probe
        if dev.M[chosen] == 0:
            dev.M[chosen] = 1
            block.queue[block.q_tail] = chosen
            block.q_tail += 1
            ctx.ops.atomics += 1
            ctx.global_write(2)
    _finish_set(block, dev, source, eliminate_sources)


def simt_sample_ic(
    graph: DirectedGraph,
    theta: int,
    rng=None,
    warp_size: int = 32,
    num_blocks: int = 4,
    eliminate_sources: bool = False,
) -> tuple[RRRCollection, OpCounts]:
    """Execute Alg. 2 (IC) on the SIMT machine; returns the RRR store and
    the operation tallies of all warps."""
    return _run_sampling(
        graph, theta, rng, warp_size, num_blocks, eliminate_sources, _ic_step
    )


def simt_sample_lt(
    graph: DirectedGraph,
    theta: int,
    rng=None,
    warp_size: int = 32,
    num_blocks: int = 4,
    eliminate_sources: bool = False,
) -> tuple[RRRCollection, OpCounts]:
    """Execute the LT variant of Alg. 2 (§3.3) on the SIMT machine."""
    return _run_sampling(
        graph, theta, rng, warp_size, num_blocks, eliminate_sources, _lt_step
    )
