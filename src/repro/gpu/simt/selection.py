"""Algorithm 3 executed as the thread-per-set selection kernel.

Each greedy iteration launches one "grid": every thread owns an RRR set,
skips it if its covered flag ``F`` is up, binary-searches the selected
vertex inside the set's sorted slice, and on a hit raises ``F`` and
atomically decrements the counts of every member.  This mirrors the
paper's pseudocode exactly (including the F early-out and the
``atomicSub`` loop) and tallies the binary-search probes the analytic
thread-scan cost model charges.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.simt.machine import OpCounts
from repro.imm.seed_selection import SelectionResult, SelectionStats
from repro.rrr.collection import RRRCollection
from repro.utils.errors import ValidationError


def _binary_search(flat: np.ndarray, start: int, end: int, v: int,
                   ops: OpCounts) -> bool:
    """Per-thread binary search over one sorted set slice (Alg. 3 line 7),
    counting every probe as an uncoalesced global read."""
    lo, hi = start, end
    while lo < hi:
        mid = (lo + hi) // 2
        ops.global_reads += 1
        value = flat[mid]
        if value == v:
            return True
        if value < v:
            lo = mid + 1
        else:
            hi = mid
    return False


def simt_select_seeds(
    collection: RRRCollection, k: int
) -> tuple[SelectionResult, OpCounts]:
    """Run k iterations of the Alg. 3 kernel; returns the selection
    result (identical to :func:`repro.imm.select_seeds`) plus op tallies."""
    if k < 1:
        raise ValidationError("k must be >= 1")
    if k > collection.n:
        raise ValidationError(f"k={k} exceeds n={collection.n}")
    flat = collection.flat
    offsets = collection.offsets
    num_sets = collection.num_sets
    counts = collection.counts.copy()
    sizes = np.diff(offsets)
    ops = OpCounts()

    covered = np.zeros(num_sets, dtype=bool)  # the paper's F array
    seeds = np.empty(k, dtype=np.int64)
    gains = np.empty(k, dtype=np.int64)
    scanned = np.empty(k, dtype=np.int64)
    found_arr = np.empty(k, dtype=np.int64)
    decremented = np.empty(k, dtype=np.int64)
    covered_total = 0

    for it in range(k):
        # device argmax over C (one grid-wide reduction)
        ops.global_reads += collection.n
        v = int(np.argmax(counts))
        seeds[it] = v
        n_found = 0
        n_dec = 0
        scanned[it] = num_sets - covered_total
        for set_id in range(num_sets):
            ops.global_reads += 1  # F probe
            if covered[set_id]:
                continue
            start, end = int(offsets[set_id]), int(offsets[set_id + 1])
            if _binary_search(flat, start, end, v, ops):
                covered[set_id] = True
                ops.global_writes += 1
                members = flat[start:end]
                np.subtract.at(counts, members, 1)
                ops.atomics += members.size
                n_found += 1
                n_dec += members.size
        gains[it] = n_found
        found_arr[it] = n_found
        decremented[it] = n_dec
        covered_total += n_found

    stats = SelectionStats(
        sets_scanned=scanned,
        sets_found=found_arr,
        elements_decremented=decremented,
        avg_set_size=float(sizes.mean()) if num_sets else 0.0,
    )
    result = SelectionResult(
        seeds=seeds,
        covered_sets=covered_total,
        num_sets=num_sets,
        marginal_gains=gains,
        stats=stats,
    )
    return result, ops
