"""Multi-device execution model — the paper's first future-work item.

The conclusion says: "we plan to extend eIM to support multi-GPU
execution to further improve scalability."  RRR generation parallelizes
trivially (sets are independent, so theta is striped across devices);
seed selection needs one inter-device reduction of the count array per
greedy iteration plus a broadcast of the selected vertex, and each
device scans only its resident shard of R.

This module models that design: per-device memory pools (each holds its
shard of the RRR store), an NVLink-class interconnect for the count
all-reduce, and the resulting makespan.  The ablation benchmark sweeps
the device count to show the scaling curve and the point where the
all-reduce starts eating the gains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.cost_model import CostModel
from repro.gpu.device import DeviceSpec, SimulatedDevice
from repro.gpu.scheduler import makespan
from repro.utils.errors import ValidationError

#: effective all-reduce bandwidth between devices (NVLink-class), GB/s
NVLINK_GBYTES_PER_S = 50.0
#: fixed latency per collective operation, cycles
COLLECTIVE_SETUP_CYCLES = 8000.0


@dataclass
class MultiDeviceResult:
    """Outcome of a simulated multi-GPU eIM execution."""

    num_devices: int
    sampling_cycles: float
    selection_cycles: float
    collective_cycles: float
    total_cycles: float
    per_device_peak_bytes: int
    oom: bool


def allreduce_cycles(spec: DeviceSpec, nbytes: int, num_devices: int) -> float:
    """Ring all-reduce cost: ``2 * (D-1)/D * bytes`` over the interconnect.

    The latency floor scales with the device model (``num_sms / 84``) the
    same way :meth:`DeviceSpec.scaled` shrinks compute — a scaled-down
    device pairs with a proportionally scaled-down interconnect, keeping
    collective-to-kernel cost ratios at their full-scale values.
    """
    if num_devices < 1:
        raise ValidationError("need at least one device")
    if num_devices == 1:
        return 0.0
    volume = 2.0 * (num_devices - 1) / num_devices * nbytes
    bandwidth_cycles = volume * spec.clock_ghz / NVLINK_GBYTES_PER_S
    setup = COLLECTIVE_SETUP_CYCLES * spec.num_sms / 84.0
    return setup + bandwidth_cycles


def run_multi_device_eim(
    imm_result,
    graph,
    spec: DeviceSpec,
    num_devices: int,
    log_encoding: bool = True,
) -> MultiDeviceResult:
    """Model an eIM run striped over ``num_devices`` identical GPUs.

    Consumes an already-computed :class:`~repro.imm.imm.IMMResult` (the
    algorithmic work is identical regardless of device count); charges
    each device its shard of sampling and selection plus the per-greedy-
    iteration count all-reduce.
    """
    from repro.encoding.bitpack import required_bits
    from repro.encoding.csc_encoded import encode_graph
    from repro.utils.errors import DeviceOOMError

    if num_devices < 1:
        raise ValidationError("need at least one device")
    cost = CostModel(spec)
    trace = imm_result.trace
    bits = required_bits(max(graph.n - 1, 1))

    # --- sampling: stripe attempted sets round-robin over all blocks ----
    if imm_result.model == "IC":
        expand = cost.ic_expansion_cycles(trace.edges_examined, log_encoding, bits)
    else:
        expand = cost.lt_expansion_cycles(
            trace.edges_examined, trace.rounds, log_encoding, bits
        )
    queue, _ = cost.queue_ops_cycles(trace.sizes, queue="global")
    sort = cost.sort_cycles(trace.sizes)
    store = np.where(
        trace.kept_mask,
        cost.store_cycles(trace.sizes, log_encoding, bits, copies=1),
        0.0,
    )
    per_set = expand + queue + sort + store
    sampling = makespan(per_set, spec.resident_blocks * num_devices)
    # each device ends sampling with a partial count array: one all-reduce
    count_bytes = 4 * graph.n
    collectives = allreduce_cycles(spec, count_bytes, num_devices)

    # --- selection: each device scans its R shard; counts re-reduced and
    # the winner broadcast every iteration --------------------------------
    stats = imm_result.selection.stats
    shard = _shard_stats(stats, num_devices)
    selection = cost.thread_scan_cycles(shard, log_encoding, bits)
    selection += cost.argmax_cycles(graph.n, imm_result.k)
    # per greedy iteration, devices reconcile counts by whichever is
    # cheaper: the dense count array (4n bytes) or the sparse decrement
    # deltas of that round's covered sets (8 bytes each) — the choice a
    # real distributed greedy makes
    for decremented in stats.elements_decremented:
        volume = min(count_bytes, int(decremented) * 8)
        collectives += allreduce_cycles(spec, volume, num_devices)

    # --- per-device memory -------------------------------------------------
    device = SimulatedDevice(spec)
    oom = False
    try:
        graph_bytes = (
            encode_graph(graph).nbytes_packed() if log_encoding else graph.nbytes_csc()
        )
        device.memory.allocate(graph_bytes, "graph_replica")
        device.memory.allocate(spec.resident_blocks * graph.n * 4, "queue_pool")
        rrr_bytes = (
            imm_result.collection.nbytes_packed()
            if log_encoding
            else imm_result.collection.nbytes_raw()
        )
        device.memory.allocate(-(-rrr_bytes // num_devices), "rrr_shard")
    except DeviceOOMError:
        oom = True

    total = sampling + selection + collectives
    return MultiDeviceResult(
        num_devices=num_devices,
        sampling_cycles=float(sampling),
        selection_cycles=float(selection),
        collective_cycles=float(collectives),
        total_cycles=float(total),
        per_device_peak_bytes=device.memory.peak,
        oom=oom,
    )


def _shard_stats(stats, num_devices: int):
    """Each device scans 1/D of the sets every iteration."""
    from repro.imm.seed_selection import SelectionStats

    return SelectionStats(
        sets_scanned=np.ceil(stats.sets_scanned / num_devices).astype(np.int64),
        sets_found=np.maximum(stats.sets_found // num_devices, 1),
        elements_decremented=np.maximum(
            stats.elements_decremented // num_devices, 1
        ),
        avg_set_size=stats.avg_set_size,
    )
