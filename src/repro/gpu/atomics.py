"""Atomic counters with contention-aware cost accounting.

Alg. 2 uses three atomics — the global RRR counter ``count``, the store
offset ``offset`` and the per-vertex frequency ``C[v]`` updates.  On
hardware, atomics to the same address serialize; the counter tracks how
many operations it absorbed so cost models can charge
``ops * atomic_cycles`` (same-address contention) instead of pretending
they were free.
"""

from __future__ import annotations

from repro.utils.errors import ValidationError


class AtomicCounter:
    """Sequentially consistent counter mirroring CUDA ``atomicAdd``."""

    __slots__ = ("value", "ops", "label")

    def __init__(self, initial: int = 0, label: str = ""):
        self.value = int(initial)
        self.ops = 0
        self.label = label

    def add(self, delta: int) -> int:
        """Atomic fetch-and-add; returns the *old* value like ``atomicAdd``."""
        old = self.value
        self.value += int(delta)
        self.ops += 1
        return old

    def sub(self, delta: int) -> int:
        """Atomic fetch-and-sub; returns the old value."""
        return self.add(-int(delta))

    def exchange(self, new_value: int) -> int:
        """Atomic exchange; returns the old value."""
        old = self.value
        self.value = int(new_value)
        self.ops += 1
        return old

    def compare_and_swap(self, expected: int, new_value: int) -> int:
        """Atomic CAS; returns the old value (swap happened iff it equals
        ``expected``)."""
        old = self.value
        if old == int(expected):
            self.value = int(new_value)
        self.ops += 1
        return old

    def contention_cycles(self, per_op_cycles: float) -> float:
        """Serialized cost of every operation this counter absorbed."""
        if per_op_cycles < 0:
            raise ValidationError("per_op_cycles must be non-negative")
        return self.ops * per_op_cycles
