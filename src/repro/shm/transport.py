"""Log-encoded IPC: workers ship RRR payloads bit-packed, not pickled raw.

The paper's log encoding (§3.1, Fig. 1) shrinks any non-negative int
array to ``bit_length(x_max)`` bits per element.  The host pipeline's
dominant IPC cost has exactly that shape: a worker's result is the flat
RRR array (vertex ids < n), per-set sizes, per-set sources (< n), and
the per-attempt trace columns — all small-integer arrays that the
pickle path ships at 4 or 8 bytes per element.  :class:`PackedResult`
packs each column at its own width (and the kept mask at 1 bit) so the
bytes crossing the executor pipe drop by the same ~50-90% the paper's
Fig. 4 reports for the device store.

The encoding is exact (pack/unpack of non-negative ints is lossless)
and the offsets array is reconstructed as ``cumsum(sizes)`` — byte for
byte the expression that built it worker-side — so the parent-side
decode is bit-identical to the raw path, which is what keeps the two
data planes interchangeable mid-run.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitpack import pack, unpack_words
from repro.rrr.trace import SampleTrace

#: pickled-bytes overhead of one PackedResult beyond its buffers
#: (object header, field tuples; measured, rounded up — accounting only)
_HEADER_OVERHEAD = 512


def _pack_array(values: np.ndarray) -> tuple:
    """Pack one non-negative int column into a picklable field tuple."""
    vals = np.asarray(values, dtype=np.int64).ravel()
    max_val = int(vals.max()) if vals.size else 0
    container_bits = 64 if max_val.bit_length() > 32 else 32
    packed = pack(vals, container_bits=container_bits)
    return (
        packed.words.tobytes(),
        packed.n_bits,
        packed.count,
        packed.container_bits,
    )


def _unpack_array(field: tuple, out: np.ndarray | None = None) -> np.ndarray:
    buf, n_bits, count, container_bits = field
    dtype = np.uint32 if container_bits == 32 else np.uint64
    words = np.frombuffer(buf, dtype=dtype)
    return unpack_words(words, n_bits, count, container_bits, out=out)


def _field_nbytes(field: tuple) -> int:
    return len(field[0])


class PackedResult:
    """One worker job's RRR payload in packed wire form.

    Pickles to roughly ``nbytes_packed`` bytes; :meth:`decode` restores
    the exact ``(flat, offsets, sources, trace)`` tuple the raw path
    would have shipped.
    """

    __slots__ = (
        "n",
        "num_sets",
        "flat_field",
        "sizes_field",
        "sources_field",
        "trace_sizes_field",
        "trace_rounds_field",
        "trace_edges_field",
        "trace_sources_field",
        "kept_bits",
        "attempted",
        "raw_singletons",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])

    # pickle support for __slots__-only classes
    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)

    # -- construction --------------------------------------------------------
    @classmethod
    def encode(
        cls,
        flat: np.ndarray,
        offsets: np.ndarray,
        sources: np.ndarray,
        trace: SampleTrace,
        n: int,
    ) -> "PackedResult":
        sizes = np.diff(np.asarray(offsets, dtype=np.int64))
        return cls(
            n=int(n),
            num_sets=int(sizes.size),
            flat_field=_pack_array(flat),
            sizes_field=_pack_array(sizes),
            sources_field=_pack_array(sources),
            trace_sizes_field=_pack_array(trace.sizes),
            trace_rounds_field=_pack_array(trace.rounds),
            trace_edges_field=_pack_array(trace.edges_examined),
            trace_sources_field=_pack_array(trace.sources),
            kept_bits=np.packbits(
                np.asarray(trace.kept_mask, dtype=bool)
            ).tobytes(),
            attempted=int(trace.kept_mask.size),
            raw_singletons=int(trace.raw_singletons),
        )

    # -- accounting ----------------------------------------------------------
    @property
    def nbytes_packed(self) -> int:
        """Approximate bytes this payload costs on the wire."""
        return (
            sum(
                _field_nbytes(getattr(self, name))
                for name in self.__slots__
                if name.endswith("_field")
            )
            + len(self.kept_bits)
            + _HEADER_OVERHEAD
        )

    @property
    def nbytes_raw(self) -> int:
        """Bytes the raw (pickle-path) payload would have cost."""
        flat_count = self.flat_field[2]
        return (
            4 * flat_count  # flat int32
            + 8 * (self.num_sets + 1)  # offsets int64
            + 8 * self.num_sets  # sources int64
            + 3 * 8 * self.attempted  # trace sizes/rounds/edges int64
            + 8 * self.attempted  # trace sources int64
            + self.attempted  # kept mask bool
        )

    # -- decode --------------------------------------------------------------
    def decode_sizes(self) -> tuple[int, int]:
        """``(total flat elements, num_sets)`` without decoding payloads —
        what the arena needs to pre-size a merged chunk."""
        return self.flat_field[2], self.num_sets

    def decode_into(
        self,
        flat_out: np.ndarray | None = None,
        sizes_out: np.ndarray | None = None,
        sources_out: np.ndarray | None = None,
    ) -> SampleTrace:
        """Decode flat/sizes/sources into caller buffers; return the trace.

        The zero-copy merge path: the parent sizes one arena chunk from
        the payload headers and every worker's columns decode straight
        into their slice of it.
        """
        _unpack_array(self.flat_field, out=flat_out)
        _unpack_array(self.sizes_field, out=sizes_out)
        _unpack_array(self.sources_field, out=sources_out)
        return self.decode_trace()

    def decode_trace(self) -> SampleTrace:
        """Only the per-attempt trace columns (data columns untouched)."""
        kept = np.unpackbits(
            np.frombuffer(self.kept_bits, dtype=np.uint8), count=self.attempted
        ).astype(bool)
        return SampleTrace(
            sizes=_unpack_array(self.trace_sizes_field),
            rounds=_unpack_array(self.trace_rounds_field),
            edges_examined=_unpack_array(self.trace_edges_field),
            kept_mask=kept,
            raw_singletons=self.raw_singletons,
            sources=_unpack_array(self.trace_sources_field),
        )

    def decode(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, SampleTrace]:
        """The exact raw-path worker tuple: (flat, offsets, sources, trace)."""
        flat = np.empty(self.flat_field[2], dtype=np.int32)
        sizes = np.empty(self.num_sets, dtype=np.int64)
        sources = np.empty(self.num_sets, dtype=np.int64)
        trace = self.decode_into(flat, sizes, sources)
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        return flat, offsets, sources, trace
