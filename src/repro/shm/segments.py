"""Refcounted OS shared-memory segments for the zero-copy data plane.

Every segment of the data plane — the published CSC graph arrays, the
warm-start chunk arena — goes through one process-wide
:class:`SegmentRegistry`.  The registry is the single owner of segment
*names*: it creates them, hands out attach-side views, counts the bytes
resident, and guarantees that everything it created is unlinked exactly
once — on :meth:`SegmentRegistry.close_all`, at interpreter exit
(``atexit``), or when the owning pool/store closes.  That discipline is
what keeps ``multiprocessing.resource_tracker`` silent: the tracker
warns about (and force-unlinks) any segment still registered at
shutdown, so the rule here is *create registers once, unlink
unregisters once, attaches never register at all*.

Attach-side care: on CPython < 3.13 ``SharedMemory(name=...)``
re-registers the segment with the resource tracker (bpo-39959).  In
every topology this data plane runs — same-process attach, fork
workers, spawn workers (the tracker *fd* is passed to spawn children,
so even they share the creator's tracker) — that registration lands in
the same tracker's set, where re-adding an existing name is a no-op:
the creator's single unlink-time unregister leaves the set clean.
:func:`attach_shared_memory` therefore passes ``track=False`` where
supported (3.13+) and otherwise deliberately does NOT unregister: an
attach-side unregister would strip the creator's entry from the shared
set and turn the creator's own unregister into a tracker ``KeyError``.

Close-side care: ``SharedMemory.close`` raises ``BufferError`` while
NumPy views over the mapping are alive.  Unlinking does not — the name
disappears from ``/dev/shm`` immediately and the mapping survives until
the last view is garbage collected.  :meth:`Segment.close` therefore
always unlinks (the leak-proofness guarantee) and merely *attempts* the
munmap, deferring it to GC when views are still outstanding.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from typing import Optional

import numpy as np

from repro import obs
from repro.utils.errors import ValidationError

try:  # pragma: no cover - exercised via shm_available()
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    _shared_memory = None

#: data-plane selector environment variable (``pickle`` | ``shm``)
ENV_VAR = "REPRO_DATA_PLANE"

_DATA_PLANES = ("pickle", "shm")


def quiet_close(shm) -> None:
    """Close a ``SharedMemory`` mapping without ever raising or warning.

    While NumPy views over the mapping are alive, ``close`` raises
    ``BufferError`` — and would raise it *again*, as an "Exception
    ignored" message, when the object's ``__del__`` retries.  In that
    case the instance's ``close`` is disarmed and the mapping is left
    to the OS: the segment is already (or about to be) unlinked, so
    nothing leaks past process exit.
    """
    try:
        shm.close()
    except BufferError:
        shm.close = lambda: None
    except Exception:  # pragma: no cover - already-closed mappings
        pass


def attach_shared_memory(name: str):
    """Attach to an existing segment without adopting unlink duty.

    The returned object must be ``close()``d (never ``unlink()``ed) by
    the attaching process; the registry that created the segment owns
    its name.
    """
    if _shared_memory is None:  # pragma: no cover
        raise ValidationError("multiprocessing.shared_memory is unavailable")
    try:
        return _shared_memory.SharedMemory(name=name, track=False)  # 3.13+
    except TypeError:
        pass
    # < 3.13: the attach re-registers the name, but with the tracker
    # shared across the whole worker tree (fork AND spawn inherit the
    # tracker fd) that is a set no-op — see the module docstring for why
    # unregistering here would be actively wrong
    return _shared_memory.SharedMemory(name=name)


class Segment:
    """One shared-memory segment plus the views handed out over it."""

    __slots__ = ("name", "nbytes", "tag", "_shm", "_owner", "_closed")

    def __init__(self, shm, nbytes: int, tag: str, owner: bool):
        self._shm = shm
        self.name = shm.name
        self.nbytes = int(nbytes)
        self.tag = tag
        self._owner = owner
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def owns_array(self, arr: np.ndarray) -> bool:
        """Whether ``arr``'s data lives inside this segment's mapping.

        How the chunk arena finds the segment backing a collection it
        is asked to demote: views handed out by :meth:`view` point
        into the mapping, so pointer containment identifies the owner
        without any side table.
        """
        if self._closed:
            return False
        base = np.frombuffer(self._shm.buf, dtype=np.uint8)
        start = base.ctypes.data
        return start <= arr.ctypes.data < start + self.nbytes

    def view(self, dtype, shape, offset: int = 0) -> np.ndarray:
        """A zero-copy ndarray over ``[offset, offset + size)`` bytes.

        The array's buffer *is* the shared mapping — no bytes are
        duplicated, and writes are visible to every process attached to
        the segment.
        """
        if self._closed:
            raise ValidationError(f"segment {self.name} is closed")
        dtype = np.dtype(dtype)
        count = int(np.prod(shape)) if not np.isscalar(shape) else int(shape)
        arr = np.frombuffer(
            self._shm.buf, dtype=dtype, count=count, offset=int(offset)
        )
        return arr.reshape(shape) if not np.isscalar(shape) else arr

    def close(self) -> None:
        """Unlink (if owner) and try to unmap; idempotent.

        The unlink always happens — that is the no-leak guarantee — but
        the unmap is best-effort: live NumPy views export the buffer, in
        which case the mapping is released when they are collected.
        """
        if self._closed:
            return
        self._closed = True
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:  # pragma: no cover - platform oddities
                pass
        quiet_close(self._shm)


class SegmentRegistry:
    """Process-wide ledger of every data-plane segment this process owns."""

    def __init__(self):
        self._segments: dict[str, Segment] = {}
        self._lock = threading.Lock()

    # -- accounting ----------------------------------------------------------
    @property
    def active_count(self) -> int:
        return len(self._segments)

    @property
    def resident_bytes(self) -> int:
        return sum(s.nbytes for s in self._segments.values())

    def _publish_gauges(self) -> None:
        obs.gauge_set("shm.segments_active", self.active_count)
        obs.gauge_set("shm.bytes_resident", self.resident_bytes)

    # -- lifecycle -----------------------------------------------------------
    def create(self, nbytes: int, tag: str = "seg") -> Segment:
        """Create and register a new segment of ``nbytes`` bytes."""
        if _shared_memory is None:  # pragma: no cover
            raise ValidationError("multiprocessing.shared_memory is unavailable")
        nbytes = max(int(nbytes), 1)  # zero-byte segments are not portable
        name = f"repro-{tag}-{os.getpid():x}-{secrets.token_hex(4)}"
        shm = _shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        segment = Segment(shm, nbytes, tag, owner=True)
        with self._lock:
            self._segments[segment.name] = segment
            self._publish_gauges()
        obs.counter_add("shm.segments_created", 1)
        return segment

    def release(self, segment: Segment) -> None:
        """Close one segment and drop it from the ledger; idempotent."""
        with self._lock:
            self._segments.pop(segment.name, None)
            self._publish_gauges()
        segment.close()

    def close_all(self) -> None:
        """Unlink every owned segment (tests, atexit backstop)."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._publish_gauges()
        for segment in segments:
            segment.close()


#: the default process-wide registry every data-plane component uses
REGISTRY = SegmentRegistry()

# Backstop only: pools and stores unlink their own segments on close,
# but a hard exit in between must not leave names in /dev/shm.
atexit.register(REGISTRY.close_all)


# -- availability and plane resolution ---------------------------------------
_AVAILABLE: Optional[bool] = None


def shm_available() -> bool:
    """Whether OS shared memory actually works here (probed once).

    Some sandboxes ship the module but refuse segment creation; the
    probe creates and unlinks a minimal segment so the answer reflects
    reality, not just importability.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        if _shared_memory is None:
            _AVAILABLE = False
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()
                _AVAILABLE = True
            except Exception:
                _AVAILABLE = False
    return _AVAILABLE


def resolve_data_plane(value: Optional[str] = None) -> str:
    """Resolve a data-plane request to the plane that will actually run.

    Precedence: explicit ``value`` > ``REPRO_DATA_PLANE`` > default
    (``shm`` when available).  A ``shm`` request degrades gracefully to
    ``pickle`` when shared memory is unavailable — the fallback is
    counted (``shm.fallbacks``) rather than raised, because the two
    planes are bit-identical in output.
    """
    if value is None:
        value = os.environ.get(ENV_VAR) or None
    if value is None:
        return "shm" if shm_available() else "pickle"
    plane = str(value).strip().lower()
    if plane not in _DATA_PLANES:
        raise ValidationError(
            f"unknown data plane {value!r}; choose one of {_DATA_PLANES}"
        )
    if plane == "shm" and not shm_available():
        obs.counter_add("shm.fallbacks", 1)
        return "pickle"
    return plane
