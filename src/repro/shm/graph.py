"""The CSC graph published once into shared memory, attached zero-copy.

eIM keeps the graph resident on the device for the lifetime of a run
(§3.1); the host data plane mirrors that: :class:`SharedGraph` copies
the CSC arrays (``indptr`` / ``indices`` / ``weights``) into OS
shared-memory segments exactly once, and every worker process attaches
the same physical pages through a :class:`SharedGraphHandle` — a tiny
picklable descriptor of segment names and array specs.  With ``n_jobs``
workers the graph therefore occupies one copy of physical memory
instead of ``n_jobs + 1`` (the pickled-initializer baseline), and an
executor rebuild after a worker crash re-attaches in microseconds
instead of re-shipping megabytes.

The log-encoded variants (§3.1's packed CSC, via
:mod:`repro.encoding`) can ride in the same segments:
:meth:`SharedGraph.publish_encoded` packs offsets and neighbor ids at
``bit_length(m)`` / ``bit_length(n-1)`` bits and publishes the packed
words, so attach-side consumers (benchmarks, future device shims) can
map the compressed graph without their own copy either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs
from repro.encoding.bitpack import PackedArray, pack, required_bits
from repro.graphs.csc import DirectedGraph
from repro.shm.segments import (
    REGISTRY,
    Segment,
    SegmentRegistry,
    attach_shared_memory,
    quiet_close,
)
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class ArraySpec:
    """Where one ndarray lives inside a named segment."""

    segment: str
    dtype: str
    count: int
    offset: int = 0


@dataclass(frozen=True)
class PackedSpec:
    """Where one bit-packed array's container words live."""

    segment: str
    dtype: str
    words: int
    n_bits: int
    count: int
    container_bits: int
    offset: int = 0


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable descriptor a worker turns back into a graph, zero-copy.

    Holds only names and shapes — pickling a handle costs a few hundred
    bytes no matter how large the graph is.
    """

    n: int
    m: int
    fingerprint: str
    indptr: ArraySpec
    indices: ArraySpec
    weights: Optional[ArraySpec]
    packed_offsets: Optional[PackedSpec] = None
    packed_neighbors: Optional[PackedSpec] = None


class _Attachment:
    """Worker-side bundle keeping the attached segments alive."""

    __slots__ = ("graph", "handle", "_shms")

    def __init__(self, graph: DirectedGraph, handle: SharedGraphHandle, shms):
        self.graph = graph
        self.handle = handle
        self._shms = shms

    def close(self) -> None:
        for shm in self._shms:
            quiet_close(shm)
        self._shms = []


def _spec_view(spec: ArraySpec, shm) -> np.ndarray:
    return np.frombuffer(
        shm.buf, dtype=np.dtype(spec.dtype), count=spec.count, offset=spec.offset
    )


def attach_graph(handle: SharedGraphHandle) -> _Attachment:
    """Map the published segments and rebuild the :class:`DirectedGraph`.

    The returned graph's arrays are views straight over the shared
    pages; construction validates nothing beyond shape bookkeeping (the
    publisher validated the real graph) and copies nothing.
    """
    shms = {}

    def shm_for(name: str):
        if name not in shms:
            shms[name] = attach_shared_memory(name)
        return shms[name]

    indptr = _spec_view(handle.indptr, shm_for(handle.indptr.segment))
    indices = _spec_view(handle.indices, shm_for(handle.indices.segment))
    weights = None
    if handle.weights is not None:
        weights = _spec_view(handle.weights, shm_for(handle.weights.segment))
    graph = DirectedGraph.__new__(DirectedGraph)
    graph.indptr = indptr
    graph.indices = indices
    graph.weights = weights
    graph.n = handle.n
    graph.m = handle.m
    graph._csr_cache = None
    graph._cumw_cache = None
    graph._total_in_weight = None
    graph._fingerprint = handle.fingerprint
    return _Attachment(graph, handle, list(shms.values()))


class PackedCSCAttachment:
    """Attach-side view of the log-encoded CSC arrays (§3.1)."""

    __slots__ = ("offsets", "neighbors", "_shms")

    def __init__(self, offsets: PackedArray, neighbors: PackedArray, shms):
        self.offsets = offsets
        self.neighbors = neighbors
        self._shms = shms

    def close(self) -> None:
        for shm in self._shms:
            quiet_close(shm)
        self._shms = []


def attach_packed_csc(handle: SharedGraphHandle) -> PackedCSCAttachment:
    """Map the log-encoded CSC arrays published alongside the raw ones.

    Requires :meth:`SharedGraph.publish_encoded` to have run before the
    handle was taken.
    """
    if handle.packed_offsets is None or handle.packed_neighbors is None:
        raise ValidationError("handle carries no log-encoded CSC segments")
    arrays, shms = [], []
    for spec in (handle.packed_offsets, handle.packed_neighbors):
        shm = attach_shared_memory(spec.segment)
        shms.append(shm)
        words = np.frombuffer(
            shm.buf, dtype=np.dtype(spec.dtype), count=spec.words, offset=spec.offset
        )
        arrays.append(PackedArray(words, spec.n_bits, spec.count, spec.container_bits))
    return PackedCSCAttachment(arrays[0], arrays[1], shms)


class SharedGraph:
    """Publisher-side owner of one graph's shared segments.

    Created by the first :class:`~repro.rrr.parallel.SamplerPool`
    executor start; survives executor rebuilds (the whole point — a
    rebuild hands workers the *same* handle); unlinked by
    :meth:`close` when the pool dies.
    """

    def __init__(
        self, graph: DirectedGraph, registry: Optional[SegmentRegistry] = None
    ):
        self._registry = registry if registry is not None else REGISTRY
        self._segments: list[Segment] = []
        self._closed = False
        self._packed_offsets: Optional[PackedSpec] = None
        self._packed_neighbors: Optional[PackedSpec] = None
        self.n = graph.n
        self.m = graph.m
        self._fingerprint = graph.fingerprint()
        with obs.span("shm.graph.publish"):
            self._indptr = self._publish_array(graph.indptr, "gidp")
            self._indices = self._publish_array(graph.indices, "gidx")
            self._weights = (
                None
                if graph.weights is None
                else self._publish_array(graph.weights, "gw")
            )
        obs.counter_add("shm.graph_published_bytes", self.nbytes)

    def _publish_array(self, array: np.ndarray, tag: str) -> ArraySpec:
        array = np.ascontiguousarray(array)
        segment = self._registry.create(array.nbytes, tag)
        segment.view(array.dtype, array.size)[:] = array
        self._segments.append(segment)
        return ArraySpec(segment.name, array.dtype.str, array.size)

    def _publish_packed(self, packed: PackedArray, tag: str) -> PackedSpec:
        words = np.ascontiguousarray(packed.words)
        segment = self._registry.create(words.nbytes, tag)
        segment.view(words.dtype, words.size)[:] = words
        self._segments.append(segment)
        return PackedSpec(
            segment.name,
            words.dtype.str,
            words.size,
            packed.n_bits,
            packed.count,
            packed.container_bits,
        )

    # -- encoded variant -----------------------------------------------------
    def publish_encoded(self, graph: DirectedGraph) -> None:
        """Also publish the §3.1 log-encoded CSC arrays (idempotent)."""
        if self._closed:
            raise ValidationError("SharedGraph is closed")
        if self._packed_offsets is not None:
            return
        with obs.span("shm.graph.publish_encoded"):
            o_bits = required_bits(max(graph.m, 1))
            r_bits = required_bits(max(graph.n - 1, 0))
            self._packed_offsets = self._publish_packed(
                pack(graph.indptr, n_bits=o_bits), "gpo"
            )
            self._packed_neighbors = self._publish_packed(
                pack(graph.indices, n_bits=r_bits), "gpn"
            )

    # -- queries -------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def nbytes(self) -> int:
        """Resident bytes across every published segment."""
        return sum(s.nbytes for s in self._segments)

    def handle(self) -> SharedGraphHandle:
        """The descriptor workers attach through (reflects segments
        published so far)."""
        if self._closed:
            raise ValidationError("SharedGraph is closed")
        return SharedGraphHandle(
            n=self.n,
            m=self.m,
            fingerprint=self._fingerprint,
            indptr=self._indptr,
            indices=self._indices,
            weights=self._weights,
            packed_offsets=self._packed_offsets,
            packed_neighbors=self._packed_neighbors,
        )

    def close(self) -> None:
        """Unlink every segment this graph published; idempotent."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            self._registry.release(segment)
        self._segments = []
