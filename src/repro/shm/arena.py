"""Shared-memory chunk arena for the warm-start RRR store.

A warm-start sweep keeps every sampled chunk alive for the lifetime of
the process; with the pickle data plane those chunks are private heap
arrays assembled through two copies (worker pickle -> parent parts ->
``concat``).  The arena instead owns one shared-memory segment per
chunk and has the parent *decode worker payloads directly into it*
(:meth:`ChunkArena.merge_payloads`): the packed wire columns land in
their final resting place, so the merged collection's ``flat`` /
``offsets`` / ``sources`` arrays are zero-copy views over OS shared
pages.  Checkpoint writes then stream straight from those views, and
the resident bytes show up under the ``shm.bytes_resident`` gauge —
the host-side analogue of keeping the RRR store ``R`` device-resident
(§3.2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.memory.budget import governor
from repro.rrr.collection import RRRCollection
from repro.shm.segments import REGISTRY, Segment, SegmentRegistry
from repro.shm.transport import PackedResult
from repro.utils.errors import ValidationError

#: the governor account arena segments report under
ACCOUNT = "shm.arena"


class ArenaChunk:
    """One chunk's arrays, laid out back to back in a single segment."""

    __slots__ = ("flat", "offsets", "sources", "_segment")

    def __init__(
        self,
        flat: np.ndarray,
        offsets: np.ndarray,
        sources: np.ndarray,
        segment: Segment,
    ):
        self.flat = flat
        self.offsets = offsets
        self.sources = sources
        self._segment = segment

    def collection(self, n: int) -> RRRCollection:
        """An :class:`RRRCollection` viewing (not copying) this chunk."""
        return RRRCollection(
            self.flat, self.offsets, n, sources=self.sources, check=False
        )


def _align8(nbytes: int) -> int:
    return (nbytes + 7) & ~7


class ChunkArena:
    """Owner of the shared segments holding one store's chunks."""

    def __init__(self, registry: Optional[SegmentRegistry] = None):
        self._registry = registry if registry is not None else REGISTRY
        self._segments: list[Segment] = []
        self._closed = False

    # -- allocation ----------------------------------------------------------
    def allocate(self, flat_len: int, num_sets: int) -> ArenaChunk:
        """One segment sized for ``flat_len`` elements over ``num_sets``
        sets, partitioned into (offsets, sources, flat) views."""
        if self._closed:
            raise ValidationError("ChunkArena is closed")
        off_bytes = _align8(8 * (num_sets + 1))
        src_bytes = _align8(8 * num_sets)
        flat_bytes = 4 * flat_len
        total = off_bytes + src_bytes + flat_bytes
        # ask the governor for room first: under a budget this demotes
        # cold chunks *before* the new segment lands, not after
        governor().request(total)
        segment = self._registry.create(total, "chunk")
        governor().account(ACCOUNT, "resident", segment.nbytes)
        offsets = segment.view(np.int64, num_sets + 1, offset=0)
        sources = segment.view(np.int64, num_sets, offset=off_bytes)
        flat = segment.view(np.int32, flat_len, offset=off_bytes + src_bytes)
        self._segments.append(segment)
        obs.counter_add("shm.arena_chunk_bytes", segment.nbytes)
        return ArenaChunk(flat, offsets, sources, segment)

    # -- ingestion -----------------------------------------------------------
    def merge_payloads(self, payloads: Sequence[PackedResult], n: int) -> ArenaChunk:
        """Decode packed worker payloads straight into one arena chunk.

        Each payload's flat / sizes / sources columns are unpacked into
        their slice of the shared buffers; offsets are finished with a
        single in-place cumsum.  No intermediate per-worker arrays, no
        concat copy.
        """
        flat_len = sum(p.decode_sizes()[0] for p in payloads)
        num_sets = sum(p.decode_sizes()[1] for p in payloads)
        chunk = self.allocate(flat_len, num_sets)
        chunk.offsets[0] = 0
        sizes = chunk.offsets[1:]  # filled with sizes, then cumsum'd in place
        flat_at = 0
        set_at = 0
        for payload in payloads:
            p_flat, p_sets = payload.decode_sizes()
            payload.decode_into(
                flat_out=chunk.flat[flat_at : flat_at + p_flat],
                sizes_out=sizes[set_at : set_at + p_sets],
                sources_out=chunk.sources[set_at : set_at + p_sets],
            )
            flat_at += p_flat
            set_at += p_sets
        np.cumsum(sizes, out=sizes)
        return chunk

    def adopt(self, collection: RRRCollection) -> RRRCollection:
        """Move an existing collection's arrays into the arena (one copy).

        Fallback used when a chunk arrived through the raw path (serial
        sampling, degraded jobs): the arena still becomes the owner so
        residency accounting and lifecycle stay uniform.
        """
        chunk = self.allocate(collection.flat.size, collection.num_sets)
        chunk.flat[:] = collection.flat
        chunk.offsets[:] = collection.offsets
        if collection.sources is not None:
            chunk.sources[:] = collection.sources
            sources = chunk.sources
        else:
            sources = None
        return RRRCollection(
            chunk.flat, chunk.offsets, collection.n, sources=sources, check=False
        )

    def owns(self, collection: RRRCollection) -> bool:
        """Whether ``collection``'s arrays live in one of this arena's
        segments (pool fan-out can still return heap arrays for small
        requests, so callers must not assume)."""
        return any(s.owns_array(collection.offsets) for s in self._segments)

    def release_segment_of(self, collection: RRRCollection) -> int:
        """Unlink the one segment backing ``collection``; returns its bytes.

        The demotion path of a tiered chunk: once the chunk's columns
        are packed into the compressed tier, its shared segment is no
        longer needed.  The owner is found by pointer containment
        (``offsets`` always lives in the chunk's segment); an unknown
        collection is a no-op returning 0.  Any views still handed out
        stay readable until they are garbage collected — unlinking
        removes the name, not the mapping.
        """
        for segment in self._segments:
            if segment.owns_array(collection.offsets):
                self._segments.remove(segment)
                self._registry.release(segment)
                governor().account(ACCOUNT, "resident", -segment.nbytes)
                return segment.nbytes
        return 0

    # -- lifecycle -----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def nbytes(self) -> int:
        return sum(s.nbytes for s in self._segments)

    @property
    def num_chunks(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        """Unlink every chunk segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            self._registry.release(segment)
            governor().account(ACCOUNT, "resident", -segment.nbytes)
        self._segments = []

    def __del__(self):
        # Backstop for arenas whose owner (an RRRStore) was dropped
        # without close(): without this, the registry's strong refs keep
        # the chunk segments resident until atexit.  Any collection
        # views already handed out stay valid — close() unlinks names
        # but defers the unmap to view GC.
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
