"""``repro.shm`` — the zero-copy shared-memory data plane.

Three pieces, mirroring the paper's memory story on the host side:

* :mod:`repro.shm.graph` — the CSC graph published once into OS shared
  memory and attached zero-copy by every sampler worker (the host
  analogue of eIM's device-resident graph, §3.1);
* :mod:`repro.shm.transport` — worker results travel bit-packed
  (log-encoded IPC, the §3.1 encoding applied to the executor pipe);
* :mod:`repro.shm.arena` — warm-start RRR chunks live in shared
  segments the parent decodes worker payloads straight into.

Everything rides the refcounted :class:`~repro.shm.segments.SegmentRegistry`
(unlink-on-close, atexit backstop, resource-tracker silence) and falls
back to the original pickle path wherever ``multiprocessing.shared_memory``
is unavailable: ``options.data_plane`` / ``REPRO_DATA_PLANE`` /
``--data-plane`` select ``"shm"`` (default when available) or
``"pickle"``, with bit-identical output either way.
"""

from repro.shm.arena import ArenaChunk, ChunkArena
from repro.shm.graph import (
    SharedGraph,
    SharedGraphHandle,
    attach_graph,
    attach_packed_csc,
)
from repro.shm.segments import (
    ENV_VAR,
    REGISTRY,
    Segment,
    SegmentRegistry,
    attach_shared_memory,
    resolve_data_plane,
    shm_available,
)
from repro.shm.transport import PackedResult

__all__ = [
    "ArenaChunk",
    "ChunkArena",
    "ENV_VAR",
    "PackedResult",
    "REGISTRY",
    "Segment",
    "SegmentRegistry",
    "SharedGraph",
    "SharedGraphHandle",
    "attach_graph",
    "attach_packed_csc",
    "attach_shared_memory",
    "resolve_data_plane",
    "shm_available",
]
