"""Word-parallel bitset kernels — the host-side hot-loop substrate.

``repro.kernels`` is the CPU analogue of the device's word-parallel
inner loops: packed uint64 primitives (:mod:`repro.kernels.bitset`),
the dense visited/membership planes built on them
(:mod:`repro.kernels.planes`), and the mode/budget resolution that
decides when the dense paths run (:mod:`repro.kernels.modes`).
"""

from repro.kernels.bitset import (
    WORD_BITS,
    andnot_words,
    decode_bits,
    pack_bits,
    popcount_rows,
    popcount_words,
    scatter_or,
    split_index,
    tail_mask,
    test_bits,
    words_for_bits,
)
from repro.kernels.modes import (
    COVERAGE_SCANS,
    DEFAULT_PLANE_BUDGET_BYTES,
    ENV_BUDGET_MB,
    ENV_COVERAGE_SCAN,
    ENV_VISITED_MODE,
    VISITED_MODES,
    choose_scan_impl,
    choose_visited_impl,
    plane_budget_bytes,
    resolve_coverage_scan,
    resolve_visited_mode,
)
from repro.kernels.planes import MembershipPlane, VisitedPlane

__all__ = [
    "WORD_BITS",
    "andnot_words",
    "decode_bits",
    "pack_bits",
    "popcount_rows",
    "popcount_words",
    "scatter_or",
    "split_index",
    "tail_mask",
    "test_bits",
    "words_for_bits",
    "COVERAGE_SCANS",
    "DEFAULT_PLANE_BUDGET_BYTES",
    "ENV_BUDGET_MB",
    "ENV_COVERAGE_SCAN",
    "ENV_VISITED_MODE",
    "VISITED_MODES",
    "choose_scan_impl",
    "choose_visited_impl",
    "plane_budget_bytes",
    "resolve_coverage_scan",
    "resolve_visited_mode",
    "MembershipPlane",
    "VisitedPlane",
]
