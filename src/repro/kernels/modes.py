"""Kernel-mode resolution: which visited/scan implementation runs.

Both knobs are *operational* — every implementation produces
bit-identical output — so, like the data plane, they are resolved at
call time (explicit value > environment > ``auto``) and never become
part of store or pool identities.  ``auto`` picks the dense bitset
implementation only when its plane fits an explicit memory budget and
falls back to the sparse path otherwise; fallbacks are counted
(``kernels.bitset.fallbacks``), not raised.
"""

from __future__ import annotations

import os
from typing import Optional

from repro import obs
from repro.kernels.bitset import words_for_bits
from repro.memory.budget import env_budget_bytes, governor
from repro.utils.errors import ValidationError

#: how the samplers keep per-traversal visited state
VISITED_MODES = ("auto", "sorted", "bitset")
#: how seed selection computes marginal coverage
COVERAGE_SCANS = ("auto", "csr", "bitset")

ENV_VISITED_MODE = "REPRO_VISITED_MODE"
ENV_COVERAGE_SCAN = "REPRO_COVERAGE_SCAN"
#: legacy name; both it and REPRO_MEMORY_BUDGET_MB now feed the shared
#: governor (see :mod:`repro.memory.budget`)
ENV_BUDGET_MB = "REPRO_KERNEL_BUDGET_MB"

#: default ceiling for any single dense bit plane (visited plane or
#: membership plane); ``auto`` falls back to the sparse path above it
DEFAULT_PLANE_BUDGET_BYTES = 64 * 1024 * 1024


def plane_budget_bytes() -> int:
    """The dense-plane byte budget.

    The process memory budget (``IMMOptions(memory_budget_mb=)`` /
    ``REPRO_MEMORY_BUDGET_MB`` / legacy ``REPRO_KERNEL_BUDGET_MB``) when
    one is set, else a conservative per-plane default — a process that
    never configured a budget still refuses pathological dense planes.
    """
    budget = governor().budget_bytes
    if budget is None:
        budget = env_budget_bytes()
    return DEFAULT_PLANE_BUDGET_BYTES if budget is None else budget


def _plane_fits(plane_bytes: int) -> bool:
    """Whether one dense plane fits both the per-plane ceiling and the
    governor's *remaining* headroom.

    The headroom check is what ties the kernels into the shared
    accountant: a plane that fits an empty budget may not fit next to a
    resident RRR store, and ``request`` gives the tiering a chance to
    demote chunks before the sparse fallback is taken.
    """
    plane_bytes = int(plane_bytes)
    if plane_bytes > plane_budget_bytes():
        return False
    gov = governor()
    if gov.would_fit(plane_bytes):
        return True
    return gov.request(plane_bytes)


def resolve_visited_mode(value: Optional[str] = None) -> str:
    """Normalize a visited-mode request (explicit > env > ``auto``)."""
    if value is None:
        value = os.environ.get(ENV_VISITED_MODE) or None
    if value is None:
        return "auto"
    mode = str(value).strip().lower()
    if mode not in VISITED_MODES:
        raise ValidationError(
            f"unknown visited mode {value!r}; choose one of {VISITED_MODES}"
        )
    return mode


def resolve_coverage_scan(value: Optional[str] = None) -> str:
    """Normalize a coverage-scan request (explicit > env > ``auto``)."""
    if value is None:
        value = os.environ.get(ENV_COVERAGE_SCAN) or None
    if value is None:
        return "auto"
    scan = str(value).strip().lower()
    if scan not in COVERAGE_SCANS:
        raise ValidationError(
            f"unknown coverage scan {value!r}; choose one of {COVERAGE_SCANS}"
        )
    return scan


def choose_visited_impl(mode: str, batch: int, n: int) -> str:
    """Pick ``'bitset'`` or ``'sorted'`` for one sampler batch.

    The whole ``(batch x n)``-bit plane must fit the budget: shrinking
    the plane by running the batch in sequential slices would reorder
    RNG consumption and break bit-identical parity, so over budget the
    batch runs on the sorted-key path instead (counted as a fallback).
    """
    mode = resolve_visited_mode(mode)
    if mode != "auto":
        return mode
    plane_bytes = int(batch) * words_for_bits(n) * 8
    if _plane_fits(plane_bytes):
        return "bitset"
    obs.counter_add("kernels.bitset.fallbacks", 1)
    return "sorted"


def choose_scan_impl(scan: str, n: int, num_sets: int) -> str:
    """Pick ``'bitset'`` or ``'csr'`` for one selection run.

    Budget-gated on the ``(n x num_sets)``-bit membership plane the
    bitset scan would materialize.
    """
    scan = resolve_coverage_scan(scan)
    if scan != "auto":
        return scan
    plane_bytes = int(n) * words_for_bits(num_sets) * 8
    if _plane_fits(plane_bytes):
        return "bitset"
    obs.counter_add("kernels.bitset.fallbacks", 1)
    return "csr"
