"""Word-parallel uint64 bitset primitives — the host kernel substrate.

The device keeps its per-set hot loops register/word-parallel: the
visited bitmask ``M`` probed during BFS expansion (§3.2) and the
thread-based selection scan over the covered flags (§3.5) both touch
machine words, not elements.  The host analogue of that discipline is a
small family of NumPy kernels over packed ``uint64`` planes:

* :func:`pack_bits` — scatter a sorted id stream into a packed bitmap
  (the vectorized replacement of the per-vertex ``|=`` loop);
* :func:`scatter_or` — duplicate-safe OR-scatter of word masks via a
  run-boundary ``bitwise_or.reduceat`` (no unbuffered ``ufunc.at``);
* :func:`test_bits` — vectorized membership gather, one word read and
  one shift per query;
* :func:`popcount_words` / :func:`popcount_rows` — population count
  through a 256-entry uint8 lookup-table view (no Python-level bit
  twiddling, no 64x ``unpackbits`` blow-up);
* :func:`decode_bits` — ascending bit positions of a word array,
  expanding only the nonzero words;
* :func:`andnot_words` — the ``new = mine AND NOT covered`` inner step
  of the word-parallel coverage scan.

Everything operates on little-endian bit order within each word
(``bit i of word w`` is id ``64*w + i``), matching the layout
:mod:`repro.encoding.bitmap` has always used, so packed planes and the
hybrid bitmap codec interoperate byte for byte.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError

#: bits per plane word; every kernel in this module assumes uint64
WORD_BITS = 64

#: uint8 -> set-bit count; a LUT *view* of the word array (words viewed
#: as bytes, gathered through this table) popcounts without unpacking
#: one byte per bit
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

_ONE = np.uint64(1)
_BIT_MASK = np.uint64(WORD_BITS - 1)


def words_for_bits(nbits: int) -> int:
    """Words needed to hold ``nbits`` bits (the ``n % 64 != 0`` tail
    rounds up to a partially used final word)."""
    if nbits < 0:
        raise ValidationError("bit count must be non-negative")
    return -(-int(nbits) // WORD_BITS)


def tail_mask(nbits: int) -> np.uint64:
    """Mask of the valid bits in the final word of an ``nbits`` plane
    row (all-ones when ``nbits`` is a word multiple)."""
    rem = int(nbits) % WORD_BITS
    if rem == 0:
        return np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.uint64((1 << rem) - 1)


def split_index(ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(word index, bit mask)`` of each id — one pass, no divmod."""
    ids = np.asarray(ids)
    word = ids >> 6
    mask = _ONE << (ids.astype(np.uint64) & _BIT_MASK)
    return word, mask


def scatter_or(words: np.ndarray, word_idx: np.ndarray, masks: np.ndarray) -> None:
    """OR ``masks`` into ``words`` at ``word_idx`` (sorted, dup-safe).

    ``word_idx`` must be non-decreasing: runs of equal indices are
    combined with one ``bitwise_or.reduceat`` pass and written with a
    plain fancy-index ``|=`` over the now-unique run heads — the
    buffered, vectorized alternative to ``np.bitwise_or.at``.
    """
    if word_idx.size == 0:
        return
    if word_idx.size == 1:
        words[word_idx[0]] |= masks[0]
        return
    starts = np.flatnonzero(np.diff(word_idx)) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), starts))
    words[word_idx[starts]] |= np.bitwise_or.reduceat(masks, starts)


def pack_bits(ids: np.ndarray, nbits: int, out: np.ndarray | None = None) -> np.ndarray:
    """Pack ascending-sorted ids into a little-endian uint64 bitmap.

    Byte-identical to the historical per-element ``bitmap[v >> 6] |=
    1 << (v & 63)`` loop, in two vectorized passes (split + OR-scatter).
    """
    ids = np.asarray(ids)
    nwords = words_for_bits(nbits)
    if out is None:
        out = np.zeros(nwords, dtype=np.uint64)
    elif out.size != nwords:
        raise ValidationError(
            f"output bitmap has {out.size} words, {nbits} bits need {nwords}"
        )
    if ids.size == 0:
        return out
    if int(ids[-1]) >= nbits or int(ids[0]) < 0:
        raise ValidationError("ids out of bitmap range")
    word, mask = split_index(ids)
    scatter_or(out, word, mask)
    return out


def test_bits(words: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Membership gather: ``True`` where the id's bit is set."""
    if ids.size == 0:
        return np.zeros(0, dtype=bool)
    word, _ = split_index(ids)
    shift = np.asarray(ids).astype(np.uint64) & _BIT_MASK
    return ((words[word] >> shift) & _ONE).astype(bool)


def popcount_words(words: np.ndarray) -> int:
    """Total set bits of a word array (uint8-LUT view, summed wide)."""
    if words.size == 0:
        return 0
    return int(_POPCOUNT8[words.view(np.uint8)].sum(dtype=np.int64))


def popcount_rows(plane: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a 2-D ``(rows, words)`` plane."""
    rows = plane.shape[0]
    if rows == 0 or plane.size == 0:
        return np.zeros(rows, dtype=np.int64)
    bytes_view = plane.view(np.uint8).reshape(rows, -1)
    return _POPCOUNT8[bytes_view].sum(axis=1, dtype=np.int64)


def andnot_words(mine: np.ndarray, covered: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """``mine AND NOT covered`` — the word-parallel marginal-gain core."""
    if out is None:
        return mine & ~covered
    np.bitwise_and(mine, ~covered, out=out)
    return out


def decode_bits(words: np.ndarray, nbits: int | None = None) -> np.ndarray:
    """Ascending bit positions set in ``words``.

    Only nonzero words are expanded (8 bytes -> 64 flags each), so the
    cost tracks the number of *set* words, not the plane width.  With
    ``nbits`` the result is clipped to valid positions — the tail of a
    partially used final word.
    """
    nz = np.flatnonzero(words)
    if nz.size == 0:
        return np.empty(0, dtype=np.int64)
    flags = np.unpackbits(
        words[nz].view(np.uint8).reshape(nz.size, 8), axis=1, bitorder="little"
    )
    word_of, bit_of = np.nonzero(flags)
    positions = nz[word_of] * WORD_BITS + bit_of
    if nbits is not None and positions.size and int(positions[-1]) >= nbits:
        positions = positions[: np.searchsorted(positions, nbits, side="left")]
    return positions
