"""Dense bit planes built on the word-parallel kernels.

Two packed planes serve the two hot paths:

* :class:`VisitedPlane` — the sampler-side ``(batch x n)``-bit visited
  plane, one row per in-flight RRR traversal.  Membership and dedup are
  one word gather / one OR-scatter per candidate, replacing the sorted
  key array's per-round ``unique`` + ``searchsorted`` + merge; at batch
  end the rows decode back to the exact sid-major / vertex-ascending
  key stream the sorted path maintains incrementally.
* :class:`MembershipPlane` — the selection-side ``(n x theta)``-bit
  vertex->set membership plane.  A vertex's marginal coverage is
  ``popcount(row AND NOT covered)`` over packed words — the host mirror
  of §3.5's thread-based scan — and rows extend append-only as the RRR
  stream grows, so one plane serves every prefix of a sweep.

Both planes account their footprint and word traffic to
:mod:`repro.obs` (``kernels.bitset.*`` / ``kernels.membership.*``).
"""

from __future__ import annotations

import weakref

import numpy as np

from repro import obs
from repro.kernels.bitset import (
    WORD_BITS,
    _ONE,
    decode_bits,
    popcount_rows,
    scatter_or,
    split_index,
    words_for_bits,
)
from repro.memory.budget import governor
from repro.utils.errors import ValidationError

#: cap on the transient ``unpackbits`` expansion during plane
#: extraction: rows decode in tiles of at most this many plane words
#: (64 flag bytes per word), keeping the scratch under ~16 MiB
EXTRACT_TILE_WORDS = 1 << 18

#: the governor account dense planes report under
ACCOUNT = "kernels.planes"


class _PlaneCharge:
    """Governor accounting for one plane's resident bytes.

    Planes have no ``close()`` — a visited plane lives for one sampler
    batch, a membership plane for a store's lifetime — so the credit is
    tied to garbage collection via ``weakref.finalize`` on the owner.
    The governor instance is captured at creation: after a test's
    ``reset_governor`` the release still balances the ledger it charged.
    """

    __slots__ = ("_gov", "_nbytes")

    def __init__(self):
        self._gov = governor()
        self._nbytes = 0

    def resize(self, nbytes: int) -> None:
        delta = int(nbytes) - self._nbytes
        if delta > 0:
            self._gov.request(delta)
        self._nbytes = int(nbytes)
        self._gov.account(ACCOUNT, "resident", delta)

    def release(self) -> None:
        if self._nbytes:
            self._gov.account(ACCOUNT, "resident", -self._nbytes)
            self._nbytes = 0


class VisitedPlane:
    """A ``(batch x n)``-bit dense visited plane for lockstep traversals.

    Row ``sid`` holds the visited bitmap of traversal ``sid``; ids are
    vertex numbers.  All mutating entry points take parallel ``(sid,
    vertex)`` arrays.
    """

    __slots__ = (
        "batch", "n", "words_per_row", "_plane", "_flat", "_charge",
        "__weakref__",
    )

    def __init__(self, batch: int, n: int):
        if batch < 0 or n < 1:
            raise ValidationError("VisitedPlane needs batch >= 0 and n >= 1")
        self.batch = int(batch)
        self.n = int(n)
        self.words_per_row = words_for_bits(n)
        self._plane = np.zeros((self.batch, self.words_per_row), dtype=np.uint64)
        self._flat = self._plane.reshape(-1)
        self._charge = _PlaneCharge()
        self._charge.resize(self._plane.nbytes)
        weakref.finalize(self, self._charge.release)
        obs.gauge_max("kernels.bitset.plane_bytes", int(self._plane.nbytes))

    @property
    def nbytes(self) -> int:
        return int(self._plane.nbytes)

    def _word_index(self, sid: np.ndarray, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        word, mask = split_index(vertices)
        return sid * self.words_per_row + word, mask

    def test(self, sid: np.ndarray, vertices: np.ndarray) -> np.ndarray:
        """Membership gather: ``True`` where ``(sid, vertex)`` is visited."""
        if sid.size == 0:
            return np.zeros(0, dtype=bool)
        idx, _ = self._word_index(sid, vertices)
        shift = np.asarray(vertices).astype(np.uint64) & np.uint64(WORD_BITS - 1)
        obs.counter_add("kernels.bitset.words_touched", idx.size)
        return ((self._flat[idx] >> shift) & _ONE).astype(bool)

    def set_rowwise_unique(self, sid: np.ndarray, vertices: np.ndarray) -> None:
        """Set bits when each row appears at most once (no shared words:
        distinct rows never collide, so a fancy-index ``|=`` is exact)."""
        if sid.size == 0:
            return
        idx, mask = self._word_index(sid, vertices)
        self._flat[idx] |= mask
        obs.counter_add("kernels.bitset.words_touched", idx.size)

    def set_sorted_keys(self, sid: np.ndarray, vertices: np.ndarray) -> None:
        """Set bits for key-ascending ``(sid, vertex)`` pairs (duplicate
        *words* allowed — nearby vertices of one row — handled by the
        reduceat OR-scatter)."""
        if sid.size == 0:
            return
        idx, mask = self._word_index(sid, vertices)
        scatter_or(self._flat, idx, mask)
        obs.counter_add("kernels.bitset.words_touched", idx.size)

    def sizes(self) -> np.ndarray:
        """Per-row set-bit counts (the per-set visited sizes)."""
        return popcount_rows(self._plane)

    def extract_keys(self) -> np.ndarray:
        """The visited stream as ascending ``sid * n + v`` keys.

        Rows decode in word tiles (bounding the transient bit-unpack
        scratch); row-major word order makes the concatenated result
        exactly the sorted key array the merge-based path maintains.
        """
        rows_per_tile = max(1, EXTRACT_TILE_WORDS // max(self.words_per_row, 1))
        pieces: list[np.ndarray] = []
        row_bits = self.words_per_row * WORD_BITS
        tiles = 0
        for base in range(0, self.batch, rows_per_tile):
            tile = self._flat[
                base * self.words_per_row : (base + rows_per_tile) * self.words_per_row
            ]
            positions = decode_bits(tile)
            tiles += 1
            if positions.size == 0:
                continue
            tile_sid, v = np.divmod(positions, row_bits)
            pieces.append((base + tile_sid) * self.n + v)
        obs.counter_add("kernels.bitset.tiles", tiles)
        if not pieces:
            return np.empty(0, dtype=np.int64)
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)


class MembershipPlane:
    """Append-only packed ``(n x num_sets)``-bit vertex->set membership.

    Row ``v`` is the bitmap of RRR set ids containing vertex ``v``.
    Word capacity grows geometrically (columns double), so extending by
    one chunk of the stream is amortized O(new elements); rows are
    stable views once capacity suffices, which is what lets one plane
    serve every theta prefix of a warm-start sweep.
    """

    __slots__ = (
        "n", "num_sets", "num_elements", "_words_cap", "_plane", "_charge",
        "__weakref__",
    )

    def __init__(self, n: int):
        if n < 1:
            raise ValidationError("MembershipPlane needs at least one vertex")
        self.n = int(n)
        self.num_sets = 0
        self.num_elements = 0
        self._words_cap = 1
        self._plane = np.zeros((self.n, 1), dtype=np.uint64)
        self._charge = _PlaneCharge()
        self._charge.resize(self._plane.nbytes)
        weakref.finalize(self, self._charge.release)

    @property
    def nbytes(self) -> int:
        return int(self._plane.nbytes)

    def _grow_to(self, num_sets: int) -> None:
        need = words_for_bits(num_sets)
        if need <= self._words_cap:
            return
        cap = self._words_cap
        while cap < need:
            cap *= 2
        wider = np.zeros((self.n, cap), dtype=np.uint64)
        wider[:, : self._words_cap] = self._plane
        self._plane = wider
        self._words_cap = cap
        self._charge.resize(self._plane.nbytes)
        obs.gauge_max("kernels.membership.plane_bytes", int(self._plane.nbytes))

    def extend(
        self, seg_flat: np.ndarray, seg_set_ids: np.ndarray, num_sets_after: int
    ) -> None:
        """Scatter the next stream segment's ``(vertex, set)`` bits.

        ``seg_flat``/``seg_set_ids`` are parallel arrays for global
        element positions ``num_elements ..``; set ids must be
        non-decreasing (stream order), which makes the vertex-major
        stable sort below produce a word-sorted scatter.
        """
        seg_flat = np.asarray(seg_flat)
        if seg_flat.size != np.asarray(seg_set_ids).size:
            raise ValidationError("segment arrays must be parallel")
        if num_sets_after < self.num_sets:
            raise ValidationError("membership plane is append-only")
        self._grow_to(num_sets_after)
        if seg_flat.size:
            # stable vertex sort: within a vertex, set ids stay ascending,
            # so word indices are globally non-decreasing for scatter_or
            order = np.argsort(seg_flat, kind="stable")
            v = seg_flat[order].astype(np.int64)
            sets = np.asarray(seg_set_ids)[order].astype(np.int64)
            word, mask = split_index(sets)
            scatter_or(self._plane.reshape(-1), v * self._words_cap + word, mask)
            obs.counter_add("kernels.bitset.words_touched", v.size)
        self.num_sets = max(self.num_sets, int(num_sets_after))
        self.num_elements += int(seg_flat.size)

    def row(self, v: int, nwords: int) -> np.ndarray:
        """The first ``nwords`` membership words of vertex ``v`` (a view)."""
        return self._plane[v, :nwords]
