"""The cuRipples engine (Minutoli et al. 2020) as characterized in §2.3.

CPU+GPU hybrid built for multi-node scaling: the GPU generates RRR sets
but does *not* keep them — batches are offloaded to host memory as they
are produced.  Seed selection moves sets back onto the GPU until its
memory is full; whatever does not fit is scanned by the host CPU cores
every greedy iteration.  The paper attributes cuRipples' large slowdowns
to exactly this repeated host<->device traffic plus the CPU-side share,
and both grow with the RRR volume — which is why eIM's speedup over
cuRipples rises with network size (Figs. 7-8).
"""

from __future__ import annotations

import numpy as np

from repro.engines.base import Engine
from repro.gpu.cost_model import CostModel
from repro.gpu.device import SimulatedDevice
from repro.gpu.scheduler import makespan
from repro.graphs.csc import DirectedGraph
from repro.imm.imm import IMMResult

#: RRR sets are shipped to the host in batches of this many bytes.
OFFLOAD_BATCH_BYTES = 16 * 2**20


class CuRipplesEngine(Engine):
    """cuRipples: host-offloaded RRR store, GPU+CPU split selection.

    The CUDA port of Ripples the paper benchmarks against: the RRR
    store lives in host memory (PCIe transfers charged by the cost
    model) and seed selection splits between device and host.
    """

    name = "curipples"
    eliminate_sources = False

    def _batch_bytes(self, device: SimulatedDevice) -> int:
        # staging cannot exceed a modest slice of whatever device this is
        return min(OFFLOAD_BATCH_BYTES, max(device.spec.global_mem_bytes // 16, 4096))

    def _load_graph(self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph) -> None:
        nbytes = graph.nbytes_csc()
        device.memory.allocate(nbytes, "graph")
        device.charge("graph_upload", device.spec.transfer_cycles(nbytes))
        # staging buffer for outbound RRR batches
        device.memory.allocate(self._batch_bytes(device), "offload_staging")

    def _charge_sampling(
        self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph, imm: IMMResult
    ) -> None:
        trace = imm.trace
        if imm.model == "IC":
            expand = cost.ic_expansion_cycles(trace.edges_examined, encoded=False)
        else:
            expand = cost.lt_expansion_cycles(
                trace.edges_examined, trace.rounds, encoded=False, use_prefix_scan=False
            )
        queue, _ = cost.queue_ops_cycles(trace.sizes, queue="global")
        store = cost.store_cycles(trace.sizes, encoded=False, element_bits=32, copies=1)
        per_set = expand + queue + store + cost.per_set_fixed_cycles(trace.attempted)
        device.charge("sampling", makespan(per_set, device.spec.resident_blocks))
        device.charge("kernel_launches", device.spec.kernel_launch_cycles * max(len(imm.phases), 1))

        # every produced set leaves the device for host memory
        rrr_bytes = imm.collection.nbytes_raw()
        batch_bytes = self._batch_bytes(device)
        batches = max(1, -(-rrr_bytes // batch_bytes))
        per_batch = device.spec.transfer_cycles(min(rrr_bytes, batch_bytes))
        device.charge("offload_to_host", per_batch * batches)

    def _charge_selection(
        self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph, imm: IMMResult
    ) -> None:
        stats = imm.selection.stats
        rrr_bytes = imm.collection.nbytes_raw()
        free = device.memory.free_bytes
        gpu_fraction = min(1.0, free / rrr_bytes) if rrr_bytes else 1.0
        gpu_bytes = int(rrr_bytes * gpu_fraction)
        if gpu_bytes:
            device.memory.allocate(gpu_bytes, "rrr_store_gpu_portion")
            device.charge("reload_to_device", device.spec.transfer_cycles(gpu_bytes))
        # GPU scans its resident fraction warp-per-set; the CPU scans the
        # rest with 16 host cores, every greedy iteration
        gpu_stats_scale = gpu_fraction
        scan_gpu = cost.warp_scan_cycles(stats, encoded=False) * gpu_stats_scale
        scan_cpu = cost.cpu_scan_cycles(stats, set_fraction=1.0 - gpu_fraction)
        device.charge("selection_scan_gpu", scan_gpu)
        device.charge("selection_scan_cpu", scan_cpu)
        device.charge("selection_argmax", cost.argmax_cycles(graph.n, imm.k))
        # covered-set bookkeeping travels back to the host each iteration
        device.charge(
            "selection_sync",
            device.spec.transfer_cycles(imm.collection.num_sets // 8 + 1) * imm.k,
        )

    def _rrr_store_bytes(self, imm: IMMResult) -> int:
        # host-resident: reported for completeness, not device-allocated
        return imm.collection.nbytes_raw()
