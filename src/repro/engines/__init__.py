"""The three GPU influence-maximization engines the paper compares.

All engines share one algorithmic core (:func:`repro.imm.run_imm`), so
their seed quality is identical by construction — the paper's §4.1
observation.  What differs is the *device behaviour* layered on top:

========== =========================================================
Engine      Design (paper section)
========== =========================================================
eIM         log-encoded graph + RRR store, global-memory BFS queues,
            source elimination, thread-based selection scan (§3)
gIM         raw storage, shared-memory queues with dynamic global
            spill, double-copy stores, warp-based scan (§2.3)
cuRipples   raw storage, RRR sets offloaded to host memory, selection
            split between GPU (until full) and CPU (§2.3)
========== =========================================================
"""

from repro.engines.base import Engine, EngineResult
from repro.engines.curipples import CuRipplesEngine
from repro.engines.eim import EIMEngine
from repro.engines.gim import GIMEngine
from repro.engines.ripples_cpu import RipplesCPUEngine

ENGINES = {
    "eim": EIMEngine,
    "gim": GIMEngine,
    "curipples": CuRipplesEngine,
    "ripples_cpu": RipplesCPUEngine,
}

__all__ = [
    "CuRipplesEngine",
    "EIMEngine",
    "ENGINES",
    "Engine",
    "EngineResult",
    "GIMEngine",
    "RipplesCPUEngine",
]
