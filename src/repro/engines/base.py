"""Engine interface and shared run plumbing."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

import warnings

from repro import obs
from repro.gpu.cost_model import CostModel
from repro.gpu.device import DeviceSpec, SimulatedDevice
from repro.graphs.csc import DirectedGraph
from repro.imm.bounds import BoundsConfig
from repro.imm.imm import IMMResult, run_imm
from repro.imm.options import IMMOptions
from repro.utils.errors import DeviceOOMError, ValidationError

_UNSET = object()

#: legacy Engine.run keywords that moved into IMMOptions, in signature order
_LEGACY_RUN_KWARGS = (
    "model",
    "bounds",
    "n_jobs",
    "resilience",
    "selection_strategy",
)


@dataclass
class EngineResult:
    """Outcome of running one engine on one workload.

    ``oom=True`` mirrors the paper's ``OOM`` table entries: the run
    aborted on a device allocation failure and carries no timing.
    """

    engine: str
    model: str
    k: int
    epsilon: float
    seeds: Optional[np.ndarray]
    oom: bool
    oom_detail: str
    total_cycles: float
    seconds: float
    peak_device_bytes: int
    rrr_store_bytes: int
    theta: int
    coverage: float
    breakdown: dict[str, float] = field(default_factory=dict)
    imm: Optional[IMMResult] = None

    def speedup_over(self, other: "EngineResult") -> float:
        """``other.cycles / self.cycles`` — how much faster this run is."""
        if self.oom or other.oom or self.total_cycles <= 0:
            return float("nan")
        return other.total_cycles / self.total_cycles


class Engine(ABC):
    """One GPU IMM implementation: algorithmic core + device cost model.

    Subclasses implement the three phase hooks; :meth:`run` wires them to
    a fresh :class:`SimulatedDevice` and converts allocation failures
    into ``oom`` results.
    """

    name: str = "base"
    eliminate_sources: bool = False

    def run(
        self,
        graph: DirectedGraph,
        k: int,
        epsilon: float,
        model=_UNSET,
        rng=None,
        bounds=_UNSET,
        device_spec: DeviceSpec | None = None,
        imm_result: IMMResult | None = None,
        pool=None,
        store=None,
        n_jobs=_UNSET,
        resilience=_UNSET,
        selection_strategy=_UNSET,
        *,
        options: IMMOptions | None = None,
    ) -> EngineResult:
        """Execute the engine and return seeds plus modeled device costs.

        The stable call shape — identical across all four engines and
        mirroring :func:`~repro.imm.imm.run_imm` — is
        ``engine.run(graph, k, epsilon, options=IMMOptions(...))``.  The
        old per-knob keywords (``model=``, ``bounds=``, ``n_jobs=``,
        ``resilience=``, ``selection_strategy=``) keep working through a
        deprecation shim (removal in repro 2.0) but cannot be mixed with
        ``options=``.  ``options.eliminate_sources`` is overridden by
        the engine's own ``eliminate_sources`` — source elimination is
        an engine property (only eIM implements §3.4), not a workload
        knob.

        ``imm_result`` lets the harness share one algorithmic run between
        engines with identical sampling semantics (gIM and cuRipples);
        when supplied it must have been produced with this engine's
        ``eliminate_sources`` setting and the same workload.

        ``pool`` (a :class:`~repro.rrr.parallel.SamplerPool`) and
        ``store`` (a warm-start :class:`~repro.rrr.store.RRRStore`) are
        forwarded to :func:`run_imm` so all engines of one comparison
        share a single resident worker pool and, in sweeps, top up one
        cached sample instead of resampling.

        ``options.selection_strategy`` picks the host greedy
        implementation (``fast`` / ``lazy`` / ``reference``); all are
        bit-identical in seeds and :class:`SelectionStats`, so modeled
        device costs do not depend on it.
        """
        options = self._resolve_options(
            options, model, bounds, n_jobs, resilience, selection_strategy
        )
        if pool is not None:
            options = options.replace(n_jobs=pool.n_jobs)
        device = SimulatedDevice(self._adapt_spec(device_spec))
        cost = CostModel(device.spec)
        if imm_result is None:
            imm_result = run_imm(
                graph,
                k,
                epsilon,
                rng=rng,
                options=options,
                pool=pool,
                store=store,
            )
        try:
            with obs.span(f"engine.{self.name}.run"):
                self._load_graph(device, cost, graph)
                self._charge_sampling(device, cost, graph, imm_result)
                self._charge_selection(device, cost, graph, imm_result)
            self._publish_metrics(device)
        except DeviceOOMError as exc:
            obs.counter_add(f"engine.{self.name}.oom", 1)
            self._publish_metrics(device)
            return EngineResult(
                engine=self.name,
                model=options.model,
                k=k,
                epsilon=epsilon,
                seeds=None,
                oom=True,
                oom_detail=str(exc),
                total_cycles=float("nan"),
                seconds=float("nan"),
                peak_device_bytes=device.memory.peak,
                rrr_store_bytes=0,
                theta=imm_result.theta,
                coverage=float("nan"),
                breakdown=device.breakdown(),
                imm=imm_result,
            )
        return EngineResult(
            engine=self.name,
            model=options.model,
            k=k,
            epsilon=epsilon,
            seeds=imm_result.seeds,
            oom=False,
            oom_detail="",
            total_cycles=device.elapsed_cycles,
            seconds=device.elapsed_seconds(),
            peak_device_bytes=device.memory.peak,
            rrr_store_bytes=self._rrr_store_bytes(imm_result),
            theta=imm_result.theta,
            coverage=imm_result.coverage_fraction,
            breakdown=device.breakdown(),
            imm=imm_result,
        )

    def _resolve_options(
        self, options, model, bounds, n_jobs, resilience, selection_strategy
    ) -> IMMOptions:
        """Fold the legacy per-knob keywords into one ``IMMOptions``.

        Mirrors the :func:`~repro.imm.imm.run_imm` shim: legacy keywords
        and ``options=`` are mutually exclusive; legacy use warns with
        the removal release.  Whatever the source, the engine's own
        ``eliminate_sources`` wins — it is part of what the engine *is*.
        """
        legacy = {
            name: value
            for name, value in zip(
                _LEGACY_RUN_KWARGS,
                (model, bounds, n_jobs, resilience, selection_strategy),
            )
            if value is not _UNSET
        }
        if options is not None and legacy:
            raise ValidationError(
                "pass options=IMMOptions(...) or the legacy keywords "
                f"({', '.join(sorted(legacy))}), not both"
            )
        if options is None:
            if legacy:
                warnings.warn(
                    f"{type(self).__name__}.run's per-knob keywords are "
                    "deprecated and will be removed in repro 2.0; pass "
                    "options=IMMOptions("
                    + ", ".join(f"{k}=..." for k in sorted(legacy))
                    + ")",
                    DeprecationWarning,
                    stacklevel=3,
                )
            options = IMMOptions(**legacy)
        elif not isinstance(options, IMMOptions):
            raise ValidationError("options must be an IMMOptions instance")
        return options.replace(eliminate_sources=self.eliminate_sources)

    def _publish_metrics(self, device: SimulatedDevice) -> None:
        """Publish the device's cycle breakdown and peak memory into the
        installed :mod:`repro.obs` registry (no-op when profiling is off)."""
        for category, cycles in device.breakdown().items():
            obs.gauge_set(f"engine.{self.name}.cycles.{category}", float(cycles))
        obs.gauge_set(f"engine.{self.name}.cycles.total", float(device.elapsed_cycles))
        obs.gauge_set(f"engine.{self.name}.peak_device_bytes", int(device.memory.peak))

    # -- phase hooks ---------------------------------------------------------
    def _adapt_spec(self, spec: DeviceSpec | None) -> DeviceSpec | None:
        """Hook for engines that do not run on the GPU proper (the CPU
        Ripples baseline swaps in host memory capacity)."""
        return spec

    @abstractmethod
    def _load_graph(self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph) -> None:
        """Allocate the on-device graph representation."""

    @abstractmethod
    def _charge_sampling(
        self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph, imm: IMMResult
    ) -> None:
        """Allocate RRR storage and charge the sampling kernels."""

    @abstractmethod
    def _charge_selection(
        self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph, imm: IMMResult
    ) -> None:
        """Charge the seed-selection kernels."""

    @abstractmethod
    def _rrr_store_bytes(self, imm: IMMResult) -> int:
        """Bytes this engine's RRR store occupies (Fig. 4 reporting)."""
