"""Engine interface and shared run plumbing."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import obs
from repro.gpu.cost_model import CostModel
from repro.gpu.device import DeviceSpec, SimulatedDevice
from repro.graphs.csc import DirectedGraph
from repro.imm.bounds import BoundsConfig
from repro.imm.imm import IMMResult, run_imm
from repro.imm.options import IMMOptions
from repro.utils.errors import DeviceOOMError


@dataclass
class EngineResult:
    """Outcome of running one engine on one workload.

    ``oom=True`` mirrors the paper's ``OOM`` table entries: the run
    aborted on a device allocation failure and carries no timing.
    """

    engine: str
    model: str
    k: int
    epsilon: float
    seeds: Optional[np.ndarray]
    oom: bool
    oom_detail: str
    total_cycles: float
    seconds: float
    peak_device_bytes: int
    rrr_store_bytes: int
    theta: int
    coverage: float
    breakdown: dict[str, float] = field(default_factory=dict)
    imm: Optional[IMMResult] = None

    def speedup_over(self, other: "EngineResult") -> float:
        """``other.cycles / self.cycles`` — how much faster this run is."""
        if self.oom or other.oom or self.total_cycles <= 0:
            return float("nan")
        return other.total_cycles / self.total_cycles


class Engine(ABC):
    """One GPU IMM implementation: algorithmic core + device cost model.

    Subclasses implement the three phase hooks; :meth:`run` wires them to
    a fresh :class:`SimulatedDevice` and converts allocation failures
    into ``oom`` results.
    """

    name: str = "base"
    eliminate_sources: bool = False

    def run(
        self,
        graph: DirectedGraph,
        k: int,
        epsilon: float,
        model: str = "IC",
        rng=None,
        bounds: BoundsConfig | None = None,
        device_spec: DeviceSpec | None = None,
        imm_result: IMMResult | None = None,
        pool=None,
        store=None,
        n_jobs: int = 1,
        resilience=None,
        selection_strategy: str = "fast",
    ) -> EngineResult:
        """Execute the engine and return seeds plus modeled device costs.

        ``imm_result`` lets the harness share one algorithmic run between
        engines with identical sampling semantics (gIM and cuRipples);
        when supplied it must have been produced with this engine's
        ``eliminate_sources`` setting and the same workload.

        ``pool`` (a :class:`~repro.rrr.parallel.SamplerPool`) and
        ``store`` (a warm-start :class:`~repro.rrr.store.RRRStore`) are
        forwarded to :func:`run_imm` so all engines of one comparison
        share a single resident worker pool and, in sweeps, top up one
        cached sample instead of resampling.

        ``selection_strategy`` picks the host greedy implementation
        (``fast`` / ``lazy`` / ``reference``); all are bit-identical in
        seeds and :class:`SelectionStats`, so modeled device costs do
        not depend on it.
        """
        device = SimulatedDevice(self._adapt_spec(device_spec))
        cost = CostModel(device.spec)
        if imm_result is None:
            imm_result = run_imm(
                graph,
                k,
                epsilon,
                rng=rng,
                options=IMMOptions(
                    model=model,
                    eliminate_sources=self.eliminate_sources,
                    bounds=bounds,
                    n_jobs=pool.n_jobs if pool is not None else n_jobs,
                    resilience=resilience,
                    selection_strategy=selection_strategy,
                ),
                pool=pool,
                store=store,
            )
        try:
            with obs.span(f"engine.{self.name}.run"):
                self._load_graph(device, cost, graph)
                self._charge_sampling(device, cost, graph, imm_result)
                self._charge_selection(device, cost, graph, imm_result)
            self._publish_metrics(device)
        except DeviceOOMError as exc:
            obs.counter_add(f"engine.{self.name}.oom", 1)
            self._publish_metrics(device)
            return EngineResult(
                engine=self.name,
                model=model.upper(),
                k=k,
                epsilon=epsilon,
                seeds=None,
                oom=True,
                oom_detail=str(exc),
                total_cycles=float("nan"),
                seconds=float("nan"),
                peak_device_bytes=device.memory.peak,
                rrr_store_bytes=0,
                theta=imm_result.theta,
                coverage=float("nan"),
                breakdown=device.breakdown(),
                imm=imm_result,
            )
        return EngineResult(
            engine=self.name,
            model=model.upper(),
            k=k,
            epsilon=epsilon,
            seeds=imm_result.seeds,
            oom=False,
            oom_detail="",
            total_cycles=device.elapsed_cycles,
            seconds=device.elapsed_seconds(),
            peak_device_bytes=device.memory.peak,
            rrr_store_bytes=self._rrr_store_bytes(imm_result),
            theta=imm_result.theta,
            coverage=imm_result.coverage_fraction,
            breakdown=device.breakdown(),
            imm=imm_result,
        )

    def _publish_metrics(self, device: SimulatedDevice) -> None:
        """Publish the device's cycle breakdown and peak memory into the
        installed :mod:`repro.obs` registry (no-op when profiling is off)."""
        for category, cycles in device.breakdown().items():
            obs.gauge_set(f"engine.{self.name}.cycles.{category}", float(cycles))
        obs.gauge_set(f"engine.{self.name}.cycles.total", float(device.elapsed_cycles))
        obs.gauge_set(f"engine.{self.name}.peak_device_bytes", int(device.memory.peak))

    # -- phase hooks ---------------------------------------------------------
    def _adapt_spec(self, spec: DeviceSpec | None) -> DeviceSpec | None:
        """Hook for engines that do not run on the GPU proper (the CPU
        Ripples baseline swaps in host memory capacity)."""
        return spec

    @abstractmethod
    def _load_graph(self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph) -> None:
        """Allocate the on-device graph representation."""

    @abstractmethod
    def _charge_sampling(
        self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph, imm: IMMResult
    ) -> None:
        """Allocate RRR storage and charge the sampling kernels."""

    @abstractmethod
    def _charge_selection(
        self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph, imm: IMMResult
    ) -> None:
        """Charge the seed-selection kernels."""

    @abstractmethod
    def _rrr_store_bytes(self, imm: IMMResult) -> int:
        """Bytes this engine's RRR store occupies (Fig. 4 reporting)."""
