"""The eIM engine: all four optimizations of §3 enabled.

* log-encoded CSC graph and RRR store (§3.1);
* one-warp-per-block traversal with a pre-allocated *global-memory*
  queue pool — no dynamic allocation, the queue doubles as the RRR set
  and is sorted then copied straight into R (§3.2, Fig. 2);
* LT neighbor choice via the shfl_up prefix scan (§3.3);
* source-vertex elimination (§3.4);
* thread-based selection scan with binary search (§3.5, Alg. 3).

Constructor flags turn each optimization off individually for the
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitpack import required_bits
from repro.encoding.csc_encoded import encode_graph
from repro.engines.base import Engine
from repro.gpu.cost_model import CostModel
from repro.gpu.device import SimulatedDevice
from repro.gpu.scheduler import makespan
from repro.graphs.csc import DirectedGraph
from repro.imm.imm import IMMResult


class EIMEngine(Engine):
    """eIM with per-optimization toggles (all on by default).

    The paper's engine: log encoding of graph and RRR store,
    global-memory BFS queues, source-vertex elimination, and
    thread-based selection scanning — each independently toggleable
    (``EIMEngine(log_encoding=False, ...)``), which is the ablation
    axis of the evaluation.  ``run(graph, k, epsilon,
    options=IMMOptions(...))`` like every engine.
    """

    name = "eim"

    def __init__(
        self,
        log_encoding: bool = True,
        eliminate_sources: bool = True,
        thread_scan: bool = True,
        lt_prefix_scan: bool = True,
        bitset_scan: bool = False,
    ):
        self.log_encoding = bool(log_encoding)
        self.eliminate_sources = bool(eliminate_sources)
        self.thread_scan = bool(thread_scan)
        self.lt_prefix_scan = bool(lt_prefix_scan)
        # what-if variant (off by default, so the baseline engine keeps
        # reproducing the paper's numbers): charge selection as the
        # word-parallel bitset scan instead of the per-set probes
        self.bitset_scan = bool(bitset_scan)

    # -- helpers ------------------------------------------------------------
    def _element_bits(self, n: int) -> int:
        return required_bits(max(n - 1, 1))

    def _load_graph(self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph) -> None:
        if self.log_encoding:
            encoded = encode_graph(graph)
            nbytes = encoded.nbytes_packed()
        else:
            nbytes = graph.nbytes_csc()
        device.memory.allocate(nbytes, "graph")
        device.charge("graph_upload", device.spec.transfer_cycles(nbytes))
        # pre-allocated per-block BFS queue pool (§3.2): one n-element
        # queue per resident block, sized for the worst-case RRR set
        pool = device.spec.resident_blocks * graph.n * 4
        device.memory.allocate(pool, "queue_pool")

    def _charge_sampling(
        self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph, imm: IMMResult
    ) -> None:
        trace = imm.trace
        bits = self._element_bits(graph.n)
        if imm.model == "IC":
            expand = cost.ic_expansion_cycles(
                trace.edges_examined, self.log_encoding, bits
            )
        else:
            expand = cost.lt_expansion_cycles(
                trace.edges_examined,
                trace.rounds,
                self.log_encoding,
                bits,
                use_prefix_scan=self.lt_prefix_scan,
            )
        queue, _ = cost.queue_ops_cycles(trace.sizes, queue="global")
        sort = cost.sort_cycles(trace.sizes)
        # only kept sets are stored; discarded (emptied singleton) sets
        # still paid their traversal above
        store = np.where(
            trace.kept_mask,
            cost.store_cycles(trace.sizes, self.log_encoding, bits, copies=1),
            0.0,
        )
        per_set = expand + queue + sort + store + cost.per_set_fixed_cycles(trace.attempted)
        device.charge("sampling", makespan(per_set, device.spec.resident_blocks))
        device.charge("kernel_launches", device.spec.kernel_launch_cycles * max(len(imm.phases), 1))

        # RRR storage: packed R and O, raw counts C (mutated by atomics)
        collection = imm.collection
        if self.log_encoding:
            rrr_bytes = collection.nbytes_packed()
        else:
            rrr_bytes = collection.nbytes_raw()
        device.memory.allocate(rrr_bytes, "rrr_store")

    def _charge_selection(
        self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph, imm: IMMResult
    ) -> None:
        stats = imm.selection.stats
        bits = self._element_bits(graph.n)
        if self.bitset_scan:
            scan = cost.bitset_scan_cycles(stats, self.log_encoding, bits)
        elif self.thread_scan:
            scan = cost.thread_scan_cycles(stats, self.log_encoding, bits)
        else:
            scan = cost.warp_scan_cycles(stats, self.log_encoding, bits)
        device.charge("selection_scan", scan)
        device.charge("selection_argmax", cost.argmax_cycles(graph.n, imm.k))

    def _rrr_store_bytes(self, imm: IMMResult) -> int:
        if self.log_encoding:
            return imm.collection.nbytes_packed()
        return imm.collection.nbytes_raw()
