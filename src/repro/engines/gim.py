"""The gIM engine (Shahrouz et al. 2021) as characterized in §2.3.

Single-GPU, edge-level parallel BFS with the warp's queue in *shared*
memory: fast while a set fits, but overflowing the block's shared
capacity triggers device-side dynamic allocations and global spills, and
every finished set is written to a dynamically-allocated temporary
buffer before being copied into the final store (two copies).  RRR data
is stored raw (32-bit), and the selection phase scans sets warp-per-set.

The memory model charges, on top of the raw R/O/C arrays, the per-block
temporaries plus heap fragmentation from the repeated ``malloc``s — the
mechanism by which gIM "can eventually exhaust the GPU's memory" and the
source of the paper's OOM entries.
"""

from __future__ import annotations

import numpy as np

from repro.engines.base import Engine
from repro.gpu.cost_model import CostModel
from repro.gpu.device import SimulatedDevice
from repro.gpu.scheduler import makespan
from repro.graphs.csc import DirectedGraph
from repro.imm.imm import IMMResult

#: Fraction of every dynamically-allocated spill chunk lost to heap
#: fragmentation in the device allocator.
FRAGMENTATION_FACTOR = 0.5


class GIMEngine(Engine):
    """gIM: shared-memory queues, raw storage, warp-based selection.

    The closest prior GPU IMM system and the paper's primary baseline;
    identical sampling semantics to vanilla IMM, so ``compare_engines``
    shares one run between gIM and cuRipples.
    """

    name = "gim"
    eliminate_sources = False

    def __init__(self, shared_queue_fraction: float = 0.5):
        #: fraction of the block's shared memory given to the BFS queue
        #: (the rest holds the visited bitmap and block state)
        self.shared_queue_fraction = float(shared_queue_fraction)

    def _shared_capacity_elems(self, device: SimulatedDevice) -> int:
        return max(
            64, int(device.spec.shared_mem_per_block * self.shared_queue_fraction) // 4
        )

    def _load_graph(self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph) -> None:
        nbytes = graph.nbytes_csc()
        device.memory.allocate(nbytes, "graph")
        device.charge("graph_upload", device.spec.transfer_cycles(nbytes))

    def _charge_sampling(
        self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph, imm: IMMResult
    ) -> None:
        trace = imm.trace
        capacity = self._shared_capacity_elems(device)
        if imm.model == "IC":
            expand = cost.ic_expansion_cycles(trace.edges_examined, encoded=False)
        else:
            # gIM's LT kernel accumulates weights with shared atomics —
            # the serialized variant §3.3 measures and rejects
            expand = cost.lt_expansion_cycles(
                trace.edges_examined, trace.rounds, encoded=False, use_prefix_scan=False
            )
        queue, spills = cost.queue_ops_cycles(
            trace.sizes, queue="shared", shared_capacity_elems=capacity
        )
        store = cost.store_cycles(trace.sizes, encoded=False, element_bits=32, copies=2)
        # sets that fit the shared queue reuse the block's cached temporary
        # buffer; overflowing sets need a fresh device allocation for their
        # temporary RRR copy, on top of one allocation per spill chunk
        needs_temp_alloc = (trace.sizes > capacity).astype(np.float64)
        mallocs = (needs_temp_alloc + spills) * device.spec.malloc_cycles
        per_set = expand + queue + store + mallocs + cost.per_set_fixed_cycles(trace.attempted)
        device.charge("sampling", makespan(per_set, device.spec.resident_blocks))
        device.charge("kernel_launches", device.spec.kernel_launch_cycles * max(len(imm.phases), 1))

        collection = imm.collection
        device.memory.allocate(collection.nbytes_raw(), "rrr_store")
        # per-block temporary buffers sized to the largest set seen
        max_size = int(trace.sizes.max()) if trace.sizes.size else 1
        temp = device.spec.resident_blocks * max(max_size, 64) * 4
        device.memory.allocate(temp, "temp_buffers")
        capacity_bytes = capacity * 4
        frag = int(float(spills.sum()) * capacity_bytes * FRAGMENTATION_FACTOR)
        if frag:
            device.memory.allocate(frag, "heap_fragmentation")

    def _charge_selection(
        self, device: SimulatedDevice, cost: CostModel, graph: DirectedGraph, imm: IMMResult
    ) -> None:
        stats = imm.selection.stats
        device.charge("selection_scan", cost.warp_scan_cycles(stats, encoded=False))
        device.charge("selection_argmax", cost.argmax_cycles(graph.n, imm.k))

    def _rrr_store_bytes(self, imm: IMMResult) -> int:
        return imm.collection.nbytes_raw()
