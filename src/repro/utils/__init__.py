"""Shared utilities: RNG handling, error types, validation helpers."""

from repro.utils.errors import (
    DeviceOOMError,
    GraphFormatError,
    ReproError,
    ValidationError,
)
from repro.utils.rng import as_generator, spawn_generators

__all__ = [
    "DeviceOOMError",
    "GraphFormatError",
    "ReproError",
    "ValidationError",
    "as_generator",
    "spawn_generators",
]
