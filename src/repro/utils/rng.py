"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts ``rng`` as either an
integer seed, ``None`` (fresh OS entropy) or an existing
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes the three
forms; :func:`spawn_generators` derives independent child streams, which is
how the simulated device hands a private stream to each block/warp so runs
are reproducible regardless of scheduling order.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | None | np.random.Generator"


def as_generator(rng: "int | None | np.random.Generator") -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared state);
    passing an int seeds a fresh PCG64 stream; ``None`` draws OS entropy.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_seed_sequences(rng: "int | None | np.random.Generator", n: int) -> list:
    """Spawn ``n`` child :class:`numpy.random.SeedSequence` objects.

    These are the picklable keys from which independent child streams are
    built; :func:`spawn_generators` wraps each in a PCG64 generator, and
    the process-parallel sampler ships them to workers so the worker-side
    generators are *exactly* the parent-side spawned streams (re-seeding
    from a generator's raw 128-bit state would re-hash it through
    SeedSequence and drop the stream increment, yielding different
    streams).
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seed sequences")
    parent = as_generator(rng)
    return parent.bit_generator.seed_seq.spawn(n)


def spawn_generators(rng: "int | None | np.random.Generator", n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses the ``spawn`` protocol of the underlying bit generator's seed
    sequence, which guarantees independence between children and from the
    parent's future output.
    """
    return [
        np.random.Generator(np.random.PCG64(s))
        for s in spawn_seed_sequences(rng, n)
    ]
