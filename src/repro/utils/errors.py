"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything library-specific with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, dtype, range, ...)."""


class GraphFormatError(ReproError, ValueError):
    """An on-disk graph file could not be parsed."""


class ResilienceError(ReproError, RuntimeError):
    """A supervised sampling run could not be recovered.

    Only raised when the retry budget is exhausted *and* serial
    fallback is disabled (``ResilienceOptions(serial_fallback=False)``);
    with the defaults the pipeline degrades instead of raising.
    """


class WorkerCrashError(ResilienceError):
    """A sampling worker died (or kept failing) past the retry budget."""


class SamplingTimeoutError(ResilienceError, TimeoutError):
    """A sampling job kept exceeding ``job_timeout`` past the retry budget."""


class CheckpointError(ReproError, RuntimeError):
    """An RRR-store checkpoint is unusable (key mismatch, bad manifest)."""


class ServiceError(ReproError, RuntimeError):
    """Base class for influence-query service failures."""


class ServiceOverloadedError(ServiceError):
    """The service refused admission: its queue is at capacity.

    Backpressure, not a bug — the caller should retry later (or the
    operator should raise ``ServiceOptions.max_queue_depth`` /
    ``max_inflight``).  Carries the depth that triggered the rejection.
    """

    def __init__(self, queue_depth: int, max_queue_depth: int):
        self.queue_depth = int(queue_depth)
        self.max_queue_depth = int(max_queue_depth)
        super().__init__(
            f"service queue full ({queue_depth} queued, "
            f"max_queue_depth={max_queue_depth}); retry later"
        )


class ServiceClosedError(ServiceError):
    """A query was submitted to a service after :meth:`close`.

    Also delivered to queries still queued when a drain times out:
    queued work always resolves — by finishing or by this error —
    never by hanging.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A cooperative deadline expired (or was cancelled) mid-run.

    Raised at the deadline checkpoints of the query path — between
    scheduler admission and execution, between sampling supervision
    rounds, between store chunk top-ups, and between IMM estimation
    phases — so an expired or cancelled query frees its worker slot at
    the next checkpoint instead of holding it to completion.
    """

    def __init__(self, what: str = "", cancelled: bool = False):
        self.what = what
        self.cancelled = bool(cancelled)
        cause = "cancelled" if cancelled else "deadline exceeded"
        super().__init__(f"{cause}{f' during {what}' if what else ''}")


class CircuitOpenError(ServiceError):
    """The stream's circuit breaker is open and no degraded answer exists.

    Fast-fail, not a bug: the substrate behind this stream identity kept
    failing (crashes past the retry budget, OOM), so the service refuses
    to queue more work onto it until the breaker's reset timeout admits
    a probe.  Retry after ``retry_after`` seconds, or relax ``epsilon``
    far enough to hit a cached degraded answer.
    """

    def __init__(self, key_digest: str, retry_after: float):
        self.key_digest = key_digest
        self.retry_after = float(retry_after)
        super().__init__(
            f"circuit breaker open for stream {key_digest} "
            f"(substrate kept failing); retry in ~{retry_after:.1f}s"
        )


class DeviceOOMError(ReproError, MemoryError):
    """A simulated device allocation exceeded the device's global memory.

    Mirrors a CUDA out-of-memory failure: the paper's Tables 2-5 report
    ``OOM`` entries for gIM where its allocation pattern exhausts the GPU
    while eIM's packed storage still fits.
    """

    def __init__(self, requested: int, in_use: int, capacity: int, label: str = ""):
        self.requested = int(requested)
        self.in_use = int(in_use)
        self.capacity = int(capacity)
        self.label = label
        super().__init__(
            f"simulated device OOM allocating {requested} B for {label!r}: "
            f"{in_use} B already in use of {capacity} B capacity"
        )
