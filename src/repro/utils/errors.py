"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything library-specific with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, dtype, range, ...)."""


class GraphFormatError(ReproError, ValueError):
    """An on-disk graph file could not be parsed."""


class ResilienceError(ReproError, RuntimeError):
    """A supervised sampling run could not be recovered.

    Only raised when the retry budget is exhausted *and* serial
    fallback is disabled (``ResilienceOptions(serial_fallback=False)``);
    with the defaults the pipeline degrades instead of raising.
    """


class WorkerCrashError(ResilienceError):
    """A sampling worker died (or kept failing) past the retry budget."""


class SamplingTimeoutError(ResilienceError, TimeoutError):
    """A sampling job kept exceeding ``job_timeout`` past the retry budget."""


class CheckpointError(ReproError, RuntimeError):
    """An RRR-store checkpoint is unusable (key mismatch, bad manifest)."""


class ServiceError(ReproError, RuntimeError):
    """Base class for influence-query service failures."""


class ServiceOverloadedError(ServiceError):
    """The service refused admission: its queue is at capacity.

    Backpressure, not a bug — the caller should retry later (or the
    operator should raise ``ServiceOptions.max_queue_depth`` /
    ``max_inflight``).  Carries the depth that triggered the rejection.
    """

    def __init__(self, queue_depth: int, max_queue_depth: int):
        self.queue_depth = int(queue_depth)
        self.max_queue_depth = int(max_queue_depth)
        super().__init__(
            f"service queue full ({queue_depth} queued, "
            f"max_queue_depth={max_queue_depth}); retry later"
        )


class ServiceClosedError(ServiceError):
    """A query was submitted to a service after :meth:`close`."""


class DeviceOOMError(ReproError, MemoryError):
    """A simulated device allocation exceeded the device's global memory.

    Mirrors a CUDA out-of-memory failure: the paper's Tables 2-5 report
    ``OOM`` entries for gIM where its allocation pattern exhausts the GPU
    while eIM's packed storage still fits.
    """

    def __init__(self, requested: int, in_use: int, capacity: int, label: str = ""):
        self.requested = int(requested)
        self.in_use = int(in_use)
        self.capacity = int(capacity)
        self.label = label
        super().__init__(
            f"simulated device OOM allocating {requested} B for {label!r}: "
            f"{in_use} B already in use of {capacity} B capacity"
        )
