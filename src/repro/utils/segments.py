"""Vectorized segment helpers shared by the samplers and simulators.

These implement the "expand a frontier's adjacency slices without a Python
loop" idiom: given per-segment start offsets and lengths, produce the flat
concatenation of ``arange(start, start+length)`` for every segment.
"""

from __future__ import annotations

import numpy as np


def segmented_arange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s+l) for s, l in zip(starts, lengths)]``.

    Fully vectorized: O(total) with two ``repeat`` calls.  Zero-length
    segments are skipped naturally.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    return starts[seg] + within


def segment_ids(lengths: np.ndarray) -> np.ndarray:
    """Flat segment-id array: ``[0]*lengths[0] + [1]*lengths[1] + ...``."""
    lengths = np.asarray(lengths, dtype=np.int64)
    return np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
