"""Small argument-validation helpers used across the library."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def as_int_array(values, name: str, dtype=np.int64) -> np.ndarray:
    """Coerce ``values`` to a 1-D integer ndarray, validating integrality."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        if not np.all(np.equal(np.mod(arr, 1), 0)):
            raise ValidationError(f"{name} must contain integers")
    return arr.astype(dtype, copy=False)


def check_probability(p: float, name: str) -> float:
    """Validate that ``p`` lies in [0, 1]."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {p}")
    return p


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    value = float(value)
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return value
