"""Persistence for graphs and RRR collections (NumPy ``.npz``).

Sampling at small epsilon is the expensive step of any IMM workflow;
being able to checkpoint a collection — and to ship a weighted graph
around without re-running generators — is basic operational hygiene for
a library like this.  Formats are plain ``.npz`` archives with a
``format`` tag and are stable across sessions.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graphs.csc import DirectedGraph
from repro.rrr.collection import RRRCollection
from repro.utils.errors import ValidationError

_GRAPH_FORMAT = "repro.graph.v1"
_COLLECTION_FORMAT = "repro.rrr.v1"


def save_graph(graph: DirectedGraph, path) -> None:
    """Write a (possibly weighted) graph to ``path`` as ``.npz``."""
    payload = {
        "format": np.asarray(_GRAPH_FORMAT),
        "indptr": graph.indptr,
        "indices": graph.indices,
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(Path(path), **payload)


def load_graph(path) -> DirectedGraph:
    """Load a graph written by :func:`save_graph`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if str(data["format"]) != _GRAPH_FORMAT:
            raise ValidationError(f"{path} is not a repro graph archive")
        weights = data["weights"] if "weights" in data.files else None
        return DirectedGraph(data["indptr"], data["indices"], weights)


def save_collection(collection: RRRCollection, path) -> None:
    """Checkpoint an RRR collection to ``path`` as ``.npz``."""
    payload = {
        "format": np.asarray(_COLLECTION_FORMAT),
        "flat": collection.flat,
        "offsets": collection.offsets,
        "n": np.asarray(collection.n),
    }
    if collection.sources is not None:
        payload["sources"] = collection.sources
    np.savez_compressed(Path(path), **payload)


def load_collection(path) -> RRRCollection:
    """Load a collection written by :func:`save_collection`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if str(data["format"]) != _COLLECTION_FORMAT:
            raise ValidationError(f"{path} is not a repro RRR archive")
        sources = data["sources"] if "sources" in data.files else None
        return RRRCollection(
            data["flat"],
            data["offsets"],
            int(data["n"]),
            sources=sources,
            check=False,
        )
