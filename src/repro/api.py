"""repro.api — the blessed, stability-guaranteed public surface.

Everything importable from this module (equivalently, from the top-level
``repro`` package, which re-exports it) is covered by the project's
compatibility promise: signatures and semantics only change with a
deprecation cycle that names the removal release.  Anything reached by
importing a submodule directly — ``repro.rrr.parallel``,
``repro.service.scheduler``, ``repro.imm.statistics``, engine internals
— is an implementation detail that may change between releases without
notice.  ``docs/architecture.md`` ("Public API and stability") records
the split.

The surface, by layer:

* **one-shot solving** — :func:`~repro.imm.imm.run_imm` with
  :class:`~repro.imm.options.IMMOptions` /
  :class:`~repro.imm.bounds.BoundsConfig` /
  :class:`~repro.resilience.options.ResilienceOptions`, returning an
  :class:`~repro.imm.imm.IMMResult`;
* **serving** — :class:`~repro.service.service.InfluenceService`
  accepting :class:`~repro.service.query.InfluenceQuery` under
  :class:`~repro.service.options.ServiceOptions`, returning
  :class:`~repro.service.query.QueryOutcome` futures, raising
  :class:`~repro.utils.errors.ServiceOverloadedError` under load;
* **engines** — the four simulated-device engines, all speaking the
  same ``Engine.run(graph, k, epsilon, options=IMMOptions(...))``
  contract;
* **data** — graph loading, generation, and weighting.

Operational control (memory budgets, data planes, kernel modes,
resilience) rides on the option bundles rather than on extra entry
points: ``IMMOptions(memory_budget_mb=, data_plane=, visited_mode=,
coverage_scan=, resilience=)`` and ``ServiceOptions(memory_budget_mb=,
shed_on_memory_pressure=, ...)`` — every knob, env var, and CLI flag is
tabulated in ``docs/configuration.md``.  All operational knobs share
one contract: results are bit-identical across their settings.
"""

import repro.encoding  # noqa: F401 — break the encoding<->rrr import cycle
from repro.engines.base import Engine, EngineResult
from repro.engines.curipples import CuRipplesEngine
from repro.engines.eim import EIMEngine
from repro.engines.gim import GIMEngine
from repro.engines.ripples_cpu import RipplesCPUEngine
from repro.graphs.csc import DirectedGraph
from repro.graphs.datasets import DATASETS, load_dataset
from repro.graphs.io import load_edgelist
from repro.graphs.weights import assign_ic_weights, assign_lt_weights
from repro.imm.bounds import BoundsConfig
from repro.imm.imm import IMMResult, run_imm
from repro.imm.options import IMMOptions
from repro.resilience import Deadline, ResilienceOptions, ResilienceReport
from repro.service.options import ServiceOptions
from repro.service.query import InfluenceQuery, QueryOutcome
from repro.service.service import InfluenceService
from repro.utils.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ValidationError,
)

__all__ = [
    # one-shot solving
    "run_imm",
    "IMMOptions",
    "IMMResult",
    "BoundsConfig",
    "ResilienceOptions",
    "ResilienceReport",
    # serving
    "InfluenceService",
    "InfluenceQuery",
    "QueryOutcome",
    "ServiceOptions",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "Deadline",
    # engines
    "Engine",
    "EngineResult",
    "EIMEngine",
    "GIMEngine",
    "CuRipplesEngine",
    "RipplesCPUEngine",
    # data
    "DirectedGraph",
    "DATASETS",
    "load_dataset",
    "load_edgelist",
    "assign_ic_weights",
    "assign_lt_weights",
    # errors
    "ReproError",
    "ValidationError",
]
