"""Structural metrics used to calibrate and sanity-check the synthetic
datasets against their SNAP originals.

IMM's behaviour on a network is governed by a handful of structural
quantities — the degree distribution's tail, the share of vertices with
no in-edges (singleton-RRR-set producers, §3.4), and reciprocity (the
undirected co-purchase networks cascade very differently from directed
web graphs).  These metrics are what the dataset recipes in
:mod:`repro.graphs.datasets` are tuned on, and the table-1 style reports
print them next to the paper-scale statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csc import DirectedGraph
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class GraphMetrics:
    """Summary statistics of one directed graph."""

    n: int
    m: int
    avg_degree: float
    max_in_degree: int
    max_out_degree: int
    zero_in_fraction: float
    zero_out_fraction: float
    reciprocity: float
    degree_tail_exponent: float
    gini_in_degree: float

    def as_row(self) -> list[str]:
        """Render for tabular reports."""
        return [
            f"{self.n:,}",
            f"{self.m:,}",
            f"{self.avg_degree:.2f}",
            f"{self.max_in_degree}",
            f"{100 * self.zero_in_fraction:.0f}%",
            f"{self.reciprocity:.2f}",
            f"{self.degree_tail_exponent:.2f}",
            f"{self.gini_in_degree:.2f}",
        ]


def powerlaw_tail_exponent(degrees: np.ndarray, d_min: int = 2) -> float:
    """Hill/MLE estimate of the power-law tail exponent.

    ``alpha = 1 + k / sum(ln(d_i / (d_min - 1/2)))`` over degrees
    ``>= d_min`` (Clauset-Shalizi-Newman's discrete approximation).
    Returns ``inf`` when fewer than two tail samples exist (no tail).
    """
    degrees = np.asarray(degrees)
    tail = degrees[degrees >= d_min].astype(np.float64)
    if tail.size < 2:
        return float("inf")
    return 1.0 + tail.size / float(np.sum(np.log(tail / (d_min - 0.5))))


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (degree inequality)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        raise ValidationError("gini of empty array")
    if np.any(values < 0):
        raise ValidationError("gini requires non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    cum = np.cumsum(values)
    # standard formula: 1 - 2 * sum((cum - v/2)) / (n * total)
    n = values.size
    return float(1.0 - 2.0 * np.sum(cum - values / 2.0) / (n * total))


def reciprocity(graph: DirectedGraph) -> float:
    """Fraction of edges whose reverse edge also exists."""
    if graph.m == 0:
        return 0.0
    dst = np.repeat(np.arange(graph.n, dtype=np.int64), graph.in_degrees())
    src = graph.indices.astype(np.int64)
    keys = set((int(a), int(b)) for a, b in zip(src, dst)) if graph.m < 50_000 else None
    if keys is not None:
        mutual = sum((b, a) in keys for a, b in keys)
        return mutual / len(keys)
    # vectorized path for large graphs
    forward = np.sort(src * graph.n + dst)
    backward = np.sort(dst * graph.n + src)
    idx = np.searchsorted(forward, backward)
    idx = np.minimum(idx, forward.size - 1)
    return float(np.mean(forward[idx] == backward))


def compute_metrics(graph: DirectedGraph) -> GraphMetrics:
    """All structural metrics for ``graph``."""
    if graph.n == 0:
        raise ValidationError("metrics of an empty graph")
    in_deg = graph.in_degrees()
    out_deg = graph.out_degrees()
    return GraphMetrics(
        n=graph.n,
        m=graph.m,
        avg_degree=graph.m / graph.n,
        max_in_degree=int(in_deg.max(initial=0)),
        max_out_degree=int(out_deg.max(initial=0)),
        zero_in_fraction=float(np.mean(in_deg == 0)),
        zero_out_fraction=float(np.mean(out_deg == 0)),
        reciprocity=reciprocity(graph),
        degree_tail_exponent=powerlaw_tail_exponent(in_deg),
        gini_in_degree=gini(in_deg),
    )
