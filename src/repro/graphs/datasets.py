"""Registry of the paper's 16 evaluation networks (Table 1), synthesized.

The paper evaluates on 16 SNAP datasets.  With no network access, each
dataset is replaced by a degree-calibrated synthetic recipe that records
the paper-scale vertex/edge counts and generates a structurally similar
graph at a configurable scale:

* ``tiny``  — ~1/1000 of paper scale (CI-sized; default for tests/benches)
* ``small`` — ~1/100 of paper scale
* ``paper`` — the published vertex/edge counts (minutes of generation time)

Average degree is preserved across scales, which is what IMM's sampling
cost and RRR-set shape respond to.  The two-letter codes match the rows of
the paper's Tables 2-5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.graphs.csc import DirectedGraph
from repro.graphs.generators import (
    erdos_renyi_directed,
    powerlaw_cluster_directed,
    powerlaw_configuration,
)
from repro.utils.errors import ValidationError
from repro.utils.rng import as_generator

SCALES = {"tiny": 1_000.0, "small": 100.0, "paper": 1.0}

#: Floor on the number of vertices for scaled-down instances.
MIN_VERTICES = 400


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one of the paper's evaluation networks.

    ``kind`` selects the generator family: ``social`` (power-law
    configuration model), ``web`` (hub-heavy power law), ``p2p``
    (narrow-degree G(n,m)) or ``undirected`` (bidirectional low-degree,
    for networks SNAP distributes as undirected).
    """

    code: str
    name: str
    paper_vertices: int
    paper_edges: int
    kind: str
    exponent: float = 2.2
    zero_in_fraction: float = 0.0
    notes: str = ""

    def avg_degree(self) -> float:
        """Paper-scale mean degree m/n, preserved when scaling down."""
        return self.paper_edges / self.paper_vertices

    def sizes_at(self, scale: str) -> tuple[int, int]:
        """(n, m) targets for the given scale name."""
        if scale not in SCALES:
            raise ValidationError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
        factor = SCALES[scale]
        n = max(MIN_VERTICES, int(round(self.paper_vertices / factor)))
        m = max(n, int(round(n * self.avg_degree())))
        return n, m

    def generate(self, scale: str = "tiny", rng=None) -> DirectedGraph:
        """Generate a graph instance of this dataset at ``scale``."""
        gen = as_generator(rng)
        n, m = self.sizes_at(scale)
        if self.kind == "social":
            return powerlaw_configuration(
                n, m, self.exponent, self.exponent, gen,
                zero_in_fraction=self.zero_in_fraction,
            )
        if self.kind == "web":
            return powerlaw_cluster_directed(n, m, self.exponent, rng=gen)
        if self.kind == "p2p":
            return erdos_renyi_directed(n, m, gen)
        if self.kind == "undirected":
            return powerlaw_configuration(
                n, m // 2, self.exponent, self.exponent, gen, bidirectional=True
            )
        raise ValidationError(f"unknown dataset kind {self.kind!r}")


def _specs() -> list[DatasetSpec]:
    return [
        DatasetSpec("WV", "wiki-Vote", 8_298, 103_689, "social", 2.0,
                    zero_in_fraction=0.55,
                    notes="many never-voted-for accounts -> high singleton fraction"),
        DatasetSpec("PG", "p2p-Gnutella31", 62_586, 147_892, "p2p",
                    notes="engineered overlay, narrow degree distribution"),
        DatasetSpec("SE", "soc-Epinions1", 75_888, 508_837, "social", 2.1),
        DatasetSpec("SD", "soc-Slashdot0811", 82_168, 870_161, "social", 2.2),
        DatasetSpec("EE", "email-EuAll", 265_214, 418_956, "social", 1.9,
                    zero_in_fraction=0.65,
                    notes="sparse mail graph, dominant singleton fraction (Fig. 5)"),
        DatasetSpec("WS", "web-Stanford", 281_904, 2_312_497, "web", 2.3),
        DatasetSpec("WN", "web-NotreDame", 325_729, 1_469_679, "web", 2.4),
        DatasetSpec("CD", "com-DBLP", 425_957, 1_049_866, "undirected", 2.6,
                    notes="co-authorship; undirected in SNAP"),
        DatasetSpec("CA", "com-Amazon", 334_863, 925_872, "undirected", 2.8,
                    notes="low-degree co-purchase graph -> deep reverse cascades; "
                          "the gIM OOM case in Tables 2-5"),
        DatasetSpec("WB", "web-BerkStan", 685_231, 7_600_595, "web", 2.2),
        DatasetSpec("WG", "web-Google", 916_428, 5_105_039, "web", 2.3,
                    notes="gIM OOM at small epsilon (Table 3)"),
        DatasetSpec("CY", "com-Youtube", 1_157_828, 2_987_624, "social", 2.1,
                    zero_in_fraction=0.3),
        DatasetSpec("SPR", "soc-Pokec", 1_632_804, 30_622_564, "social", 2.4),
        DatasetSpec("WT", "wiki-topcats", 1_791_489, 28_508_141, "web", 2.2),
        DatasetSpec("CO", "com-Orkut", 3_072_627, 117_185_083, "undirected", 2.3),
        DatasetSpec("SL", "soc-LiveJournal1", 4_847_571, 68_475_391, "social", 2.3,
                    notes="gIM OOM at small epsilon under IC (Table 3)"),
    ]


#: Ordered registry keyed by two-letter code, ascending paper vertex count
#: like the paper's Table 1.
DATASETS: dict[str, DatasetSpec] = {spec.code: spec for spec in _specs()}


def get_dataset(code: str) -> DatasetSpec:
    """Look up a dataset spec by its two-letter table code (e.g. ``"WV"``)."""
    try:
        return DATASETS[code.upper()]
    except KeyError:
        raise ValidationError(
            f"unknown dataset code {code!r}; known: {', '.join(DATASETS)}"
        ) from None


def load_dataset(code: str, scale: str = "tiny", rng=None) -> DirectedGraph:
    """Generate the synthetic stand-in for dataset ``code`` at ``scale``.

    ``code`` is one of the Table 1 registry codes (see :data:`DATASETS`
    or ``python -m repro datasets``); ``scale`` is ``"tiny"`` /
    ``"small"`` / ``"paper"``.  The result is unweighted — pass it
    through :func:`~repro.graphs.weights.assign_ic_weights` or
    :func:`~repro.graphs.weights.assign_lt_weights` before running IMM.
    Generation is deterministic for a fixed ``rng``.
    """
    return get_dataset(code).generate(scale=scale, rng=rng)
