"""Edge-list I/O in the SNAP text format.

SNAP distributes networks as whitespace-separated ``src dst`` lines with
``#`` comment headers; :func:`load_edgelist` accepts exactly that, so a
real SNAP download can be dropped in wherever the synthetic datasets are
used.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path

import numpy as np

from repro.graphs.csc import DirectedGraph
from repro.utils.errors import GraphFormatError


def _open_text(path: Path):
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def load_edgelist(
    path,
    directed: bool = True,
    relabel: bool = True,
) -> DirectedGraph:
    """Load a SNAP-style edge list into a :class:`DirectedGraph`.

    Parameters
    ----------
    path:
        Text file (optionally ``.gz``) of ``src dst`` pairs; lines starting
        with ``#`` are ignored.
    directed:
        When ``False`` each edge is also inserted reversed, the convention
        SNAP uses for undirected networks such as com-Amazon.
    relabel:
        Compact arbitrary vertex ids into ``0..n-1`` (SNAP ids are sparse).
    """
    path = Path(path)
    srcs: list[int] = []
    dsts: list[int] = []
    with _open_text(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: expected 'src dst', got {line!r}")
            try:
                srcs.append(int(parts[0]))
                dsts.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: non-integer vertex id") from exc
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    if relabel and src.size:
        uniq, inverse = np.unique(np.concatenate([src, dst]), return_inverse=True)
        src, dst = inverse[: src.size], inverse[src.size :]
        n = uniq.size
    else:
        n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    if not directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return DirectedGraph.from_edges(src, dst, n=n)


def save_edgelist(graph: DirectedGraph, path, header: str | None = None) -> None:
    """Write ``graph`` as a SNAP-style ``src dst`` edge list."""
    path = Path(path)
    dst = np.repeat(np.arange(graph.n, dtype=np.int64), graph.in_degrees())
    src = graph.indices.astype(np.int64)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "wt", encoding="utf-8") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        fh.write(f"# Nodes: {graph.n} Edges: {graph.m}\n")
        for u, v in zip(src.tolist(), dst.tolist()):
            fh.write(f"{u}\t{v}\n")
