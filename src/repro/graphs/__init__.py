"""Graph substrate: CSC/CSR directed graphs, I/O, generators, weights, datasets.

IMM samples *reverse* reachable sets, so the primary representation is
compressed sparse column (CSC): for each vertex ``v`` the contiguous slice
``indices[indptr[v]:indptr[v+1]]`` lists the in-neighbors of ``v`` and
``weights`` holds the aligned activation probabilities ``p_uv``.  A CSR
(out-edge) view is built lazily for forward diffusion simulation.
"""

from repro.graphs.csc import DirectedGraph
from repro.graphs.datasets import DATASETS, DatasetSpec, get_dataset, load_dataset
from repro.graphs.generators import (
    erdos_renyi_directed,
    powerlaw_cluster_directed,
    powerlaw_configuration,
)
from repro.graphs.io import load_edgelist, save_edgelist
from repro.graphs.metrics import GraphMetrics, compute_metrics
from repro.graphs.weights import assign_ic_weights, assign_lt_weights

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "DirectedGraph",
    "GraphMetrics",
    "assign_ic_weights",
    "assign_lt_weights",
    "compute_metrics",
    "erdos_renyi_directed",
    "get_dataset",
    "load_dataset",
    "load_edgelist",
    "powerlaw_cluster_directed",
    "powerlaw_configuration",
    "save_edgelist",
]
