"""Synthetic directed-network generators.

These stand in for the SNAP downloads the paper uses (no network access in
this environment).  IMM's cost profile is governed by the in/out-degree
distributions — they set the reverse-BFS branching behaviour, the RRR-set
size tail and the singleton fraction — so the generators are
degree-calibrated: heavy-tailed power laws for social/web graphs, a narrow
distribution for the p2p network, and bidirectional low-degree graphs for
the originally-undirected co-purchase/co-authorship networks.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csc import DirectedGraph
from repro.utils.rng import as_generator
from repro.utils.validation import require


def _powerlaw_degree_sequence(
    n: int,
    target_sum: int,
    exponent: float,
    rng: np.random.Generator,
    max_degree: int | None = None,
    zero_fraction: float = 0.0,
) -> np.ndarray:
    """Draw a degree sequence with a Pareto tail summing to ``target_sum``.

    ``zero_fraction`` forces that share of vertices to degree 0, matching
    networks (e.g. email-EuAll) where most vertices never receive edges —
    the property behind the paper's singleton-RRR-set observation (§3.4).
    """
    require(n > 0, "need at least one vertex")
    require(exponent > 1.0, "power-law exponent must exceed 1")
    deg = np.floor(rng.pareto(exponent - 1.0, size=n) + 1.0)
    cap = max_degree if max_degree is not None else max(4, int(4 * np.sqrt(n)))
    np.minimum(deg, cap, out=deg)
    if zero_fraction > 0.0:
        zero_count = int(zero_fraction * n)
        zero_idx = rng.choice(n, size=zero_count, replace=False)
        deg[zero_idx] = 0.0
    total = deg.sum()
    if total > 0:
        deg = np.floor(deg * (target_sum / total))
    # distribute the rounding remainder over random nonzero-eligible vertices
    deficit = int(target_sum - deg.sum())
    if deficit > 0:
        eligible = np.flatnonzero(deg > 0) if zero_fraction > 0 else np.arange(n)
        if eligible.size == 0:
            eligible = np.arange(n)
        bump = rng.choice(eligible, size=deficit, replace=True)
        np.add.at(deg, bump, 1)
    elif deficit < 0:
        nonzero = np.flatnonzero(deg > 0)
        drop = rng.choice(nonzero, size=-deficit, replace=False)
        deg[drop] -= 1
    return deg.astype(np.int64)


def powerlaw_configuration(
    n: int,
    m: int,
    exponent_in: float = 2.2,
    exponent_out: float = 2.2,
    rng=None,
    zero_in_fraction: float = 0.0,
    bidirectional: bool = False,
) -> DirectedGraph:
    """Directed configuration model with power-law in/out degrees.

    Stub-matching: out-stubs and in-stubs are generated from independent
    power-law sequences (each summing to ``m``) and paired by a random
    permutation; self-loops and duplicate edges are dropped, so the
    realized edge count is slightly below ``m``.  With ``bidirectional``
    every surviving edge is mirrored (undirected source networks).
    """
    gen = as_generator(rng)
    require(n >= 2, "need at least two vertices")
    require(m >= 1, "need at least one edge")
    out_deg = _powerlaw_degree_sequence(n, m, exponent_out, gen)
    in_deg = _powerlaw_degree_sequence(n, m, exponent_in, gen, zero_fraction=zero_in_fraction)
    src = np.repeat(np.arange(n, dtype=np.int64), out_deg)
    dst = np.repeat(np.arange(n, dtype=np.int64), in_deg)
    gen.shuffle(dst)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if bidirectional:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return DirectedGraph.from_edges(src, dst, n=n)


def erdos_renyi_directed(
    n: int,
    m: int,
    rng=None,
    bidirectional: bool = False,
) -> DirectedGraph:
    """G(n, m)-style directed graph: ``m`` edges sampled uniformly.

    Produces the narrow, near-Poisson degree distribution of engineered
    overlays such as p2p-Gnutella.
    """
    gen = as_generator(rng)
    require(n >= 2, "need at least two vertices")
    # oversample to compensate for dropped self-loops/duplicates
    draw = int(m * 1.1) + 16
    src = gen.integers(0, n, size=draw, dtype=np.int64)
    dst = gen.integers(0, n, size=draw, dtype=np.int64)
    keep = src != dst
    src, dst = src[keep][:m], dst[keep][:m]
    if bidirectional:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return DirectedGraph.from_edges(src, dst, n=n)


def powerlaw_cluster_directed(
    n: int,
    m: int,
    exponent: float = 2.4,
    hub_fraction: float = 0.02,
    rng=None,
) -> DirectedGraph:
    """Hub-and-spoke power-law graph approximating web-graph structure.

    A small hub set receives a disproportionate share of in-edges (web
    pages pointed at by many others) while ordinary vertices link both to
    hubs and to random neighbors, giving the deep, skewed reverse
    traversals web graphs exhibit under IC.
    """
    gen = as_generator(rng)
    require(n >= 4, "need at least four vertices")
    n_hubs = max(1, int(hub_fraction * n))
    hubs = gen.choice(n, size=n_hubs, replace=False)
    m_hub = m // 3
    m_rest = m - m_hub
    hub_dst = gen.choice(hubs, size=m_hub)
    hub_src = gen.integers(0, n, size=m_hub, dtype=np.int64)
    base = powerlaw_configuration(n, m_rest, exponent, exponent, gen)
    base_dst = np.repeat(np.arange(n, dtype=np.int64), base.in_degrees())
    src = np.concatenate([base.indices.astype(np.int64), hub_src])
    dst = np.concatenate([base_dst, hub_dst])
    keep = src != dst
    return DirectedGraph.from_edges(src[keep], dst[keep], n=n)
