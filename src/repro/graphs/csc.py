"""Directed graph in compressed sparse column (CSC) form.

The CSC layout mirrors the paper's on-device representation (§3.1): three
arrays — offsets (``indptr``), in-neighbors (``indices``) and edge weights
(``weights``) — where the in-neighbors of vertex ``v`` occupy
``indices[indptr[v]:indptr[v+1]]``.  In-neighbor lists are kept sorted by
vertex id, which the samplers and the log-encoded variant both rely on.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.validation import as_int_array, require


class DirectedGraph:
    """A directed graph stored in CSC (in-edge) form with optional weights.

    Parameters
    ----------
    indptr:
        ``(n+1,)`` int64 array; ``indptr[v]:indptr[v+1]`` bounds the
        in-neighbor slice of vertex ``v``.
    indices:
        ``(m,)`` int array of in-neighbor vertex ids, sorted within each
        vertex's slice.
    weights:
        Optional ``(m,)`` float64 array of activation probabilities
        ``p_uv`` aligned with ``indices`` (entry ``j`` in ``v``'s slice is
        the probability that in-neighbor ``indices[j]`` activates ``v``).
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "n",
        "m",
        "_csr_cache",
        "_cumw_cache",
        "_total_in_weight",
        "_fingerprint",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ):
        indptr = as_int_array(indptr, "indptr")
        indices = as_int_array(indices, "indices", dtype=np.int32)
        require(indptr.size >= 1, "indptr must have at least one entry")
        require(indptr[0] == 0, "indptr must start at 0")
        require(bool(np.all(np.diff(indptr) >= 0)), "indptr must be non-decreasing")
        n = indptr.size - 1
        m = int(indptr[-1])
        require(indices.size == m, f"indices has {indices.size} entries, indptr implies {m}")
        if m and (indices.min() < 0 or indices.max() >= n):
            raise ValidationError("indices contain vertex ids outside [0, n)")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            require(weights.shape == (m,), "weights must align with indices")
            if m and (weights.min() < 0.0 or weights.max() > 1.0):
                raise ValidationError("edge weights must lie in [0, 1]")
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.n = n
        self.m = m
        self._csr_cache: Optional[tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]] = None
        self._cumw_cache: Optional[np.ndarray] = None
        self._total_in_weight: Optional[np.ndarray] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        src,
        dst,
        n: Optional[int] = None,
        weights=None,
        dedupe: bool = True,
    ) -> "DirectedGraph":
        """Build a graph from parallel source/destination id arrays.

        Edges are grouped by destination (CSC) and in-neighbor lists sorted
        by source id.  With ``dedupe`` (default) parallel duplicate edges
        are collapsed, keeping the first occurrence's weight.
        """
        src = as_int_array(src, "src", dtype=np.int64)
        dst = as_int_array(dst, "dst", dtype=np.int64)
        require(src.size == dst.size, "src and dst must have equal length")
        if n is None:
            n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        require(n >= 0, "n must be non-negative")
        if src.size and (src.min() < 0 or dst.min() < 0):
            raise ValidationError("vertex ids must be non-negative")
        if src.size and (src.max() >= n or dst.max() >= n):
            raise ValidationError(f"vertex ids must be < n={n}")
        w = None if weights is None else np.asarray(weights, dtype=np.float64)
        if w is not None:
            require(w.shape == (src.size,), "weights must align with edges")

        # sort by (dst, src): yields CSC grouping with sorted neighbor lists
        key = dst * n + src
        order = np.argsort(key, kind="stable")
        src, dst = src[order], dst[order]
        if w is not None:
            w = w[order]
        if dedupe and src.size:
            keep = np.empty(src.size, dtype=bool)
            keep[0] = True
            np.not_equal(key[order][1:], key[order][:-1], out=keep[1:])
            src, dst = src[keep], dst[keep]
            if w is not None:
                w = w[keep]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, dst + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, src.astype(np.int32), w)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def in_degrees(self) -> np.ndarray:
        """Per-vertex in-degree ``d_v^-`` as an int64 array."""
        return np.diff(self.indptr)

    def out_degrees(self) -> np.ndarray:
        """Per-vertex out-degree as an int64 array."""
        deg = np.zeros(self.n, dtype=np.int64)
        np.add.at(deg, self.indices.astype(np.int64), 1)
        return deg

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbor ids of vertex ``v`` (sorted ascending)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def in_weights(self, v: int) -> np.ndarray:
        """Activation probabilities aligned with :meth:`in_neighbors`."""
        if self.weights is None:
            raise ValidationError("graph has no edge weights assigned")
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def has_weights(self) -> bool:
        """Whether edge weights have been assigned."""
        return self.weights is not None

    def fingerprint(self) -> str:
        """Content hash of the graph (structure + weights), cached.

        Two graphs with equal CSC arrays share a fingerprint even when
        they are distinct objects — the identity key of the shared
        sampler pools and the warm-start RRR store, both of which must
        survive graph-cache round trips.
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(np.ascontiguousarray(self.indptr).tobytes())
            h.update(np.ascontiguousarray(self.indices).tobytes())
            if self.weights is not None:
                h.update(np.ascontiguousarray(self.weights).tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def csr(self) -> tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Out-edge (CSR) view: ``(indptr, indices, weights)``.

        ``indices[indptr[u]:indptr[u+1]]`` lists the out-neighbors of
        ``u``; the returned weights carry ``p_uv`` for edge ``(u, v)``.
        Built once and cached.
        """
        if self._csr_cache is None:
            src = self.indices.astype(np.int64)
            dst = np.repeat(np.arange(self.n, dtype=np.int64), self.in_degrees())
            order = np.argsort(src * self.n + dst, kind="stable")
            out_indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.add.at(out_indptr, src + 1, 1)
            np.cumsum(out_indptr, out=out_indptr)
            out_indices = dst[order].astype(np.int32)
            out_weights = None if self.weights is None else self.weights[order]
            self._csr_cache = (out_indptr, out_indices, out_weights)
        return self._csr_cache

    def in_weight_cumsum(self) -> np.ndarray:
        """Within-segment inclusive cumsum of in-edge weights.

        Entry ``j`` in vertex ``v``'s slice holds
        ``sum(weights[indptr[v] : j+1])`` — the quantity the LT sampler's
        warp prefix scan computes on device (§3.3).  Cached.
        """
        if self.weights is None:
            raise ValidationError("graph has no edge weights assigned")
        if self._cumw_cache is None:
            cum = np.cumsum(self.weights)
            seg_start_total = np.zeros(self.n, dtype=np.float64)
            starts = self.indptr[:-1]
            nonempty = self.in_degrees() > 0
            seg_start_total[nonempty] = np.where(
                starts[nonempty] > 0, cum[starts[nonempty] - 1], 0.0
            )
            self._cumw_cache = cum - np.repeat(seg_start_total, self.in_degrees())
        return self._cumw_cache

    def total_in_weight(self) -> np.ndarray:
        """Per-vertex sum of in-edge weights (LT stop probability is 1 - this)."""
        if self.weights is None:
            raise ValidationError("graph has no edge weights assigned")
        if self._total_in_weight is None:
            totals = np.zeros(self.n, dtype=np.float64)
            deg = self.in_degrees()
            cumw = self.in_weight_cumsum()
            ends = self.indptr[1:] - 1
            nonempty = deg > 0
            totals[nonempty] = cumw[ends[nonempty]]
            self._total_in_weight = totals
        return self._total_in_weight

    def with_weights(self, weights: np.ndarray) -> "DirectedGraph":
        """Return a graph sharing this topology with new CSC-aligned weights."""
        return DirectedGraph(self.indptr, self.indices, weights)

    def reverse(self) -> "DirectedGraph":
        """Return the transpose graph (every edge direction flipped)."""
        csr_indptr, csr_indices, csr_weights = self.csr()
        return DirectedGraph(csr_indptr.copy(), csr_indices.copy(),
                             None if csr_weights is None else csr_weights.copy())

    # ------------------------------------------------------------------
    # memory accounting (raw CSC, the baseline for Fig. 4 / §4.2)
    # ------------------------------------------------------------------
    def nbytes_csc(self, include_weights: bool = True) -> int:
        """Bytes to store the raw (unpacked) CSC arrays on device.

        Matches the baselines' layout: 32-bit offsets and neighbor ids plus
        32-bit float weights.
        """
        total = 4 * (self.n + 1) + 4 * self.m
        if include_weights and self.weights is not None:
            total += 4 * self.m
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        w = "weighted" if self.weights is not None else "unweighted"
        return f"DirectedGraph(n={self.n}, m={self.m}, {w})"
