"""Edge-weight assignment for the IC and LT diffusion models.

The paper (§2.1) studies unweighted SNAP networks preprocessed with the
weighted-cascade convention of Kempe et al.: every in-edge of ``v`` gets
``p_uv = 1 / d_v^-``.  Under IC this keeps reverse traversals near the
critical branching factor (bounded RRR sets); under LT the in-weights of
each vertex then sum to exactly 1.  Alternative schemes cover the paper's
future-work item (IC with random edge weights) and the trivalency model
common in the IM literature.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csc import DirectedGraph
from repro.utils.errors import ValidationError
from repro.utils.rng import as_generator

IC_SCHEMES = ("indegree", "uniform_random", "trivalency", "constant")
LT_SCHEMES = ("indegree", "random_normalized")


def assign_ic_weights(
    graph: DirectedGraph,
    scheme: str = "indegree",
    rng=None,
    p: float = 0.1,
) -> DirectedGraph:
    """Return a copy of ``graph`` with IC activation probabilities.

    Schemes
    -------
    ``indegree``
        ``p_uv = 1 / d_v^-`` (the paper's setting).
    ``uniform_random``
        ``p_uv ~ U(0, p)`` — the paper's future-work extension.
    ``trivalency``
        ``p_uv`` drawn uniformly from ``{0.1, 0.01, 0.001}``.
    ``constant``
        ``p_uv = p`` for every edge.
    """
    if scheme not in IC_SCHEMES:
        raise ValidationError(f"unknown IC weight scheme {scheme!r}; choose from {IC_SCHEMES}")
    if scheme == "indegree":
        deg = graph.in_degrees()
        w = np.repeat(1.0 / np.maximum(deg, 1), deg).astype(np.float64)
    elif scheme == "uniform_random":
        w = as_generator(rng).uniform(0.0, p, size=graph.m)
    elif scheme == "trivalency":
        w = as_generator(rng).choice([0.1, 0.01, 0.001], size=graph.m)
    else:  # constant
        if not 0.0 <= p <= 1.0:
            raise ValidationError(f"constant probability must be in [0,1], got {p}")
        w = np.full(graph.m, float(p))
    return graph.with_weights(w)


def assign_lt_weights(
    graph: DirectedGraph,
    scheme: str = "indegree",
    rng=None,
) -> DirectedGraph:
    """Return a copy of ``graph`` with LT edge weights (in-sums ≤ 1).

    Schemes
    -------
    ``indegree``
        ``p_uv = 1 / d_v^-`` so each vertex's in-weights sum to exactly 1
        (the paper's setting).
    ``random_normalized``
        Random positive weights normalized so each in-sum is a uniform
        random value in (0, 1].
    """
    if scheme not in LT_SCHEMES:
        raise ValidationError(f"unknown LT weight scheme {scheme!r}; choose from {LT_SCHEMES}")
    deg = graph.in_degrees()
    if scheme == "indegree":
        w = np.repeat(1.0 / np.maximum(deg, 1), deg).astype(np.float64)
    else:
        gen = as_generator(rng)
        raw = gen.uniform(0.1, 1.0, size=graph.m)
        sums = np.zeros(graph.n)
        np.add.at(sums, np.repeat(np.arange(graph.n), deg), raw)
        target = gen.uniform(0.0, 1.0, size=graph.n)
        scale = np.divide(target, sums, out=np.zeros(graph.n), where=sums > 0)
        w = raw * np.repeat(scale, deg)
    return graph.with_weights(w)
