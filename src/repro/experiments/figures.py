"""Drivers regenerating the paper's figures (3 through 8).

Every function returns a :class:`FigureResult` whose ``render()`` prints
the series the corresponding figure plots; EXPERIMENTS.md records how the
measured shapes compare with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.encoding.csc_encoded import encode_graph
from repro.experiments.config import ExperimentConfig
from repro.experiments.rendering import Series, format_series, format_table
from repro.experiments.runner import compare_engines
from repro.gpu.cost_model import CostModel
from repro.imm.imm import run_imm
from repro.imm.coverage import CoverageIndex
from repro.imm.options import IMMOptions
from repro.imm.seed_selection import select_seeds
from repro.rrr import get_sampler
from repro.utils.rng import spawn_generators


@dataclass
class FigureResult:
    """Structured figure data plus its text rendering."""

    figure: str
    title: str
    series: list[Series]
    xlabel: str
    ylabel: str
    notes: str = ""

    def render(self) -> str:
        text = format_series(self.series, f"[{self.figure}] {self.title}", self.xlabel, self.ylabel)
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text


# ---------------------------------------------------------------------------
# Figure 3 — thread-based vs warp-based selection scan as N grows (k = 100)
# ---------------------------------------------------------------------------
def fig3_scan_scaling(
    config: ExperimentConfig | None = None,
    dataset: str = "SE",
    n_values: tuple[int, ...] = (1_000, 4_000, 16_000, 64_000, 256_000),
    k: int = 100,
) -> FigureResult:
    """Selection-phase cycles of both scan strategies vs the number of
    RRR sets N.  One large sample is drawn once and prefix-truncated to
    each sweep point so both strategies see identical workloads."""
    config = config or ExperimentConfig.from_env()
    graph = config.graph(dataset, "IC")
    sampler = get_sampler("IC")
    collection, _ = sampler(graph, max(n_values), rng=config.seed)
    cost = CostModel(config.device())
    k_eff = min(k, graph.n)

    # one inverted index over the full sample serves every prefix point
    # (postings are clipped to each prefix) instead of re-deriving the
    # vertex->position map per sweep point
    index = CoverageIndex.build(collection)
    thread = Series("thread-based")
    warp = Series("warp-based")
    for n_sets in n_values:
        sel = select_seeds(collection.prefix(n_sets), k_eff, index=index)
        thread.add(n_sets, cost.thread_scan_cycles(sel.stats, encoded=True))
        warp.add(n_sets, cost.warp_scan_cycles(sel.stats, encoded=False))
    return FigureResult(
        figure="Fig. 3",
        title=f"Scan-strategy scalability on {dataset} (k={k_eff})",
        series=[thread, warp],
        xlabel="N (RRR sets)",
        ylabel="selection cycles",
        notes="paper shape: warp-based wins at small N, thread-based overtakes as N grows",
    )


# ---------------------------------------------------------------------------
# §4.2 — CSC memory saved by log encoding (text experiment)
# ---------------------------------------------------------------------------
def sec42_csc_memory(config: ExperimentConfig | None = None) -> FigureResult:
    """Percent of CSC bytes saved per dataset, under the paper's
    conservative accounting (integer arrays packed, float weights raw)
    and under the degree-implicit encoding eIM actually runs with."""
    config = config or ExperimentConfig.from_env()
    conservative = Series("packed ints, raw weights (%)")
    implicit = Series("degree-implicit weights (%)")
    for code in config.datasets:
        graph = config.graph(code, "IC")
        raw = graph.nbytes_csc()
        enc_cons = encode_graph(graph, weight_mode="raw32")
        enc_impl = encode_graph(graph, weight_mode="auto")
        conservative.add(code, 100.0 * (1.0 - enc_cons.nbytes_packed() / raw))
        implicit.add(code, 100.0 * (1.0 - enc_impl.nbytes_packed() / raw))
    return FigureResult(
        figure="§4.2",
        title="Network-data memory saved by log encoding",
        series=[conservative, implicit],
        xlabel="dataset",
        ylabel="% of raw CSC bytes saved",
        notes="paper: up to 28.8% for small networks, >14% for large (conservative accounting)",
    )


# ---------------------------------------------------------------------------
# Figure 4 — memory saved storing RRR sets + network data
# ---------------------------------------------------------------------------
def fig4_log_encoding_memory(
    config: ExperimentConfig | None = None,
    k: int | None = None,
    epsilon: float | None = None,
) -> FigureResult:
    """Total memory saved by log encoding over both components, measured
    on real eIM runs under IC."""
    config = config or ExperimentConfig.from_env()
    k = k or config.default_k
    epsilon = epsilon or config.default_epsilon
    saved = Series("total saved (%)")
    rrr_saved = Series("RRR store saved (%)")
    for code in config.datasets:
        graph = config.graph(code, "IC")
        result = run_imm(
            graph, min(k, graph.n), epsilon, model="IC", rng=config.seed,
            eliminate_sources=True, bounds=config.bounds(sweep=True),
        )
        coll = result.collection
        raw = coll.nbytes_raw() + graph.nbytes_csc()
        packed = coll.nbytes_packed() + encode_graph(graph).nbytes_packed()
        saved.add(code, 100.0 * (1.0 - packed / raw))
        rrr_saved.add(code, 100.0 * (1.0 - coll.nbytes_packed() / coll.nbytes_raw()))
    return FigureResult(
        figure="Fig. 4",
        title=f"Memory saved by log encoding (IC, k={k}, eps={epsilon})",
        series=[saved, rrr_saved],
        xlabel="dataset",
        ylabel="% bytes saved",
        notes="paper: up to 54% on small networks, >=16.6% on large ones",
    )


# ---------------------------------------------------------------------------
# Figures 5 and 6 — source-vertex elimination: speedup and memory impact
# ---------------------------------------------------------------------------
def _source_elim_runs(config: ExperimentConfig, k: int, epsilon: float):
    """For each dataset: eIM cycles and R size with and without §3.4."""
    from repro.engines import EIMEngine

    rows = []
    for code in config.datasets:
        graph = config.graph(code, "IC")
        k_eff = min(k, graph.n)
        streams = spawn_generators(config.seed, 2)
        sweep_options = IMMOptions(model="IC", bounds=config.bounds(sweep=True))
        with_elim = EIMEngine(eliminate_sources=True).run(
            graph, k_eff, epsilon, rng=streams[0],
            device_spec=config.device(), options=sweep_options,
        )
        without = EIMEngine(eliminate_sources=False).run(
            graph, k_eff, epsilon, rng=streams[1],
            device_spec=config.device(), options=sweep_options,
        )
        singleton_pct = 100.0 * without.imm.trace.raw_singleton_fraction
        rows.append((code, singleton_pct, with_elim, without))
    return rows


def fig5_source_elim_speedup(
    config: ExperimentConfig | None = None,
    k: int | None = None,
    epsilon: float | None = None,
) -> FigureResult:
    """Speedup from source elimination vs the singleton-set percentage."""
    config = config or ExperimentConfig.from_env()
    k = k or config.default_k
    epsilon = epsilon or config.default_epsilon
    singles = Series("% singleton sets")
    speedup = Series("speedup (no-elim / elim)")
    for code, singleton_pct, with_elim, without in sorted(
        _source_elim_runs(config, k, epsilon), key=lambda r: r[1]
    ):
        singles.add(code, singleton_pct)
        speedup.add(code, without.total_cycles / with_elim.total_cycles)
    return FigureResult(
        figure="Fig. 5",
        title=f"Source-elimination speedup vs singleton fraction (IC, k={k}, eps={epsilon})",
        series=[singles, speedup],
        xlabel="dataset (sorted by singleton %)",
        ylabel="speedup",
        notes="paper shape: speedup grows with the fraction of source-only sets",
    )


def fig6_source_elim_memory(
    config: ExperimentConfig | None = None,
    k: int | None = None,
    epsilon: float | None = None,
) -> FigureResult:
    """Percent change in stored-R size when sources are eliminated."""
    config = config or ExperimentConfig.from_env()
    k = k or config.default_k
    epsilon = epsilon or config.default_epsilon
    singles = Series("% singleton sets")
    change = Series("R memory change (%)")
    for code, singleton_pct, with_elim, without in sorted(
        _source_elim_runs(config, k, epsilon), key=lambda r: r[1]
    ):
        singles.add(code, singleton_pct)
        change.add(
            code,
            100.0 * (with_elim.rrr_store_bytes - without.rrr_store_bytes)
            / max(without.rrr_store_bytes, 1),
        )
    return FigureResult(
        figure="Fig. 6",
        title=f"R-store memory change from source elimination (IC, k={k}, eps={epsilon})",
        series=[singles, change],
        xlabel="dataset (sorted by singleton %)",
        ylabel="% change (negative = saved)",
        notes="paper: average -8.65%, biggest savings above 50% singletons, a few slightly positive",
    )


# ---------------------------------------------------------------------------
# Figures 7 and 8 — eIM speedups over cuRipples and gIM
# ---------------------------------------------------------------------------
def _speedup_figure(config: ExperimentConfig, model: str, figure: str) -> FigureResult:
    vs_gim = Series("speedup vs gIM")
    vs_cur = Series("speedup vs cuRipples")
    for code in config.datasets:
        row = compare_engines(
            code, config.default_k, config.default_epsilon, model, config,
            include_curipples=True, bounds=config.bounds(sweep=True),
        )
        vs_gim.add(code, row.speedup_vs_gim)
        vs_cur.add(code, row.speedup_vs_curipples)
    return FigureResult(
        figure=figure,
        title=f"eIM speedups under {model} (k={config.default_k}, eps={config.default_epsilon})",
        series=[vs_gim, vs_cur],
        xlabel="dataset (ascending size)",
        ylabel="speedup (x)",
        notes="paper shape: eIM beats both nearly everywhere; the cuRipples gap widens with size",
    )


def fig7_ic_speedups(config: ExperimentConfig | None = None) -> FigureResult:
    """eIM vs cuRipples and gIM under IC (k=50, eps=0.05)."""
    return _speedup_figure(config or ExperimentConfig.from_env(), "IC", "Fig. 7")


def fig8_lt_speedups(config: ExperimentConfig | None = None) -> FigureResult:
    """eIM vs cuRipples and gIM under LT (k=50, eps=0.05)."""
    return _speedup_figure(config or ExperimentConfig.from_env(), "LT", "Fig. 8")
