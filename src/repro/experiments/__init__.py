"""Experiment harness regenerating every table and figure of the paper.

Each ``figures.fig*`` / ``tables.table*`` function returns a structured
result object with a ``render()`` method producing the paper-shaped rows;
the ``benchmarks/`` tree wires them into pytest-benchmark.  Scale,
dataset subset, repetition count and the theta scaling used on the
scaled-down synthetic networks all live in :class:`ExperimentConfig`
(overridable via ``REPRO_*`` environment variables, see config module).
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ComparisonRow, average_results, compare_engines
from repro.experiments import figures, tables

__all__ = [
    "ComparisonRow",
    "ExperimentConfig",
    "average_results",
    "compare_engines",
    "figures",
    "tables",
]
