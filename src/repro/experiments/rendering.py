"""Plain-text rendering of paper-style tables and figure series."""

from __future__ import annotations

from dataclasses import dataclass, field


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Fixed-width aligned table (first column left-aligned)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt_row(cells) -> str:
        parts = []
        for i, cell in enumerate(cells):
            text = str(cell)
            parts.append(text.ljust(widths[i]) if i == 0 else text.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rows)
    return "\n".join(lines)


@dataclass
class Series:
    """One labeled data series of a figure."""

    name: str
    x: list = field(default_factory=list)
    y: list = field(default_factory=list)

    def add(self, x, y) -> None:
        self.x.append(x)
        self.y.append(y)


def format_series(
    series_list: list[Series], title: str, xlabel: str, ylabel: str
) -> str:
    """Render figure series as aligned columns, one x per row."""
    lines = [title, f"  x = {xlabel}; y = {ylabel}"]
    headers = [xlabel] + [s.name for s in series_list]
    xs = series_list[0].x if series_list else []
    rows = []
    for i, x in enumerate(xs):
        row = [_fmt(x)]
        for s in series_list:
            row.append(_fmt(s.y[i]) if i < len(s.y) else "")
        rows.append(row)
    lines.append(format_table(headers, rows))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "OOM"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0.0):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
