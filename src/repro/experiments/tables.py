"""Drivers regenerating the paper's tables (1 through 5).

Tables 2-5 sweep k / epsilon per dataset and print eIM-over-gIM speedup
cells, with the paper's ``OOM/<eIM seconds>`` convention where gIM runs
out of device memory; they run against the capacity-pressure device (see
``ExperimentConfig.pressure_memory_divisor``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.rendering import format_table
from repro.experiments.runner import ComparisonRow, compare_engines
from repro.graphs.datasets import get_dataset

K_SWEEP = (20, 40, 60, 80, 100)
EPS_SWEEP = (0.5, 0.45, 0.4, 0.35, 0.3, 0.25, 0.2, 0.15, 0.1, 0.05)


@dataclass
class TableResult:
    """Structured table data plus its text rendering."""

    table: str
    title: str
    headers: list[str]
    rows: list[list[str]]
    cells: dict  # (dataset, sweep_value) -> ComparisonRow, for tests
    notes: str = ""

    def render(self) -> str:
        text = format_table(self.headers, self.rows, f"[{self.table}] {self.title}")
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text


# ---------------------------------------------------------------------------
# Table 1 — graph statistics
# ---------------------------------------------------------------------------
def table1_datasets(config: ExperimentConfig | None = None) -> TableResult:
    """Paper-scale and generated-instance statistics for all datasets."""
    config = config or ExperimentConfig.from_env()
    headers = ["Code", "Dataset", "paper |V|", "paper |E|", f"{config.scale} |V|", f"{config.scale} |E|", "avg deg"]
    rows = []
    for code in config.datasets:
        spec = get_dataset(code)
        graph = config.graph(code, "IC")
        rows.append([
            spec.code,
            spec.name,
            f"{spec.paper_vertices:,}",
            f"{spec.paper_edges:,}",
            f"{graph.n:,}",
            f"{graph.m:,}",
            f"{graph.m / graph.n:.2f}",
        ])
    return TableResult(
        table="Table 1",
        title="Graph statistics (synthetic stand-ins for the SNAP datasets)",
        headers=headers,
        rows=rows,
        cells={},
        notes="generated instances preserve the paper-scale average degree",
    )


def table1_calibration(config: ExperimentConfig | None = None) -> TableResult:
    """Structural calibration metrics of the generated instances.

    Companion to Table 1: the quantities the synthetic recipes are tuned
    on (see docs/datasets.md) — zero-in-degree share (singleton driver),
    power-law tail exponent, in-degree Gini, reciprocity.
    """
    from repro.graphs.metrics import compute_metrics

    config = config or ExperimentConfig.from_env()
    headers = ["Code", "|V|", "|E|", "avg deg", "max d-", "zero-in",
               "recipr.", "tail a", "gini"]
    rows = []
    for code in config.datasets:
        graph = config.graph(code, "IC")
        m = compute_metrics(graph)
        rows.append([code] + m.as_row())
    return TableResult(
        table="Table 1b",
        title="Calibration metrics of the generated instances",
        headers=headers,
        rows=rows,
        cells={},
        notes="see docs/datasets.md for which metric calibrates what",
    )


# ---------------------------------------------------------------------------
# Tables 2-5 — speedup sweeps
# ---------------------------------------------------------------------------
def _sweep_table(
    config: ExperimentConfig,
    model: str,
    sweep: str,
    table: str,
) -> TableResult:
    device = config.device(pressure=True)
    bounds = config.bounds(sweep=True)
    cells: dict = {}
    if sweep == "k":
        values = K_SWEEP
        headers = ["Dataset"] + [f"k={v}" for v in values]
        title = f"eIM speedup over gIM under {model}, eps={config.default_epsilon}, k sweep"
    else:
        values = EPS_SWEEP
        headers = ["Dataset"] + [f"eps={v}" for v in values]
        title = f"eIM speedup over gIM under {model}, k=100, eps sweep"
    rows = []
    for code in config.datasets:
        # one resident worker pool per dataset graph, shared by every
        # sweep cell and every engine in it (None when n_jobs == 1)
        pool = config.sampler_pool(config.graph(code, model))
        row_cells = [code]
        for v in values:
            if sweep == "k":
                comparison = compare_engines(
                    code, int(v), config.default_epsilon, model, config,
                    include_curipples=False, device=device, bounds=bounds,
                    pool=pool,
                )
            else:
                comparison = compare_engines(
                    code, 100, float(v), model, config,
                    include_curipples=False, device=device, bounds=bounds,
                    pool=pool,
                )
            cells[(code, v)] = comparison
            row_cells.append(comparison.table_cell_vs_gim())
        rows.append(row_cells)
    notes = "OOM/x.xx marks gIM out-of-memory with eIM's simulated seconds"
    if config.warm_start:
        notes += "; warm-start RRR store shared across sweep cells"
    return TableResult(
        table=table,
        title=title,
        headers=headers,
        rows=rows,
        cells=cells,
        notes=notes,
    )


def table2_ic_k_sweep(config: ExperimentConfig | None = None) -> TableResult:
    """Speedup of eIM over gIM under IC while increasing k (eps fixed)."""
    return _sweep_table(config or ExperimentConfig.from_env(), "IC", "k", "Table 2")


def table3_ic_eps_sweep(config: ExperimentConfig | None = None) -> TableResult:
    """Speedup of eIM over gIM under IC while decreasing eps (k=100)."""
    return _sweep_table(config or ExperimentConfig.from_env(), "IC", "eps", "Table 3")


def table4_lt_k_sweep(config: ExperimentConfig | None = None) -> TableResult:
    """Speedup of eIM over gIM under LT while increasing k (eps fixed)."""
    return _sweep_table(config or ExperimentConfig.from_env(), "LT", "k", "Table 4")


def table5_lt_eps_sweep(config: ExperimentConfig | None = None) -> TableResult:
    """Speedup of eIM over gIM under LT while decreasing eps (k=100)."""
    return _sweep_table(config or ExperimentConfig.from_env(), "LT", "eps", "Table 5")
