"""Experiment configuration: scale, device, bounds and dataset plumbing.

The paper runs 16 SNAP networks on a 48 GB RTX A6000.  The default
configuration reproduces every experiment at ``tiny`` scale (~1/1000 of
paper sizes) on a proportionally scaled device, with the IMM bounds
scaled by ``sweep_theta_scale`` inside the big k/epsilon sweeps so the
whole suite stays CI-sized.  Environment overrides:

========================  ============================================
``REPRO_SCALE``            ``tiny`` (default) / ``small`` / ``paper``
``REPRO_REPEATS``          averaging repeats per cell (default 1)
``REPRO_DATASETS``         comma-separated subset of table codes
``REPRO_THETA_SCALE``      override for both theta scales
``REPRO_JOBS``             sampler worker processes (default 1)
``REPRO_WARM_START``       ``1`` enables warm-start RRR reuse in sweeps
``REPRO_TIMEOUT``          per-round sampling timeout in seconds
``REPRO_RETRIES``          sampling retry budget per job (default 2)
``REPRO_CHECKPOINT_DIR``   base dir for warm-start RRR checkpoints
``REPRO_FAULTS``           fault-injection plan (repro.resilience.faults)
``REPRO_DATA_PLANE``       ``shm`` (default where available) / ``pickle``
``REPRO_SELECTION_STRATEGY``  ``fast`` (default) / ``lazy`` / ``reference``
``REPRO_VISITED_MODE``     ``auto`` (default) / ``sorted`` / ``bitset``
``REPRO_COVERAGE_SCAN``    ``auto`` (default) / ``csr`` / ``bitset``
========================  ============================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.graphs.csc import DirectedGraph
from repro.graphs.datasets import DATASETS, get_dataset
from repro.graphs.weights import assign_ic_weights, assign_lt_weights
from repro.gpu.device import RTX_A6000, DeviceSpec
from repro.imm.bounds import BoundsConfig
from repro.utils.errors import ValidationError

ALL_CODES = tuple(DATASETS)

#: device scaling per dataset scale: memory and SM count shrink together
#: with the workloads (see DeviceSpec.scaled); the "pressure" divisor is
#: the tighter memory budget the capacity-sensitive Tables 2-5 run under,
#: calibrated so the paper's OOM pattern (deep-cascade networks first)
#: appears at the same workload-to-capacity ratios.
_SCALE_DEVICE = {
    "tiny": (1000.0, 1000.0),
    "small": (100.0, 100.0),
    "paper": (1.0, 1.0),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one experiment campaign."""

    scale: str = "tiny"
    repeats: int = 1
    seed: int = 2025
    datasets: tuple[str, ...] = ALL_CODES
    default_k: int = 50
    default_epsilon: float = 0.05
    theta_scale: float = 1.0
    #: extra bound scaling inside the k/epsilon sweep tables (25 cells
    #: per table x 16 datasets; full bounds there would take hours)
    sweep_theta_scale: float = 0.25
    #: memory-budget divisor for the capacity-pressure experiments,
    #: relative to the 48 GB A6000.  Calibrated (see EXPERIMENTS.md) so
    #: that at tiny scale gIM's raw RRR store exhausts the device on the
    #: largest workloads while eIM's packed store always fits — the
    #: paper's OOM mechanism, with the hog datasets shifted to the
    #: largest synthetics because vertex-count floors flatten the small
    #: ones
    pressure_memory_divisor: float = 6400.0
    #: worker processes for RRR sampling (1 = fully in-process); shared
    #: resident pools are keyed per graph, so a whole sweep reuses them
    n_jobs: int = 1
    #: reuse RRR samples across the cells of a sweep via the warm-start
    #: store: each (k, epsilon) cell tops an existing sample up to its
    #: theta instead of resampling (sound by the IMM martingale analysis)
    warm_start: bool = False
    #: per-round sampling timeout in seconds (None = wait forever); see
    #: ResilienceOptions.job_timeout
    job_timeout: Optional[float] = None
    #: sampling retry budget per job before serial degradation
    max_retries: int = 2
    #: base directory for warm-start RRR checkpoints (None = no
    #: persistence); each stream nests a key-digest subdirectory, so a
    #: killed sweep re-run with the same dir resumes from disk
    checkpoint_dir: Optional[str] = None
    #: parent<->worker data plane: "shm" (zero-copy shared graph +
    #: log-encoded IPC) or "pickle"; None defers to REPRO_DATA_PLANE,
    #: then to "shm" where OS shared memory works.  Bit-identical output
    #: either way.
    data_plane: Optional[str] = None
    #: greedy seed-selection implementation ("fast" / "lazy" /
    #: "reference"); all three are bit-identical in seeds and stats, so
    #: this is a host-performance knob only
    selection_strategy: str = "fast"
    #: sampler visited bookkeeping ("auto" / "sorted" / "bitset"); None
    #: defers to REPRO_VISITED_MODE, then "auto".  Bit-identical output
    #: in every mode
    visited_mode: Optional[str] = None
    #: seed-selection coverage scan ("auto" / "csr" / "bitset"); None
    #: defers to REPRO_COVERAGE_SCAN, then "auto".  Identical seeds and
    #: stats either way
    coverage_scan: Optional[str] = None

    @classmethod
    def from_env(cls, **overrides) -> "ExperimentConfig":
        """Build a config from ``REPRO_*`` environment variables."""
        kwargs: dict = {}
        if "REPRO_SCALE" in os.environ:
            kwargs["scale"] = os.environ["REPRO_SCALE"]
        if "REPRO_REPEATS" in os.environ:
            kwargs["repeats"] = int(os.environ["REPRO_REPEATS"])
        if "REPRO_DATASETS" in os.environ:
            kwargs["datasets"] = tuple(
                c.strip().upper() for c in os.environ["REPRO_DATASETS"].split(",") if c.strip()
            )
        if "REPRO_THETA_SCALE" in os.environ:
            ts = float(os.environ["REPRO_THETA_SCALE"])
            kwargs["theta_scale"] = ts
            kwargs["sweep_theta_scale"] = ts
        if "REPRO_JOBS" in os.environ:
            kwargs["n_jobs"] = int(os.environ["REPRO_JOBS"])
        if "REPRO_WARM_START" in os.environ:
            kwargs["warm_start"] = os.environ["REPRO_WARM_START"].strip().lower() in (
                "1", "true", "yes", "on",
            )
        if "REPRO_TIMEOUT" in os.environ:
            kwargs["job_timeout"] = float(os.environ["REPRO_TIMEOUT"])
        if "REPRO_RETRIES" in os.environ:
            kwargs["max_retries"] = int(os.environ["REPRO_RETRIES"])
        if "REPRO_CHECKPOINT_DIR" in os.environ:
            kwargs["checkpoint_dir"] = os.environ["REPRO_CHECKPOINT_DIR"]
        if "REPRO_DATA_PLANE" in os.environ:
            kwargs["data_plane"] = os.environ["REPRO_DATA_PLANE"]
        if "REPRO_SELECTION_STRATEGY" in os.environ:
            kwargs["selection_strategy"] = (
                os.environ["REPRO_SELECTION_STRATEGY"].strip().lower()
            )
        if "REPRO_VISITED_MODE" in os.environ:
            kwargs["visited_mode"] = os.environ["REPRO_VISITED_MODE"]
        if "REPRO_COVERAGE_SCAN" in os.environ:
            kwargs["coverage_scan"] = os.environ["REPRO_COVERAGE_SCAN"]
        kwargs.update(overrides)
        return cls(**kwargs)

    def __post_init__(self):
        if self.scale not in _SCALE_DEVICE:
            raise ValidationError(f"unknown scale {self.scale!r}")
        for code in self.datasets:
            get_dataset(code)  # validates
        if self.repeats < 1:
            raise ValidationError("repeats must be >= 1")
        if self.n_jobs < 1:
            raise ValidationError("n_jobs must be >= 1")
        if self.data_plane is not None and str(
            self.data_plane
        ).strip().lower() not in ("pickle", "shm"):
            raise ValidationError(
                f"unknown data plane {self.data_plane!r}; "
                "choose 'pickle' or 'shm' (or None for the default)"
            )
        from repro.imm.seed_selection import STRATEGIES

        if self.selection_strategy not in STRATEGIES:
            raise ValidationError(
                f"unknown selection strategy {self.selection_strategy!r}; "
                f"choose one of {STRATEGIES}"
            )
        from repro.kernels import resolve_coverage_scan, resolve_visited_mode

        if self.visited_mode is not None:
            object.__setattr__(
                self, "visited_mode", resolve_visited_mode(self.visited_mode)
            )
        if self.coverage_scan is not None:
            object.__setattr__(
                self, "coverage_scan", resolve_coverage_scan(self.coverage_scan)
            )
        self.resilience()  # validates job_timeout / max_retries eagerly

    # -- derived pieces --------------------------------------------------------
    def device(self, pressure: bool = False) -> DeviceSpec:
        """The simulated device paired with this scale.

        ``pressure=True`` returns the tighter-memory variant used by the
        OOM-sensitive sweeps (compute geometry unchanged).
        """
        mem_div, sm_div = _SCALE_DEVICE[self.scale]
        if pressure:
            mem_div = max(mem_div, self.pressure_memory_divisor)
        return RTX_A6000.scaled(mem_div, sm_div)

    def bounds(self, sweep: bool = False) -> BoundsConfig:
        """IMM bound configuration (sweep tables use the lighter scaling)."""
        return BoundsConfig(
            theta_scale=self.sweep_theta_scale if sweep else self.theta_scale
        )

    def resilience(self):
        """The :class:`~repro.resilience.options.ResilienceOptions` this
        config's sampling runs under (timeout, retries, checkpointing)."""
        from repro.resilience.options import ResilienceOptions

        return ResilienceOptions(
            job_timeout=self.job_timeout,
            max_retries=self.max_retries,
            checkpoint_dir=self.checkpoint_dir,
        )

    def sampler_pool(self, graph: DirectedGraph):
        """The shared resident :class:`~repro.rrr.parallel.SamplerPool`
        for ``graph`` under this config (``None`` when ``n_jobs == 1``)."""
        if self.n_jobs == 1:
            return None
        from repro.rrr.parallel import shared_pool

        return shared_pool(graph, self.n_jobs, data_plane=self.data_plane)

    def graph(self, code: str, model: str = "IC") -> DirectedGraph:
        """The weighted synthetic instance of dataset ``code`` (cached)."""
        model = model.upper()
        key = (code.upper(), self.scale, self.seed, model)
        cached = _GRAPH_CACHE.get(key)
        if cached is not None:
            return cached
        base_key = (code.upper(), self.scale, self.seed)
        base = _BASE_CACHE.get(base_key)
        if base is None:
            base = get_dataset(code).generate(scale=self.scale, rng=self.seed)
            _BASE_CACHE[base_key] = base
        if model == "IC":
            weighted = assign_ic_weights(base)
        elif model == "LT":
            weighted = assign_lt_weights(base)
        else:
            raise ValidationError(f"unknown model {model!r}")
        _GRAPH_CACHE[key] = weighted
        return weighted


_BASE_CACHE: dict = {}
_GRAPH_CACHE: dict = {}
