"""Engine comparison plumbing shared by all table/figure drivers.

One vanilla IMM run (no source elimination) is shared between gIM and
cuRipples — their sampling semantics are identical, so duplicating it
would only add noise — while eIM runs its own (source elimination changes
theta).  Repeats re-run everything with fresh derived seeds and average
the modeled cycle counts, mirroring the paper's 10-run averaging.

Two cross-cell optimizations ride on :class:`ExperimentConfig`:

* ``n_jobs > 1`` fans all sampling out over one resident
  :class:`~repro.rrr.parallel.SamplerPool` per graph, shared by every
  engine and every cell (the graph ships to the workers once);
* ``warm_start=True`` replaces per-cell resampling with the warm-start
  :class:`~repro.rrr.store.RRRStore`: each repeat keeps two streams per
  (graph, model) — one with source elimination for eIM, one vanilla for
  gIM/cuRipples — and every cell tops the cached sample up to its theta,
  so a whole k/epsilon sweep costs O(max theta) sampling instead of
  O(sum theta).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.engines import CuRipplesEngine, EIMEngine, GIMEngine
from repro.engines.base import EngineResult
from repro.experiments.config import ExperimentConfig
from repro.gpu.device import DeviceSpec
from repro.imm.bounds import BoundsConfig
from repro.imm.imm import run_imm
from repro.imm.options import IMMOptions
from repro.utils.rng import spawn_generators


def average_results(results: list[EngineResult]) -> EngineResult:
    """Average modeled cycles over repeats; OOM in any repeat marks the cell.

    Non-additive fields (seeds, breakdowns, the IMM handle) are taken
    from the first repeat.
    """
    first = results[0]
    if any(r.oom for r in results):
        ref = next(r for r in results if r.oom)
        return ref
    cycles = float(np.mean([r.total_cycles for r in results]))
    seconds = float(np.mean([r.seconds for r in results]))
    return EngineResult(
        engine=first.engine,
        model=first.model,
        k=first.k,
        epsilon=first.epsilon,
        seeds=first.seeds,
        oom=False,
        oom_detail="",
        total_cycles=cycles,
        seconds=seconds,
        peak_device_bytes=int(np.mean([r.peak_device_bytes for r in results])),
        rrr_store_bytes=int(np.mean([r.rrr_store_bytes for r in results])),
        theta=int(np.mean([r.theta for r in results])),
        coverage=float(np.mean([r.coverage for r in results])),
        breakdown=first.breakdown,
        imm=first.imm,
    )


@dataclass
class ComparisonRow:
    """All engines' (averaged) results on one workload cell."""

    dataset: str
    model: str
    k: int
    epsilon: float
    eim: EngineResult
    gim: EngineResult
    curipples: Optional[EngineResult] = None

    @property
    def speedup_vs_gim(self) -> float:
        return self.eim.speedup_over(self.gim)

    @property
    def speedup_vs_curipples(self) -> float:
        if self.curipples is None:
            return float("nan")
        return self.eim.speedup_over(self.curipples)

    def table_cell_vs_gim(self) -> str:
        """Paper-style cell: speedup, or ``OOM/<eIM seconds>`` when gIM
        ran out of memory (Tables 2-5 footnote convention)."""
        if self.gim.oom and not self.eim.oom:
            return f"OOM/{self.eim.seconds:.2g}"
        if self.eim.oom:
            return "OOM(eIM)"
        return f"{self.speedup_vs_gim:.2f}"


def _warm_stores(graph, model, rep, config, pool):
    """The two per-repeat warm-start streams: (eIM, vanilla).

    Entropy is a pure function of (seed, repeat, elimination flag); the
    graph/model identity lives in the store key itself, so every cell of
    a sweep — any k, any epsilon — lands on the same two streams.  With
    ``config.checkpoint_dir`` set, both streams persist their chunks to
    disk, so a killed sweep resumes where it left off.
    """
    from repro.rrr.store import shared_store

    def make(eliminate: bool):
        return shared_store(
            graph,
            model=model,
            eliminate_sources=eliminate,
            entropy=(config.seed, rep, int(eliminate)),
            n_jobs=config.n_jobs,
            pool=pool,
            resilience=config.resilience(),
            data_plane=config.data_plane,
            visited_mode=config.visited_mode,
        )

    return make(True), make(False)


def _host_oom_result(
    engine: str, model: str, k: int, epsilon: float, exc: BaseException
) -> EngineResult:
    """An ``oom=True`` cell for a *host-side* ``MemoryError``.

    The paper's tables report OOM cells whenever an engine's run dies of
    memory exhaustion; a ``MemoryError`` raised during host sampling is
    the same failure one level down, so it renders the same
    ``OOM/<seconds>`` cell instead of crashing the whole sweep.
    """
    return EngineResult(
        engine=engine,
        model=model.upper(),
        k=k,
        epsilon=epsilon,
        seeds=None,
        oom=True,
        oom_detail=f"host OOM during sampling: {exc}",
        total_cycles=float("nan"),
        seconds=float("nan"),
        peak_device_bytes=0,
        rrr_store_bytes=0,
        theta=0,
        coverage=float("nan"),
    )


def compare_engines(
    code: str,
    k: int,
    epsilon: float,
    model: str,
    config: ExperimentConfig,
    include_curipples: bool = True,
    device: Optional[DeviceSpec] = None,
    bounds: Optional[BoundsConfig] = None,
    pool=None,
) -> ComparisonRow:
    """Run eIM, gIM (and optionally cuRipples) on one workload cell."""
    graph = config.graph(code, model)
    device = device or config.device()
    bounds = bounds or config.bounds()
    k_eff = min(k, graph.n)

    eim_engine = EIMEngine()
    gim_engine = GIMEngine()
    cur_engine = CuRipplesEngine() if include_curipples else None

    if pool is None:
        pool = config.sampler_pool(graph)

    eim_runs, gim_runs, cur_runs = [], [], []
    streams = spawn_generators(config.seed * 1_000_003 + k_eff * 13 + int(epsilon * 1e6),
                               config.repeats * 2)
    resilience = config.resilience()
    for rep in range(config.repeats):
        rng_eim, rng_vanilla = streams[2 * rep], streams[2 * rep + 1]
        if config.warm_start:
            eim_store, vanilla_store = _warm_stores(graph, model, rep, config, pool)
        else:
            eim_store = vanilla_store = None
        # a host-side MemoryError during sampling is the same failure as
        # DeviceOOMError one level up: render the paper's OOM cell, keep
        # the sweep alive
        try:
            eim_runs.append(
                eim_engine.run(graph, k_eff, epsilon, rng=rng_eim,
                               device_spec=device, pool=pool, store=eim_store,
                               options=IMMOptions(
                                   model=model, bounds=bounds,
                                   n_jobs=config.n_jobs,
                                   resilience=resilience,
                                   selection_strategy=config.selection_strategy,
                                   visited_mode=config.visited_mode,
                                   coverage_scan=config.coverage_scan,
                               ))
            )
        except MemoryError as exc:
            eim_runs.append(_host_oom_result("eim", model, k_eff, epsilon, exc))
        try:
            vanilla = run_imm(
                graph, k_eff, epsilon, rng=rng_vanilla,
                options=IMMOptions(model=model, eliminate_sources=False,
                                   bounds=bounds, n_jobs=config.n_jobs,
                                   resilience=resilience,
                                   data_plane=config.data_plane,
                                   selection_strategy=config.selection_strategy,
                                   visited_mode=config.visited_mode,
                                   coverage_scan=config.coverage_scan),
                pool=pool, store=vanilla_store,
            )
        except MemoryError as exc:
            gim_runs.append(_host_oom_result("gim", model, k_eff, epsilon, exc))
            if cur_engine is not None:
                cur_runs.append(
                    _host_oom_result("curipples", model, k_eff, epsilon, exc)
                )
            continue
        gim_runs.append(
            gim_engine.run(graph, k_eff, epsilon, device_spec=device,
                           imm_result=vanilla,
                           options=IMMOptions(model=model, bounds=bounds))
        )
        if cur_engine is not None:
            cur_runs.append(
                cur_engine.run(graph, k_eff, epsilon, device_spec=device,
                               imm_result=vanilla,
                               options=IMMOptions(model=model, bounds=bounds))
            )
    return ComparisonRow(
        dataset=code,
        model=model.upper(),
        k=k_eff,
        epsilon=epsilon,
        eim=average_results(eim_runs),
        gim=average_results(gim_runs),
        curipples=average_results(cur_runs) if cur_runs else None,
    )
