"""Resident process-parallel RRR sampling for multi-core hosts.

The vectorized samplers already saturate one core's memory bandwidth;
on multi-core machines (the paper's host has 16) RRR generation is
embarrassingly parallel — Ripples' whole design point — so this module
fans a request out over a process pool.  The pool is *resident*: a
:class:`SamplerPool` owns one :class:`ProcessPoolExecutor` per graph,
delivers the CSC arrays to workers once, and stays alive across every
estimation phase and final top-up of an IMM run — and, through
:func:`shared_pool`, across all runs of a sweep.  Re-building the
executor per call (the old ``sample_rrr_parallel`` behaviour)
re-shipped the whole graph every time, which dominated the fan-out
cost it was supposed to amortize.

Data plane (:mod:`repro.shm`): with ``data_plane="shm"`` (the default
wherever OS shared memory works) the graph is *published once* into
shared segments and every worker attaches the same physical pages
zero-copy — ``n_jobs`` workers hold one copy of the graph instead of
``n_jobs`` private ones, and an executor rebuild after a crash
re-attaches instead of re-shipping.  Worker results come back
log-encoded (:class:`~repro.shm.transport.PackedResult`) at
``bit_length(x_max)`` bits per element instead of raw int64 pickles,
and the parent decode is bit-identical to the raw path.  With
``data_plane="pickle"`` (or where shared memory is unavailable) the
original pickled-initializer / raw-result path runs unchanged.

Each call splits the set count into one job per worker; every job
carries an independent spawned RNG stream and results merge in job
order, so a given ``(rng, n_jobs)`` pair is fully deterministic no
matter which OS process picks up which job.

Jobs receive the *spawned* :class:`numpy.random.SeedSequence` children
themselves (they pickle cleanly), so the stream a worker runs is
bit-for-bit the stream ``spawn_generators`` would hand out
parent-side.  Re-seeding ``PCG64`` from a generator's raw 128-bit
state would instead re-hash that state through SeedSequence and drop
the stream increment — a silent loss of the independence guarantee
this module promises.

Supervision (:mod:`repro.resilience`): every fan-out runs under a
supervision loop — per-round timeouts, bounded deterministic retries,
``BrokenProcessPool`` recovery that rebuilds the executor and re-runs
*only* the lost jobs, and serial in-process degradation once the retry
budget is spent.  Because each job's ``SeedSequence`` pins its stream,
a retried or degraded job reproduces its exact sets, so recovery never
changes the merged result — only wall-clock.  The
:class:`~repro.resilience.report.ResilienceReport` of what happened
rides on the returned trace.
"""

from __future__ import annotations

import atexit
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro import obs
from repro.graphs.csc import DirectedGraph
from repro.resilience.deadline import active_deadline
from repro.resilience.faults import active_spec as active_fault_spec
from repro.resilience.faults import fire as fire_fault
from repro.resilience.options import DEFAULT_RESILIENCE, ResilienceOptions
from repro.resilience.report import ResilienceReport
from repro.rrr.collection import RRRCollection
from repro.rrr.trace import SampleTrace, empty_trace
from repro.shm.segments import resolve_data_plane
from repro.shm.transport import PackedResult
from repro.utils.errors import (
    SamplingTimeoutError,
    ValidationError,
    WorkerCrashError,
)
from repro.utils.rng import spawn_seed_sequences

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.shm.arena import ChunkArena
    from repro.shm.graph import SharedGraph

_WORKER_GRAPH: Optional[DirectedGraph] = None
_WORKER_ATTACHMENT = None


def _init_worker(mode: str, payload):
    """Executor initializer: materialize the graph once per worker.

    ``mode="pickle"`` receives the CSC arrays themselves (a private
    copy per worker); ``mode="shm"`` receives a
    :class:`~repro.shm.graph.SharedGraphHandle` and attaches the
    published segments zero-copy.
    """
    global _WORKER_GRAPH, _WORKER_ATTACHMENT
    if mode == "shm":
        from repro.shm.graph import attach_graph

        _WORKER_ATTACHMENT = attach_graph(payload)
        _WORKER_GRAPH = _WORKER_ATTACHMENT.graph
    else:
        indptr, indices, weights = payload
        _WORKER_GRAPH = DirectedGraph(indptr, indices, weights)


def _worker_sample(args):
    (
        model,
        num_sets,
        seed_seq,
        eliminate_sources,
        batch_size,
        visited_mode,
        pack_results,
        job_index,
        attempt,
        fault_spec,
    ) = args
    # injected faults (CI drills) fire before any sampling work; the
    # schedule is a pure function of (job_index, attempt), so retries
    # of a once-faulted job run clean and reproduce its exact sets
    fire_fault(fault_spec, job_index, attempt)
    from repro.rrr import get_sampler

    sampler = get_sampler(model)
    rng = np.random.Generator(np.random.PCG64(seed_seq))
    collection, trace = sampler(
        _WORKER_GRAPH,
        num_sets,
        rng=rng,
        eliminate_sources=eliminate_sources,
        batch_size=batch_size,
        visited_mode=visited_mode,
    )
    if pack_results:
        return PackedResult.encode(
            collection.flat,
            collection.offsets,
            collection.sources,
            trace,
            _WORKER_GRAPH.n,
        )
    return (
        collection.flat,
        collection.offsets,
        collection.sources,
        trace,
    )


class SamplerPool:
    """A persistent worker pool sampling RRR sets for one graph.

    The executor is created lazily on the first call that actually fans
    out (so ``n_jobs=1`` pools never touch multiprocessing) and is then
    reused by every subsequent :meth:`sample` call until :meth:`close`.
    The graph ships to each worker exactly once, at pool start-up.

    Determinism contract: ``sample`` spawns fresh ``SeedSequence``
    children from the caller's ``rng`` on every call, so for a fixed
    ``(rng, n_jobs)`` the produced collection is bit-identical across
    calls, across pool instances, and across interleaved reuse — merge
    order is job order, never completion order.  Small requests
    (``num_sets < 2 * n_jobs``) fall through to the in-process sampler
    using the caller's ``rng`` directly, matching the serial path.
    Supervision (timeouts, retries, executor rebuilds, serial
    degradation) preserves the contract: every recovery path re-runs a
    job from its own pinned ``SeedSequence``.
    """

    def __init__(
        self,
        graph: DirectedGraph,
        n_jobs: int,
        data_plane: Optional[str] = None,
        mp_context: Optional[str] = None,
    ):
        if graph.weights is None:
            raise ValidationError("parallel sampling requires a weighted graph")
        if n_jobs < 1:
            raise ValidationError("n_jobs must be >= 1")
        if mp_context is not None and mp_context not in ("fork", "spawn", "forkserver"):
            raise ValidationError(
                f"unknown mp_context {mp_context!r}; "
                "choose fork, spawn, or forkserver (or None for the default)"
            )
        self.graph = graph
        self.n_jobs = int(n_jobs)
        self.data_plane = resolve_data_plane(data_plane)
        #: multiprocessing start method for the workers (None = platform
        #: default).  Under "spawn" the pickle plane genuinely ships one
        #: private graph copy per worker, whereas "fork" hides it behind
        #: copy-on-write — which is why cross-platform memory numbers
        #: (and the residency benchmark) use spawn explicitly.
        self.mp_context = mp_context
        self._executor: Optional[ProcessPoolExecutor] = None
        self._shared_graph: "Optional[SharedGraph]" = None
        self._ever_started = False
        self._closed = False
        # guards executor creation: different-key substrates served by
        # concurrent threads can share one pool, and two racing
        # _ensure_executor calls must not each start a worker fleet
        self._exec_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the worker processes exist yet."""
        return self._executor is not None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` ended this pool's life (terminal)."""
        return self._closed

    def _initializer_args(self) -> tuple:
        """``(mode, payload)`` for :func:`_init_worker` under the
        resolved data plane, publishing the shared graph on first use.

        A rebuild after ``_abandon_executor`` reuses the segments
        already published — re-attach, never re-publish — which is what
        makes crash recovery O(mmap) instead of O(graph bytes).
        Publish failures (exotic /dev/shm restrictions) degrade the
        pool to the pickle plane once, with a warning.
        """
        if self.data_plane == "shm":
            if self._shared_graph is None or self._shared_graph.closed:
                from repro.shm.graph import SharedGraph

                try:
                    self._shared_graph = SharedGraph(self.graph)
                except Exception as exc:
                    warnings.warn(
                        f"shared-memory graph publish failed ({exc!r}); "
                        "falling back to the pickle data plane",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    obs.counter_add("shm.fallbacks", 1)
                    self.data_plane = "pickle"
            else:
                obs.counter_add("shm.graph_reattached", 1)
        if self.data_plane == "shm":
            return ("shm", self._shared_graph.handle())
        return (
            "pickle",
            (self.graph.indptr, self.graph.indices, self.graph.weights),
        )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._exec_lock:
            if self._executor is None:
                rebuild = self._ever_started
                start = time.monotonic()
                context = None
                if self.mp_context is not None:
                    import multiprocessing

                    context = multiprocessing.get_context(self.mp_context)
                with obs.span("rrr.parallel.pool_start"):
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.n_jobs,
                        mp_context=context,
                        initializer=_init_worker,
                        initargs=self._initializer_args(),
                    )
                self._ever_started = True
                if rebuild:
                    # the satellite metric: how fast a rebuilt executor got
                    # its graph back (reattach on shm, full reship on pickle)
                    obs.counter_add(
                        "rrr.parallel.rebuild_attach_seconds",
                        time.monotonic() - start,
                    )
                obs.counter_add("rrr.parallel.pool_created", 1)
            else:
                obs.counter_add("rrr.parallel.pool_reused", 1)
            return self._executor

    def _abandon_executor(self, terminate: bool) -> None:
        """Drop the executor (broken, or holding hung workers).

        ``terminate=True`` force-kills the worker processes — the only
        way to reclaim a worker stuck past ``job_timeout``, since
        ``concurrent.futures`` cannot cancel a running task.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        processes = list(getattr(executor, "_processes", {}).values() or [])
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # already-broken executors can refuse shutdown
            pass
        if terminate:
            for proc in processes:
                try:
                    proc.terminate()
                except Exception:
                    pass
        obs.counter_add("rrr.parallel.pool_rebuilt", 1)

    def close(self) -> None:
        """Shut the worker processes down; terminal and idempotent.

        After ``close`` the pool refuses to sample; registry lookups
        (:func:`shared_pool`) evict closed pools and hand out fresh
        ones, so stale registry state can never serve a dead executor.
        """
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=True)
            except Exception:  # a broken pool is already as shut as it gets
                pass
            self._executor = None
        if self._shared_graph is not None:
            self._shared_graph.close()
            self._shared_graph = None
        self._closed = True

    def __enter__(self) -> "SamplerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sampling ------------------------------------------------------------
    def sample(
        self,
        model: str,
        num_sets: int,
        rng=None,
        eliminate_sources: bool = False,
        batch_size: int = 16384,
        visited_mode: Optional[str] = None,
        resilience: Optional[ResilienceOptions] = None,
        arena: "Optional[ChunkArena]" = None,
    ) -> tuple[RRRCollection, SampleTrace]:
        """Sample ``num_sets`` RRR sets across the pool's workers.

        Semantically identical to the single-process samplers (same
        distribution; deterministic for fixed ``rng`` and ``n_jobs``,
        and across data planes), under the supervision policy of
        ``resilience`` (defaults to
        :data:`~repro.resilience.options.DEFAULT_RESILIENCE`: no
        timeout, 2 retries, serial fallback).  With ``arena`` (a
        :class:`~repro.shm.arena.ChunkArena`) the merged collection's
        arrays live in shared-memory segments owned by the arena —
        packed worker payloads decode straight into them.
        """
        if self._closed:
            raise ValidationError("SamplerPool is closed")
        if num_sets < 0:
            raise ValidationError("num_sets must be non-negative")
        if self.n_jobs == 1 or num_sets < 2 * self.n_jobs:
            from repro.rrr import get_sampler

            return get_sampler(model)(
                self.graph,
                num_sets,
                rng=rng,
                eliminate_sources=eliminate_sources,
                batch_size=batch_size,
                visited_mode=visited_mode,
            )

        res = resilience if resilience is not None else DEFAULT_RESILIENCE
        children = spawn_seed_sequences(rng, self.n_jobs)
        share = num_sets // self.n_jobs
        counts = [share] * self.n_jobs
        counts[-1] += num_sets - share * self.n_jobs
        pack_results = self.data_plane == "shm"
        jobs = [
            (
                model.upper(),
                counts[i],
                children[i],
                eliminate_sources,
                batch_size,
                visited_mode,
                pack_results,
            )
            for i in range(self.n_jobs)
        ]
        obs.counter_add("rrr.parallel.jobs", self.n_jobs)
        report = ResilienceReport()
        with obs.span("rrr.parallel.sample"):
            results = self._supervise(jobs, res, report)

        with obs.span("rrr.parallel.merge"):
            collection, trace = self._merge(results, arena)
            trace.resilience = report
        report.publish()
        return collection, trace

    def _merge(
        self, results: list, arena: "Optional[ChunkArena]"
    ) -> tuple[RRRCollection, SampleTrace]:
        """Merge per-job results (packed or raw, in job order).

        Accounting: ``ipc.bytes_sent`` tallies what actually crossed
        the executor pipe; ``ipc.bytes_packed`` / ``ipc.bytes_raw``
        expose the log-encoding savings (the host-side Fig. 4 story).
        Degraded jobs run in-process and are excluded — they cost no
        IPC.
        """
        packed = [r for r in results if isinstance(r, PackedResult)]
        if packed and obs.enabled():
            sent = sum(p.nbytes_packed for p in packed)
            raw = sum(p.nbytes_raw for p in packed)
            obs.counter_add("ipc.bytes_sent", sent)
            obs.counter_add("ipc.bytes_packed", sent)
            obs.counter_add("ipc.bytes_raw", raw)
            if raw:
                obs.gauge_set("ipc.compression_ratio", sent / raw)
        if len(packed) == len(results) and arena is not None:
            # the zero-copy path: decode every payload straight into
            # one arena chunk; traces decode separately (diagnostics)
            chunk = arena.merge_payloads(results, self.graph.n)
            collection = chunk.collection(self.graph.n)
            trace = empty_trace()
            for payload in results:
                trace = trace.merged_with(payload.decode_trace())
            return collection, trace
        decoded = [
            r.decode() if isinstance(r, PackedResult) else r for r in results
        ]
        if obs.enabled():
            raw_sent = sum(
                flat.nbytes + offsets.nbytes
                + (sources.nbytes if sources is not None else 0)
                for (flat, offsets, sources, _), r in zip(decoded, results)
                if not isinstance(r, PackedResult)
            )
            if raw_sent:
                obs.counter_add("ipc.bytes_sent", raw_sent)
                obs.counter_add("ipc.bytes_raw", raw_sent)
        parts = [
            RRRCollection(flat, offsets, self.graph.n, sources=sources, check=False)
            for flat, offsets, sources, _ in decoded
        ]
        collection = RRRCollection.concat(parts)
        if arena is not None:
            collection = arena.adopt(collection)
        trace = empty_trace()
        for _, _, _, t in decoded:
            trace = trace.merged_with(t)
        return collection, trace

    # -- supervision ---------------------------------------------------------
    def _supervise(
        self,
        jobs: list[tuple],
        res: ResilienceOptions,
        report: ResilienceReport,
    ) -> list[tuple]:
        """Run ``jobs`` to completion under the supervision policy.

        Round-based loop: submit every unfinished job, wait (bounded by
        ``job_timeout``), harvest results, classify losses, recycle the
        executor when workers died or hung, back off deterministically,
        and retry only the lost jobs.  Jobs past their retry budget run
        serially in-process (or raise, with fallback disabled).  Returns
        per-job results in job order.
        """
        n = len(jobs)
        results: list = [None] * n
        attempt = [0] * n
        last_loss = [""] * n  # "timeout" | "crash" | "failure"
        pending = list(range(n))
        fault_spec = active_fault_spec()
        deadline = active_deadline()
        retry_round = 0
        futures: dict[int, object] = {}
        try:
            while pending:
                # cooperative deadline: an expired query must free its
                # worker slot at the next round boundary, not sample on
                if deadline is not None:
                    deadline.check("parallel sampling round")
                exhausted = [i for i in pending if attempt[i] > res.max_retries]
                if exhausted:
                    pending = [i for i in pending if attempt[i] <= res.max_retries]
                    if not res.serial_fallback:
                        self._raise_unrecoverable(exhausted, attempt, last_loss)
                    for i in exhausted:
                        if deadline is not None:
                            deadline.check("serial degraded sampling")
                        with obs.span("rrr.parallel.degraded_job"):
                            results[i] = self._run_serial(jobs[i])
                        report.degraded_jobs += 1
                        report.events.append(
                            {"kind": "degraded", "job": i, "attempt": attempt[i]}
                        )
                    if not pending:
                        break
                if retry_round:
                    backoff = res.backoff(retry_round - 1)
                    if deadline is not None:
                        remaining = deadline.remaining()
                        if remaining is not None:
                            backoff = min(backoff, remaining)
                    if backoff:
                        time.sleep(backoff)
                        report.wall_clock_lost += backoff
                round_start = time.monotonic()
                executor = self._ensure_executor()
                try:
                    futures = {
                        i: executor.submit(
                            _worker_sample, jobs[i] + (i, attempt[i], fault_spec)
                        )
                        for i in pending
                    }
                except BrokenProcessPool:
                    # the executor died between rounds; every job of this
                    # round is lost — recycle and retry them all
                    for i in pending:
                        report.record("crash", i, attempt[i])
                        last_loss[i] = "crash"
                        attempt[i] += 1
                    futures = {}
                    report.retries += len(pending)
                    retry_round += 1
                    self._abandon_executor(terminate=False)
                    report.rebuilds += 1
                    continue
                # ALL_COMPLETED (not FIRST_EXCEPTION): a failed job must
                # not cut the round short — the healthy jobs finish and
                # keep their results, and a worker death breaks every
                # pending future promptly anyway.  The wait is bounded by
                # whichever is tighter, the supervision timeout or the
                # deadline's remaining budget, so an expired query never
                # blocks on a hung worker.
                round_timeout = res.job_timeout
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining is not None:
                        round_timeout = (
                            remaining
                            if round_timeout is None
                            else min(round_timeout, remaining)
                        )
                wait(futures.values(), timeout=round_timeout)
                if deadline is not None and deadline.expired:
                    undone = [f for f in futures.values() if not f.done()]
                    if undone:
                        # reclaim the slot now: cancel what never started
                        # and terminate workers stuck mid-job (siblings
                        # sharing this pool see BrokenProcessPool and
                        # retry deterministically)
                        for future in futures.values():
                            future.cancel()
                        self._abandon_executor(terminate=True)
                        report.rebuilds += 1
                        deadline.check("parallel sampling round")
                broken = False
                hung = False
                still_pending = []
                for i in pending:
                    future = futures[i]
                    if not future.done():
                        hung = True
                        report.record("timeout", i, attempt[i])
                        last_loss[i] = "timeout"
                        attempt[i] += 1
                        still_pending.append(i)
                        continue
                    try:
                        results[i] = future.result()
                    except BrokenProcessPool:
                        broken = True
                        report.record("crash", i, attempt[i])
                        last_loss[i] = "crash"
                        attempt[i] += 1
                        still_pending.append(i)
                    except Exception as exc:  # raised inside the worker
                        report.record("failure", i, attempt[i], detail=repr(exc))
                        last_loss[i] = "failure"
                        attempt[i] += 1
                        still_pending.append(i)
                futures = {}
                pending = still_pending
                if pending:
                    report.wall_clock_lost += time.monotonic() - round_start
                    report.retries += len(pending)
                    retry_round += 1
                if broken or hung:
                    # dead executors cannot be reused; hung ones hold a
                    # worker hostage — recycle either way
                    self._abandon_executor(terminate=hung)
                    report.rebuilds += 1
        except KeyboardInterrupt:
            for future in futures.values():
                future.cancel()
            self._abandon_executor(terminate=True)
            raise
        return results

    def _run_serial(self, job: tuple) -> tuple:
        """In-process fallback for one job — bit-identical to the worker
        path, since the job's ``SeedSequence`` pins its stream and fault
        injection only ever fires inside worker processes."""
        model, count, seed_seq, eliminate_sources, batch_size, visited_mode, _pack = job
        from repro.rrr import get_sampler

        rng = np.random.Generator(np.random.PCG64(seed_seq))
        collection, trace = get_sampler(model)(
            self.graph,
            count,
            rng=rng,
            eliminate_sources=eliminate_sources,
            batch_size=batch_size,
            visited_mode=visited_mode,
        )
        return (collection.flat, collection.offsets, collection.sources, trace)

    def _raise_unrecoverable(
        self, exhausted: list[int], attempt: list[int], last_loss: list[str]
    ) -> None:
        detail = ", ".join(
            f"job {i} ({last_loss[i] or 'unknown'} x{attempt[i]})" for i in exhausted
        )
        if all(last_loss[i] == "timeout" for i in exhausted):
            raise SamplingTimeoutError(
                f"sampling jobs exceeded their retry budget: {detail}"
            )
        raise WorkerCrashError(
            f"sampling jobs exceeded their retry budget: {detail}"
        )


# -- shared pool registry ----------------------------------------------------
#: pools keyed by (graph fingerprint, n_jobs, data plane); one executor per
#: key lives for the whole process, so sweeps over many (k, epsilon) cells
#: share workers.  :func:`shutdown_pools` runs at interpreter exit (atexit)
#: so resident executors can never leave orphaned workers behind.
_POOLS: dict[tuple[str, int, str], SamplerPool] = {}
# concurrent service workers share this registry; the lock makes
# lookup-evict-create atomic so two same-key callers never each start a
# worker fleet
_POOLS_LOCK = threading.Lock()


def shared_pool(
    graph: DirectedGraph, n_jobs: int, data_plane: Optional[str] = None
) -> SamplerPool:
    """The process-wide resident pool for ``(graph, n_jobs, data_plane)``.

    Keyed by content fingerprint, not object identity, so regenerated
    graph instances (e.g. out of ``ExperimentConfig``'s cache) land on
    the same workers.  The data plane resolves *before* keying, so
    ``None``, the env default, and an explicit matching request all hit
    the same pool.  Entries whose pool has been closed are evicted on
    lookup and replaced with a fresh pool.
    """
    plane = resolve_data_plane(data_plane)
    key = (graph.fingerprint(), int(n_jobs), plane)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is not None and pool.closed:
            _POOLS.pop(key, None)
            obs.counter_add("rrr.parallel.pool_evicted", 1)
            pool = None
        if pool is None:
            pool = SamplerPool(graph, n_jobs, data_plane=plane)
            _POOLS[key] = pool
        return pool


def shutdown_pools() -> None:
    """Close every shared pool (tests, long-lived services, atexit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.close()


# resident executors must not outlive the interpreter: without this a
# worker hung mid-job (or a user forgetting shutdown_pools) leaves
# orphaned processes behind at exit
atexit.register(shutdown_pools)


def sample_rrr_parallel(
    graph: DirectedGraph,
    num_sets: int,
    model: str = "IC",
    rng=None,
    n_jobs: int = 2,
    eliminate_sources: bool = False,
    batch_size: int = 16384,
    visited_mode: Optional[str] = None,
    pool: Optional[SamplerPool] = None,
    resilience: Optional[ResilienceOptions] = None,
    data_plane: Optional[str] = None,
) -> tuple[RRRCollection, SampleTrace]:
    """Sample ``num_sets`` RRR sets across ``n_jobs`` worker processes.

    Back-compat functional front-end over :class:`SamplerPool`; uses the
    process-wide :func:`shared_pool` (or an explicit ``pool``) so
    repeated calls stop re-shipping the graph.
    """
    if graph.weights is None:
        raise ValidationError("parallel sampling requires a weighted graph")
    if num_sets < 0:
        raise ValidationError("num_sets must be non-negative")
    if n_jobs < 1:
        raise ValidationError("n_jobs must be >= 1")
    if pool is None:
        pool = shared_pool(graph, n_jobs, data_plane=data_plane)
    elif pool.n_jobs != n_jobs:
        raise ValidationError(
            f"pool has n_jobs={pool.n_jobs}, call requested {n_jobs}"
        )
    return pool.sample(
        model,
        num_sets,
        rng=rng,
        eliminate_sources=eliminate_sources,
        batch_size=batch_size,
        visited_mode=visited_mode,
        resilience=resilience,
    )
