"""Process-parallel RRR sampling for multi-core hosts.

The vectorized samplers already saturate one core's memory bandwidth;
on multi-core machines (the paper's host has 16) RRR generation is
embarrassingly parallel — Ripples' whole design point — so this module
fans a request out over a process pool.  Each worker gets an
independent spawned RNG stream and a share of the set count; results
merge in worker order, so a given ``(rng, n_jobs)`` pair is fully
deterministic.

Workers receive the *spawned* :class:`numpy.random.SeedSequence`
children themselves (they pickle cleanly), so the stream a worker runs
is bit-for-bit the stream ``spawn_generators`` would hand out
parent-side.  Re-seeding ``PCG64`` from a generator's raw 128-bit
state would instead re-hash that state through SeedSequence and drop
the stream increment — a silent loss of the independence guarantee
this module promises.

Workers re-generate nothing graph-side: the (pickled) CSC arrays ship
once per worker via the executor's initializer.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Optional

import numpy as np

from repro import obs
from repro.graphs.csc import DirectedGraph
from repro.rrr.collection import RRRCollection
from repro.rrr.trace import SampleTrace, empty_trace
from repro.utils.errors import ValidationError
from repro.utils.rng import spawn_seed_sequences

_WORKER_GRAPH: Optional[DirectedGraph] = None


def _init_worker(indptr, indices, weights):
    global _WORKER_GRAPH
    _WORKER_GRAPH = DirectedGraph(indptr, indices, weights)


def _worker_sample(args):
    model, num_sets, seed_seq, eliminate_sources = args
    from repro.rrr import get_sampler

    sampler = get_sampler(model)
    rng = np.random.Generator(np.random.PCG64(seed_seq))
    collection, trace = sampler(
        _WORKER_GRAPH, num_sets, rng=rng, eliminate_sources=eliminate_sources
    )
    return (
        collection.flat,
        collection.offsets,
        collection.sources,
        trace,
    )


def sample_rrr_parallel(
    graph: DirectedGraph,
    num_sets: int,
    model: str = "IC",
    rng=None,
    n_jobs: int = 2,
    eliminate_sources: bool = False,
) -> tuple[RRRCollection, SampleTrace]:
    """Sample ``num_sets`` RRR sets across ``n_jobs`` worker processes.

    Semantically identical to the single-process samplers (same
    distribution; deterministic for fixed ``rng`` and ``n_jobs``); worth
    using once per-call set counts reach the hundreds of thousands.
    """
    if graph.weights is None:
        raise ValidationError("parallel sampling requires a weighted graph")
    if num_sets < 0:
        raise ValidationError("num_sets must be non-negative")
    if n_jobs < 1:
        raise ValidationError("n_jobs must be >= 1")
    if n_jobs == 1 or num_sets < 2 * n_jobs:
        from repro.rrr import get_sampler

        return get_sampler(model)(
            graph, num_sets, rng=rng, eliminate_sources=eliminate_sources
        )

    children = spawn_seed_sequences(rng, n_jobs)
    share = num_sets // n_jobs
    counts = [share] * n_jobs
    counts[-1] += num_sets - share * n_jobs
    jobs = [
        (model.upper(), counts[i], children[i], eliminate_sources)
        for i in range(n_jobs)
    ]
    obs.counter_add("rrr.parallel.jobs", n_jobs)
    with obs.span("rrr.parallel.sample"):
        with ProcessPoolExecutor(
            max_workers=n_jobs,
            initializer=_init_worker,
            initargs=(graph.indptr, graph.indices, graph.weights),
        ) as pool:
            results = list(pool.map(_worker_sample, jobs))

    with obs.span("rrr.parallel.merge"):
        parts = [
            RRRCollection(flat, offsets, graph.n, sources=sources, check=False)
            for flat, offsets, sources, _ in results
        ]
        collection = RRRCollection.concat(parts)
        trace = empty_trace()
        for _, _, _, t in results:
            trace = trace.merged_with(t)
    return collection, trace
