"""Resident process-parallel RRR sampling for multi-core hosts.

The vectorized samplers already saturate one core's memory bandwidth;
on multi-core machines (the paper's host has 16) RRR generation is
embarrassingly parallel — Ripples' whole design point — so this module
fans a request out over a process pool.  The pool is *resident*: a
:class:`SamplerPool` owns one :class:`ProcessPoolExecutor` per graph,
ships the (pickled) CSC arrays once per worker via the executor's
initializer, and stays alive across every estimation phase and final
top-up of an IMM run — and, through :func:`shared_pool`, across all
runs of a sweep.  Re-building the executor per call (the old
``sample_rrr_parallel`` behaviour) re-pickled the whole graph every
time, which dominated the fan-out cost it was supposed to amortize.

Each call splits the set count into one job per worker; every job
carries an independent spawned RNG stream and results merge in job
order, so a given ``(rng, n_jobs)`` pair is fully deterministic no
matter which OS process picks up which job.

Jobs receive the *spawned* :class:`numpy.random.SeedSequence` children
themselves (they pickle cleanly), so the stream a worker runs is
bit-for-bit the stream ``spawn_generators`` would hand out
parent-side.  Re-seeding ``PCG64`` from a generator's raw 128-bit
state would instead re-hash that state through SeedSequence and drop
the stream increment — a silent loss of the independence guarantee
this module promises.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Optional

import numpy as np

from repro import obs
from repro.graphs.csc import DirectedGraph
from repro.rrr.collection import RRRCollection
from repro.rrr.trace import SampleTrace, empty_trace
from repro.utils.errors import ValidationError
from repro.utils.rng import spawn_seed_sequences

_WORKER_GRAPH: Optional[DirectedGraph] = None


def _init_worker(indptr, indices, weights):
    global _WORKER_GRAPH
    _WORKER_GRAPH = DirectedGraph(indptr, indices, weights)


def _worker_sample(args):
    model, num_sets, seed_seq, eliminate_sources, batch_size = args
    from repro.rrr import get_sampler

    sampler = get_sampler(model)
    rng = np.random.Generator(np.random.PCG64(seed_seq))
    collection, trace = sampler(
        _WORKER_GRAPH,
        num_sets,
        rng=rng,
        eliminate_sources=eliminate_sources,
        batch_size=batch_size,
    )
    return (
        collection.flat,
        collection.offsets,
        collection.sources,
        trace,
    )


class SamplerPool:
    """A persistent worker pool sampling RRR sets for one graph.

    The executor is created lazily on the first call that actually fans
    out (so ``n_jobs=1`` pools never touch multiprocessing) and is then
    reused by every subsequent :meth:`sample` call until :meth:`close`.
    The graph ships to each worker exactly once, at pool start-up.

    Determinism contract: ``sample`` spawns fresh ``SeedSequence``
    children from the caller's ``rng`` on every call, so for a fixed
    ``(rng, n_jobs)`` the produced collection is bit-identical across
    calls, across pool instances, and across interleaved reuse — merge
    order is job order, never completion order.  Small requests
    (``num_sets < 2 * n_jobs``) fall through to the in-process sampler
    using the caller's ``rng`` directly, matching the serial path.
    """

    def __init__(self, graph: DirectedGraph, n_jobs: int):
        if graph.weights is None:
            raise ValidationError("parallel sampling requires a weighted graph")
        if n_jobs < 1:
            raise ValidationError("n_jobs must be >= 1")
        self.graph = graph
        self.n_jobs = int(n_jobs)
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- lifecycle -----------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the worker processes exist yet."""
        return self._executor is not None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            with obs.span("rrr.parallel.pool_start"):
                self._executor = ProcessPoolExecutor(
                    max_workers=self.n_jobs,
                    initializer=_init_worker,
                    initargs=(
                        self.graph.indptr,
                        self.graph.indices,
                        self.graph.weights,
                    ),
                )
            obs.counter_add("rrr.parallel.pool_created", 1)
        else:
            obs.counter_add("rrr.parallel.pool_reused", 1)
        return self._executor

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "SamplerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sampling ------------------------------------------------------------
    def sample(
        self,
        model: str,
        num_sets: int,
        rng=None,
        eliminate_sources: bool = False,
        batch_size: int = 16384,
    ) -> tuple[RRRCollection, SampleTrace]:
        """Sample ``num_sets`` RRR sets across the pool's workers.

        Semantically identical to the single-process samplers (same
        distribution; deterministic for fixed ``rng`` and ``n_jobs``).
        """
        if num_sets < 0:
            raise ValidationError("num_sets must be non-negative")
        if self.n_jobs == 1 or num_sets < 2 * self.n_jobs:
            from repro.rrr import get_sampler

            return get_sampler(model)(
                self.graph,
                num_sets,
                rng=rng,
                eliminate_sources=eliminate_sources,
                batch_size=batch_size,
            )

        children = spawn_seed_sequences(rng, self.n_jobs)
        share = num_sets // self.n_jobs
        counts = [share] * self.n_jobs
        counts[-1] += num_sets - share * self.n_jobs
        jobs = [
            (model.upper(), counts[i], children[i], eliminate_sources, batch_size)
            for i in range(self.n_jobs)
        ]
        obs.counter_add("rrr.parallel.jobs", self.n_jobs)
        executor = self._ensure_executor()
        with obs.span("rrr.parallel.sample"):
            results = list(executor.map(_worker_sample, jobs))

        with obs.span("rrr.parallel.merge"):
            parts = [
                RRRCollection(flat, offsets, self.graph.n, sources=sources, check=False)
                for flat, offsets, sources, _ in results
            ]
            collection = RRRCollection.concat(parts)
            trace = empty_trace()
            for _, _, _, t in results:
                trace = trace.merged_with(t)
        return collection, trace


# -- shared pool registry ----------------------------------------------------
#: pools keyed by (graph fingerprint, n_jobs); one executor per key lives
#: for the whole process (ProcessPoolExecutor registers its own atexit
#: shutdown), so sweeps over many (k, epsilon) cells share workers.
_POOLS: dict[tuple[str, int], SamplerPool] = {}


def shared_pool(graph: DirectedGraph, n_jobs: int) -> SamplerPool:
    """The process-wide resident pool for ``(graph, n_jobs)``.

    Keyed by content fingerprint, not object identity, so regenerated
    graph instances (e.g. out of ``ExperimentConfig``'s cache) land on
    the same workers.
    """
    key = (graph.fingerprint(), int(n_jobs))
    pool = _POOLS.get(key)
    if pool is None:
        pool = SamplerPool(graph, n_jobs)
        _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Close every shared pool (tests and long-lived services)."""
    for pool in _POOLS.values():
        pool.close()
    _POOLS.clear()


def sample_rrr_parallel(
    graph: DirectedGraph,
    num_sets: int,
    model: str = "IC",
    rng=None,
    n_jobs: int = 2,
    eliminate_sources: bool = False,
    batch_size: int = 16384,
    pool: Optional[SamplerPool] = None,
) -> tuple[RRRCollection, SampleTrace]:
    """Sample ``num_sets`` RRR sets across ``n_jobs`` worker processes.

    Back-compat functional front-end over :class:`SamplerPool`; uses the
    process-wide :func:`shared_pool` (or an explicit ``pool``) so
    repeated calls stop re-shipping the graph.
    """
    if graph.weights is None:
        raise ValidationError("parallel sampling requires a weighted graph")
    if num_sets < 0:
        raise ValidationError("num_sets must be non-negative")
    if n_jobs < 1:
        raise ValidationError("n_jobs must be >= 1")
    if pool is None:
        pool = shared_pool(graph, n_jobs)
    elif pool.n_jobs != n_jobs:
        raise ValidationError(
            f"pool has n_jobs={pool.n_jobs}, call requested {n_jobs}"
        )
    return pool.sample(
        model,
        num_sets,
        rng=rng,
        eliminate_sources=eliminate_sources,
        batch_size=batch_size,
    )
