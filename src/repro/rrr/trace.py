"""Per-set sampling traces consumed by the simulated-GPU cost models.

A trace records, for every *attempted* RRR set, the work its traversal
performed (vertices activated, BFS rounds / walk steps, edges examined).
Engines charge traversal cycles for all attempted sets but storage and
selection cost only for the kept ones — exactly the accounting the
source-elimination heuristic changes (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.resilience.report import ResilienceReport


@dataclass
class SampleTrace:
    """Work statistics for one sampling run.

    All per-set arrays are aligned over *attempted* sets; ``kept_mask``
    marks which of those were stored (always all of them unless source
    elimination discarded emptied singletons).
    """

    sizes: np.ndarray  # stored size per attempted set (post-elimination)
    rounds: np.ndarray  # BFS depth (IC) or walk length (LT) per attempted set
    edges_examined: np.ndarray  # in-edges probed per attempted set
    kept_mask: np.ndarray  # bool, True where the set was stored
    raw_singletons: int  # sets of size 1 before source elimination
    sources: np.ndarray  # source vertex per attempted set
    #: recovery tally of the supervised fan-out that produced this trace
    #: (None for in-process sampling, which has nothing to recover from)
    resilience: "Optional[ResilienceReport]" = None

    @property
    def attempted(self) -> int:
        return int(self.kept_mask.size)

    @property
    def kept(self) -> int:
        return int(self.kept_mask.sum())

    @property
    def discarded_empty(self) -> int:
        return self.attempted - self.kept

    @property
    def raw_singleton_fraction(self) -> float:
        """Fraction of attempted sets that were singletons pre-elimination
        (the x-axis of the paper's Fig. 5)."""
        return self.raw_singletons / self.attempted if self.attempted else 0.0

    def total_edges_examined(self) -> int:
        return int(self.edges_examined.sum())

    def total_stored_elements(self) -> int:
        return int(self.sizes[self.kept_mask].sum())

    def merged_with(self, other: "SampleTrace") -> "SampleTrace":
        """Concatenate two traces (successive sampling phases of IMM)."""
        from repro.resilience.report import merge_reports

        return SampleTrace(
            sizes=np.concatenate([self.sizes, other.sizes]),
            rounds=np.concatenate([self.rounds, other.rounds]),
            edges_examined=np.concatenate([self.edges_examined, other.edges_examined]),
            kept_mask=np.concatenate([self.kept_mask, other.kept_mask]),
            raw_singletons=self.raw_singletons + other.raw_singletons,
            sources=np.concatenate([self.sources, other.sources]),
            resilience=merge_reports(self.resilience, other.resilience),
        )


def empty_trace() -> SampleTrace:
    """A zero-length trace (identity for :meth:`SampleTrace.merged_with`)."""
    z = np.empty(0, dtype=np.int64)
    return SampleTrace(
        sizes=z,
        rounds=z.copy(),
        edges_examined=z.copy(),
        kept_mask=np.empty(0, dtype=bool),
        raw_singletons=0,
        sources=z.copy(),
    )
