"""The RRR store: flat array R, offsets O, frequency counts C (§3.2).

Vertices within each set are kept sorted ascending — the invariant the
paper introduces so the seed-selection phase can binary-search each set
(§3.2, "we add them in ascending order by vertex ID").
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.encoding.bitpack import PackedArray, pack, required_bits
from repro.encoding.memory import MemoryReport
from repro.utils.errors import ValidationError
from repro.utils.validation import require


class RRRCollection:
    """Immutable collection of RRR sets over vertices ``0..n-1``.

    Attributes
    ----------
    flat:
        int32 array concatenating all sets (the paper's ``R``).
    offsets:
        int64 array of ``num_sets + 1`` boundaries (the paper's ``O``).
    counts:
        int64 array of per-vertex occurrence counts (the paper's ``C``).
    sources:
        Optional int64 array of the source vertex each set was rooted at
        (kept for diagnostics and post-hoc source elimination).
    """

    __slots__ = ("flat", "offsets", "counts", "n", "sources")

    def __init__(
        self, flat, offsets, n: int, sources=None, check: bool = True, counts=None
    ):
        flat = np.asarray(flat, dtype=np.int32)
        offsets = np.asarray(offsets, dtype=np.int64)
        require(offsets.size >= 1 and offsets[0] == 0, "offsets must start at 0")
        require(int(offsets[-1]) == flat.size, "offsets must end at len(flat)")
        if check and flat.size:
            if flat.min() < 0 or flat.max() >= n:
                raise ValidationError("RRR elements out of vertex range")
            if np.any(np.diff(offsets) < 0):
                raise ValidationError("offsets must be non-decreasing")
        self.flat = flat
        self.offsets = offsets
        self.n = int(n)
        self.sources = None if sources is None else np.asarray(sources, dtype=np.int64)
        if counts is None:
            # derived from scratch only when no caller knows them already:
            # concat sums the parts' counts, prefix slice-adjusts the
            # parent's, so phase top-ups never re-scan the whole store
            counts = np.bincount(flat, minlength=n).astype(np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            require(counts.size == n, "counts must have one entry per vertex")
        self.counts = counts

    # -- construction --------------------------------------------------------
    @classmethod
    def from_sets(cls, sets: Iterable, n: int, sources=None) -> "RRRCollection":
        """Build from an iterable of per-set vertex arrays (sorted on entry)."""
        arrays = [np.sort(np.asarray(s, dtype=np.int32)) for s in sets]
        sizes = np.asarray([a.size for a in arrays], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        flat = (
            np.concatenate(arrays) if arrays else np.empty(0, dtype=np.int32)
        )
        return cls(flat, offsets, n, sources=sources)

    @classmethod
    def concat(cls, parts: "list[RRRCollection]") -> "RRRCollection":
        """Concatenate collections over the same vertex universe, in order.

        The single shared implementation behind IMM's phase top-ups and
        the parallel sampler's worker merge.  ``sources`` survive only
        when every part carries them.
        """
        if not parts:
            raise ValidationError("concat requires at least one collection")
        if len(parts) == 1:
            return parts[0]
        n = parts[0].n
        if any(p.n != n for p in parts):
            raise ValidationError("cannot concat collections with different n")
        flat = np.concatenate([p.flat for p in parts])
        sizes = np.concatenate([np.diff(p.offsets) for p in parts])
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        if all(p.sources is not None for p in parts):
            sources = np.concatenate([p.sources for p in parts])
        else:
            sources = None
        # the parts' counts are already known: summing them is O(n·parts),
        # not a re-scan of every element of the concatenated store
        counts = parts[0].counts.copy()
        for p in parts[1:]:
            counts += p.counts
        return cls(flat, offsets, n, sources=sources, check=False, counts=counts)

    # -- queries -------------------------------------------------------------
    @property
    def num_sets(self) -> int:
        return self.offsets.size - 1

    @property
    def total_elements(self) -> int:
        return self.flat.size

    def sizes(self) -> np.ndarray:
        """Per-set sizes."""
        return np.diff(self.offsets)

    def set_at(self, i: int) -> np.ndarray:
        """The sorted vertex array of set ``i``."""
        return self.flat[self.offsets[i] : self.offsets[i + 1]]

    def singleton_fraction(self) -> float:
        """Fraction of sets containing exactly one vertex (§3.4)."""
        if self.num_sets == 0:
            return 0.0
        return float(np.mean(self.sizes() == 1))

    def empty_fraction(self) -> float:
        """Fraction of zero-length sets."""
        if self.num_sets == 0:
            return 0.0
        return float(np.mean(self.sizes() == 0))

    def prefix(self, num_sets: int) -> "RRRCollection":
        """A view-like collection over the first ``num_sets`` sets.

        Used by the Fig. 3 scaling experiment: one large sample is drawn
        once, then truncated to each sweep point.
        """
        if num_sets < 0 or num_sets > self.num_sets:
            raise ValidationError(
                f"prefix of {num_sets} sets out of range (have {self.num_sets})"
            )
        end = int(self.offsets[num_sets])
        sources = None if self.sources is None else self.sources[:num_sets]
        dropped = self.flat.size - end
        if dropped == 0:
            counts = self.counts
        elif dropped <= end:
            # slice-adjust: subtract the dropped suffix from the known
            # counts instead of re-scanning the (larger) kept prefix
            counts = self.counts - np.bincount(self.flat[end:], minlength=self.n)
        else:
            counts = None  # suffix dominates; a fresh bincount is cheaper
        return RRRCollection(
            self.flat[:end], self.offsets[: num_sets + 1], self.n,
            sources=sources, check=False, counts=counts,
        )

    def sets_containing(self, v: int) -> np.ndarray:
        """Ids of sets that contain vertex ``v`` (vectorized membership).

        Host-side equivalent of Alg. 3's per-set binary search: positions
        of ``v`` in the flat store are mapped back to set ids through the
        offset array.
        """
        positions = np.flatnonzero(self.flat == v)
        return np.searchsorted(self.offsets, positions, side="right") - 1

    def coverage(self, seed_set) -> float:
        """Fraction of sets intersecting ``seed_set`` (IMM's F_R(S))."""
        if self.num_sets == 0:
            return 0.0
        seeds = np.unique(np.asarray(seed_set, dtype=np.int64))
        member = np.isin(self.flat, seeds)
        covered_sets = np.unique(
            np.searchsorted(self.offsets, np.flatnonzero(member), side="right") - 1
        )
        return covered_sets.size / self.num_sets

    # -- memory accounting -----------------------------------------------------
    def nbytes_raw(self) -> int:
        """Bytes of the unpacked device layout: 32-bit R elements, 64-bit
        offsets, 32-bit counts (the baselines' representation)."""
        return 4 * self.total_elements + 8 * (self.num_sets + 1) + 4 * self.n

    def packed(self, container_bits: int = 32) -> tuple[PackedArray, PackedArray]:
        """Log-encode R and O; returns ``(packed_R, packed_O)``."""
        r_bits = required_bits(max(self.n - 1, 0))
        o_bits = required_bits(max(self.total_elements, 1))
        return (
            pack(self.flat, n_bits=r_bits, container_bits=container_bits),
            pack(self.offsets, n_bits=o_bits, container_bits=container_bits),
        )

    def nbytes_packed(self, container_bits: int = 32) -> int:
        """Bytes of the log-encoded layout (counts stay unpacked: they are
        mutated by atomics during selection)."""
        packed_r, packed_o = self.packed(container_bits)
        return packed_r.nbytes_packed + packed_o.nbytes_packed + 4 * self.n

    def memory_report(self, container_bits: int = 32) -> MemoryReport:
        """Raw vs packed byte comparison for the RRR store (Fig. 4)."""
        return MemoryReport("rrr", self.nbytes_raw(), self.nbytes_packed(container_bits))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RRRCollection(num_sets={self.num_sets}, elements={self.total_elements}, "
            f"n={self.n})"
        )


class RRRBuilder:
    """Accumulates sampler batches and finalizes into an :class:`RRRCollection`.

    The streaming analogue of Alg. 2's atomic-offset append: each batch
    arrives as an already-sorted flat segment plus per-set sizes.
    """

    def __init__(self, n: int):
        self.n = int(n)
        self._flat_chunks: list[np.ndarray] = []
        self._size_chunks: list[np.ndarray] = []
        self._source_chunks: list[np.ndarray] = []
        self._num_sets = 0

    @property
    def num_sets(self) -> int:
        return self._num_sets

    def append_batch(self, flat: np.ndarray, sizes: np.ndarray, sources: np.ndarray) -> None:
        """Append one sampler batch (flat already sid-major/vertex-sorted)."""
        if int(sizes.sum()) != flat.size:
            raise ValidationError("batch sizes do not sum to flat length")
        if sizes.size != sources.size:
            raise ValidationError("one source per set required")
        self._flat_chunks.append(np.asarray(flat, dtype=np.int32))
        self._size_chunks.append(np.asarray(sizes, dtype=np.int64))
        self._source_chunks.append(np.asarray(sources, dtype=np.int64))
        self._num_sets += sizes.size

    def truncate_to(self, num_sets: int) -> None:
        """Drop sets beyond ``num_sets`` (overshoot of the final batch)."""
        if num_sets >= self._num_sets:
            return
        keep = num_sets
        new_flat, new_sizes, new_sources = [], [], []
        for flat, sizes, sources in zip(
            self._flat_chunks, self._size_chunks, self._source_chunks
        ):
            if keep <= 0:
                break
            take = min(keep, sizes.size)
            elem = int(sizes[:take].sum())
            new_flat.append(flat[:elem])
            new_sizes.append(sizes[:take])
            new_sources.append(sources[:take])
            keep -= take
        self._flat_chunks, self._size_chunks = new_flat, new_sizes
        self._source_chunks = new_sources
        self._num_sets = num_sets

    def finalize(self) -> RRRCollection:
        """Concatenate all batches into the final collection."""
        flat = (
            np.concatenate(self._flat_chunks)
            if self._flat_chunks
            else np.empty(0, dtype=np.int32)
        )
        sizes = (
            np.concatenate(self._size_chunks)
            if self._size_chunks
            else np.empty(0, dtype=np.int64)
        )
        sources = (
            np.concatenate(self._source_chunks)
            if self._source_chunks
            else np.empty(0, dtype=np.int64)
        )
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        return RRRCollection(flat, offsets, self.n, sources=sources, check=False)
