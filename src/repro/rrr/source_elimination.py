"""Post-hoc source-vertex elimination (§3.4), for ablation studies.

The samplers apply elimination inline (discarding emptied sets before they
count toward theta, which is where the speedup comes from); this module
applies the same transform to an already-built collection so Figs. 5-6 can
compare identical samples with and without the heuristic.
"""

from __future__ import annotations

import numpy as np

from repro.rrr.collection import RRRCollection
from repro.utils.errors import ValidationError


def eliminate_sources_post_hoc(
    collection: RRRCollection, drop_empty: bool = True
) -> RRRCollection:
    """Strip each set's source vertex; optionally drop emptied sets.

    Requires the collection to carry per-set sources (samplers record
    them).  Sets stay sorted because removing one element preserves order.
    """
    if collection.sources is None:
        raise ValidationError("collection does not record per-set sources")
    sizes = collection.sizes()
    set_of_elem = np.repeat(np.arange(collection.num_sets, dtype=np.int64), sizes)
    source_of_elem = collection.sources[set_of_elem]
    keep_elem = collection.flat != source_of_elem.astype(np.int32)
    new_flat = collection.flat[keep_elem]
    new_sizes = np.bincount(
        set_of_elem[keep_elem], minlength=collection.num_sets
    )
    new_sources = collection.sources
    if drop_empty:
        kept_sets = new_sizes > 0
        keep_elem2 = kept_sets[np.repeat(np.arange(collection.num_sets), new_sizes)]
        new_flat = new_flat[keep_elem2]
        new_sizes = new_sizes[kept_sets]
        new_sources = collection.sources[kept_sets]
    offsets = np.concatenate([[0], np.cumsum(new_sizes)])
    return RRRCollection(new_flat, offsets, collection.n, sources=new_sources, check=False)
