"""Distributional analysis of RRR collections.

The paper's §3.4/§4.3 reasoning runs on properties of the *distribution*
of RRR sets — the singleton share, how heavy the size tail is, how
coverage concentrates on few vertices.  This module computes those
summaries for diagnostics, for the Fig. 5/6 analyses, and for tests that
assert the samplers produce the distributions the theory predicts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rrr.collection import RRRCollection
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class CollectionStatistics:
    """Summary of one RRR collection."""

    num_sets: int
    total_elements: int
    mean_size: float
    median_size: float
    max_size: int
    singleton_fraction: float
    empty_fraction: float
    size_p99: float
    distinct_vertices: int
    top_vertex_coverage: float  # fraction of sets hit by the best vertex


def collection_statistics(collection: RRRCollection) -> CollectionStatistics:
    """Compute the full summary for ``collection``."""
    if collection.num_sets == 0:
        raise ValidationError("statistics of an empty collection")
    sizes = collection.sizes()
    counts = collection.counts
    return CollectionStatistics(
        num_sets=collection.num_sets,
        total_elements=collection.total_elements,
        mean_size=float(sizes.mean()),
        median_size=float(np.median(sizes)),
        max_size=int(sizes.max()),
        singleton_fraction=collection.singleton_fraction(),
        empty_fraction=collection.empty_fraction(),
        size_p99=float(np.percentile(sizes, 99)),
        distinct_vertices=int(np.count_nonzero(counts)),
        top_vertex_coverage=float(counts.max()) / collection.num_sets,
    )


def size_histogram(
    collection: RRRCollection, bins: int = 16
) -> tuple[np.ndarray, np.ndarray]:
    """Log-spaced histogram of set sizes: ``(bin_edges, counts)``.

    Log spacing because IC at the critical branching factor produces a
    heavy-tailed size distribution — the tail is exactly what drives
    gIM's shared-memory spills and the paper's OOM behaviour.
    """
    if collection.num_sets == 0:
        raise ValidationError("histogram of an empty collection")
    sizes = np.maximum(collection.sizes(), 1)
    edges = np.unique(
        np.logspace(0, np.log10(max(sizes.max(), 2)), bins + 1).astype(np.int64)
    )
    counts, _ = np.histogram(sizes, bins=edges)
    return edges, counts


def coverage_concentration(collection: RRRCollection, top_k: int = 50) -> np.ndarray:
    """Cumulative fraction of sets covered by the top 1..top_k vertices
    when taken greedily by raw count (no marginal updates).

    A fast proxy for how quickly greedy coverage saturates — high
    concentration predicts fast IMM convergence.
    """
    if collection.num_sets == 0:
        raise ValidationError("concentration of an empty collection")
    top_k = min(top_k, collection.n)
    # stable sort on the negated key: tied counts keep ascending vertex
    # order (reversing a stable ascending sort would put the *highest*
    # id first, contradicting the lowest-id convention selection uses)
    order = np.argsort(-collection.counts, kind="stable")[:top_k]
    covered = np.zeros(collection.num_sets, dtype=bool)
    out = np.empty(top_k, dtype=np.float64)
    for i, v in enumerate(order):
        covered[collection.sets_containing(int(v))] = True
        out[i] = covered.mean()
    return out
