"""Reverse-reachable set sampling under the LT model (§3.3, host analogue).

Under LT the reverse process is a *walk*, not a BFS: a dequeued vertex
``u`` draws a threshold ``tau_u ~ U(0,1)`` and activates at most one
in-neighbor — the first whose inclusive prefix-sum of edge weights crosses
``tau_u`` (exactly what the device computes with a ``__shfl_up_sync`` warp
scan).  With probability ``1 - sum_w(u)`` no neighbor crosses and the walk
stops; it also stops on revisiting a vertex already in the set.

Vectorization: all walks advance one step per round.  Neighbor selection
for every walk is a *single* ``np.searchsorted`` over a globally sorted
array ``g[e] = target(e) + cum_w(e) / W(target(e))`` — each vertex's
segment occupies ``(v, v+1]``, so querying ``u + tau/W(u)`` lands on the
first crossing edge of ``u``'s own segment.  That array depends only on
the graph, so it is memoized per content fingerprint (store top-ups and
k/eps sweeps build it once).

Visited bookkeeping mirrors the IC sampler's ``visited_mode``: the
``sorted`` path keeps the key array merged incrementally (the same
gap-stream merge, since per-round new keys are already sorted and
unique), the ``bitset`` path keeps a dense :class:`VisitedPlane`; both
draw thresholds in the same order and are bit-identical.
"""

from __future__ import annotations

import threading

import numpy as np

from repro import obs
from repro.graphs.csc import DirectedGraph
from repro.kernels import VisitedPlane, choose_visited_impl
from repro.rrr.collection import RRRBuilder, RRRCollection
from repro.rrr.sampler_ic import MAX_ATTEMPT_FACTOR, _flatten_kept, _strip_sources
from repro.rrr.trace import SampleTrace, empty_trace
from repro.utils.errors import ValidationError
from repro.utils.rng import as_generator

#: memoized selection indices, keyed by graph content fingerprint; small
#: and bounded — an index is one float64 per edge
_INDEX_CACHE_LIMIT = 8
_INDEX_CACHE: dict[str, np.ndarray] = {}
_INDEX_CACHE_LOCK = threading.Lock()


def _build_selection_index(graph: DirectedGraph) -> np.ndarray:
    """The globally sorted query array ``g`` described in the module docs.

    Segments of vertices with zero total in-weight are filled with a
    uniform ascending ramp so global sortedness holds; such vertices are
    never queried because their walks stop first (tau > 0 > W).
    """
    deg = graph.in_degrees()
    cumw = graph.in_weight_cumsum()
    totals = graph.total_in_weight()
    target = np.repeat(np.arange(graph.n, dtype=np.float64), deg)
    seg_total = np.repeat(totals, deg)
    with np.errstate(divide="ignore", invalid="ignore"):
        norm = np.where(seg_total > 0.0, cumw / seg_total, 0.0)
    zero_seg = seg_total == 0.0
    if np.any(zero_seg):
        # uniform in-segment ramp keeps (v, v+1] ordering for never-queried segments
        within_rank = np.arange(graph.m, dtype=np.float64) - np.repeat(
            graph.indptr[:-1].astype(np.float64), deg
        )
        seg_deg = np.repeat(deg.astype(np.float64), deg)
        norm[zero_seg] = (within_rank[zero_seg] + 1.0) / seg_deg[zero_seg]
    return target + norm


def _selection_index(graph: DirectedGraph) -> np.ndarray:
    """Fetch (or build and cache) the graph's selection index."""
    key = graph.fingerprint()
    with _INDEX_CACHE_LOCK:
        cached = _INDEX_CACHE.get(key)
    if cached is not None:
        obs.counter_add("rrr.lt_index.reused", 1)
        return cached
    index = _build_selection_index(graph)
    with _INDEX_CACHE_LOCK:
        if key not in _INDEX_CACHE:
            if len(_INDEX_CACHE) >= _INDEX_CACHE_LIMIT:
                # drop the oldest entry; sweeps touch one or two graphs
                _INDEX_CACHE.pop(next(iter(_INDEX_CACHE)))
            _INDEX_CACHE[key] = index
        obs.counter_add("rrr.lt_index.built", 1)
    return index


def clear_selection_indices() -> None:
    """Drop every memoized LT selection index (test/teardown hook)."""
    with _INDEX_CACHE_LOCK:
        _INDEX_CACHE.clear()


def _walk_batch(
    graph: DirectedGraph,
    sources: np.ndarray,
    gen: np.random.Generator,
    selection_index: np.ndarray,
    visited_impl: str = "sorted",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Lockstep LT reverse walks for one batch of sources.

    Returns ``(visited_keys_sorted, sizes, rounds, edges_examined)``.
    Threshold draws depend only on the set of live walks, which both
    ``visited_impl`` choices filter identically.
    """
    n = graph.n
    batch = sources.size
    indptr = graph.indptr
    indices = graph.indices
    deg = graph.in_degrees()
    totals = graph.total_in_weight()

    sid = np.arange(batch, dtype=np.int64)
    use_plane = visited_impl == "bitset"
    if use_plane:
        plane = VisitedPlane(batch, n)
        plane.set_rowwise_unique(sid, sources)
        visited = None
    else:
        plane = None
        visited = np.sort(sid * n + sources)
    walk_sid, walk_v = sid, sources.copy()
    rounds = np.zeros(batch, dtype=np.int64)
    edges = np.zeros(batch, dtype=np.int64)
    max_steps = n + 1  # a walk revisits within n distinct vertices

    for _ in range(max_steps):
        if walk_sid.size == 0:
            break
        rounds[walk_sid] += 1
        edges[walk_sid] += deg[walk_v]
        tau = gen.random(walk_sid.size)
        alive = (deg[walk_v] > 0) & (tau <= totals[walk_v])
        if not alive.any():
            break
        walk_sid, walk_v, tau = walk_sid[alive], walk_v[alive], tau[alive]
        # first in-neighbor whose inclusive prefix sum crosses tau
        query = walk_v + tau / totals[walk_v]
        pos = np.searchsorted(selection_index, query, side="left")
        pos = np.minimum(pos, indptr[walk_v + 1] - 1)  # numeric guard at tau ~ W
        chosen = indices[pos].astype(np.int64)
        if use_plane:
            # walk_sid is strictly increasing and each row appears once,
            # so the membership gather and direct OR-scatter are exact
            fresh = ~plane.test(walk_sid, chosen)
            plane.set_rowwise_unique(walk_sid[fresh], chosen[fresh])
        else:
            keys = walk_sid * n + chosen
            ins = np.searchsorted(visited, keys)
            ins_clipped = np.minimum(ins, visited.size - 1)
            fresh = visited[ins_clipped] != keys
            new_keys = keys[fresh]
            if new_keys.size:
                # new_keys is sorted/unique (walk sids strictly increase)
                # and disjoint from visited: same gap-stream merge as the
                # IC sampler instead of the old concatenate-and-sort
                target = ins[fresh] + np.arange(new_keys.size, dtype=np.int64)
                merged = np.empty(visited.size + new_keys.size, dtype=np.int64)
                merged[target] = new_keys
                keep = np.ones(merged.size, dtype=bool)
                keep[target] = False
                merged[keep] = visited
                visited = merged
        # walks whose chosen vertex was already visited terminate here
        walk_sid, walk_v = walk_sid[fresh], chosen[fresh]

    if use_plane:
        visited = plane.extract_keys()
        sizes = plane.sizes()
    else:
        sizes = np.bincount(visited // n, minlength=batch)
    return visited, sizes, rounds, edges


def sample_rrr_lt(
    graph: DirectedGraph,
    num_sets: int,
    rng=None,
    eliminate_sources: bool = False,
    batch_size: int = 16384,
    visited_mode: str | None = None,
) -> tuple[RRRCollection, SampleTrace]:
    """Sample ``num_sets`` LT RRR sets; mirrors :func:`sample_rrr_ic`'s API."""
    if graph.weights is None:
        raise ValidationError("sample_rrr_lt requires LT edge weights")
    if num_sets < 0:
        raise ValidationError("num_sets must be non-negative")
    gen = as_generator(rng)
    selection_index = _selection_index(graph)
    builder = RRRBuilder(graph.n)
    trace_chunks: list[SampleTrace] = []
    attempts = 0
    raw_singletons = 0

    while builder.num_sets < num_sets:
        remaining = num_sets - builder.num_sets
        batch = int(min(batch_size, max(remaining, 256)))
        if attempts > MAX_ATTEMPT_FACTOR * max(num_sets, 1) + 1024:
            raise ValidationError(
                "source elimination discarded nearly every set "
                f"(attempted {attempts} for {num_sets})"
            )
        impl = choose_visited_impl(visited_mode, batch, graph.n)
        sources = gen.integers(0, graph.n, size=batch, dtype=np.int64)
        with obs.span("rrr.batch.lt"):
            visited, sizes, rounds, edges = _walk_batch(
                graph, sources, gen, selection_index, visited_impl=impl
            )
        attempts += batch
        raw_singletons += int(np.sum(sizes == 1))
        if obs.enabled():  # guard the argument-side sums, not just the sink
            obs.counter_add("rrr.sets_attempted", batch)
            obs.counter_add("rrr.edges_examined", int(edges.sum()))
            obs.observe("rrr.batch_size", batch)
        if eliminate_sources:
            visited, sizes = _strip_sources(visited, sources, graph.n)
            kept_mask = sizes > 0
        else:
            kept_mask = np.ones(batch, dtype=bool)
        flat = _flatten_kept(visited, kept_mask, graph.n)
        builder.append_batch(flat, sizes[kept_mask], sources[kept_mask])
        if obs.enabled():
            kept = int(kept_mask.sum())
            obs.counter_add("rrr.sets_kept", kept)
            obs.counter_add("rrr.sets_discarded", batch - kept)
        trace_chunks.append(
            SampleTrace(
                sizes=sizes,
                rounds=rounds,
                edges_examined=edges,
                kept_mask=kept_mask,
                raw_singletons=0,
                sources=sources,
            )
        )

    builder.truncate_to(num_sets)
    collection = builder.finalize()
    obs.counter_add("rrr.sets_sampled", collection.num_sets)
    trace = empty_trace()
    for chunk in trace_chunks:
        trace = trace.merged_with(chunk)
    trace.raw_singletons = raw_singletons
    return collection, trace
