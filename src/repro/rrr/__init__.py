"""Random reverse-reachable (RRR) set machinery.

The RRR store mirrors the paper's device layout (§3.2, Fig. 2): one flat
array ``R`` holding every set's vertices (ascending within each set), an
offset array ``O`` marking set boundaries, and a frequency array ``C``
counting how many sets each vertex appears in.  Samplers generate sets in
vectorized lockstep batches — the host-side analogue of the one-warp-per-
block kernels — and return per-set traces the GPU cost models consume.
"""

from repro.rrr.collection import RRRBuilder, RRRCollection
from repro.rrr.sampler_ic import sample_rrr_ic
from repro.rrr.sampler_lt import sample_rrr_lt
from repro.rrr.source_elimination import eliminate_sources_post_hoc
from repro.rrr.statistics import (
    CollectionStatistics,
    collection_statistics,
    coverage_concentration,
    size_histogram,
)
from repro.rrr.trace import SampleTrace

__all__ = [
    "CollectionStatistics",
    "RRRBuilder",
    "RRRCollection",
    "RRRStore",
    "SamplerPool",
    "SampleTrace",
    "clear_selection_indices",
    "collection_statistics",
    "coverage_concentration",
    "eliminate_sources_post_hoc",
    "sample_rrr_ic",
    "sample_rrr_lt",
    "sample_rrr_parallel",
    "shared_pool",
    "shared_store",
    "size_histogram",
]


def __getattr__(name: str):
    # SamplerPool/shared_pool pull in concurrent.futures and RRRStore
    # builds on them; resolve lazily so the multiprocessing machinery
    # stays out of the import path of single-process users.
    if name in ("SamplerPool", "shared_pool", "shutdown_pools"):
        from repro.rrr import parallel

        return getattr(parallel, name)
    if name in ("RRRStore", "shared_store", "clear_stores"):
        from repro.rrr import store

        return getattr(store, name)
    if name == "clear_selection_indices":
        from repro.rrr.sampler_lt import clear_selection_indices

        return clear_selection_indices
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def sample_rrr_parallel(*args, **kwargs):
    """Process-parallel sampling; see :mod:`repro.rrr.parallel`.

    Imported lazily so the multiprocessing machinery stays out of the
    import path of single-process users.
    """
    from repro.rrr.parallel import sample_rrr_parallel as _impl

    return _impl(*args, **kwargs)


def get_sampler(model: str):
    """Return the RRR sampler for ``model`` ("IC" or "LT")."""
    from repro.utils.errors import ValidationError

    model = model.upper()
    if model == "IC":
        return sample_rrr_ic
    if model == "LT":
        return sample_rrr_lt
    raise ValidationError(f"unknown diffusion model {model!r}; choose IC or LT")
