"""Reverse-reachable set sampling under the IC model (Alg. 2, host analogue).

An RRR set rooted at a uniformly random source ``s`` contains every vertex
reached by a probabilistic reverse BFS: from each dequeued vertex ``u``,
in-neighbor ``v`` is activated independently with probability ``p_vu``.

The implementation runs a *batch* of independent traversals in lockstep —
one NumPy round expands the frontiers of every unfinished set at once —
which is the host-side mirror of the paper's one-warp-per-block kernel.

Visited bookkeeping has two interchangeable implementations, selected by
``visited_mode``:

* ``sorted`` — per-set keys ``sid * n + v`` in a single sorted array,
  deduped per round with ``searchsorted`` plus a linear gap-stream merge;
  because that array is sid-major / vertex-ascending, the final flat
  store comes out in exactly the paper's sorted-per-set layout for free.
* ``bitset`` — a dense ``(batch x n)``-bit :class:`VisitedPlane` (the
  host mirror of the device's visited bitmask ``M``): membership and
  insertion are one word gather / OR-scatter per candidate, and the
  plane decodes to the identical sorted key stream at batch end.

Both paths draw from the generator in exactly the same order — every
draw happens on the *pre-dedup* frontier expansion — so collections and
traces are bit-identical; ``auto`` picks the bitset plane whenever it
fits the kernel memory budget.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.graphs.csc import DirectedGraph
from repro.kernels import VisitedPlane, choose_visited_impl
from repro.rrr.collection import RRRBuilder, RRRCollection
from repro.rrr.trace import SampleTrace
from repro.utils.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.segments import segmented_arange

#: Refuse to keep attempting sets past this multiple of the request — the
#: source-elimination loop would otherwise spin forever on an edgeless graph.
MAX_ATTEMPT_FACTOR = 64


def _reverse_bfs_batch(
    graph: DirectedGraph,
    sources: np.ndarray,
    gen: np.random.Generator,
    visited_impl: str = "sorted",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Lockstep reverse BFS for one batch of sources.

    Returns ``(visited_keys_sorted, sizes, rounds, edges_examined)`` where
    keys are ``sid * n + v`` and all per-set arrays have batch length.

    ``visited_impl`` switches only the dedup/membership bookkeeping; the
    frontier contents (and therefore every RNG draw) are identical under
    both, which is what keeps the modes bit-identical.
    """
    n = graph.n
    batch = sources.size
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    sid = np.arange(batch, dtype=np.int64)
    use_plane = visited_impl == "bitset"
    if use_plane:
        plane = VisitedPlane(batch, n)
        plane.set_rowwise_unique(sid, sources)
        visited = None
    else:
        plane = None
        visited = np.sort(sid * n + sources)
    frontier_sid, frontier_v = sid, sources
    rounds = np.zeros(batch, dtype=np.int64)
    edges = np.zeros(batch, dtype=np.int64)

    while frontier_sid.size:
        # sets with a live frontier advance one round: a bincount mask
        # instead of fancy-indexing through np.unique (no sort)
        rounds += np.bincount(frontier_sid, minlength=batch) > 0
        starts = indptr[frontier_v]
        lengths = indptr[frontier_v + 1] - starts
        edge_idx = segmented_arange(starts, lengths)
        if edge_idx.size == 0:
            break
        e_sid = np.repeat(frontier_sid, lengths)
        edges += np.bincount(e_sid, minlength=batch)
        e_v = indices[edge_idx].astype(np.int64)
        hit = gen.random(edge_idx.size) <= weights[edge_idx]
        c_keys = e_sid[hit] * n + e_v[hit]
        if c_keys.size == 0:
            break
        c_keys = np.unique(c_keys)  # dedup within the round
        if use_plane:
            c_sid, c_v = np.divmod(c_keys, n)
            new_keys = c_keys[~plane.test(c_sid, c_v)]
            if new_keys.size == 0:
                break
            frontier_sid, frontier_v = np.divmod(new_keys, n)
            # ascending keys -> non-decreasing word indices for the scatter
            plane.set_sorted_keys(frontier_sid, frontier_v)
        else:
            pos = np.searchsorted(visited, c_keys)
            probe = np.minimum(pos, visited.size - 1)
            is_new = visited[probe] != c_keys
            new_keys = c_keys[is_new]
            if new_keys.size == 0:
                break
            # visited and new_keys are sorted and disjoint: scatter each new
            # key at its insertion offset and stream the old array into the
            # gaps — an O(|visited| + |new|) merge replacing the former
            # O(total log total) concatenate-and-sort
            target = pos[is_new] + np.arange(new_keys.size, dtype=np.int64)
            merged = np.empty(visited.size + new_keys.size, dtype=np.int64)
            merged[target] = new_keys
            keep = np.ones(merged.size, dtype=bool)
            keep[target] = False
            merged[keep] = visited
            visited = merged
            frontier_sid, frontier_v = np.divmod(new_keys, n)

    if use_plane:
        visited = plane.extract_keys()
        sizes = plane.sizes()
    else:
        sizes = np.bincount(visited // n, minlength=batch)
    return visited, sizes, rounds, edges


def _strip_sources(
    visited: np.ndarray, sources: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Remove each set's source key from the sorted visited array."""
    batch = sources.size
    source_keys = np.arange(batch, dtype=np.int64) * n + sources
    keep = np.ones(visited.size, dtype=bool)
    pos = np.searchsorted(visited, source_keys)
    keep[pos] = False  # sources are always present in their own set
    stripped = visited[keep]
    sizes = np.bincount(stripped // n, minlength=batch)
    return stripped, sizes


def _flatten_kept(
    visited: np.ndarray, kept_mask: np.ndarray, n: int
) -> np.ndarray:
    """Per-set vertex ids of the kept sets, as the int32 flat store."""
    if kept_mask.all():
        return (visited % n).astype(np.int32)
    # one divmod pass yields both the per-element set id (for the kept
    # filter) and the vertex id (for the store)
    set_of_elem, flat_v = np.divmod(visited, n)
    return flat_v[kept_mask[set_of_elem]].astype(np.int32)


def sample_rrr_ic(
    graph: DirectedGraph,
    num_sets: int,
    rng=None,
    eliminate_sources: bool = False,
    batch_size: int = 16384,
    visited_mode: str | None = None,
) -> tuple[RRRCollection, SampleTrace]:
    """Sample ``num_sets`` IC RRR sets (kept sets, post source elimination).

    With ``eliminate_sources`` (§3.4) the source vertex is stripped from
    every set and sets that become empty — exactly the former singletons —
    are discarded and do not count toward ``num_sets``; their traversal
    work still appears in the returned trace, which is what they cost the
    device.

    ``visited_mode`` is operational only (``auto``/``sorted``/``bitset``;
    default resolves via ``REPRO_VISITED_MODE``): every mode returns
    bit-identical collections and traces.
    """
    if graph.weights is None:
        raise ValidationError("sample_rrr_ic requires IC edge weights")
    if num_sets < 0:
        raise ValidationError("num_sets must be non-negative")
    gen = as_generator(rng)
    builder = RRRBuilder(graph.n)
    trace_chunks: list[SampleTrace] = []
    attempts = 0
    raw_singletons = 0

    while builder.num_sets < num_sets:
        remaining = num_sets - builder.num_sets
        batch = int(min(batch_size, max(remaining, 256)))
        if attempts > MAX_ATTEMPT_FACTOR * max(num_sets, 1) + 1024:
            raise ValidationError(
                "source elimination discarded nearly every set "
                f"(attempted {attempts} for {num_sets}); the graph has too "
                "few edges for the requested sampling"
            )
        impl = choose_visited_impl(visited_mode, batch, graph.n)
        sources = gen.integers(0, graph.n, size=batch, dtype=np.int64)
        with obs.span("rrr.batch.ic"):
            visited, sizes, rounds, edges = _reverse_bfs_batch(
                graph, sources, gen, visited_impl=impl
            )
        attempts += batch
        raw_singletons += int(np.sum(sizes == 1))
        if obs.enabled():  # guard the argument-side sums, not just the sink
            obs.counter_add("rrr.sets_attempted", batch)
            obs.counter_add("rrr.edges_examined", int(edges.sum()))
            obs.observe("rrr.batch_size", batch)
        if eliminate_sources:
            visited, sizes = _strip_sources(visited, sources, graph.n)
            kept_mask = sizes > 0
        else:
            kept_mask = np.ones(batch, dtype=bool)
        # drop discarded sets from the store but keep them in the trace
        flat = _flatten_kept(visited, kept_mask, graph.n)
        builder.append_batch(flat, sizes[kept_mask], sources[kept_mask])
        if obs.enabled():
            kept = int(kept_mask.sum())
            obs.counter_add("rrr.sets_kept", kept)
            obs.counter_add("rrr.sets_discarded", batch - kept)
        trace_chunks.append(
            SampleTrace(
                sizes=sizes,
                rounds=rounds,
                edges_examined=edges,
                kept_mask=kept_mask,
                raw_singletons=int(np.sum(sizes == 1) if not eliminate_sources else 0),
                sources=sources,
            )
        )

    builder.truncate_to(num_sets)
    collection = builder.finalize()
    obs.counter_add("rrr.sets_sampled", collection.num_sets)
    from repro.rrr.trace import empty_trace

    trace = empty_trace()
    for chunk in trace_chunks:
        trace = trace.merged_with(chunk)
    trace.raw_singletons = raw_singletons
    return collection, trace
