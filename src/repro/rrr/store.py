"""Warm-start RRR store: grow a sample once, serve every θ as a prefix.

The IMM martingale analysis (Tang et al. 2015) is exactly what makes
RRR-sample reuse sound: the algorithm only ever needs "the first θ sets
of a fixed random stream", for a θ that grows within a run *and across
the runs of a k/ε sweep*.  The tables drivers used to resample from
scratch for every (k, ε) cell — O(Σθᵢ) sampling for a sweep whose
information content is O(max θᵢ).

:class:`RRRStore` materializes that stream incrementally, in chunks.
Chunk ``j`` is always drawn from the stream
``SeedSequence(entropy, spawn_key=(j,))`` and always holds
``chunk_sets << min(j, _CHUNK_DOUBLINGS)`` kept sets — both pure
functions of ``j`` — so the first θ sets are a deterministic function
of the store key alone, independent of the ``ensure`` call pattern.
Cached-then-topped-up and freshly-grown stores with the same key agree
bit for bit on every shared prefix.

The identity of a stream is its :func:`store_key`:
``(graph fingerprint, model, eliminate_sources, entropy, n_jobs,
chunk_sets, batch_size)`` — everything that shapes either the draws or
their consumption order.  :func:`shared_store` keeps one store per key
for the whole process so sweep drivers (and user code) transparently
share samples.  The data plane is *not* part of the key: planes are
bit-identical by contract, so a store grown on one plane and topped up
on the other still serves one coherent stream.

On the ``shm`` data plane (:mod:`repro.shm`) a store with ``n_jobs>1``
backs its chunks with a shared-memory :class:`~repro.shm.arena.ChunkArena`:
packed worker payloads decode straight into arena segments, so the
warm-start cache itself lives in shared pages rather than private heap.

With a ``checkpoint_dir`` every completed chunk is persisted
(:mod:`repro.resilience.checkpoint`), keyed by the same identity tuple:
a killed sweep re-run with the same directory loads its prefix from
disk — after verifying the fingerprint/entropy key — and only tops up
the deficit.  Because chunks are pure functions of ``(key, j)``, a
resumed store is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import atexit
import shutil
import tempfile
import threading
import weakref
from pathlib import Path
from typing import Optional

import numpy as np

from repro import obs
from repro.graphs.csc import DirectedGraph
from repro.memory.budget import governor
from repro.memory.tiers import COMPRESSED, HOT, TieredChunk, chunk_nbytes
from repro.resilience.deadline import active_deadline
from repro.resilience.options import ResilienceOptions
from repro.rrr.collection import RRRCollection
from repro.rrr.parallel import SamplerPool
from repro.rrr.trace import SampleTrace, empty_trace
from repro.utils.errors import ValidationError

#: the governor account the store's concatenated prefix cache reports under
CONCAT_ACCOUNT = "rrr.concat"

#: chunk sizes double this many times (then stay flat) so huge θ requests
#: need O(log θ) chunks early on without unbounded overshoot later
_CHUNK_DOUBLINGS = 6


def _normalize_entropy(entropy) -> tuple[int, ...]:
    """Entropy as a hashable tuple of non-negative ints."""
    if isinstance(entropy, (int, np.integer)):
        entropy = (int(entropy),)
    try:
        out = tuple(int(e) for e in entropy)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"entropy must be an int or an iterable of ints, got {entropy!r}"
        ) from exc
    if not out or any(e < 0 for e in out):
        raise ValidationError("entropy must contain at least one int >= 0")
    return out


class RRRStore:
    """An append-only RRR sample for one (graph, model, stream) triple.

    :meth:`ensure` returns the first ``theta`` sets (and the matching
    per-set trace) of the store's stream, sampling only what is not yet
    cached.  All chunks are kept, so successive calls with growing θ —
    IMM's estimation phases, or a whole k-sweep — pay each set's
    traversal exactly once.
    """

    def __init__(
        self,
        graph: DirectedGraph,
        model: str = "IC",
        eliminate_sources: bool = False,
        entropy=0,
        n_jobs: int = 1,
        pool: Optional[SamplerPool] = None,
        chunk_sets: int = 4096,
        batch_size: int = 16384,
        checkpoint_dir=None,
        resilience: Optional[ResilienceOptions] = None,
        data_plane: Optional[str] = None,
        visited_mode: Optional[str] = None,
    ):
        if graph.weights is None:
            raise ValidationError("RRRStore requires a weighted graph")
        if chunk_sets < 1:
            raise ValidationError("chunk_sets must be >= 1")
        if n_jobs < 1:
            raise ValidationError("n_jobs must be >= 1")
        if pool is not None and pool.n_jobs != n_jobs:
            raise ValidationError(
                f"pool has n_jobs={pool.n_jobs}, store requested {n_jobs}"
            )
        self.graph = graph
        self.model = str(model).upper()
        self.eliminate_sources = bool(eliminate_sources)
        self.entropy = _normalize_entropy(entropy)
        self.n_jobs = int(n_jobs)
        self.chunk_sets = int(chunk_sets)
        self.batch_size = int(batch_size)
        self.resilience = resilience
        from repro.shm.segments import resolve_data_plane

        # operational knob like checkpoint_dir — planes are
        # bit-identical, so it stays out of key()
        self.data_plane = resolve_data_plane(data_plane)
        from repro.kernels import resolve_visited_mode

        # same contract: every visited mode draws the same stream
        self.visited_mode = resolve_visited_mode(visited_mode)
        self._arena = None  # lazy ChunkArena (shm plane, n_jobs > 1)
        if checkpoint_dir is None and resilience is not None:
            checkpoint_dir = resilience.checkpoint_dir
        # each store nests its own key-digest subdirectory, so one base
        # dir safely holds every stream of a sweep
        self._checkpoint_dir: Optional[Path] = None
        if checkpoint_dir is not None:
            from repro.resilience import checkpoint as _ckpt

            self._checkpoint_dir = _ckpt.store_dir(checkpoint_dir, self.key())
        self._checkpoint_loaded = False
        self._pool = pool
        self._chunks: list[TieredChunk] = []
        self._collection: Optional[RRRCollection] = None  # concat cache
        self._trace: Optional[SampleTrace] = None
        self._concat_accounted = 0  # bytes charged under CONCAT_ACCOUNT
        # tier state is guarded by an RLock so the governor's pressure
        # walk (possibly running on another store's allocating thread)
        # never demotes chunks out from under an in-progress ensure();
        # _relieve() acquires it non-blocking, so cross-store pressure
        # can never deadlock two allocating threads
        self._tier_lock = threading.RLock()
        self._gov = None  # the governor our pressure handler lives on
        self._gov_handle: Optional[int] = None
        self._tmp_spill_dir: Optional[Path] = None  # lazy, sans checkpoint
        # the selection-side cache riding this store: one CoverageIndex
        # over the cached stream, extended chunk by chunk, shared by
        # every phase of every run served from this key
        self._index = None

    # -- identity ------------------------------------------------------------
    def key(self) -> tuple:
        """The stream-identity tuple this store caches under."""
        return (
            self.graph.fingerprint(),
            self.model,
            self.eliminate_sources,
            self.entropy,
            self.n_jobs,
            self.chunk_sets,
            self.batch_size,
        )

    @property
    def num_cached(self) -> int:
        """Kept RRR sets materialized so far (any tier; metadata only —
        reading this never promotes a demoted chunk)."""
        return sum(c.num_sets for c in self._chunks)

    # -- tiering -------------------------------------------------------------
    def governed_nbytes(self) -> int:
        """RAM bytes this store currently holds on the governor's ledger
        (hot chunks, arena segments, compressed columns, concat cache)."""
        with self._tier_lock:
            total = self._concat_accounted
            if self._arena is not None and not self._arena.closed:
                total += self._arena.nbytes
            for chunk in self._chunks:
                total += chunk._hot_accounted
                if chunk._compressed is not None:
                    total += chunk._compressed.nbytes
            return total

    def _spill_base(self) -> Optional[Path]:
        """Where demoted chunks land on disk.

        A checkpointing store spills for free into its checkpoint
        directory (a spilled chunk *is* a chunk checkpoint); otherwise a
        per-store temp directory is created on first use and removed on
        :meth:`close`.
        """
        if self._checkpoint_dir is not None:
            return self._checkpoint_dir
        if self._tmp_spill_dir is None:
            self._tmp_spill_dir = Path(tempfile.mkdtemp(prefix="repro-spill-"))
        return self._tmp_spill_dir

    def _wrap_chunk(
        self, j: int, collection: RRRCollection, trace: SampleTrace,
        on_disk: bool = False,
    ) -> TieredChunk:
        from repro.resilience import checkpoint as _ckpt

        arena_release = None
        if self._arena is not None and not self._arena.closed and self._arena.owns(collection):
            arena_release = self._arena.release_segment_of
        return TieredChunk(
            j,
            collection,
            trace,
            spill_path=_ckpt.chunk_path(self._spill_base(), j),
            arena_release=arena_release,
            on_disk=on_disk,
        )

    def _ensure_governed(self) -> None:
        """Register (or lazily re-register) this store's pressure handler.

        ``reset_governor`` replaces the process governor wholesale, so
        the registration is checked against the *current* governor on
        every growth path rather than cached forever.  The handler
        holds only a weak reference: the governor is process-global,
        and a strong ref here would pin every store (and its arena
        segments) for the life of the process.
        """
        gov = governor()
        if self._gov is not gov:
            self._gov = gov
            ref = weakref.ref(self)

            def _handler(deficit: int, ref=ref) -> int:
                store = ref()
                return 0 if store is None else store._relieve(deficit)

            self._gov_handle = gov.add_pressure_handler(_handler, priority=10)

    def _relieve(self, deficit: int) -> int:
        """Governor pressure hook: demote cold chunks until ``deficit``
        RAM bytes are freed (or nothing demotable remains).

        Policy, cheapest-to-undo first: hot chunks compress in LRU
        order, then compressed chunks spill to disk, then the coverage
        index's dense membership plane is dropped (one rebuild pass
        from the collection), and only then is the concatenated prefix
        cache dropped (it is pure cache, but rebuilding it means
        decoding every chunk).  Non-blocking: if
        another thread is mid-``ensure`` on this store, pressure moves
        on to the next handler instead of deadlocking.
        """
        if not self._tier_lock.acquire(blocking=False):
            return 0
        try:
            freed = 0
            for state in (HOT, COMPRESSED):
                if freed >= deficit:
                    return freed
                cold_first = sorted(
                    (c for c in self._chunks if c.state == state),
                    key=lambda c: c.last_touch,
                )
                for chunk in cold_first:
                    if freed >= deficit:
                        return freed
                    if (
                        state == HOT
                        and chunk._hot is not None
                        and self._collection is chunk._hot[0]
                    ):
                        # the concat cache aliases this (single) chunk's
                        # arrays; drop the alias or the demotion frees
                        # accounting without freeing memory
                        freed += self._drop_concat()
                    freed += chunk.demote()
            if freed < deficit and self._index is not None:
                freed += self._index.drop_membership()
            if freed < deficit:
                freed += self._drop_concat()
            return freed
        finally:
            self._tier_lock.release()

    def _drop_concat(self) -> int:
        """Invalidate the concatenated prefix cache; returns bytes freed."""
        freed = self._concat_accounted
        if self._concat_accounted:
            governor().account(CONCAT_ACCOUNT, "resident", -self._concat_accounted)
            self._concat_accounted = 0
        self._collection = None
        self._trace = None
        return freed

    # -- growth --------------------------------------------------------------
    def _chunk_size(self, j: int) -> int:
        return self.chunk_sets << min(j, _CHUNK_DOUBLINGS)

    def _chunk_rng(self, j: int) -> np.random.Generator:
        # spawn_key=(j,) is exactly what SeedSequence(entropy).spawn()
        # would produce as its j-th child, without having to persist (or
        # trust the call history of) a live parent object
        seq = np.random.SeedSequence(self.entropy, spawn_key=(j,))
        return np.random.Generator(np.random.PCG64(seq))

    def _ensure_arena(self):
        """The shared-memory chunk arena (shm plane, fan-out only)."""
        if self.data_plane != "shm" or self.n_jobs <= 1:
            return None
        if self._arena is None or self._arena.closed:
            from repro.shm.arena import ChunkArena

            self._arena = ChunkArena()
        return self._arena

    def _sample_chunk(self, j: int) -> tuple[RRRCollection, SampleTrace]:
        rng = self._chunk_rng(j)
        count = self._chunk_size(j)
        if self.n_jobs > 1:
            if self._pool is None or self._pool.closed:
                from repro.rrr.parallel import shared_pool

                self._pool = shared_pool(
                    self.graph, self.n_jobs, data_plane=self.data_plane
                )
            return self._pool.sample(
                self.model,
                count,
                rng=rng,
                eliminate_sources=self.eliminate_sources,
                batch_size=self.batch_size,
                visited_mode=self.visited_mode,
                resilience=self.resilience,
                arena=self._ensure_arena(),
            )
        from repro.rrr import get_sampler

        return get_sampler(self.model)(
            self.graph,
            count,
            rng=rng,
            eliminate_sources=self.eliminate_sources,
            batch_size=self.batch_size,
            visited_mode=self.visited_mode,
        )

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Release the store's shared-memory arena (if any); idempotent.

        Cached chunk *contents* become invalid after close — this is for
        teardown (tests, :func:`clear_stores`), not mid-run trimming.
        """
        with self._tier_lock:
            if self._gov is not None and self._gov_handle is not None:
                self._gov.remove_pressure_handler(self._gov_handle)
                self._gov = None
                self._gov_handle = None
            for chunk in self._chunks:
                chunk.close()
            self._chunks = []
            self._drop_concat()
            if self._arena is not None:
                self._arena.close()
                self._arena = None
            self._index = None
            if self._tmp_spill_dir is not None:
                shutil.rmtree(self._tmp_spill_dir, ignore_errors=True)
                self._tmp_spill_dir = None

    def __del__(self):  # pragma: no cover - GC backstop
        # stores abandoned without close() must not leave their concat
        # bytes (or a dead pressure handler) on the process governor
        try:
            self.close()
        except Exception:
            pass

    # -- checkpointing -------------------------------------------------------
    def _load_checkpoint(self) -> None:
        """Adopt the completed chunk prefix persisted on disk (once).

        Verifies the manifest against :meth:`key` (mismatch raises
        :class:`~repro.utils.errors.CheckpointError`) and stops at the
        first missing or partial chunk — chunks are pure functions of
        ``(key, j)``, so the rest is simply resampled.
        """
        if self._checkpoint_dir is None or self._checkpoint_loaded:
            return
        self._checkpoint_loaded = True
        from repro.resilience import checkpoint as _ckpt

        chunks = _ckpt.load_chunks(
            self._checkpoint_dir, self.key(), self.graph.n, self._chunk_size
        )
        if len(chunks) > len(self._chunks):
            # already on disk => a later spill of these chunks is free
            self._chunks = [
                self._wrap_chunk(j, collection, trace, on_disk=True)
                for j, (collection, trace) in enumerate(chunks)
            ]
            self._drop_concat()
            # a tight budget may not even want the resumed prefix hot;
            # rebalance immediately rather than after the first top-up
            governor().request(0)

    def _save_chunk(self, j: int, chunk: tuple[RRRCollection, SampleTrace]) -> None:
        if self._checkpoint_dir is None:
            return
        from repro.resilience import checkpoint as _ckpt

        _ckpt.write_manifest(self._checkpoint_dir, self.key())
        _ckpt.save_chunk(self._checkpoint_dir, j, chunk[0], chunk[1])

    def ensure(self, theta: int) -> tuple[RRRCollection, SampleTrace]:
        """The first ``theta`` sets of this stream, sampling any deficit.

        Returns a prefix view (cheap slices of the cached arrays) plus
        the per-set trace covering exactly the attempts that produced
        those ``theta`` kept sets.
        """
        if theta < 0:
            raise ValidationError("theta must be non-negative")
        obs.counter_add("rrr.store.requests", 1)
        with self._tier_lock:
            self._ensure_governed()
            self._load_checkpoint()
            cached = self.num_cached
            obs.counter_add("rrr.store.reused_sets", min(theta, cached))
            sampled_new = 0
            deadline = active_deadline()
            if self.num_cached < theta:
                # the concat is about to go stale; dropping it *before*
                # sampling keeps the ledger from holding the old prefix
                # and the new chunks at once under a tight budget
                self._drop_concat()
            while self.num_cached < theta:
                # cached prefixes always serve; only *new* sampling is
                # subject to the ambient deadline, one chunk at a time
                if deadline is not None:
                    deadline.check("store chunk top-up")
                j = len(self._chunks)
                with obs.span("rrr.store.topup"):
                    collection, trace = self._sample_chunk(j)
                # make room (demoting older chunks) before the new
                # chunk's bytes land on the ledger, so peak residency
                # tracks the budget instead of budget + chunk
                governor().request(chunk_nbytes(collection, trace))
                self._save_chunk(j, (collection, trace))
                self._chunks.append(
                    self._wrap_chunk(
                        j, collection, trace,
                        on_disk=self._checkpoint_dir is not None,
                    )
                )
                sampled_new += collection.num_sets
            if sampled_new:
                obs.counter_add("rrr.store.topups", 1)
                obs.counter_add("rrr.store.sampled_sets", sampled_new)
            self._materialize()
            return self._collection.prefix(theta), self._trace_prefix(theta)

    def _materialize(self) -> None:
        """Rebuild the concatenated collection/trace caches if stale.

        Chunk reads here are *transient* (``promote=False``): under a
        tight budget each demoted chunk's decode streams into the
        concat without re-hydrating the chunk list, so accounted
        residency after a rebuild is one concat — not concat plus
        every chunk hot again.
        """
        if self._collection is not None:
            return
        with self._tier_lock:
            if self._collection is not None:
                return
            if not self._chunks:
                self._collection = RRRCollection(
                    np.empty(0, dtype=np.int32),
                    np.zeros(1, dtype=np.int64),
                    self.graph.n,
                    sources=np.empty(0, dtype=np.int64),
                )
                self._trace = empty_trace()
                return
            # make room up front: the rebuilt cache is roughly the
            # chunks' combined hot footprint
            governor().request(sum(c.nbytes_hot for c in self._chunks))
            parts = [c.get(promote=False) for c in self._chunks]
            if len(parts) == 1:
                collection, trace = parts[0]
            else:
                collection = RRRCollection.concat([c for c, _ in parts])
                trace = empty_trace()
                for _, t in parts:
                    trace = trace.merged_with(t)
            self._collection = collection
            self._trace = trace
            chunk0 = self._chunks[0]
            aliased = (
                len(self._chunks) == 1
                and chunk0._hot is not None
                and collection is chunk0._hot[0]
            )
            # charge the cache unless it aliases a (single) hot chunk's
            # arrays, which the chunk already accounts for
            self._concat_accounted = (
                0 if aliased else chunk_nbytes(collection, trace)
            )
            if self._concat_accounted:
                governor().account(
                    CONCAT_ACCOUNT, "resident", self._concat_accounted
                )

    def coverage_index(self):
        """The persistent vertex->position :class:`~repro.imm.coverage.CoverageIndex`
        over this store's cached stream.

        Extended in place as chunks accumulate — chunk contents are pure
        functions of ``(key, j)``, so the already-indexed prefix never
        changes, across top-ups *and* across checkpoint resume.  Seed
        selection on any ``ensure(theta)`` prefix view passes this index
        and clips postings to the prefix, so a whole k/ε sweep builds
        each posting exactly once.
        """
        from repro.imm.coverage import CoverageIndex

        with self._tier_lock:
            self._ensure_governed()
            self._load_checkpoint()
            self._materialize()
            if self._index is None:
                self._index = CoverageIndex(self.graph.n)
            self._index.extend_to(self._collection)
            return self._index

    def _trace_prefix(self, theta: int) -> SampleTrace:
        """The trace slice covering the attempts behind the first
        ``theta`` kept sets (discarded attempts in between included)."""
        trace = self._trace
        if theta == 0 or trace.attempted == 0:
            return empty_trace()
        kept_cum = np.cumsum(trace.kept_mask)
        cut = int(np.searchsorted(kept_cum, theta, side="left")) + 1
        if cut >= trace.attempted:
            return trace
        # raw_singletons is a scalar over the whole sample; pro-rate it
        # over the attempts actually consumed (diagnostic only)
        raw = int(round(trace.raw_singletons * cut / trace.attempted))
        return SampleTrace(
            sizes=trace.sizes[:cut],
            rounds=trace.rounds[:cut],
            edges_examined=trace.edges_examined[:cut],
            kept_mask=trace.kept_mask[:cut],
            raw_singletons=raw,
            sources=trace.sources[:cut],
            resilience=trace.resilience,
        )


# -- shared store registry ---------------------------------------------------
_STORES: dict[tuple, RRRStore] = {}
# the registry is hit from concurrent service workers; without the lock
# two same-key lookups could both miss and build duplicate stores, each
# re-sampling the stream the other already paid for
_STORES_LOCK = threading.Lock()


def shared_store(
    graph: DirectedGraph,
    model: str = "IC",
    eliminate_sources: bool = False,
    entropy=0,
    n_jobs: int = 1,
    pool: Optional[SamplerPool] = None,
    chunk_sets: int = 4096,
    batch_size: int = 16384,
    checkpoint_dir=None,
    resilience: Optional[ResilienceOptions] = None,
    data_plane: Optional[str] = None,
    visited_mode: Optional[str] = None,
) -> RRRStore:
    """The process-wide :class:`RRRStore` for this stream identity.

    Repeated calls with the same key — e.g. every cell of a k-sweep —
    return the same store, which is what turns the sweep's sampling cost
    from O(Σθᵢ) into O(max θᵢ).

    ``checkpoint_dir`` / ``resilience`` / ``data_plane`` /
    ``visited_mode`` are operational knobs, not part of the stream
    identity: a cache hit keeps the first
    store's configuration (the planes produce bit-identical sets, so the
    stream is the same either way).  A cached store whose explicit pool
    has since been closed is healed on lookup (its pool reference is
    dropped, so the next top-up re-acquires a live :func:`shared_pool`)
    — stale registry state can never serve a dead executor.
    """
    # the key is computed without constructing a store so a cache hit
    # does no work; it must mirror RRRStore.key() (asserted below)
    key = (
        graph.fingerprint(),
        str(model).upper(),
        bool(eliminate_sources),
        _normalize_entropy(entropy),
        int(n_jobs),
        int(chunk_sets),
        int(batch_size),
    )
    with _STORES_LOCK:
        cached = _STORES.get(key)
        if cached is not None:
            if cached._pool is not None and cached._pool.closed:
                cached._pool = None
                obs.counter_add("rrr.store.pool_healed", 1)
            obs.counter_add("rrr.store.shared_hits", 1)
            return cached
        store = RRRStore(
            graph,
            model=model,
            eliminate_sources=eliminate_sources,
            entropy=entropy,
            n_jobs=n_jobs,
            pool=pool,
            chunk_sets=chunk_sets,
            batch_size=batch_size,
            checkpoint_dir=checkpoint_dir,
            resilience=resilience,
            data_plane=data_plane,
            visited_mode=visited_mode,
        )
        assert store.key() == key
        _STORES[key] = store
        return store


def clear_stores() -> None:
    """Drop every shared store, releasing their shared-memory arenas
    (tests and memory-pressure relief)."""
    with _STORES_LOCK:
        stores = list(_STORES.values())
        _STORES.clear()
    for store in stores:
        store.close()


# like the pool registry's shutdown_pools hook: resident arenas must not
# outlive the interpreter (the SegmentRegistry atexit backstop would catch
# them, but eagerly closing here keeps the backstop a true last resort)
atexit.register(clear_stores)
