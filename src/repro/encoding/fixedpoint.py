"""Fixed-point quantization so float edge weights can be log-encoded.

The CSC weight array is float-valued; to pack it alongside the integer
arrays the weights are quantized to ``bits``-bit fixed point on [0, 1].
Under the paper's degree-based scheme (``p_uv = 1/d_v^-``) the weights are
exactly recoverable from the offsets array instead and need not be stored
at all — :class:`repro.encoding.csc_encoded.EncodedGraph` exploits that.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitpack import PackedArray, pack
from repro.utils.errors import ValidationError


def pack_fixed_point(values, bits: int = 16, container_bits: int = 32) -> PackedArray:
    """Quantize floats on [0, 1] to ``bits``-bit fixed point and bit-pack.

    The maximum quantization error is ``2**-(bits+1)`` per weight, far
    below the Monte-Carlo noise floor of influence estimation.
    """
    vals = np.asarray(values, dtype=np.float64).ravel()
    if vals.size and (vals.min() < 0.0 or vals.max() > 1.0):
        raise ValidationError("fixed-point packing expects values in [0, 1]")
    if not 1 <= bits <= 32:
        raise ValidationError(f"bits must be in [1, 32], got {bits}")
    scale = (1 << bits) - 1
    quantized = np.rint(vals * scale).astype(np.int64)
    return pack(quantized, n_bits=bits, container_bits=container_bits)


def unpack_fixed_point(packed: PackedArray) -> np.ndarray:
    """Invert :func:`pack_fixed_point` back to float64 on [0, 1]."""
    scale = (1 << packed.n_bits) - 1
    return packed.unpack().astype(np.float64) / scale
