"""Bitmap coding of RRR collections — the other §3.1 alternative.

Each RRR set over ``n`` vertices can be stored as an ``n``-bit bitmap.
Dense bitmaps waste space on small sets (the common case under the
weighted cascade), so the practical variant is *hybrid*: a set becomes a
bitmap only when that is smaller than its sorted id array (size >
n/32 for 32-bit ids); small sets stay as arrays.  Membership tests on
bitmap sets are O(1), which is the representation's selling point; the
memory comparison against log encoding is what the benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import pack_bits
from repro.rrr.collection import RRRCollection
from repro.utils.errors import ValidationError


@dataclass
class BitmapEncoded:
    """Hybrid bitmap/array encoding of one RRR collection."""

    n: int
    num_sets: int
    is_bitmap: np.ndarray  # per set
    bitmaps: dict  # set id -> packed uint64 bitmap
    arrays: dict  # set id -> int32 sorted vertex array

    def nbytes_total(self) -> int:
        """Payload bytes: bitmaps (n bits rounded to words) + arrays
        (4 B/element) + one flag bit per set."""
        words_per_bitmap = -(-self.n // 64)
        bitmap_bytes = 8 * words_per_bitmap * len(self.bitmaps)
        array_bytes = sum(4 * a.size for a in self.arrays.values())
        flags = -(-self.num_sets // 8)
        return bitmap_bytes + array_bytes + flags

    def set_at(self, i: int) -> np.ndarray:
        """Decode set ``i`` back to a sorted vertex array."""
        if not 0 <= i < self.num_sets:
            raise ValidationError(f"set index {i} out of range")
        if bool(self.is_bitmap[i]):
            bitmap = self.bitmaps[i]
            bits = np.unpackbits(bitmap.view(np.uint8), bitorder="little")
            return np.flatnonzero(bits[: self.n]).astype(np.int64)
        return self.arrays[i].astype(np.int64)

    def contains(self, i: int, v: int) -> bool:
        """O(1) membership for bitmap sets, binary search otherwise."""
        if not 0 <= v < self.n:
            raise ValidationError(f"vertex {v} out of range")
        if bool(self.is_bitmap[i]):
            word = self.bitmaps[i][v >> 6]
            return bool((int(word) >> (v & 63)) & 1)
        arr = self.arrays[i]
        j = int(np.searchsorted(arr, v))
        return j < arr.size and int(arr[j]) == v


def bitmap_encode(
    collection: RRRCollection, force_bitmap: bool = False
) -> BitmapEncoded:
    """Encode a collection hybrid bitmap/array (``force_bitmap`` stores
    every set dense, the naive variant)."""
    n = collection.n
    if n < 1:
        raise ValidationError("need at least one vertex")
    words_per_bitmap = -(-n // 64)
    bitmap_bytes = 8 * words_per_bitmap
    sizes = collection.sizes()
    is_bitmap = np.zeros(collection.num_sets, dtype=bool)
    bitmaps: dict = {}
    arrays: dict = {}
    for i in range(collection.num_sets):
        members = collection.set_at(i)
        use_bitmap = force_bitmap or (4 * int(sizes[i]) > bitmap_bytes)
        is_bitmap[i] = use_bitmap
        if use_bitmap:
            # one vectorized word-scatter (sorted member ids); byte-identical
            # to the historical per-vertex |= loop
            bitmaps[i] = pack_bits(members, n)
        else:
            arrays[i] = members.astype(np.int32).copy()
    return BitmapEncoded(
        n=n,
        num_sets=collection.num_sets,
        is_bitmap=is_bitmap,
        bitmaps=bitmaps,
        arrays=arrays,
    )
