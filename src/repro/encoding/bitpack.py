"""Vectorized log encoding (bit-packing) of non-negative integer arrays.

Figure 1 of the paper: an array whose maximum element is ``x_max`` needs
only ``n_bits = bit_length(x_max)`` bits per element; fields are
concatenated back-to-back into fixed-width containers, so a field may span
a container boundary.  (The paper states ``ceil(log2(x_max))``, which
under-counts by one exactly at powers of two — e.g. 8 needs 4 bits, not 3;
we use ``bit_length`` which equals the paper's formula everywhere else.)

Packing and unpacking are whole-array NumPy operations: the pack scatter
uses ``np.bitwise_or.at`` (an unbuffered ufunc, so multiple fields landing
in the same container accumulate correctly — the vectorized analogue of
the CUDA kernels' ``atomicOr``).
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.validation import require


def required_bits(max_value: int) -> int:
    """Bits needed to represent every value in ``[0, max_value]``.

    ``required_bits(123) == 7`` as in the paper's Fig. 1 example; at least
    1 even for an all-zero array.
    """
    max_value = int(max_value)
    if max_value < 0:
        raise ValidationError(f"cannot pack negative values (max_value={max_value})")
    return max(1, max_value.bit_length())


class PackedArray:
    """An immutable-by-default bit-packed view of a non-negative int array.

    Attributes
    ----------
    words:
        The container array (uint32 or uint64), padded with one extra
        container so spanning reads never index out of bounds.
    n_bits:
        Field width in bits.
    count:
        Number of logical elements.
    """

    __slots__ = ("words", "n_bits", "count", "container_bits")

    def __init__(self, words: np.ndarray, n_bits: int, count: int, container_bits: int):
        self.words = words
        self.n_bits = int(n_bits)
        self.count = int(count)
        self.container_bits = int(container_bits)

    # -- memory accounting -------------------------------------------------
    @property
    def nbytes_packed(self) -> int:
        """Bytes of the packed payload (excluding the guard container)."""
        cb = self.container_bits
        used_words = -(-self.count * self.n_bits // cb)  # ceil division
        return used_words * (cb // 8)

    @property
    def nbytes_raw(self) -> int:
        """Bytes the same data occupies unpacked as 32-bit integers."""
        return 4 * self.count

    @property
    def savings_fraction(self) -> float:
        """Fraction of raw bytes saved by packing (0 when count == 0)."""
        raw = self.nbytes_raw
        return 0.0 if raw == 0 else 1.0 - self.nbytes_packed / raw

    # -- element access -----------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def unpack(self) -> np.ndarray:
        """Decode the whole array back to int64 (fast gather, §3.1)."""
        return unpack_words(
            self.words, self.n_bits, self.count, self.container_bits
        )

    def gather(self, idx: np.ndarray) -> np.ndarray:
        """Decode only the elements at positions ``idx`` (random access)."""
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.count):
            raise ValidationError("gather index out of range")
        return _decode_at(self.words, self.n_bits, idx, self.container_bits)

    def __getitem__(self, i):
        if isinstance(i, slice):
            idx = np.arange(*i.indices(self.count), dtype=np.int64)
            return self.gather(idx)
        i = int(i)
        if i < 0:
            i += self.count
        if not 0 <= i < self.count:
            raise IndexError(f"index {i} out of range for PackedArray of {self.count}")
        return int(self.gather(np.asarray([i]))[0])

    def set_element(self, i: int, value: int) -> None:
        """Thread-safe-style single-field write.

        Clears then ORs the field's bits in its one or two containers —
        the read-modify-write a CUDA thread performs with ``atomicAnd`` /
        ``atomicOr`` when updating a packed store concurrently (fields
        never overlap, so concurrent writers touch disjoint bits except in
        a shared boundary container, where atomics make the update safe).
        """
        i = int(i)
        if not 0 <= i < self.count:
            raise IndexError(f"index {i} out of range")
        value = int(value)
        if value < 0 or value.bit_length() > self.n_bits:
            raise ValidationError(
                f"value {value} does not fit in {self.n_bits} bits"
            )
        cb = self.container_bits
        bitpos = i * self.n_bits
        word, off = divmod(bitpos, cb)
        container_mask = (1 << cb) - 1
        field_mask = ((1 << self.n_bits) - 1) << off
        w0 = int(self.words[word])
        w0 = (w0 & ~(field_mask & container_mask)) | ((value << off) & container_mask)
        self.words[word] = w0
        spill_bits = off + self.n_bits - cb
        if spill_bits > 0:
            hi_mask = (1 << spill_bits) - 1
            w1 = int(self.words[word + 1])
            w1 = (w1 & ~hi_mask) | (value >> (self.n_bits - spill_bits))
            self.words[word + 1] = w1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PackedArray(count={self.count}, n_bits={self.n_bits}, "
            f"container={self.container_bits}, packed={self.nbytes_packed}B)"
        )


def pack(values, n_bits: int | None = None, container_bits: int = 32) -> PackedArray:
    """Bit-pack ``values`` into a :class:`PackedArray`.

    Parameters
    ----------
    values:
        1-D array-like of non-negative integers.
    n_bits:
        Field width; defaults to ``required_bits(values.max())``.
    container_bits:
        32 (paper's choice, Fig. 1) or 64.
    """
    if container_bits not in (32, 64):
        raise ValidationError("container_bits must be 32 or 64")
    vals = np.asarray(values, dtype=np.int64).ravel()
    if vals.size and vals.min() < 0:
        raise ValidationError("cannot pack negative values")
    max_val = int(vals.max()) if vals.size else 0
    if n_bits is None:
        n_bits = required_bits(max_val)
    n_bits = int(n_bits)
    require(1 <= n_bits <= container_bits, "n_bits must be in [1, container_bits]")
    if max_val.bit_length() > n_bits:
        raise ValidationError(
            f"max value {max_val} needs {max_val.bit_length()} bits, got n_bits={n_bits}"
        )
    cb = container_bits
    dtype = np.uint32 if cb == 32 else np.uint64
    n_words = int(-(-vals.size * n_bits // cb)) + 1  # +1 guard container
    words = np.zeros(n_words, dtype=dtype)
    if vals.size == 0:
        return PackedArray(words, n_bits, 0, cb)

    positions = np.arange(vals.size, dtype=np.int64) * n_bits
    word_idx = positions // cb
    off = (positions % cb).astype(np.uint64)
    v = vals.astype(np.uint64)
    if cb == 32:
        shifted = v << off  # off <= 31, n_bits <= 32: fits in 64 bits
        lo = (shifted & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        hi = (shifted >> np.uint64(32)).astype(np.uint32)
        np.bitwise_or.at(words, word_idx, lo)
        np.bitwise_or.at(words, word_idx + 1, hi)
    else:
        # 64-bit containers: guard shifts so they stay in [0, 63]
        sh = np.where(off == 0, np.uint64(63), np.uint64(cb) - off)
        low_mask = np.where(
            off == 0, np.uint64(0xFFFFFFFFFFFFFFFF), (np.uint64(1) << sh) - np.uint64(1)
        )
        lo = (v & low_mask) << off
        hi = np.where(off == 0, np.uint64(0), v >> sh)
        np.bitwise_or.at(words, word_idx, lo)
        np.bitwise_or.at(words, word_idx + 1, hi)
    return PackedArray(words, n_bits, vals.size, cb)


def _decode_at(
    words: np.ndarray, n_bits: int, idx: np.ndarray, container_bits: int
) -> np.ndarray:
    """Decode the fields at logical positions ``idx`` (vectorized gather)."""
    cb = container_bits
    positions = idx * n_bits
    word_idx = positions // cb
    off = (positions % cb).astype(np.uint64)
    mask = (np.uint64(1) << np.uint64(n_bits)) - np.uint64(1) if n_bits < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    if cb == 32:
        w = words.astype(np.uint64, copy=False)
        window = w[word_idx] | (w[word_idx + 1] << np.uint64(32))
        return ((window >> off) & mask).astype(np.int64)
    lo = words[word_idx] >> off
    sh = np.where(off == 0, np.uint64(1), np.uint64(cb) - off)
    hi = np.where(off == 0, np.uint64(0), words[word_idx + 1] << sh)
    return ((lo | hi) & mask).astype(np.int64)


def unpack_words(
    words: np.ndarray,
    n_bits: int,
    count: int,
    container_bits: int = 32,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Decode ``count`` fields from a packed container array to int64.

    With ``out`` the decoded values are written into the caller's array
    (any integer dtype; must have ``count`` elements) — how the shared
    data plane lands worker payloads directly in arena segments instead
    of allocating an intermediate result.
    """
    if out is not None and out.size != count:
        raise ValidationError(
            f"out has {out.size} elements, expected {count}"
        )
    if count == 0:
        return np.empty(0, dtype=np.int64) if out is None else out
    decoded = _decode_at(
        words, n_bits, np.arange(count, dtype=np.int64), container_bits
    )
    if out is None:
        return decoded
    np.copyto(out, decoded, casting="unsafe")
    return out
