"""Log-encoded CSC graph: the paper's compressed network representation.

The three CSC arrays are packed independently (each has its own
``x_max``): offsets need ``bit_length(m)`` bits, in-neighbor ids
``bit_length(n-1)`` bits.  For the degree-based weight schemes used in the
paper (IC weighted cascade and LT uniform, both ``1/d_v^-``) the weight
array is *implicit* — recoverable from consecutive offsets — so encoding
drops it entirely; general weights fall back to 16-bit fixed point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.encoding.bitpack import PackedArray, pack, required_bits
from repro.encoding.fixedpoint import pack_fixed_point, unpack_fixed_point
from repro.encoding.memory import MemoryReport
from repro.graphs.csc import DirectedGraph


def _weights_are_indegree(graph: DirectedGraph) -> bool:
    """True when every in-edge of v carries exactly 1/d_v^-."""
    if graph.weights is None:
        return False
    deg = graph.in_degrees()
    expected = np.repeat(
        1.0 / np.maximum(deg, 1), deg
    )
    return bool(np.allclose(graph.weights, expected, rtol=0.0, atol=1e-12))


class EncodedGraph:
    """A :class:`DirectedGraph` with log-encoded CSC arrays.

    Random-access segment decode (:meth:`in_neighbors`) mirrors what the
    device kernels do: two offset fields are unpacked to bound the
    segment, then the neighbor fields are gathered and decoded.
    """

    def __init__(
        self,
        n: int,
        m: int,
        offsets: PackedArray,
        neighbors: PackedArray,
        weights: Optional[PackedArray],
        implicit_indegree_weights: bool,
    ):
        self.n = int(n)
        self.m = int(m)
        self.offsets = offsets
        self.neighbors = neighbors
        self.weights = weights
        self.implicit_indegree_weights = bool(implicit_indegree_weights)
        #: uncompressed float-weight bytes carried alongside the packed
        #: arrays when ``weight_mode="raw32"``
        self.raw_weight_bytes = 0
        #: the raw float weights themselves in that mode (device-resident
        #: uncompressed array)
        self.raw_weights: Optional[np.ndarray] = None

    # -- decoding ----------------------------------------------------------
    def in_neighbors(self, v: int) -> np.ndarray:
        """Decode the in-neighbor ids of vertex ``v``."""
        start, end = self.offsets.gather(np.asarray([v, v + 1]))
        if end <= start:
            return np.empty(0, dtype=np.int64)
        return self.neighbors.gather(np.arange(start, end))

    def decode(self) -> DirectedGraph:
        """Fully decode back to a raw :class:`DirectedGraph`."""
        indptr = self.offsets.unpack()
        indices = self.neighbors.unpack().astype(np.int32)
        if self.implicit_indegree_weights:
            deg = np.diff(indptr)
            w = np.repeat(1.0 / np.maximum(deg, 1), deg)
        elif self.weights is not None:
            w = unpack_fixed_point(self.weights)
        elif self.raw_weights is not None:
            w = self.raw_weights
        else:
            w = None
        return DirectedGraph(indptr, indices, w)

    # -- memory accounting ---------------------------------------------------
    def nbytes_packed(self) -> int:
        """Device bytes of the encoded representation."""
        total = self.offsets.nbytes_packed + self.neighbors.nbytes_packed
        if self.weights is not None:
            total += self.weights.nbytes_packed
        return total + self.raw_weight_bytes

    def memory_report(self, raw_graph: DirectedGraph) -> MemoryReport:
        """Raw-CSC vs encoded byte comparison for §4.2."""
        return MemoryReport(
            "network", raw_graph.nbytes_csc(include_weights=True), self.nbytes_packed()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EncodedGraph(n={self.n}, m={self.m}, "
            f"offset_bits={self.offsets.n_bits}, neighbor_bits={self.neighbors.n_bits}, "
            f"packed={self.nbytes_packed()}B)"
        )


def encode_graph(
    graph: DirectedGraph,
    container_bits: int = 32,
    weight_bits: int = 16,
    weight_mode: str = "auto",
) -> EncodedGraph:
    """Log-encode a weighted or unweighted CSC graph.

    ``weight_mode`` controls the float weight array:

    * ``auto`` — degree-scheme weights (``1/d_v^-``) are detected and
      dropped entirely (recoverable from offsets); anything else is
      quantized to ``weight_bits`` fixed point.
    * ``fixedpoint`` — always quantize and pack.
    * ``raw32`` — keep weights as uncompressed 32-bit floats, the
      conservative accounting the paper's §4.2 numbers correspond to
      (only the integer arrays compress).
    """
    if weight_mode not in ("auto", "fixedpoint", "raw32"):
        raise ValueError(f"unknown weight_mode {weight_mode!r}")
    offsets = pack(
        graph.indptr,
        n_bits=required_bits(graph.m),
        container_bits=container_bits,
    )
    neighbors = pack(
        graph.indices,
        n_bits=required_bits(max(graph.n - 1, 0)),
        container_bits=container_bits,
    )
    implicit = False
    weights = None
    raw_weight_bytes = 0
    if graph.weights is not None:
        if weight_mode == "auto" and _weights_are_indegree(graph):
            implicit = True
        elif weight_mode == "raw32":
            raw_weight_bytes = 4 * graph.m
        else:
            weights = pack_fixed_point(
                graph.weights, bits=weight_bits, container_bits=container_bits
            )
    encoded = EncodedGraph(graph.n, graph.m, offsets, neighbors, weights, implicit)
    encoded.raw_weight_bytes = raw_weight_bytes
    if raw_weight_bytes:
        encoded.raw_weights = graph.weights
    return encoded
