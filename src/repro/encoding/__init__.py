"""Log encoding (bit-packing) of integer arrays, CSC graphs and RRR stores.

Implements the paper's §3.1: strip the leading zero bits that a fixed
32-bit representation wastes, concatenating ``n_bits``-wide fields into
32/64-bit containers.  Packing is vectorized (whole-array) and a
thread-safe single-element write mirrors what the CUDA kernels do with
atomic OR when several warps append to the shared RRR store.
"""

from repro.encoding.bitmap import BitmapEncoded, bitmap_encode
from repro.encoding.bitpack import PackedArray, pack, required_bits, unpack_words
from repro.encoding.csc_encoded import EncodedGraph, encode_graph
from repro.encoding.fixedpoint import pack_fixed_point, unpack_fixed_point
from repro.encoding.huffman import (
    HuffmanCode,
    HuffmanEncoded,
    build_code,
    huffman_decode,
    huffman_encode,
)
from repro.encoding.memory import MemoryReport, memory_report

__all__ = [
    "BitmapEncoded",
    "EncodedGraph",
    "HuffmanCode",
    "HuffmanEncoded",
    "MemoryReport",
    "PackedArray",
    "bitmap_encode",
    "build_code",
    "encode_graph",
    "huffman_decode",
    "huffman_encode",
    "memory_report",
    "pack",
    "pack_fixed_point",
    "required_bits",
    "unpack_fixed_point",
    "unpack_words",
]
