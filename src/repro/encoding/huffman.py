"""Canonical Huffman coding of integer arrays.

§3.1: "other studies have used different compression techniques such as
Huffman coding and bitmap coding that result in a reduction in the
memory footprint of R, [but] they have only been used on CPUs" (HBMax,
Chen et al. 2022).  This module implements the Huffman alternative so
the benchmarks can quantify the trade-off the paper's design rests on:
Huffman often packs tighter (it exploits the skewed vertex-frequency
distribution of RRR sets), but decoding is inherently sequential —
variable-length codes must be walked bit by bit — which is exactly why
eIM uses fixed-width log encoding on the GPU instead.

Encoding is vectorized (same OR-scatter machinery as
:mod:`repro.encoding.bitpack`, generalized to per-element widths);
decoding uses a canonical lookup table but still advances element by
element, faithfully slow.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ValidationError

#: refuse pathological codes; canonical Huffman over realistic vertex
#: frequency tables stays well under this
MAX_CODE_LENGTH = 32


@dataclass
class HuffmanCode:
    """A canonical Huffman code book over the values present in the data."""

    symbols: np.ndarray  # distinct values, canonical order
    lengths: np.ndarray  # code length per symbol (aligned with symbols)
    codes: np.ndarray  # canonical code per symbol (uint64)

    def code_of(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map values to (codes, lengths); raises on unknown symbols."""
        idx = np.searchsorted(self.symbols, values)
        idx_clipped = np.minimum(idx, self.symbols.size - 1)
        if not np.all(self.symbols[idx_clipped] == values):
            raise ValidationError("value outside the code book")
        return self.codes[idx_clipped], self.lengths[idx_clipped]


@dataclass
class HuffmanEncoded:
    """An encoded array: bitstream words plus the code book."""

    words: np.ndarray  # uint64 bitstream (little-endian bit order)
    total_bits: int
    count: int
    code: HuffmanCode

    @property
    def nbytes_payload(self) -> int:
        """Bytes of the bitstream (excluding the code book)."""
        return -(-self.total_bits // 8)

    @property
    def nbytes_codebook(self) -> int:
        """Bytes to ship the canonical book: one length byte per symbol
        plus the sorted symbol ids (4 B each)."""
        return 5 * self.code.symbols.size

    @property
    def nbytes_total(self) -> int:
        return self.nbytes_payload + self.nbytes_codebook


def _code_lengths(frequencies: np.ndarray) -> np.ndarray:
    """Huffman code lengths via the standard two-queue heap construction."""
    n = frequencies.size
    if n == 1:
        return np.asarray([1], dtype=np.int64)
    heap: list[tuple[int, int]] = [(int(f), i) for i, f in enumerate(frequencies)]
    heapq.heapify(heap)
    parent = {}
    next_node = n
    while len(heap) > 1:
        fa, a = heapq.heappop(heap)
        fb, b = heapq.heappop(heap)
        parent[a] = next_node
        parent[b] = next_node
        heapq.heappush(heap, (fa + fb, next_node))
        next_node += 1
    lengths = np.zeros(n, dtype=np.int64)
    for leaf in range(n):
        node, depth = leaf, 0
        while node in parent:
            node = parent[node]
            depth += 1
        lengths[leaf] = depth
    return lengths


def build_code(values: np.ndarray) -> HuffmanCode:
    """Build a canonical Huffman code from the empirical frequencies."""
    values = np.asarray(values, dtype=np.int64).ravel()
    if values.size == 0:
        raise ValidationError("cannot build a code from an empty array")
    if values.min() < 0:
        raise ValidationError("Huffman coding expects non-negative values")
    symbols, counts = np.unique(values, return_counts=True)
    lengths = _code_lengths(counts)
    if lengths.max() > MAX_CODE_LENGTH:
        raise ValidationError("code length exceeds the supported maximum")
    # canonical assignment: sort by (length, symbol), count codes upward
    order = np.lexsort((symbols, lengths))
    canon_symbols = symbols[order]
    canon_lengths = lengths[order]
    codes = np.zeros(symbols.size, dtype=np.uint64)
    code = 0
    prev_len = int(canon_lengths[0])
    for i in range(symbols.size):
        length = int(canon_lengths[i])
        code <<= length - prev_len
        codes[i] = code
        code += 1
        prev_len = length
    # return aligned with ascending symbol order for searchsorted lookup
    back = np.argsort(canon_symbols)
    return HuffmanCode(
        symbols=canon_symbols[back],
        lengths=canon_lengths[back],
        codes=codes[back],
    )


def huffman_encode(values, code: HuffmanCode | None = None) -> HuffmanEncoded:
    """Encode ``values`` into a Huffman bitstream (vectorized write)."""
    values = np.asarray(values, dtype=np.int64).ravel()
    if values.size == 0:
        raise ValidationError("cannot encode an empty array")
    if code is None:
        code = build_code(values)
    codes, lengths = code.code_of(values)
    positions = np.concatenate([[0], np.cumsum(lengths)])
    total_bits = int(positions[-1])
    n_words = total_bits // 64 + 2
    words = np.zeros(n_words, dtype=np.uint64)
    # bit-reverse each code so the stream reads MSB-first per code while
    # we write little-endian within words: store codes reversed instead —
    # simpler: write each code LSB-at-stream-position with bits reversed
    rev = _reverse_bits(codes, lengths)
    starts = positions[:-1]
    word_idx = starts // 64
    off = (starts % 64).astype(np.uint64)
    sh = np.where(off == 0, np.uint64(63), np.uint64(64) - off)
    low_mask = np.where(
        off == 0, np.uint64(0xFFFFFFFFFFFFFFFF), (np.uint64(1) << sh) - np.uint64(1)
    )
    lo = (rev & low_mask) << off
    hi = np.where(off == 0, np.uint64(0), rev >> sh)
    np.bitwise_or.at(words, word_idx, lo)
    np.bitwise_or.at(words, word_idx + 1, hi)
    return HuffmanEncoded(words=words, total_bits=total_bits,
                          count=values.size, code=code)


def _reverse_bits(codes: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Reverse the low ``length`` bits of each code."""
    out = np.zeros_like(codes)
    work = codes.copy()
    max_len = int(lengths.max())
    remaining = lengths.astype(np.int64).copy()
    for _ in range(max_len):
        active = remaining > 0
        out[active] = (out[active] << np.uint64(1)) | (work[active] & np.uint64(1))
        work[active] >>= np.uint64(1)
        remaining[active] -= 1
    return out


def huffman_decode(encoded: HuffmanEncoded) -> np.ndarray:
    """Decode the bitstream back to the original values.

    Sequential by construction — each element's position depends on all
    previous lengths.  This slowness *is the finding*: it is why the
    paper keeps Huffman on the CPU and uses log encoding on the GPU.
    """
    code = encoded.code
    # canonical decode tables grouped by length
    by_len: dict[int, dict[int, int]] = {}
    for sym, length, c in zip(code.symbols, code.lengths, code.codes):
        by_len.setdefault(int(length), {})[int(c)] = int(sym)
    lengths_sorted = sorted(by_len)
    words = encoded.words
    out = np.empty(encoded.count, dtype=np.int64)
    pos = 0
    for i in range(encoded.count):
        acc = 0
        consumed = 0
        li = 0
        while True:
            target = lengths_sorted[li]
            while consumed < target:
                word = int(words[(pos + consumed) >> 6])
                bit = (word >> ((pos + consumed) & 63)) & 1
                acc = (acc << 1) | bit
                consumed += 1
            table = by_len[target]
            if acc in table:
                out[i] = table[acc]
                pos += consumed
                break
            li += 1
            if li >= len(lengths_sorted):
                raise ValidationError("corrupt Huffman stream")
    return out
