"""Byte accounting for raw-vs-packed storage (Fig. 4 and §4.2)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryReport:
    """Raw and packed byte totals for one storage component."""

    label: str
    raw_bytes: int
    packed_bytes: int

    @property
    def saved_bytes(self) -> int:
        return self.raw_bytes - self.packed_bytes

    @property
    def percent_saved(self) -> float:
        """Percent of raw bytes eliminated by log encoding."""
        if self.raw_bytes == 0:
            return 0.0
        return 100.0 * self.saved_bytes / self.raw_bytes

    def __add__(self, other: "MemoryReport") -> "MemoryReport":
        return MemoryReport(
            label=f"{self.label}+{other.label}",
            raw_bytes=self.raw_bytes + other.raw_bytes,
            packed_bytes=self.packed_bytes + other.packed_bytes,
        )


def memory_report(label: str, raw_bytes: int, packed_bytes: int) -> MemoryReport:
    """Convenience constructor validating the byte totals."""
    if raw_bytes < 0 or packed_bytes < 0:
        raise ValueError("byte counts must be non-negative")
    return MemoryReport(label, int(raw_bytes), int(packed_bytes))
