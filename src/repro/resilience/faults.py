"""Deterministic fault injection for the sampling pipeline.

Every recovery path in :class:`~repro.rrr.parallel.SamplerPool` is
exercised in CI rather than trusted: a :class:`FaultPlan` makes worker
jobs crash, hang past the supervision timeout, or raise ``MemoryError``
on a schedule that is a pure function of ``(job index, attempt)`` — so a
faulted run is as reproducible as a clean one.

Grammar (env var ``REPRO_FAULTS``)::

    plan     := clause (";" clause)*
    clause   := kind ["(" seconds ")"] "@" target ["#" selector]
    target   := jobs | "queries" | "substrate" | "worker-thread"
    kind     := "crash" | "hang" | "memerr" | "error"     (job targets)
              | "slow" | "oom" | "crash" | "error"        (service targets)
    jobs     := "*" | int ("," int)*
    selector := "*" | int ("," int)*

For *job* targets the selector names attempts (omitted: attempt 0
only); the clause fires inside sampler worker processes.  For *service*
targets the selector names occurrences of that scope — the Nth time the
serving tier passes the scope's hook — and omitting it matches every
occurrence; the clause fires inside the service's worker threads (see
:class:`ServiceFaultInjector`).

Examples::

    crash@1             job 1's worker dies (os._exit) on its first
                        attempt; the retry succeeds
    hang(2.0)@0         job 0 sleeps 2 s on attempt 0 (trips a
                        sub-2 s job_timeout), then completes
    memerr@*#*          every job raises MemoryError on every attempt
                        (exhausts the retry budget -> serial fallback)
    crash@0;memerr@2#1  plans compose; first matching clause fires
    slow(0.3)@queries   every query execution sleeps 0.3 s (deadline-
                        aware: an expired query aborts mid-sleep)
    oom@substrate#0,1   the first two substrate executions raise
                        MemoryError (drives the circuit breaker open)
    crash@worker-thread#2
                        the third query execution raises from inside
                        the scheduler worker (a simulated serving bug)

The plan string is resolved by the *supervisor* (env or explicit
argument) and shipped to workers inside each job tuple, so it works
under any multiprocessing start method and cannot leak into the
in-process serial paths — degraded jobs always run clean, which is what
makes serial fallback a guaranteed exit.  Service-scoped clauses never
ship to sampler workers, and job-scoped clauses never fire in the
serving tier — the two chaos surfaces compose without interfering.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from functools import lru_cache

from repro.utils.errors import ValidationError

#: environment variable holding the process-wide fault plan
ENV_VAR = "REPRO_FAULTS"

_KINDS = ("crash", "hang", "memerr", "error")
#: service-side targets (fire in the serving tier, never in workers)
SERVICE_SCOPES = ("queries", "substrate", "worker-thread")
_SERVICE_KINDS = ("slow", "oom", "crash", "error")
_DEFAULT_HANG_SECONDS = 30.0
_DEFAULT_SLOW_SECONDS = 0.25


class InjectedFaultError(RuntimeError):
    """The generic raised-in-worker fault (``error`` kind)."""


def _parse_int_set(text: str, what: str) -> "frozenset[int] | None":
    """``"*"`` -> None (match everything); else a frozenset of ints."""
    text = text.strip()
    if text == "*":
        return None
    try:
        values = frozenset(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise ValidationError(f"bad {what} list {text!r} in fault clause") from exc
    if not values or any(v < 0 for v in values):
        raise ValidationError(f"{what} list {text!r} must be non-negative ints or '*'")
    return values


@dataclass(frozen=True)
class FaultClause:
    """One ``kind@target#selector`` injection rule.

    ``scope`` is ``"job"`` for the classic worker-process clauses (the
    selector sets are job indices and attempts) or one of
    :data:`SERVICE_SCOPES` for serving-tier clauses (``jobs`` then holds
    the occurrence set and ``attempts`` is unused).
    """

    kind: str
    seconds: float
    jobs: "frozenset[int] | None"  # None matches every job / occurrence
    attempts: "frozenset[int] | None"  # None matches every attempt
    scope: str = "job"

    def matches(self, job: int, attempt: int) -> bool:
        return (self.jobs is None or job in self.jobs) and (
            self.attempts is None or attempt in self.attempts
        )


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULTS`` schedule."""

    clauses: tuple[FaultClause, ...]

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        clauses = []
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            if "@" not in raw:
                raise ValidationError(
                    f"fault clause {raw!r} needs '@jobs' (e.g. 'crash@1')"
                )
            head, _, targets = raw.partition("@")
            head = head.strip()
            explicit_seconds = None
            if "(" in head:
                if not head.endswith(")"):
                    raise ValidationError(f"unbalanced '(' in fault clause {raw!r}")
                head, _, arg = head[:-1].partition("(")
                try:
                    explicit_seconds = float(arg)
                except ValueError as exc:
                    raise ValidationError(
                        f"bad duration {arg!r} in fault clause {raw!r}"
                    ) from exc
                if explicit_seconds < 0:
                    raise ValidationError("fault duration must be >= 0")
            kind = head.strip().lower()
            target_text, _, selector_text = targets.partition("#")
            scope = target_text.strip().lower()
            if scope in SERVICE_SCOPES:
                if kind not in _SERVICE_KINDS:
                    raise ValidationError(
                        f"unknown service fault kind {kind!r} in {raw!r}; "
                        f"choose one of {_SERVICE_KINDS}"
                    )
                clauses.append(
                    FaultClause(
                        kind=kind,
                        seconds=(
                            _DEFAULT_SLOW_SECONDS
                            if explicit_seconds is None
                            else explicit_seconds
                        ),
                        jobs=(
                            _parse_int_set(selector_text, "occurrence")
                            if selector_text
                            else None  # omitted -> every occurrence
                        ),
                        attempts=None,
                        scope=scope,
                    )
                )
                continue
            if kind not in _KINDS:
                raise ValidationError(
                    f"unknown fault kind {kind!r}; choose one of {_KINDS} "
                    f"(or a service scope target: {SERVICE_SCOPES})"
                )
            clauses.append(
                FaultClause(
                    kind=kind,
                    seconds=(
                        _DEFAULT_HANG_SECONDS
                        if explicit_seconds is None
                        else explicit_seconds
                    ),
                    jobs=_parse_int_set(target_text, "job"),
                    attempts=(
                        _parse_int_set(selector_text, "attempt")
                        if selector_text
                        else frozenset((0,))
                    ),
                )
            )
        if not clauses:
            raise ValidationError(f"empty fault plan {spec!r}")
        return cls(tuple(clauses))

    def fire(self, job: int, attempt: int) -> None:
        """Execute the first clause matching ``(job, attempt)``, if any.

        Runs *inside a worker process*.  ``crash`` hard-exits the
        process (the supervisor sees ``BrokenProcessPool``); ``hang``
        sleeps ``seconds`` then lets the job continue (the supervisor's
        timeout fires first when configured); ``memerr`` / ``error``
        raise.
        """
        for clause in self.clauses:
            if clause.scope != "job" or not clause.matches(job, attempt):
                continue
            if clause.kind == "crash":
                os._exit(3)
            if clause.kind == "hang":
                time.sleep(clause.seconds)
                return
            if clause.kind == "memerr":
                raise MemoryError(
                    f"injected MemoryError (job {job}, attempt {attempt})"
                )
            raise InjectedFaultError(
                f"injected fault (job {job}, attempt {attempt})"
            )


@lru_cache(maxsize=32)
def _cached_parse(spec: str) -> FaultPlan:
    return FaultPlan.parse(spec)


def active_spec() -> "str | None":
    """The process's fault-plan string (``REPRO_FAULTS``), if any.

    Parsed eagerly so a malformed plan fails at the supervisor, not
    inside a worker.
    """
    spec = os.environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    _cached_parse(spec)  # validate now
    return spec


def fire(spec: "str | None", job: int, attempt: int) -> None:
    """Worker-side entry point: apply ``spec`` to ``(job, attempt)``."""
    if spec:
        _cached_parse(spec).fire(job, attempt)


class ServiceFaultInjector:
    """Serving-tier chaos: fires a plan's service-scoped clauses.

    One injector belongs to one :class:`InfluenceService` and counts
    occurrences per scope from zero, so a schedule like
    ``oom@substrate#0,1`` is a pure function of execution order — a
    single-client drill is exactly reproducible, and a concurrent
    hammer still fires a deterministic *number* of faults.

    Scopes and effects:

    * ``queries`` — fires at the start of query execution; ``slow``
      sleeps in deadline-aware slices (an expired query aborts the
      sleep with :class:`~repro.utils.errors.DeadlineExceededError`);
    * ``substrate`` — fires inside the substrate lock, just before
      sampling; ``oom`` raises :class:`MemoryError` there, which is
      what drives the circuit breaker open;
    * ``worker-thread`` — fires in the scheduler worker's execute path;
      ``crash`` / ``error`` raise :class:`InjectedFaultError`, the
      simulated serving-tier bug that must fail one future only.
    """

    def __init__(self, plan: FaultPlan):
        self._clauses = tuple(c for c in plan.clauses if c.scope != "job")
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        return bool(self._clauses)

    def fire(self, scope: str) -> None:
        """Apply the plan to the next occurrence of ``scope``."""
        if not self._clauses:
            return
        with self._lock:
            occurrence = self._counts.get(scope, 0)
            self._counts[scope] = occurrence + 1
        for clause in self._clauses:
            if clause.scope != scope:
                continue
            if clause.jobs is not None and occurrence not in clause.jobs:
                continue
            if clause.kind == "slow":
                self._sleep(clause.seconds)
                return
            if clause.kind == "oom":
                raise MemoryError(
                    f"injected service OOM ({scope} occurrence {occurrence})"
                )
            raise InjectedFaultError(
                f"injected service fault ({scope} occurrence {occurrence})"
            )

    @staticmethod
    def _sleep(seconds: float) -> None:
        """Sleep ``seconds`` in slices, honouring the ambient deadline."""
        from repro.resilience.deadline import active_deadline

        deadline = active_deadline()
        end = time.monotonic() + seconds
        while True:
            left = end - time.monotonic()
            if left <= 0:
                return
            if deadline is not None:
                deadline.check("injected slow fault")
            time.sleep(min(0.02, left))


def service_injector(spec: "str | None") -> "ServiceFaultInjector | None":
    """An injector for ``spec``'s service-scoped clauses, if it has any."""
    if not spec:
        return None
    injector = ServiceFaultInjector(_cached_parse(spec))
    return injector if injector.active else None
