"""Deterministic fault injection for the sampling pipeline.

Every recovery path in :class:`~repro.rrr.parallel.SamplerPool` is
exercised in CI rather than trusted: a :class:`FaultPlan` makes worker
jobs crash, hang past the supervision timeout, or raise ``MemoryError``
on a schedule that is a pure function of ``(job index, attempt)`` — so a
faulted run is as reproducible as a clean one.

Grammar (env var ``REPRO_FAULTS``)::

    plan     := clause (";" clause)*
    clause   := kind ["(" seconds ")"] "@" jobs ["#" attempts]
    kind     := "crash" | "hang" | "memerr" | "error"
    jobs     := "*" | int ("," int)*
    attempts := "*" | int ("," int)*          (omitted: attempt 0 only)

Examples::

    crash@1             job 1's worker dies (os._exit) on its first
                        attempt; the retry succeeds
    hang(2.0)@0         job 0 sleeps 2 s on attempt 0 (trips a
                        sub-2 s job_timeout), then completes
    memerr@*#*          every job raises MemoryError on every attempt
                        (exhausts the retry budget -> serial fallback)
    crash@0;memerr@2#1  plans compose; first matching clause fires

The plan string is resolved by the *supervisor* (env or explicit
argument) and shipped to workers inside each job tuple, so it works
under any multiprocessing start method and cannot leak into the
in-process serial paths — degraded jobs always run clean, which is what
makes serial fallback a guaranteed exit.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import lru_cache

from repro.utils.errors import ValidationError

#: environment variable holding the process-wide fault plan
ENV_VAR = "REPRO_FAULTS"

_KINDS = ("crash", "hang", "memerr", "error")
_DEFAULT_HANG_SECONDS = 30.0


class InjectedFaultError(RuntimeError):
    """The generic raised-in-worker fault (``error`` kind)."""


def _parse_int_set(text: str, what: str) -> "frozenset[int] | None":
    """``"*"`` -> None (match everything); else a frozenset of ints."""
    text = text.strip()
    if text == "*":
        return None
    try:
        values = frozenset(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise ValidationError(f"bad {what} list {text!r} in fault clause") from exc
    if not values or any(v < 0 for v in values):
        raise ValidationError(f"{what} list {text!r} must be non-negative ints or '*'")
    return values


@dataclass(frozen=True)
class FaultClause:
    """One ``kind@jobs#attempts`` injection rule."""

    kind: str
    seconds: float
    jobs: "frozenset[int] | None"  # None matches every job
    attempts: "frozenset[int] | None"  # None matches every attempt

    def matches(self, job: int, attempt: int) -> bool:
        return (self.jobs is None or job in self.jobs) and (
            self.attempts is None or attempt in self.attempts
        )


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULTS`` schedule."""

    clauses: tuple[FaultClause, ...]

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        clauses = []
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            if "@" not in raw:
                raise ValidationError(
                    f"fault clause {raw!r} needs '@jobs' (e.g. 'crash@1')"
                )
            head, _, targets = raw.partition("@")
            head = head.strip()
            seconds = _DEFAULT_HANG_SECONDS
            if "(" in head:
                if not head.endswith(")"):
                    raise ValidationError(f"unbalanced '(' in fault clause {raw!r}")
                head, _, arg = head[:-1].partition("(")
                try:
                    seconds = float(arg)
                except ValueError as exc:
                    raise ValidationError(
                        f"bad duration {arg!r} in fault clause {raw!r}"
                    ) from exc
                if seconds < 0:
                    raise ValidationError("fault duration must be >= 0")
            kind = head.strip().lower()
            if kind not in _KINDS:
                raise ValidationError(
                    f"unknown fault kind {kind!r}; choose one of {_KINDS}"
                )
            jobs_text, _, attempts_text = targets.partition("#")
            clauses.append(
                FaultClause(
                    kind=kind,
                    seconds=seconds,
                    jobs=_parse_int_set(jobs_text, "job"),
                    attempts=(
                        _parse_int_set(attempts_text, "attempt")
                        if attempts_text
                        else frozenset((0,))
                    ),
                )
            )
        if not clauses:
            raise ValidationError(f"empty fault plan {spec!r}")
        return cls(tuple(clauses))

    def fire(self, job: int, attempt: int) -> None:
        """Execute the first clause matching ``(job, attempt)``, if any.

        Runs *inside a worker process*.  ``crash`` hard-exits the
        process (the supervisor sees ``BrokenProcessPool``); ``hang``
        sleeps ``seconds`` then lets the job continue (the supervisor's
        timeout fires first when configured); ``memerr`` / ``error``
        raise.
        """
        for clause in self.clauses:
            if not clause.matches(job, attempt):
                continue
            if clause.kind == "crash":
                os._exit(3)
            if clause.kind == "hang":
                time.sleep(clause.seconds)
                return
            if clause.kind == "memerr":
                raise MemoryError(
                    f"injected MemoryError (job {job}, attempt {attempt})"
                )
            raise InjectedFaultError(
                f"injected fault (job {job}, attempt {attempt})"
            )


@lru_cache(maxsize=32)
def _cached_parse(spec: str) -> FaultPlan:
    return FaultPlan.parse(spec)


def active_spec() -> "str | None":
    """The process's fault-plan string (``REPRO_FAULTS``), if any.

    Parsed eagerly so a malformed plan fails at the supervisor, not
    inside a worker.
    """
    spec = os.environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    _cached_parse(spec)  # validate now
    return spec


def fire(spec: "str | None", job: int, attempt: int) -> None:
    """Worker-side entry point: apply ``spec`` to ``(job, attempt)``."""
    if spec:
        _cached_parse(spec).fire(job, attempt)
