"""Chunk-aligned on-disk checkpoints for the warm-start RRR store.

A killed sweep resumes from its last *completed* chunk: every chunk a
:class:`~repro.rrr.store.RRRStore` samples is persisted as one ``.npz``
(collection arrays + the per-set trace), under a directory keyed by a
digest of the store's ``key()`` tuple.  A ``manifest.json`` pins the
full key; loading verifies it and raises
:class:`~repro.utils.errors.CheckpointError` on any mismatch, so a
checkpoint can never silently feed a different stream.

Writes are atomic (tmp + ``os.replace``), so a kill mid-write leaves at
worst a stale tmp file; loading stops at the first missing or
unreadable chunk and the store simply resamples from there — the chunks
are pure functions of ``(key, chunk index)``, so a partial resume is
still bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.rrr.collection import RRRCollection
from repro.rrr.trace import SampleTrace
from repro.utils.errors import CheckpointError

FORMAT = "repro.rrr.checkpoint.v1"
MANIFEST = "manifest.json"


def canonical_key(key: tuple) -> list:
    """The store key as a JSON-stable list (tuples become lists)."""
    return [list(part) if isinstance(part, tuple) else part for part in key]


def key_digest(key: tuple) -> str:
    """Short stable digest naming the key's checkpoint subdirectory."""
    payload = json.dumps(canonical_key(key), sort_keys=False)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def store_dir(base, key: tuple) -> Path:
    """Where ``key``'s chunks live under the user-facing ``base`` dir."""
    return Path(base) / f"rrr-{key_digest(key)}"


def chunk_path(directory: Path, j: int) -> Path:
    """Where chunk ``j`` lives under a store directory.

    Shared with the memory governor's spill tier: a spilled chunk and a
    checkpointed chunk are the same file in the same format.
    """
    return directory / f"chunk_{j:05d}.npz"


_chunk_path = chunk_path  # historical internal name


def write_manifest(directory: Path, key: tuple) -> None:
    """Create the directory and pin ``key`` in its manifest (idempotent)."""
    directory.mkdir(parents=True, exist_ok=True)
    manifest = directory / MANIFEST
    if manifest.exists():
        verify_manifest(directory, key)
        return
    payload = {"format": FORMAT, "key": canonical_key(key)}
    tmp = manifest.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2))
    os.replace(tmp, manifest)


def verify_manifest(directory: Path, key: tuple) -> None:
    """Raise :class:`CheckpointError` unless the manifest matches ``key``."""
    manifest = directory / MANIFEST
    try:
        payload = json.loads(manifest.read_text())
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint manifest {manifest}: {exc}"
        ) from exc
    if payload.get("format") != FORMAT:
        raise CheckpointError(
            f"{manifest} has format {payload.get('format')!r}, expected {FORMAT!r}"
        )
    if payload.get("key") != canonical_key(key):
        raise CheckpointError(
            f"checkpoint {directory} was written for a different stream: "
            f"stored key {payload.get('key')!r} != requested {canonical_key(key)!r}"
        )


def save_chunk(
    directory: Path, j: int, collection: RRRCollection, trace: SampleTrace
) -> None:
    """Persist chunk ``j`` (arrays + trace) atomically."""
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": np.asarray(FORMAT),
        "flat": collection.flat,
        "offsets": collection.offsets,
        "n": np.asarray(collection.n),
        "trace_sizes": trace.sizes,
        "trace_rounds": trace.rounds,
        "trace_edges": trace.edges_examined,
        "trace_kept": trace.kept_mask,
        "trace_raw_singletons": np.asarray(trace.raw_singletons),
        "trace_sources": trace.sources,
    }
    if collection.sources is not None:
        payload["sources"] = collection.sources
    path = _chunk_path(directory, j)
    # the tmp name must keep the .npz suffix: np.savez appends one to
    # anything else, which would break the atomic rename
    tmp = path.with_suffix(".tmp.npz")
    np.savez_compressed(tmp, **payload)
    os.replace(tmp, path)
    obs.counter_add("rrr.store.checkpoint_saved_chunks", 1)


def _load_chunk(path: Path, n: int) -> tuple[RRRCollection, SampleTrace]:
    with np.load(path, allow_pickle=False) as data:
        if str(data["format"]) != FORMAT or int(data["n"]) != n:
            raise CheckpointError(f"{path} is not a chunk of this store")
        collection = RRRCollection(
            data["flat"],
            data["offsets"],
            n,
            sources=data["sources"] if "sources" in data.files else None,
            check=False,
        )
        trace = SampleTrace(
            sizes=data["trace_sizes"],
            rounds=data["trace_rounds"],
            edges_examined=data["trace_edges"],
            kept_mask=data["trace_kept"],
            raw_singletons=int(data["trace_raw_singletons"]),
            sources=data["trace_sources"],
        )
    return collection, trace


def load_chunks(
    directory: Path, key: tuple, n: int, expected_size
) -> list[tuple[RRRCollection, SampleTrace]]:
    """Load the completed chunk prefix of ``key``'s checkpoint.

    ``expected_size`` maps a chunk index to the kept-set count it must
    hold; loading stops at the first missing, unreadable, or wrong-sized
    chunk (a kill mid-write), and the caller resamples from there.  A
    manifest that names a *different* key raises
    :class:`CheckpointError` instead — that is operator error, not an
    interrupted write.
    """
    if not directory.exists():
        return []
    verify_manifest(directory, key)
    chunks: list[tuple[RRRCollection, SampleTrace]] = []
    j = 0
    while True:
        path = _chunk_path(directory, j)
        if not path.exists():
            break
        try:
            collection, trace = _load_chunk(path, n)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile, CheckpointError):
            # BadZipFile is what a kill mid-write actually leaves behind
            # (np.load on a torn archive); it subclasses Exception directly
            obs.counter_add("rrr.store.checkpoint_bad_chunks", 1)
            break
        if collection.num_sets != expected_size(j):
            obs.counter_add("rrr.store.checkpoint_bad_chunks", 1)
            break
        chunks.append((collection, trace))
        j += 1
    if chunks:
        obs.counter_add("rrr.store.checkpoint_loaded_chunks", len(chunks))
        obs.counter_add(
            "rrr.store.checkpoint_loaded_sets",
            sum(c.num_sets for c, _ in chunks),
        )
    return chunks
