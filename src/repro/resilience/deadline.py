"""Cooperative deadlines and cancellation for the sampling/query path.

A :class:`Deadline` is a small thread-safe token combining a
monotonic-clock expiry with explicit cancellation.  It is *cooperative*:
nothing is interrupted pre-emptively — instead the long-running layers
check the token at their natural round boundaries and raise
:class:`~repro.utils.errors.DeadlineExceededError` when it has expired:

* :class:`~repro.service.scheduler.QueryScheduler` drops queued jobs
  whose deadline passed before a worker picked them up;
* :class:`~repro.rrr.parallel.SamplerPool`'s supervision loop checks
  between fan-out rounds and retries (and bounds its waits by the
  remaining budget, terminating hung workers on expiry);
* :class:`~repro.rrr.store.RRRStore.ensure` checks between chunk
  top-ups;
* :func:`~repro.imm.imm.run_imm` checks between estimation phases.

Propagation is ambient rather than threaded through every signature: a
caller (the service's worker thread) enters :func:`deadline_scope` and
every layer below reads :func:`active_deadline`.  The scope rides a
``contextvars.ContextVar``, so concurrent worker threads each see only
their own query's deadline.

``cancel()`` makes the token expired immediately, which is how
``InfluenceService.query(timeout=...)`` reclaims a still-running worker
slot after the caller gave up waiting.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Iterator, Optional

from repro.utils.errors import DeadlineExceededError, ValidationError

_ACTIVE: "contextvars.ContextVar[Optional[Deadline]]" = contextvars.ContextVar(
    "repro_active_deadline", default=None
)


class Deadline:
    """An absolute monotonic-clock expiry plus a cancellation flag.

    The unit of cooperative time budgeting: created at admission (so
    queue wait counts against the budget), carried as ambient context
    via :func:`deadline_scope` / :func:`active_deadline`, and checked by
    every long-running layer at its natural yield points.  ``None``
    expiry means unbounded; :meth:`cancel` trips the token early.
    """

    __slots__ = ("_expires_at", "_cancelled")

    def __init__(self, expires_at: Optional[float] = None):
        #: monotonic timestamp after which the token is expired; None
        #: means no time limit (the token can still be cancelled)
        self._expires_at = expires_at
        self._cancelled = False

    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        """A deadline ``seconds`` from now (``None`` -> no time limit)."""
        if seconds is None:
            return cls(None)
        seconds = float(seconds)
        if seconds <= 0:
            raise ValidationError(f"deadline must be positive, got {seconds}")
        return cls(time.monotonic() + seconds)

    @classmethod
    def never(cls) -> "Deadline":
        """A token with no time limit (cancellation still works)."""
        return cls(None)

    def cancel(self) -> None:
        """Expire the token immediately (idempotent, thread-safe)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def expired(self) -> bool:
        if self._cancelled:
            return True
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def remaining(self) -> Optional[float]:
        """Seconds of budget left; ``None`` when unbounded, 0.0 when spent."""
        if self._cancelled:
            return 0.0
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def check(self, what: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the token expired."""
        if self.expired:
            raise DeadlineExceededError(what, cancelled=self._cancelled)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        if self._cancelled:
            return "Deadline(cancelled)"
        if self._expires_at is None:
            return "Deadline(never)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


def active_deadline() -> Optional[Deadline]:
    """The deadline governing the current context, if any."""
    return _ACTIVE.get()


@contextlib.contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Make ``deadline`` ambient for the dynamic extent of the block.

    ``None`` clears any inherited deadline, so a scope can also shield
    nested work from an outer budget.  Scopes nest; the previous token
    is restored on exit.
    """
    token = _ACTIVE.set(deadline)
    try:
        yield deadline
    finally:
        _ACTIVE.reset(token)
