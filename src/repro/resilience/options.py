"""Frozen configuration for the fault-tolerant sampling pipeline.

:class:`ResilienceOptions` rides the same frozen-options pattern as
:class:`~repro.imm.options.IMMOptions` (it is in fact a field of it):
hashable, eagerly validated, safely shareable across every run of a
sweep.  The defaults give every pool a small retry budget and serial
degradation, so a stray worker crash never kills a run even when the
caller configured nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class ResilienceOptions:
    """Supervision knobs for one sampling pipeline.

    Attributes
    ----------
    job_timeout:
        Seconds one fan-out round may run before unfinished jobs are
        declared hung, the executor is recycled, and the jobs retried.
        ``None`` (default) waits forever.
    max_retries:
        Retries per job beyond its first attempt.  A job that still has
        no result afterwards is *degraded*: re-run serially in-process
        (bit-identical, each job carries its own ``SeedSequence``) when
        ``serial_fallback`` is on, or raised as
        :class:`~repro.utils.errors.WorkerCrashError` /
        :class:`~repro.utils.errors.SamplingTimeoutError` otherwise.
    backoff_base:
        Base of the deterministic exponential backoff slept between
        retry rounds: ``backoff_base * 2**round`` seconds, no jitter, so
        retried runs stay reproducible second-for-second.
    serial_fallback:
        Degrade to in-process sampling once the retry budget is spent
        (default) instead of raising.
    checkpoint_dir:
        Base directory for chunk-aligned
        :class:`~repro.rrr.store.RRRStore` checkpoints; ``None``
        disables persistence.  Each store nests its own subdirectory
        keyed by a digest of its ``key()`` tuple.
    """

    job_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    serial_fallback: bool = True
    checkpoint_dir: str | None = None

    def __post_init__(self):
        if self.job_timeout is not None and not self.job_timeout > 0:
            raise ValidationError("job_timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ValidationError("backoff_base must be >= 0")

    def backoff(self, retry_round: int) -> float:
        """Deterministic sleep before retry round ``retry_round`` (0-based)."""
        return self.backoff_base * (2.0**retry_round)


#: the library-wide default supervision policy (used when a caller passes
#: ``resilience=None`` anywhere in the pipeline)
DEFAULT_RESILIENCE = ResilienceOptions()
