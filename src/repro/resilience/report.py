"""What the supervision loop did to keep a sampling run alive.

A :class:`ResilienceReport` travels with the
:class:`~repro.rrr.trace.SampleTrace` of every supervised sampling call
(merging as traces merge), so ``IMMResult.trace.resilience`` answers
"how rough was that run" — retries, executor rebuilds, degraded jobs,
and an estimate of the wall-clock the faults cost.  :meth:`publish`
mirrors the totals into :mod:`repro.obs` counters for the profile
exporters.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro import obs


@dataclass
class ResilienceReport:
    """Tally of every recovery action one supervised sampling run took.

    Attributes
    ----------
    retries:
        Job re-submissions to the worker pool.
    rebuilds:
        Times the executor was torn down and rebuilt (worker crash or
        hung-job recycle).
    degraded_jobs:
        Jobs that exhausted their retry budget and ran serially
        in-process.
    timeouts / crashes / failures:
        Job losses by cause: past the round deadline, worker death
        (``BrokenProcessPool``), or an exception raised inside the
        worker (e.g. ``MemoryError``).
    wall_clock_lost:
        Seconds spent in rounds that ended with at least one lost job,
        plus backoff sleeps — an upper-bound estimate of the time the
        faults cost.
    events:
        One dict per recovery action, in order, for forensic dumps.
    """

    retries: int = 0
    rebuilds: int = 0
    degraded_jobs: int = 0
    timeouts: int = 0
    crashes: int = 0
    failures: int = 0
    wall_clock_lost: float = 0.0
    events: list[dict] = field(default_factory=list)

    @property
    def total_faults(self) -> int:
        return self.timeouts + self.crashes + self.failures

    @property
    def clean(self) -> bool:
        """True when the run needed no recovery at all."""
        return self.total_faults == 0 and self.degraded_jobs == 0

    def record(self, kind: str, job: int, attempt: int, detail: str = "") -> None:
        """Log one job loss (``kind`` in timeout/crash/failure)."""
        if kind == "timeout":
            self.timeouts += 1
        elif kind == "crash":
            self.crashes += 1
        else:
            self.failures += 1
        self.events.append(
            {"kind": kind, "job": int(job), "attempt": int(attempt), "detail": detail}
        )

    def merged_with(self, other: "ResilienceReport") -> "ResilienceReport":
        """Combine two reports (successive sampling phases of one run)."""
        return ResilienceReport(
            retries=self.retries + other.retries,
            rebuilds=self.rebuilds + other.rebuilds,
            degraded_jobs=self.degraded_jobs + other.degraded_jobs,
            timeouts=self.timeouts + other.timeouts,
            crashes=self.crashes + other.crashes,
            failures=self.failures + other.failures,
            wall_clock_lost=self.wall_clock_lost + other.wall_clock_lost,
            events=self.events + other.events,
        )

    def as_dict(self) -> dict:
        """JSON-serializable form (CI artifacts, forensic dumps)."""
        return asdict(self)

    def publish(self) -> None:
        """Mirror non-zero totals into the installed obs registry."""
        for name, value in (
            ("resilience.retries", self.retries),
            ("resilience.rebuilds", self.rebuilds),
            ("resilience.degraded_jobs", self.degraded_jobs),
            ("resilience.timeouts", self.timeouts),
            ("resilience.crashes", self.crashes),
            ("resilience.failures", self.failures),
        ):
            if value:
                obs.counter_add(name, value)
        if self.wall_clock_lost:
            obs.observe("resilience.wall_clock_lost", self.wall_clock_lost)


def merge_reports(
    a: "ResilienceReport | None", b: "ResilienceReport | None"
) -> "ResilienceReport | None":
    """Merge two optional reports (identity-preserving for ``None``)."""
    if a is None:
        return b
    if b is None:
        return a
    return a.merged_with(b)
