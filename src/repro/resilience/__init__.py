"""Fault tolerance for the sampling pipeline.

Long sweeps live in the resident sampling pipeline (``SamplerPool`` +
``RRRStore``), which is exactly where a single worker crash, hung job,
or host-memory spike used to kill the whole run.  This package gives
the pipeline a production posture:

* :class:`ResilienceOptions` — frozen supervision knobs (per-round
  timeout, bounded deterministic retries, serial fallback, checkpoint
  directory), a field of :class:`~repro.imm.options.IMMOptions`;
* :class:`ResilienceReport` — what recovery actually happened, attached
  to every supervised :class:`~repro.rrr.trace.SampleTrace` and
  exported through :mod:`repro.obs`;
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  harness (env ``REPRO_FAULTS``) CI uses to exercise every recovery
  path;
* :mod:`repro.resilience.checkpoint` — chunk-aligned ``RRRStore``
  persistence so a killed sweep resumes from disk (imported lazily by
  :mod:`repro.rrr.store`; not re-exported here to keep import order
  acyclic).

Because every fan-out job carries its own spawned ``SeedSequence``, a
retried (or serially degraded) job reproduces its exact sets — recovery
never changes results, only wall-clock.
"""

from repro.resilience.deadline import Deadline, active_deadline, deadline_scope
from repro.resilience.faults import FaultClause, FaultPlan, ServiceFaultInjector
from repro.resilience.options import DEFAULT_RESILIENCE, ResilienceOptions
from repro.resilience.report import ResilienceReport, merge_reports

__all__ = [
    "DEFAULT_RESILIENCE",
    "Deadline",
    "FaultClause",
    "FaultPlan",
    "ResilienceOptions",
    "ResilienceReport",
    "ServiceFaultInjector",
    "active_deadline",
    "deadline_scope",
    "merge_reports",
]
