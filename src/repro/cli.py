"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the 16-network registry with paper-scale statistics.
``seeds``
    Run IMM on a registry dataset or a SNAP edge list and print the seed
    set with its influence estimates.
``compare``
    Run eIM/gIM/cuRipples on one dataset and print the comparison.
``experiment``
    Regenerate one of the paper's tables/figures by name.
``serve``
    Run the influence-query service: JSON-lines requests over TCP, or
    batch mode reading requests from stdin (one per line).
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.experiments import ExperimentConfig, figures, tables
from repro.experiments.runner import compare_engines
from repro.graphs import assign_ic_weights, assign_lt_weights, load_edgelist
from repro.graphs.datasets import DATASETS, load_dataset
from repro.imm import BoundsConfig, IMMOptions, run_imm
from repro.resilience import ResilienceOptions

EXPERIMENTS = {
    "table1": tables.table1_datasets,
    "table1b": tables.table1_calibration,
    "table2": tables.table2_ic_k_sweep,
    "table3": tables.table3_ic_eps_sweep,
    "table4": tables.table4_lt_k_sweep,
    "table5": tables.table5_lt_eps_sweep,
    "fig3": figures.fig3_scan_scaling,
    "fig4": figures.fig4_log_encoding_memory,
    "fig5": figures.fig5_source_elim_speedup,
    "fig6": figures.fig6_source_elim_memory,
    "fig7": figures.fig7_ic_speedups,
    "fig8": figures.fig8_lt_speedups,
    "sec42": figures.sec42_csc_memory,
}


def _workload_parent(
    *,
    k: int,
    epsilon: float,
    seed: int,
    theta_scale: float,
    dataset_required: bool = False,
) -> argparse.ArgumentParser:
    """The workload options shared by ``seeds`` and ``compare``.

    A fresh parent parser per subcommand (argparse ``parents=`` shares
    action objects, so one instance cannot carry per-command defaults or
    required-ness).  ``seeds`` keeps ``--dataset`` out of the parent —
    there it lives in a mutually exclusive group with ``--edge-list``,
    which argparse cannot express across a parent boundary.
    """
    parent = argparse.ArgumentParser(add_help=False)
    if dataset_required:
        parent.add_argument("--dataset", required=True, choices=sorted(DATASETS),
                            help="registry code")
    parent.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    parent.add_argument("--k", type=int, default=k)
    parent.add_argument("--epsilon", type=float, default=epsilon)
    parent.add_argument("--model", default="IC", choices=["IC", "LT"])
    parent.add_argument("--seed", type=int, default=seed, help="RNG seed")
    parent.add_argument("--theta-scale", type=float, default=theta_scale,
                        help="scale the IMM sample-size bounds (1.0 = exact)")
    parent.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="RRR sampler worker processes (IMMOptions.n_jobs)")
    parent.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-round sampling timeout before hung workers "
                             "are recycled (default: wait forever)")
    parent.add_argument("--retries", type=int, default=2, metavar="N",
                        help="sampling retry budget per job before serial "
                             "degradation (default 2)")
    parent.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="persist warm-start RRR chunks under DIR and "
                             "resume from them on re-run")
    parent.add_argument("--selection-strategy", default="fast",
                        choices=["fast", "lazy", "reference"],
                        help="greedy selection implementation: 'fast' "
                             "(argmax + incremental inverted index), 'lazy' "
                             "(CELF-style max-heap over exact marginal gains), "
                             "'reference' (the Alg. 3 oracle); seeds and "
                             "selection stats are bit-identical across all "
                             "three")
    parent.add_argument("--visited-mode", default=None,
                        choices=["auto", "sorted", "bitset"],
                        help="sampler visited bookkeeping: 'bitset' keeps a "
                             "dense word-packed visited plane, 'sorted' the "
                             "classic sorted-key array; 'auto' picks bitset "
                             "whenever the plane fits the kernel memory "
                             "budget (default: REPRO_VISITED_MODE, else "
                             "auto; output is bit-identical in every mode)")
    parent.add_argument("--coverage-scan", default=None,
                        choices=["auto", "csr", "bitset"],
                        help="seed-selection coverage scan: 'bitset' popcounts "
                             "word-packed membership rows, 'csr' walks the "
                             "inverted-index postings; 'auto' picks by the "
                             "kernel memory budget (default: "
                             "REPRO_COVERAGE_SCAN, else auto; seeds and "
                             "stats are identical either way)")
    parent.add_argument("--data-plane", default=None, choices=["pickle", "shm"],
                        help="parent<->worker transport: 'shm' publishes the "
                             "graph once into shared memory and ships results "
                             "log-encoded; 'pickle' is the classic path "
                             "(default: REPRO_DATA_PLANE, else shm where "
                             "available; output is bit-identical either way)")
    parent.add_argument("--memory-budget-mb", type=float, default=None,
                        metavar="MB",
                        help="process memory budget in MiB: RRR chunks "
                             "demote to compressed/spilled tiers and dense "
                             "kernel planes fall back to sparse paths rather "
                             "than exceed it; seeds are bit-identical at "
                             "every budget (default: REPRO_MEMORY_BUDGET_MB, "
                             "else unbounded)")
    parent.add_argument("--profile", action="store_true",
                        help="print a per-phase timing/metrics table for the run")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="eIM reproduction: influence maximization via IMM "
                    "with a simulated GPU substrate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the evaluation-network registry")

    seeds = sub.add_parser(
        "seeds", help="run IMM and print the seed set",
        parents=[_workload_parent(k=10, epsilon=0.2, seed=0, theta_scale=1.0)],
    )
    src = seeds.add_mutually_exclusive_group(required=True)
    src.add_argument("--dataset", choices=sorted(DATASETS), help="registry code")
    src.add_argument("--edge-list", help="path to a SNAP-format edge list")
    seeds.add_argument("--no-source-elimination", action="store_true",
                       help="disable the paper's §3.4 heuristic")
    seeds.add_argument("--validate", type=int, metavar="SAMPLES", default=0,
                       help="cross-check with this many forward Monte-Carlo cascades")
    seeds.add_argument("--profile-json", metavar="FILE", default=None,
                       help="also write the profile report as JSON to FILE")

    compare = sub.add_parser(
        "compare", help="compare the three engines",
        parents=[_workload_parent(k=50, epsilon=0.1, seed=2025,
                                  theta_scale=0.5, dataset_required=True)],
    )
    compare.add_argument("--warm-start", action="store_true",
                         help="share one warm-start RRR sample across the repeats")

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--datasets", help="comma-separated code subset")
    experiment.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])

    serve = sub.add_parser(
        "serve", help="serve influence queries (JSON-lines over TCP or stdin)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7473,
                       help="TCP port (0 = ephemeral); ignored with --stdin")
    serve.add_argument("--stdin", action="store_true",
                       help="batch mode: read one JSON request per line from "
                            "stdin, write one JSON response per line to stdout")
    serve.add_argument("--max-inflight", type=int, default=2,
                       help="concurrent query executions (worker threads)")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="admitted-but-waiting queries before submits are "
                            "rejected with ServiceOverloadedError")
    serve.add_argument("--max-substrates", type=int, default=8,
                       help="warm sampling substrates (RRR store + coverage "
                            "index) kept resident, LRU beyond that")
    serve.add_argument("--exact-cache-size", type=int, default=128,
                       help="finished results kept for exact repeat hits")
    serve.add_argument("--chunk-sets", type=int, default=1024,
                       help="substrate RRR chunk granularity")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="persist substrate chunks under DIR so a "
                            "restarted service warm-starts from disk")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-query wall-clock budget; expired "
                            "queries fail with DeadlineExceededError instead "
                            "of occupying a worker (unset = unbounded)")
    serve.add_argument("--read-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-connection idle read timeout; a silent "
                            "client gets its connection closed (unset = "
                            "wait forever)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="on SIGTERM, wait this long for admitted "
                            "queries to finish before closing")
    serve.add_argument("--memory-budget-mb", type=float, default=None,
                       metavar="MB",
                       help="process memory budget in MiB; under pressure "
                            "substrate chunks demote to compressed/spilled "
                            "tiers, and overcommitted admissions are served "
                            "degraded or shed instead of risking a host OOM "
                            "(default: REPRO_MEMORY_BUDGET_MB, else "
                            "unbounded)")
    serve.add_argument("--health", action="store_true",
                       help="client mode: ask the server at --host:--port "
                            "for its health snapshot, print it, exit")
    return parser


def _cmd_datasets(_args) -> int:
    cfg = ExperimentConfig.from_env()
    print(tables.table1_datasets(cfg).render())
    return 0


def _cmd_seeds(args) -> int:
    if args.dataset:
        graph = load_dataset(args.dataset, scale=args.scale, rng=args.seed)
        label = f"{DATASETS[args.dataset].name} ({args.scale})"
    else:
        graph = load_edgelist(args.edge_list)
        label = args.edge_list
    assign = assign_ic_weights if args.model == "IC" else assign_lt_weights
    graph = assign(graph)
    print(f"{label}: {graph.n} vertices, {graph.m} edges")
    resilience = ResilienceOptions(
        job_timeout=args.timeout,
        max_retries=args.retries,
        checkpoint_dir=args.checkpoint_dir,
    )
    store = None
    if args.checkpoint_dir is not None:
        # route sampling through a checkpointed warm-start store so a
        # killed run resumes from its last completed chunk
        from repro.rrr.store import shared_store

        store = shared_store(
            graph,
            model=args.model,
            eliminate_sources=not args.no_source_elimination,
            entropy=args.seed,
            n_jobs=args.jobs,
            resilience=resilience,
            data_plane=args.data_plane,
            visited_mode=args.visited_mode,
        )
    result = run_imm(
        graph, args.k, args.epsilon, rng=args.seed,
        options=IMMOptions(
            model=args.model,
            eliminate_sources=not args.no_source_elimination,
            bounds=BoundsConfig(theta_scale=args.theta_scale),
            selection_strategy=args.selection_strategy,
            n_jobs=args.jobs,
            profile=args.profile or args.profile_json is not None,
            resilience=resilience,
            data_plane=args.data_plane,
            visited_mode=args.visited_mode,
            coverage_scan=args.coverage_scan,
            memory_budget_mb=args.memory_budget_mb,
        ),
        store=store,
    )
    print(f"theta = {result.theta} RRR sets; coverage = {result.coverage_fraction:.3f}")
    recovery = result.trace.resilience
    if recovery is not None and not recovery.clean:
        print(f"resilience: {recovery.retries} retries, "
              f"{recovery.rebuilds} pool rebuilds, "
              f"{recovery.degraded_jobs} degraded jobs, "
              f"~{recovery.wall_clock_lost:.2f}s lost")
    print(f"seeds: {sorted(result.seeds.tolist())}")
    print(f"influence estimate: {result.influence_estimate():.1f} "
          f"({100 * result.influence_estimate() / graph.n:.1f}% of network)")
    if args.validate:
        from repro.diffusion import estimate_spread

        spread = estimate_spread(graph, result.seeds, args.model,
                                 args.validate, rng=args.seed + 1)
        print(f"Monte-Carlo spread ({args.validate} cascades): {spread:.1f}")
    if result.profile is not None:
        if args.profile:
            print()
            print(obs.render_table(result.profile))
        if args.profile_json is not None:
            obs.write_json(result.profile, args.profile_json)
            print(f"profile written to {args.profile_json}")
    return 0


def _cmd_compare(args) -> int:
    if args.memory_budget_mb is not None:
        # compare drives many runs through ExperimentConfig; pin the
        # budget process-wide instead of threading it through each one
        from repro.memory.budget import governor

        governor().set_budget(int(args.memory_budget_mb * 1024 * 1024))
    cfg = ExperimentConfig.from_env(
        scale=args.scale, seed=args.seed,
        theta_scale=args.theta_scale, sweep_theta_scale=args.theta_scale,
        datasets=(args.dataset,), n_jobs=args.jobs,
        warm_start=args.warm_start or args.checkpoint_dir is not None,
        job_timeout=args.timeout, max_retries=args.retries,
        checkpoint_dir=args.checkpoint_dir,
        data_plane=args.data_plane,
        selection_strategy=args.selection_strategy,
        visited_mode=args.visited_mode,
        coverage_scan=args.coverage_scan,
    )
    handle = obs.install() if args.profile else None
    row = compare_engines(args.dataset, args.k, args.epsilon, args.model, cfg)
    for result in (row.eim, row.gim, row.curipples):
        status = "OOM" if result.oom else f"{result.total_cycles:.3e} cycles"
        extra = "" if result.oom else (
            f"  theta={result.theta}  rrr={result.rrr_store_bytes:,}B"
            f"  peak={result.peak_device_bytes:,}B"
        )
        print(f"{result.engine:<10s} {status}{extra}")
    if not (row.eim.oom or row.gim.oom):
        print(f"\neIM speedup: {row.speedup_vs_gim:.2f}x over gIM, "
              f"{row.speedup_vs_curipples:.2f}x over cuRipples")
    if handle is not None:
        report = handle.report()
        obs.uninstall()
        print()
        print(obs.render_table(report))
    return 0


def _cmd_experiment(args) -> int:
    overrides = {"scale": args.scale}
    if args.datasets:
        overrides["datasets"] = tuple(
            c.strip().upper() for c in args.datasets.split(",") if c.strip()
        )
    cfg = ExperimentConfig.from_env(**overrides)
    print(EXPERIMENTS[args.name](cfg).render())
    return 0


def _cmd_serve(args) -> int:
    from repro.service import InfluenceService, ServiceOptions
    from repro.service.server import request_once, serve_stdin, serve_tcp

    if args.health:
        import json

        response = request_once(args.host, args.port, {"health": True})
        print(json.dumps(response.get("health", response), indent=2))
        return 0 if response.get("ok") else 1
    options = ServiceOptions(
        max_inflight=args.max_inflight,
        max_queue_depth=args.max_queue_depth,
        exact_cache_size=args.exact_cache_size,
        max_substrates=args.max_substrates,
        chunk_sets=args.chunk_sets,
        checkpoint_dir=args.checkpoint_dir,
        default_deadline=args.deadline,
        memory_budget_mb=args.memory_budget_mb,
    )
    with InfluenceService(options) as service:
        if args.stdin:
            served = serve_stdin(service, sys.stdin, sys.stdout)
            print(f"served {served} requests", file=sys.stderr)
        else:
            print(f"serving on {args.host}:{args.port} "
                  f"(JSON-lines; Ctrl-C to stop, SIGTERM to drain)",
                  file=sys.stderr)
            serve_tcp(service, args.host, args.port,
                      read_timeout=args.read_timeout,
                      drain_timeout=args.drain_timeout)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "seeds": _cmd_seeds,
        "compare": _cmd_compare,
        "experiment": _cmd_experiment,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
