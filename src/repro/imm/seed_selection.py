"""Greedy maximum-coverage seed selection over an RRR collection (Alg. 3).

Each of ``k`` iterations picks the vertex with the highest remaining count
``C[v]``, marks every still-uncovered set containing it as covered, and
decrements the counts of all members of those sets — so ``C`` always holds
exact marginal coverage gains.

Two interchangeable implementations:

* ``fast`` — inverted-index implementation (vertex -> element positions),
  the host-performance choice; per iteration it touches only the sets that
  actually contain the selected vertex.
* ``reference`` — a literal transcription of Alg. 3: every uncovered set
  is scanned with a binary search per iteration.  Quadratic-ish and used
  by the tests as the semantics oracle.

Both produce identical seeds and identical :class:`SelectionStats`; the
stats drive the simulated-GPU scan cost models (thread- vs warp-based,
Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.rrr.collection import RRRCollection
from repro.utils.errors import ValidationError
from repro.utils.segments import segmented_arange


@dataclass
class SelectionStats:
    """Per-iteration work counters consumed by the device cost models."""

    sets_scanned: np.ndarray  # uncovered sets examined in each iteration
    sets_found: np.ndarray  # sets containing the selected vertex
    elements_decremented: np.ndarray  # count updates performed
    avg_set_size: float  # mean stored set size (binary-search depth input)

    def total_scans(self) -> int:
        return int(self.sets_scanned.sum())


@dataclass
class SelectionResult:
    """Outcome of greedy seed selection."""

    seeds: np.ndarray  # selected vertex ids, in selection order
    covered_sets: int  # sets covered by the full seed set
    num_sets: int  # total sets in the collection
    marginal_gains: np.ndarray  # newly covered sets per iteration
    stats: SelectionStats

    @property
    def coverage_fraction(self) -> float:
        """F_R(S): fraction of RRR sets covered by the seeds."""
        return self.covered_sets / self.num_sets if self.num_sets else 0.0


def select_seeds(
    collection: RRRCollection, k: int, strategy: str = "fast"
) -> SelectionResult:
    """Greedy max-coverage selection of ``k`` seeds (ties -> lowest id).

    The returned seeds are guaranteed **distinct**: once a vertex is
    selected its count is masked to -1, so even after every set is
    covered (all remaining marginal gains zero) later iterations pick
    the lowest-id *unselected* vertex rather than re-returning vertex 0.
    """
    if k < 1:
        raise ValidationError("k must be >= 1")
    if k > collection.n:
        raise ValidationError(f"k={k} exceeds the number of vertices {collection.n}")
    if strategy == "fast":
        result = _greedy_fast(collection, k)
    elif strategy == "reference":
        result = _greedy_reference(collection, k)
    else:
        raise ValidationError(f"unknown selection strategy {strategy!r}")
    if obs.enabled():
        obs.counter_add("selection.iterations", k)
        obs.counter_add("selection.sets_scanned", int(result.stats.sets_scanned.sum()))
        obs.counter_add(
            "selection.decrements", int(result.stats.elements_decremented.sum())
        )
        obs.counter_add("selection.covered_sets", int(result.covered_sets))
    return result


def _greedy_fast(collection: RRRCollection, k: int) -> SelectionResult:
    flat = collection.flat
    offsets = collection.offsets
    num_sets = collection.num_sets
    counts = collection.counts.copy()
    sizes = np.diff(offsets)

    # inverted index: element positions grouped by vertex id
    order = np.argsort(flat, kind="stable")
    vert_starts = np.searchsorted(flat[order], np.arange(collection.n + 1))

    covered = np.zeros(num_sets, dtype=bool)
    seeds = np.empty(k, dtype=np.int64)
    gains = np.empty(k, dtype=np.int64)
    scanned = np.empty(k, dtype=np.int64)
    found = np.empty(k, dtype=np.int64)
    decremented = np.empty(k, dtype=np.int64)
    covered_total = 0

    for it in range(k):
        v = int(np.argmax(counts))
        seeds[it] = v
        scanned[it] = num_sets - covered_total  # Alg. 3 scans uncovered sets
        positions = order[vert_starts[v] : vert_starts[v + 1]]
        set_ids = np.searchsorted(offsets, positions, side="right") - 1
        new_sets = set_ids[~covered[set_ids]]
        covered[new_sets] = True
        gains[it] = new_sets.size
        found[it] = new_sets.size
        covered_total += new_sets.size
        if new_sets.size:
            elem_idx = segmented_arange(offsets[new_sets], sizes[new_sets])
            np.subtract.at(counts, flat[elem_idx], 1)
            decremented[it] = elem_idx.size
        else:
            decremented[it] = 0
        counts[v] = -1  # mask: selected vertices must never win argmax again

    stats = SelectionStats(
        sets_scanned=scanned,
        sets_found=found,
        elements_decremented=decremented,
        avg_set_size=float(sizes.mean()) if num_sets else 0.0,
    )
    return SelectionResult(
        seeds=seeds,
        covered_sets=covered_total,
        num_sets=num_sets,
        marginal_gains=gains,
        stats=stats,
    )


def _greedy_reference(collection: RRRCollection, k: int) -> SelectionResult:
    """Literal Alg. 3: binary-search every uncovered set per iteration."""
    flat = collection.flat
    offsets = collection.offsets
    num_sets = collection.num_sets
    counts = collection.counts.copy()
    sizes = np.diff(offsets)

    covered = np.zeros(num_sets, dtype=bool)  # the paper's F array
    seeds = np.empty(k, dtype=np.int64)
    gains = np.empty(k, dtype=np.int64)
    scanned = np.empty(k, dtype=np.int64)
    found = np.empty(k, dtype=np.int64)
    decremented = np.empty(k, dtype=np.int64)
    covered_total = 0

    for it in range(k):
        v = int(np.argmax(counts))
        seeds[it] = v
        n_found = 0
        n_dec = 0
        scanned[it] = num_sets - covered_total
        for i in range(num_sets):
            if covered[i]:
                continue
            start, end = offsets[i], offsets[i + 1]
            segment = flat[start:end]
            j = np.searchsorted(segment, v)
            if j < segment.size and segment[j] == v:
                covered[i] = True
                n_found += 1
                np.subtract.at(counts, segment, 1)
                n_dec += segment.size
        gains[it] = n_found
        found[it] = n_found
        decremented[it] = n_dec
        covered_total += n_found
        counts[v] = -1  # mask: selected vertices must never win argmax again

    stats = SelectionStats(
        sets_scanned=scanned,
        sets_found=found,
        elements_decremented=decremented,
        avg_set_size=float(sizes.mean()) if num_sets else 0.0,
    )
    return SelectionResult(
        seeds=seeds,
        covered_sets=covered_total,
        num_sets=num_sets,
        marginal_gains=gains,
        stats=stats,
    )
