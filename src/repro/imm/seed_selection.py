"""Greedy maximum-coverage seed selection over an RRR collection (Alg. 3).

Each of ``k`` iterations picks the vertex with the highest remaining count
``C[v]``, marks every still-uncovered set containing it as covered, and
decrements the counts of all members of those sets — so ``C`` always holds
exact marginal coverage gains.

Three interchangeable implementations:

* ``fast`` — inverted-index implementation (vertex -> element positions
  via :class:`~repro.imm.coverage.CoverageIndex`), argmax over the count
  array each iteration; the host-performance default.
* ``lazy`` — the same index, but the argmax is replaced by a CELF-style
  max-heap over marginal gains.  For max coverage the maintained counts
  *are* the exact marginal gains (submodularity makes stale heap
  entries upper bounds), so lazy popping is exact — identical seeds,
  identical stats — while touching O(pops · log n) instead of O(n) per
  iteration once coverage concentrates.
* ``reference`` — a literal transcription of Alg. 3: every uncovered set
  is scanned with a binary search per iteration.  Quadratic-ish and used
  by the tests as the semantics oracle.

All strategies produce identical seeds and identical
:class:`SelectionStats`; the stats drive the simulated-GPU scan cost
models (thread- vs warp-based, Fig. 3).

Callers that select repeatedly over a growing collection — IMM's
estimation phases, the warm-start store's k/ε sweeps, Fig. 3's prefix
sweep — pass ``index=`` a :class:`CoverageIndex` they keep extending, so
the vertex->position index is built once per *stream* instead of once
per *call*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush

import numpy as np

from repro import obs
from repro.imm.coverage import CoverageIndex, extend_membership
from repro.kernels import (
    MembershipPlane,
    andnot_words,
    choose_scan_impl,
    decode_bits,
    tail_mask,
    words_for_bits,
)
from repro.rrr.collection import RRRCollection
from repro.utils.errors import ValidationError
from repro.utils.segments import segmented_arange

#: every implementation select_seeds accepts
STRATEGIES = ("fast", "lazy", "reference")


@dataclass
class SelectionStats:
    """Per-iteration work counters consumed by the device cost models."""

    sets_scanned: np.ndarray  # uncovered sets examined in each iteration
    sets_found: np.ndarray  # sets containing the selected vertex
    elements_decremented: np.ndarray  # count updates performed
    avg_set_size: float  # mean stored set size (binary-search depth input)

    def total_scans(self) -> int:
        return int(self.sets_scanned.sum())


@dataclass
class SelectionResult:
    """Outcome of greedy seed selection."""

    seeds: np.ndarray  # selected vertex ids, in selection order
    covered_sets: int  # sets covered by the full seed set
    num_sets: int  # total sets in the collection
    marginal_gains: np.ndarray  # newly covered sets per iteration
    stats: SelectionStats

    @property
    def coverage_fraction(self) -> float:
        """F_R(S): fraction of RRR sets covered by the seeds."""
        return self.covered_sets / self.num_sets if self.num_sets else 0.0


def select_seeds(
    collection: RRRCollection,
    k: int,
    strategy: str = "fast",
    index: CoverageIndex | None = None,
    scan: str | None = None,
) -> SelectionResult:
    """Greedy max-coverage selection of ``k`` seeds (ties -> lowest id).

    The returned seeds are guaranteed **distinct**: once a vertex is
    selected its gain is retired, so even after every set is covered
    (all remaining marginal gains zero) later iterations pick the
    lowest-id *unselected* vertex rather than re-returning vertex 0.

    ``index`` — an optional :class:`CoverageIndex` whose stream prefix
    matches ``collection.flat`` (it may cover *more* elements, e.g. the
    store's full cached sample behind a prefix view); when omitted the
    ``fast``/``lazy`` strategies build a throwaway one.

    ``scan`` — how ``fast``/``lazy`` compute the newly covered sets of
    each pick: ``"csr"`` walks the vertex's postings element-wise,
    ``"bitset"`` takes popcount(membership AND NOT covered) over packed
    words (the host mirror of §3.5 thread-based scanning), ``"auto"``
    (or ``None``, via ``REPRO_COVERAGE_SCAN``) picks bitset when the
    membership plane fits the kernel memory budget.  Seeds and
    :class:`SelectionStats` are bit-identical across scans.
    """
    if k < 1:
        raise ValidationError("k must be >= 1")
    if k > collection.n:
        raise ValidationError(f"k={k} exceeds the number of vertices {collection.n}")
    if index is not None:
        if index.n != collection.n:
            raise ValidationError(
                f"index n={index.n} does not match collection n={collection.n}"
            )
        if index.num_elements < collection.total_elements:
            raise ValidationError(
                f"index covers {index.num_elements} elements, collection has "
                f"{collection.total_elements}; extend the index first"
            )
    if strategy in ("fast", "lazy"):
        scan_impl = choose_scan_impl(scan, collection.n, collection.num_sets)
        result = _greedy_indexed(
            collection, k, index, lazy=strategy == "lazy", scan_impl=scan_impl
        )
    elif strategy == "reference":
        result = _greedy_reference(collection, k)
    else:
        raise ValidationError(f"unknown selection strategy {strategy!r}")
    if obs.enabled():
        obs.counter_add("selection.iterations", k)
        obs.counter_add("selection.sets_scanned", int(result.stats.sets_scanned.sum()))
        obs.counter_add(
            "selection.decrements", int(result.stats.elements_decremented.sum())
        )
        obs.counter_add("selection.covered_sets", int(result.covered_sets))
    return result


def _greedy_indexed(
    collection: RRRCollection,
    k: int,
    index: CoverageIndex | None,
    lazy: bool,
    scan_impl: str = "csr",
) -> SelectionResult:
    flat = collection.flat
    offsets = collection.offsets
    num_sets = collection.num_sets
    n = collection.n
    counts = collection.counts.copy()
    sizes = np.diff(offsets)

    word_scan = scan_impl == "bitset"
    if word_scan:
        # packed covered-sets bitmap + vertex->set membership plane:
        # each pick's newly covered sets are decoded from
        # membership AND NOT covered over theta-bit words
        if index is not None:
            obs.counter_add(
                "selection.index.served_elements", collection.total_elements
            )
            plane = index.membership(collection)
        else:
            plane = MembershipPlane(n)
            extend_membership(plane, collection)
            obs.counter_add(
                "selection.index.built_elements", collection.total_elements
            )
        nwords = words_for_bits(num_sets)
        covered_words = np.zeros(nwords, dtype=np.uint64)
        # the plane may cover more sets than this collection (prefix
        # view of a warm-start store); mask the final word's tail
        last_mask = tail_mask(num_sets)
        covered = None
        limit = None
    else:
        if index is None:
            index = CoverageIndex.build(collection)
        else:
            obs.counter_add(
                "selection.index.served_elements", collection.total_elements
            )
        # the index may extend beyond this collection (prefix view of a
        # warm-start store); clip postings to the elements actually present
        limit = (
            collection.total_elements
            if index.num_elements > collection.total_elements
            else None
        )
        covered = np.zeros(num_sets, dtype=bool)
    seeds = np.empty(k, dtype=np.int64)
    gains = np.empty(k, dtype=np.int64)
    scanned = np.empty(k, dtype=np.int64)
    found = np.empty(k, dtype=np.int64)
    decremented = np.empty(k, dtype=np.int64)
    covered_total = 0

    if lazy:
        # CELF-style max-heap keyed (-gain, vertex): counts only ever
        # decrease, so a popped stored gain is an upper bound; a fresh
        # top is therefore an exact argmax, and the vertex component
        # preserves the lowest-id tie-break among equal gains
        heap = [(-int(c), v) for v, c in enumerate(counts)]
        heapify(heap)
        pops = 0
        reevals = 0

    for it in range(k):
        if lazy:
            while True:
                neg_gain, v = heappop(heap)
                pops += 1
                current = int(counts[v])
                if -neg_gain == current:
                    break
                reevals += 1
                heappush(heap, (-current, v))
        else:
            v = int(np.argmax(counts))
        seeds[it] = v
        scanned[it] = num_sets - covered_total  # Alg. 3 scans uncovered sets
        if word_scan:
            new_words = andnot_words(plane.row(v, nwords), covered_words)
            if nwords:
                new_words[-1] &= last_mask
            covered_words |= new_words
            # ascending decode == the CSR path's ascending set ids
            # (a vertex occurs at most once per stored set)
            new_sets = decode_bits(new_words)
            if obs.enabled():
                obs.counter_add("selection.scan.words_touched", 2 * nwords)
        else:
            positions = index.postings(v, limit)
            set_ids = np.searchsorted(offsets, positions, side="right") - 1
            new_sets = set_ids[~covered[set_ids]]
            covered[new_sets] = True
            if obs.enabled():
                obs.counter_add("selection.scan.posting_reads", int(positions.size))
        gains[it] = new_sets.size
        found[it] = new_sets.size
        covered_total += new_sets.size
        if new_sets.size:
            elem_idx = segmented_arange(offsets[new_sets], sizes[new_sets])
            # one bincount batches every decrement of this iteration —
            # no unbuffered scatter (np.subtract.at) over the flat array
            counts -= np.bincount(flat[elem_idx], minlength=n)
            decremented[it] = elem_idx.size
        else:
            decremented[it] = 0
        counts[v] = -1  # mask: selected vertices must never win again

    if lazy and obs.enabled():
        obs.counter_add("selection.lazy.pops", pops)
        obs.counter_add("selection.lazy.reevals", reevals)

    stats = SelectionStats(
        sets_scanned=scanned,
        sets_found=found,
        elements_decremented=decremented,
        avg_set_size=float(sizes.mean()) if num_sets else 0.0,
    )
    return SelectionResult(
        seeds=seeds,
        covered_sets=covered_total,
        num_sets=num_sets,
        marginal_gains=gains,
        stats=stats,
    )


def _greedy_reference(collection: RRRCollection, k: int) -> SelectionResult:
    """Literal Alg. 3: binary-search every uncovered set per iteration."""
    flat = collection.flat
    offsets = collection.offsets
    num_sets = collection.num_sets
    counts = collection.counts.copy()
    sizes = np.diff(offsets)

    covered = np.zeros(num_sets, dtype=bool)  # the paper's F array
    seeds = np.empty(k, dtype=np.int64)
    gains = np.empty(k, dtype=np.int64)
    scanned = np.empty(k, dtype=np.int64)
    found = np.empty(k, dtype=np.int64)
    decremented = np.empty(k, dtype=np.int64)
    covered_total = 0

    for it in range(k):
        v = int(np.argmax(counts))
        seeds[it] = v
        n_found = 0
        n_dec = 0
        scanned[it] = num_sets - covered_total
        for i in range(num_sets):
            if covered[i]:
                continue
            start, end = offsets[i], offsets[i + 1]
            segment = flat[start:end]
            j = np.searchsorted(segment, v)
            if j < segment.size and segment[j] == v:
                covered[i] = True
                n_found += 1
                np.subtract.at(counts, segment, 1)
                n_dec += segment.size
        gains[it] = n_found
        found[it] = n_found
        decremented[it] = n_dec
        covered_total += n_found
        counts[v] = -1  # mask: selected vertices must never win argmax again

    stats = SelectionStats(
        sets_scanned=scanned,
        sets_found=found,
        elements_decremented=decremented,
        avg_set_size=float(sizes.mean()) if num_sets else 0.0,
    )
    return SelectionResult(
        seeds=seeds,
        covered_sets=covered_total,
        num_sets=num_sets,
        marginal_gains=gains,
        stats=stats,
    )
