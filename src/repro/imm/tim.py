"""TIM/TIM+ sample-size estimation (Tang et al. 2014) — IMM's predecessor.

§2.2 of the paper: "Tang et al. proposed a two-phase influence
maximization algorithm [TIM] ... They later improved upon this work by
developing the IMM algorithm ... a tighter lower bound for the number of
RRR sets."  Implementing TIM's KPT estimation alongside IMM lets the
benchmarks show that gap directly: same guarantee, substantially more
RRR sets.

TIM estimates ``KPT = E[influence of a size-k seed set chosen by a
certain randomized rule]``:

* for a sampled RRR set ``R``, ``kappa(R) = 1 - (1 - w(R)/m)^k`` where
  ``w(R)`` is the number of in-edges incident to R's vertices;
* geometric search over guesses ``KPT >= n / 2^i`` with sample sizes
  growing as ``2^i`` until the empirical mean of kappa crosses the guess.

The final sample count is ``theta = lambda_TIM / KPT`` with
``lambda_TIM = (8 + 2 eps) n (ell log n + log C(n,k) + log 2) / eps^2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.csc import DirectedGraph
from repro.imm.bounds import BoundsConfig, log_binomial
from repro.imm.seed_selection import SelectionResult, select_seeds
from repro.rrr import get_sampler
from repro.rrr.collection import RRRCollection
from repro.utils.errors import ValidationError
from repro.utils.rng import as_generator


@dataclass
class TIMResult:
    """Seeds plus the KPT estimate and sample count TIM arrived at."""

    seeds: np.ndarray
    selection: SelectionResult
    collection: RRRCollection
    kpt: float
    theta: int


def lambda_tim(n: int, k: int, eps: float, ell: float) -> float:
    """TIM's sample-size constant (looser than IMM's lambda_star)."""
    if eps <= 0:
        raise ValidationError("eps must be positive")
    return (
        (8.0 + 2.0 * eps)
        * n
        * (ell * math.log(n) + log_binomial(n, k) + math.log(2))
        / (eps**2)
    )


def _kappa(collection: RRRCollection, graph: DirectedGraph, k: int) -> np.ndarray:
    """``kappa(R) = 1 - (1 - w(R)/m)^k`` for every set in the collection."""
    deg = graph.in_degrees().astype(np.float64)
    sizes = collection.sizes()
    w = np.zeros(collection.num_sets, dtype=np.float64)
    set_ids = np.repeat(np.arange(collection.num_sets), sizes)
    np.add.at(w, set_ids, deg[collection.flat])
    return 1.0 - (1.0 - np.minimum(w / max(graph.m, 1), 1.0)) ** k


def estimate_kpt(
    graph: DirectedGraph,
    k: int,
    ell: float = 1.0,
    model: str = "IC",
    rng=None,
    theta_scale: float = 1.0,
) -> tuple[float, RRRCollection]:
    """TIM Algorithm 2: geometric search for a KPT lower bound.

    Returns the estimate and the RRR sets drawn along the way (TIM
    reuses them toward the final sample).
    """
    gen = as_generator(rng)
    sampler = get_sampler(model)
    n = graph.n
    if n < 2:
        raise ValidationError("need at least two vertices")
    log_n = math.log(n)
    pieces: list[RRRCollection] = []
    drawn = 0
    for i in range(1, max(1, int(math.log2(n))) + 1):
        c_i = int(math.ceil((6.0 * ell * log_n + 6.0 * math.log(max(math.log2(n), 1.0)))
                            * (2.0**i) * theta_scale))
        c_i = max(c_i, 1)
        if c_i > drawn:
            piece, _ = sampler(graph, c_i - drawn, rng=gen)
            pieces.append(piece)
            drawn = c_i
        collection = RRRCollection.concat(pieces)
        pieces = [collection]
        kappa = _kappa(collection.prefix(c_i), graph, k)
        if kappa.mean() > 1.0 / (2.0**i):
            return n * float(kappa.mean()) / 2.0, collection
    return 1.0, pieces[0] if pieces else RRRCollection(
        np.empty(0, dtype=np.int32), np.zeros(1, dtype=np.int64), n,
        sources=np.empty(0, dtype=np.int64),
    )


def run_tim(
    graph: DirectedGraph,
    k: int,
    epsilon: float,
    model: str = "IC",
    rng=None,
    bounds: BoundsConfig | None = None,
) -> TIMResult:
    """Run TIM end to end: KPT estimation, sampling, greedy selection.

    Same approximation guarantee as IMM; the point of having it here is
    the *theta* comparison (see ``bench_extension_tim_vs_imm``).
    """
    if graph.weights is None:
        raise ValidationError("run_tim requires a weighted graph")
    if not 1 <= k <= graph.n:
        raise ValidationError(f"k must be in [1, n], got {k}")
    if not 0.0 < epsilon < 1.0:
        raise ValidationError("epsilon must be in (0, 1)")
    bounds = bounds or BoundsConfig()
    gen = as_generator(rng)
    kpt, collection = estimate_kpt(
        graph, k, bounds.ell, model, gen, theta_scale=bounds.theta_scale
    )
    theta = bounds.cap(lambda_tim(graph.n, k, epsilon, bounds.ell) / max(kpt, 1.0))
    if theta > collection.num_sets:
        sampler = get_sampler(model)
        extra, _ = sampler(graph, theta - collection.num_sets, rng=gen)
        collection = RRRCollection.concat([collection, extra])
    selection = select_seeds(collection, k)
    return TIMResult(
        seeds=selection.seeds,
        selection=selection,
        collection=collection,
        kpt=kpt,
        theta=theta,
    )
