"""Influence oracle: cheap ``E[I(S)]`` queries over one RRR sample.

The RIS identity (``E[I(S)] = n * P(S hits a random RRR set)``) makes a
sampled collection a reusable estimator: once ``theta`` sets are drawn,
the expected influence of *any* candidate set is a coverage query — no
forward simulation needed.  This is the "what-if" tool a practitioner
wants after running IMM: compare the optimizer's seeds against a
hand-picked marketing list, price an incremental seed, or bound the
error of the estimate itself.

Queries are served from an inverted index (vertex -> covering sets), so
a single-seed query is O(count of that vertex) and marginal-gain chains
reuse the covered mask.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.rrr.collection import RRRCollection
from repro.utils.errors import ValidationError


class InfluenceOracle:
    """Estimates expected influence from a fixed RRR collection.

    Parameters
    ----------
    collection:
        Any RRR sample over the target graph (from the samplers, an IMM
        run's ``result.collection``, or a checkpoint).
    keep_rate:
        Fraction of attempted sets the sampler kept — required when the
        collection was drawn with source elimination, which conditions
        coverage on set survival (see ``IMMResult.influence_estimate``).
        1.0 (default) for vanilla samples.
    includes_sources:
        Whether each set still contains its own source.  When False
        (source-eliminated samples) each seed's guaranteed
        self-activation is added back to estimates.
    """

    def __init__(
        self,
        collection: RRRCollection,
        keep_rate: float = 1.0,
        includes_sources: bool = True,
    ):
        if collection.num_sets == 0:
            raise ValidationError("oracle needs a non-empty collection")
        if not 0.0 < keep_rate <= 1.0:
            raise ValidationError("keep_rate must be in (0, 1]")
        self.collection = collection
        self.keep_rate = float(keep_rate)
        self.includes_sources = bool(includes_sources)
        order = np.argsort(collection.flat, kind="stable")
        self._order = order
        self._vert_starts = np.searchsorted(
            collection.flat[order], np.arange(collection.n + 1)
        )
        self._set_of_position = (
            np.searchsorted(collection.offsets, order, side="right") - 1
        )

    # -- queries ---------------------------------------------------------------
    def sets_covered_by(self, seeds) -> np.ndarray:
        """Boolean mask over sets: which does ``seeds`` intersect?"""
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if seeds.size and (seeds.min() < 0 or seeds.max() >= self.collection.n):
            raise ValidationError("seed ids out of range")
        covered = np.zeros(self.collection.num_sets, dtype=bool)
        for v in seeds:
            lo, hi = self._vert_starts[v], self._vert_starts[v + 1]
            covered[self._set_of_position[lo:hi]] = True
        return covered

    def spread(self, seeds) -> float:
        """Estimated ``E[I(S)]`` of the seed set."""
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        covered = self.sets_covered_by(seeds)
        base = self.collection.n * covered.mean() * self.keep_rate
        if not self.includes_sources:
            base += seeds.size
        return float(base)

    def marginal_gain(self, seeds, candidate: int) -> float:
        """Estimated extra influence from adding ``candidate`` to ``seeds``."""
        return self.spread(list(np.atleast_1d(seeds)) + [int(candidate)]) - self.spread(seeds)

    def spread_stderr(self, seeds) -> float:
        """Standard error of :meth:`spread` (binomial coverage noise).

        ``n * keep_rate * sqrt(F(1-F)/theta)`` — the Monte-Carlo noise
        floor of the estimate; does not include the bias terms discussed
        in docs/algorithms.md.
        """
        covered = self.sets_covered_by(seeds)
        f = covered.mean()
        theta = self.collection.num_sets
        return float(
            self.collection.n * self.keep_rate * math.sqrt(max(f * (1 - f), 0.0) / theta)
        )

    @classmethod
    def from_imm_result(cls, result) -> "InfluenceOracle":
        """Build the oracle from an :class:`~repro.imm.imm.IMMResult`,
        inheriting its source-elimination accounting."""
        keep_rate = 1.0
        if result.eliminate_sources and result.trace.attempted:
            keep_rate = result.trace.kept / result.trace.attempted
        return cls(
            result.collection,
            keep_rate=keep_rate,
            includes_sources=not result.eliminate_sources,
        )
