"""The original reverse-influence-sampling baseline (Borgs et al. 2013).

RIS predates IMM's martingale bound: it keeps drawing RRR sets until the
cumulative *traversal work* (vertices touched plus edges examined) crosses
a budget ``tau = c * (m + n) * eps^-3 * log2(n)``, then runs the same
greedy max-coverage selection.  IMM's contribution (§2.2) is replacing
this work-budget rule with a far tighter sample-count bound — having both
in the library lets the benchmarks show that gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.csc import DirectedGraph
from repro.imm.seed_selection import SelectionResult, select_seeds
from repro.rrr import get_sampler
from repro.rrr.collection import RRRCollection
from repro.rrr.trace import SampleTrace, empty_trace
from repro.utils.errors import ValidationError
from repro.utils.rng import as_generator


@dataclass
class RISResult:
    """Seeds and diagnostics from a RIS run."""

    seeds: np.ndarray
    selection: SelectionResult
    collection: RRRCollection
    trace: SampleTrace
    work_budget: float
    work_spent: int


def run_ris(
    graph: DirectedGraph,
    k: int,
    epsilon: float = 0.2,
    model: str = "IC",
    rng=None,
    budget_constant: float = 1.0,
    num_sets: int | None = None,
    max_sets: int = 2_000_000,
    batch_sets: int = 4096,
) -> RISResult:
    """Run the RIS baseline.

    Either pass ``num_sets`` for a fixed-size sample, or leave it ``None``
    to use the work-budget stopping rule with constant ``budget_constant``
    (the theory constant is large; 1.0 is the conventional practical
    choice).
    """
    if graph.weights is None:
        raise ValidationError("run_ris requires a weighted graph")
    if not 1 <= k <= graph.n:
        raise ValidationError(f"k must be in [1, n], got {k}")
    if epsilon <= 0 or epsilon >= 1:
        raise ValidationError("epsilon must be in (0, 1)")
    gen = as_generator(rng)
    sampler = get_sampler(model)

    if num_sets is not None:
        collection, trace = sampler(graph, num_sets, rng=gen)
        budget = float("nan")
    else:
        budget = (
            budget_constant
            * (graph.m + graph.n)
            * epsilon**-3
            * max(math.log2(max(graph.n, 2)), 1.0)
        )
        trace = empty_trace()
        pieces: list[RRRCollection] = []
        spent = 0
        total_sets = 0
        while spent < budget and total_sets < max_sets:
            piece, piece_trace = sampler(graph, batch_sets, rng=gen)
            pieces.append(piece)
            trace = trace.merged_with(piece_trace)
            total_sets += piece.num_sets
            spent = trace.total_edges_examined() + int(trace.sizes.sum())
        collection = RRRCollection.concat(pieces)

    selection = select_seeds(collection, k)
    work = trace.total_edges_examined() + int(trace.sizes.sum())
    return RISResult(
        seeds=selection.seeds,
        selection=selection,
        collection=collection,
        trace=trace,
        work_budget=budget,
        work_spent=work,
    )
