"""Incremental vertex->position inverted index for seed selection (§3.5).

Greedy max-coverage selection needs, for every candidate vertex, the
positions of its occurrences in the flat RRR store ``R`` — the paper's
thread-based scan answers that with per-set binary searches; the host
implementation answers it with an inverted index.  Historically that
index was rebuilt from scratch (a full argsort of ``R``) inside *every*
``select_seeds`` call, although IMM's estimation loop and the k/ε sweep
drivers only ever *append* sets to the collection between calls.

:class:`CoverageIndex` makes the index a first-class, extendable
structure:

* each :meth:`extend` counting-sorts only the **new** flat segment
  (bincount/cumsum for the CSR row starts, a stable integer argsort —
  NumPy's radix path — for the grouping) and appends it as a CSR block;
  the already-indexed prefix is never touched again;
* :meth:`postings` concatenates a vertex's per-block slices, optionally
  truncated to an element-count ``limit`` so one index serves every
  prefix view of a growing collection (the warm-start store's
  ``ensure`` pattern);
* blocks are transparently merged once :attr:`max_blocks` accumulate —
  an O(total) per-vertex scatter merge, again with no re-sort.

Positions within a vertex's postings are ascending (blocks arrive in
element order; counting sort is stable), which is exactly the order the
previous argsort-based build produced — selection results are
bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.kernels import MembershipPlane
from repro.utils.errors import ValidationError
from repro.utils.segments import segmented_arange

#: block-list length that triggers a compacting merge; lookups cost
#: O(blocks) per vertex, so this bounds per-iteration overhead while
#: keeping every extend O(new elements)
_DEFAULT_MAX_BLOCKS = 32


class CoverageIndex:
    """Extendable CSR inverted index over a growing flat RRR array.

    The index maps each vertex id to the ascending global positions of
    its occurrences among the first :attr:`num_elements` elements of the
    flat stream it was fed.  It is append-only: feeding it the same
    stream in different extend granularities yields identical postings.
    """

    __slots__ = (
        "n",
        "num_elements",
        "max_blocks",
        "_starts",
        "_postings",
        "_bounds",
        "_membership",
    )

    def __init__(self, n: int, max_blocks: int = _DEFAULT_MAX_BLOCKS):
        if n < 1:
            raise ValidationError("CoverageIndex needs at least one vertex")
        if max_blocks < 1:
            raise ValidationError("max_blocks must be >= 1")
        self.n = int(n)
        self.max_blocks = int(max_blocks)
        self.num_elements = 0
        self._starts: list[np.ndarray] = []  # per block: (n+1,) CSR row starts
        self._postings: list[np.ndarray] = []  # per block: global positions
        self._bounds: list[tuple[int, int]] = []  # per block: [lo, hi) element range
        # lazily built packed vertex->set membership plane for the
        # word-parallel coverage scan; extended append-only alongside
        # the stream, so one plane serves every prefix of a sweep
        self._membership: MembershipPlane | None = None

    # -- construction --------------------------------------------------------
    @classmethod
    def build(cls, collection) -> "CoverageIndex":
        """A fresh index over every element of ``collection``."""
        index = cls(collection.n)
        index.extend_to(collection)
        return index

    def extend(self, flat_segment: np.ndarray) -> None:
        """Append postings for the next stream segment (never re-sorts).

        ``flat_segment`` holds the elements at global positions
        ``num_elements .. num_elements + len(segment)``; row starts come
        from a bincount/cumsum counting pass, grouping from a stable
        integer sort of the segment alone.
        """
        seg = np.asarray(flat_segment)
        if seg.size == 0:
            return
        if seg.min() < 0 or seg.max() >= self.n:
            raise ValidationError("segment elements out of vertex range")
        base = self.num_elements
        counts = np.bincount(seg, minlength=self.n)
        starts = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        # stable sort on int keys is a radix pass: positions grouped by
        # vertex, ascending within each vertex
        order = np.argsort(seg, kind="stable").astype(np.int64, copy=False)
        self._starts.append(starts)
        self._postings.append(base + order)
        self._bounds.append((base, base + seg.size))
        self.num_elements = base + seg.size
        obs.counter_add("selection.index.built_elements", int(seg.size))
        if len(self._starts) > self.max_blocks:
            self._compact()

    def extend_to(self, collection) -> None:
        """Index ``collection``'s elements beyond the current coverage.

        The collection's flat array must be prefix-consistent with the
        stream this index has seen so far — exactly what IMM's phase
        top-ups, ``RRRCollection.concat`` growth, and the warm-start
        store's chunk appends guarantee.  A collection *shorter* than
        the indexed stream (a sweep cell revisiting a smaller theta) is
        a no-op: selection clips postings to the prefix instead.
        """
        if collection.n != self.n:
            raise ValidationError(
                f"index over n={self.n} cannot take a collection with n={collection.n}"
            )
        total = collection.total_elements
        obs.counter_add(
            "selection.index.reused_elements", min(total, self.num_elements)
        )
        if total > self.num_elements:
            self.extend(collection.flat[self.num_elements :])

    # -- queries -------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return len(self._starts)

    def postings(self, v: int, limit: int | None = None) -> np.ndarray:
        """Ascending global positions of vertex ``v``.

        ``limit`` restricts the result to positions ``< limit`` — the
        prefix-view hook: an index grown over the full cached stream
        serves selection on any ``collection.prefix(theta)`` by passing
        ``limit=prefix.total_elements``.
        """
        pieces: list[np.ndarray] = []
        for (lo, hi), starts, postings in zip(
            self._bounds, self._starts, self._postings
        ):
            if limit is not None and lo >= limit:
                break
            piece = postings[starts[v] : starts[v + 1]]
            if limit is not None and hi > limit:
                piece = piece[: np.searchsorted(piece, limit, side="left")]
            pieces.append(piece)
        if not pieces:
            return np.empty(0, dtype=np.int64)
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)

    def counts(self, limit: int | None = None) -> np.ndarray:
        """Per-vertex occurrence counts over the (limited) indexed stream."""
        out = np.zeros(self.n, dtype=np.int64)
        for (lo, hi), starts, postings in zip(
            self._bounds, self._starts, self._postings
        ):
            if limit is not None and lo >= limit:
                break
            if limit is None or hi <= limit:
                out += np.diff(starts)
            else:
                # partial block: keep only postings < limit, per vertex
                kept = _segment_vertices(starts, postings < limit)
                out += np.bincount(kept, minlength=self.n)
        return out

    def membership(self, collection) -> MembershipPlane:
        """The packed vertex->set membership plane over ``collection``.

        Built lazily on the first word-parallel scan and extended
        append-only as the stream grows (same prefix-consistency
        contract as :meth:`extend_to`); a plane grown over a longer
        stream serves shorter prefix views via the scan's tail mask.
        """
        if collection.n != self.n:
            raise ValidationError(
                f"index over n={self.n} cannot take a collection with n={collection.n}"
            )
        # bind a local: a pressure handler may clear the cache slot
        # mid-extend, and the caller must still get the plane it asked for
        plane = self._membership
        if plane is None:
            plane = self._membership = MembershipPlane(self.n)
        extend_membership(plane, collection)
        return plane

    def drop_membership(self) -> int:
        """Drop the cached membership plane; returns its accounted bytes.

        The plane is pure cache — the next word-parallel scan rebuilds
        it from the collection bit-identically, or selection falls back
        to the CSR scan if the budget no longer admits it.  A scan
        concurrently holding the plane keeps it alive (and charged)
        until it finishes; only the cache slot is cleared here.
        """
        plane = self._membership
        if plane is None:
            return 0
        self._membership = None
        return int(plane.nbytes)

    # -- maintenance ---------------------------------------------------------
    def _compact(self) -> None:
        """Merge every block into one — an O(total) scatter, no re-sort.

        For each vertex the merged postings are the per-block slices
        concatenated in block order; because block element ranges are
        disjoint and increasing, the result stays ascending.
        """
        merged_counts = np.zeros(self.n, dtype=np.int64)
        for starts in self._starts:
            merged_counts += np.diff(starts)
        merged_starts = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(merged_counts, out=merged_starts[1:])
        merged = np.empty(self.num_elements, dtype=np.int64)
        write = merged_starts[:-1].copy()
        for starts, postings in zip(self._starts, self._postings):
            block_counts = np.diff(starts)
            dest = segmented_arange(write, block_counts)
            merged[dest] = postings
            write += block_counts
        self._starts = [merged_starts]
        self._postings = [merged]
        self._bounds = [(0, self.num_elements)]
        obs.counter_add("selection.index.compactions", 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CoverageIndex(n={self.n}, elements={self.num_elements}, "
            f"blocks={self.num_blocks})"
        )


def _segment_vertices(starts: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Vertex id of each kept posting in a block (for partial counts)."""
    verts = np.repeat(np.arange(starts.size - 1, dtype=np.int64), np.diff(starts))
    return verts[keep]


def extend_membership(plane: MembershipPlane, collection) -> None:
    """Grow ``plane`` over ``collection``'s stream suffix it has not seen.

    Set ids for the new elements come from the collection's offsets —
    valid stream-wide because prefix-consistent collections share their
    offset prefix.  A collection shorter than the plane is a no-op (the
    scan clips with a tail mask instead).
    """
    total = collection.total_elements
    if plane.num_elements >= total:
        return
    start = plane.num_elements
    offsets = collection.offsets
    first = int(np.searchsorted(offsets, start, side="right")) - 1
    seg_counts = np.diff(offsets[first:]).astype(np.int64)
    seg_counts[0] = offsets[first + 1] - start
    seg_set_ids = np.repeat(
        np.arange(first, collection.num_sets, dtype=np.int64), seg_counts
    )
    plane.extend(collection.flat[start:total], seg_set_ids, collection.num_sets)
