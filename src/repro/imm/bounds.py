"""Martingale sample-size bounds from Tang et al. 2015 (§2.2 of the paper).

IMM guarantees a ``(1 - 1/e - eps)``-approximate seed set with probability
at least ``1 - n^-ell`` once ``theta = lambda_star / OPT`` RRR sets are
drawn; since OPT is unknown, the sampling phase searches for a lower bound
``LB <= OPT`` using the cheaper ``lambda_prime`` threshold at geometrically
decreasing guesses ``x = n / 2^i``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.errors import ValidationError


def log_binomial(n: int, k: int) -> float:
    """``log C(n, k)`` computed stably via log-gamma."""
    if k < 0 or k > n:
        raise ValidationError(f"binomial C({n}, {k}) undefined")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def adjusted_ell(n: int, ell: float) -> float:
    """Tang et al.'s inflation ``ell * (1 + ln 2 / ln n)``.

    Compensates for the union bound over the estimation phases so the
    overall failure probability stays below ``n^-ell``.
    """
    if n < 2:
        raise ValidationError("need n >= 2 for the bound adjustment")
    return ell * (1.0 + math.log(2) / math.log(n))


def lambda_prime(n: int, k: int, eps_prime: float, ell: float) -> float:
    """Sampling-phase threshold lambda' (Tang et al., eq. for theta_i).

    ``theta_i = lambda' / x_i`` RRR sets suffice to test the guess
    ``OPT >= x_i`` with failure probability ``n^-ell / log2(n)``.
    """
    if eps_prime <= 0:
        raise ValidationError("eps_prime must be positive")
    log_term = log_binomial(n, k) + ell * math.log(n) + math.log(max(math.log2(n), 1.0))
    return (2.0 + 2.0 * eps_prime / 3.0) * log_term * n / (eps_prime**2)


def lambda_star(n: int, k: int, eps: float, ell: float) -> float:
    """Final-phase constant lambda*; ``theta = lambda* / LB``."""
    if eps <= 0:
        raise ValidationError("eps must be positive")
    e_frac = 1.0 - 1.0 / math.e
    alpha = math.sqrt(ell * math.log(n) + math.log(2))
    beta = math.sqrt(e_frac * (log_binomial(n, k) + ell * math.log(n) + math.log(2)))
    return 2.0 * n * ((e_frac * alpha + beta) ** 2) / (eps**2)


@dataclass(frozen=True)
class BoundsConfig:
    """Knobs of the theta computation.

    ``theta_scale`` uniformly scales both thresholds; the library default
    of 1.0 gives the paper's exact bounds, while the experiment harness
    lowers it on scaled-down graphs so sweeps finish in CI time (recorded
    per experiment in EXPERIMENTS.md).  ``max_theta`` is a hard safety cap.
    """

    ell: float = 1.0
    theta_scale: float = 1.0
    max_theta: int | None = None

    def __post_init__(self):
        if self.ell <= 0:
            raise ValidationError("ell must be positive")
        if self.theta_scale <= 0:
            raise ValidationError("theta_scale must be positive")
        if self.max_theta is not None and self.max_theta < 1:
            raise ValidationError("max_theta must be >= 1")

    def cap(self, theta: float) -> int:
        """Apply scaling and the safety cap; always at least 1."""
        value = int(math.ceil(theta * self.theta_scale))
        if self.max_theta is not None:
            value = min(value, self.max_theta)
        return max(value, 1)
