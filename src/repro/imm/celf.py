"""CELF lazy-greedy hill climbing with Monte-Carlo spread estimation.

The pre-sketch baseline lineage the paper's introduction describes (Kempe
et al. 2003; Goyal et al.'s CELF++ lazy evaluation): greedily add the
vertex with the largest *estimated* marginal gain, exploiting
submodularity to avoid re-evaluating every candidate each round.  Costs
``O(candidates * num_samples)`` cascade simulations up front, so it is
practical only on small graphs — which is precisely the scalability gap
RIS/IMM close.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.diffusion.spread import estimate_spread
from repro.graphs.csc import DirectedGraph
from repro.utils.errors import ValidationError
from repro.utils.rng import as_generator


@dataclass
class CELFResult:
    """Seeds, their estimated spread, and evaluation counts."""

    seeds: np.ndarray
    spread: float
    evaluations: int  # number of Monte-Carlo marginal-gain estimates


def run_celf_greedy(
    graph: DirectedGraph,
    k: int,
    model: str = "IC",
    num_samples: int = 200,
    rng=None,
    candidates=None,
) -> CELFResult:
    """Lazy-greedy influence maximization with MC gain estimates.

    ``candidates`` restricts the search pool (e.g. top-degree vertices) —
    without it every vertex is evaluated in the first round.
    """
    if graph.weights is None:
        raise ValidationError("run_celf_greedy requires a weighted graph")
    if not 1 <= k <= graph.n:
        raise ValidationError(f"k must be in [1, n], got {k}")
    gen = as_generator(rng)
    if candidates is None:
        pool = np.arange(graph.n, dtype=np.int64)
    else:
        pool = np.unique(np.asarray(candidates, dtype=np.int64))
        if pool.size < k:
            raise ValidationError("candidate pool smaller than k")

    evaluations = 0

    def gain_of(seed_list: list[int], v: int) -> float:
        nonlocal evaluations
        evaluations += 1
        with_v = estimate_spread(graph, seed_list + [v], model, num_samples, gen)
        return with_v

    # initial pass: marginal gain of each singleton.  These estimates are
    # exact for round 1 (the seed set is empty), so they are pushed as
    # round-1-fresh — tagging them 0 would make the round loop below
    # treat every one as stale and re-estimate it, burning num_samples
    # cascades per re-popped candidate for no information
    heap: list[tuple[float, int, int]] = []  # (-gain, last_updated_round, v)
    for v in pool.tolist():
        g = gain_of([], v)
        heapq.heappush(heap, (-g, 1, v))

    seeds: list[int] = []
    current_spread = 0.0
    for round_no in range(1, k + 1):
        while True:
            neg_gain, updated, v = heapq.heappop(heap)
            if updated == round_no:
                # gain is fresh for this round: lazy evaluation says it wins
                seeds.append(v)
                current_spread = current_spread + (-neg_gain)
                break
            total = gain_of(seeds, v)
            heapq.heappush(heap, (-(total - current_spread), round_no, v))

    return CELFResult(
        seeds=np.asarray(seeds, dtype=np.int64),
        spread=current_spread,
        evaluations=evaluations,
    )
