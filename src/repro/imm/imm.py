"""The IMM driver: theta estimation, sampling, and seed selection (Alg. 1).

Follows Tang et al. 2015: a geometric search over guesses ``x = n / 2^i``
finds a lower bound ``LB`` on the optimum influence using ``lambda_prime``
-sized samples; the final sample size is ``theta = lambda_star / LB``.
RRR sets drawn during estimation are kept and topped up (the martingale
analysis is exactly what makes this reuse sound).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.graphs.csc import DirectedGraph
from repro.imm.bounds import BoundsConfig, adjusted_ell, lambda_prime, lambda_star
from repro.imm.coverage import CoverageIndex
from repro.imm.options import IMMOptions
from repro.imm.seed_selection import SelectionResult, select_seeds
from repro.obs.export import ProfileReport
from repro.resilience.deadline import active_deadline
from repro.rrr import get_sampler
from repro.rrr.collection import RRRCollection
from repro.rrr.trace import SampleTrace, empty_trace
from repro.utils.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rrr.parallel import SamplerPool
    from repro.rrr.store import RRRStore


@dataclass
class PhaseStat:
    """Diagnostics for one estimation-phase iteration."""

    index: int
    x: float
    theta_i: int
    coverage_fraction: float
    influence_estimate: float
    passed: bool


@dataclass
class IMMResult:
    """Everything :func:`run_imm` produced, for inspection and cost models.

    Attributes
    ----------
    seeds:
        The selected seed vertices (always distinct), in selection order.
    selection:
        Per-iteration greedy statistics (coverage history, scan work).
    collection:
        The RRR-set sample selection ran on (a prefix view of the
        producing stream).
    trace:
        Per-set sampling work (traversal rounds, edges examined,
        kept/discarded attempts, resilience tally).
    theta:
        The final martingale sample size.
    lower_bound:
        The influence lower bound that terminated estimation.
    k / epsilon / model / eliminate_sources:
        The run's request, echoed back.
    phases:
        One :class:`PhaseStat` per estimation phase.
    profile:
        The :mod:`repro.obs` report when ``options.profile`` was set.
    options:
        The :class:`~repro.imm.options.IMMOptions` the run used.
    """

    seeds: np.ndarray
    selection: SelectionResult
    collection: RRRCollection
    trace: SampleTrace
    theta: int
    lower_bound: float
    k: int
    epsilon: float
    model: str
    eliminate_sources: bool
    phases: list[PhaseStat] = field(default_factory=list)
    profile: ProfileReport | None = None
    options: IMMOptions | None = None

    @property
    def coverage_fraction(self) -> float:
        return self.selection.coverage_fraction

    def influence_estimate(self) -> float:
        """Unbiased RIS estimator of the seed set's expected influence.

        Without elimination this is the classic ``n * F_R(S)``.  With
        source elimination (§3.4) the stored sets are conditioned on
        being non-empty, so coverage must be deflated by the empirical
        keep rate ``P(set survives)``, and each seed's guaranteed
        self-activation (no longer visible in coverage) added back.

        Note the *algorithm* — faithfully to the paper — feeds the
        unconditioned coverage into its theta stopping rule; that
        inflation is precisely the "quicker convergence ... fewer RRR
        sets" behaviour §3.4 reports, and the quality-parity tests
        confirm the selected seeds do not suffer for it.
        """
        base = self.collection.n * self.coverage_fraction
        if self.eliminate_sources:
            keep_rate = (
                self.trace.kept / self.trace.attempted if self.trace.attempted else 1.0
            )
            return base * keep_rate + self.k
        return base


_UNSET = object()

#: legacy run_imm keywords that moved into IMMOptions, in signature order
_LEGACY_OPTION_KWARGS = (
    "model",
    "eliminate_sources",
    "bounds",
    "selection_strategy",
    "batch_size",
    "profile",
)


def run_imm(
    graph: DirectedGraph,
    k: int,
    epsilon: float,
    model=_UNSET,
    rng=None,
    eliminate_sources=_UNSET,
    bounds=_UNSET,
    selection_strategy=_UNSET,
    batch_size=_UNSET,
    profile=_UNSET,
    *,
    options: IMMOptions | None = None,
    pool: "SamplerPool | None" = None,
    store: "RRRStore | None" = None,
) -> IMMResult:
    """Run IMM end to end and return seeds plus full diagnostics.

    The stable call shape is ``run_imm(graph, k, epsilon, rng=...,
    options=IMMOptions(...))``: ``k`` seed-set size, ``epsilon``
    approximation parameter (smaller -> more RRR sets), and every other
    knob — model, source elimination, bounds, selection strategy, batch
    size, worker count, profiling — bundled in the frozen
    :class:`~repro.imm.options.IMMOptions`.  The old per-knob keywords
    (``model=``, ``eliminate_sources=``, ...) keep working through a
    deprecation shim but cannot be mixed with ``options=``.

    With ``options.n_jobs > 1`` every sampling call fans out over a
    resident :class:`~repro.rrr.parallel.SamplerPool` (created once per
    graph and kept across phases and runs); pass ``pool=`` to share an
    explicit pool, e.g. between engines of one comparison.  Pass
    ``store=`` (a :class:`~repro.rrr.store.RRRStore`) to warm-start:
    sampling becomes prefix reads of the store's persistent stream, so
    consecutive runs with growing theta — a k-sweep — pay each RRR set
    once.  With a store the run's randomness comes from the store's
    entropy; ``rng`` is ignored for sampling.

    With ``options.profile`` live :mod:`repro.obs` collectors are
    installed for the duration of the run (unless the caller already
    installed some) and the resulting :class:`~repro.obs.ProfileReport`
    — per-phase spans plus sampler/selection metrics — is attached as
    ``IMMResult.profile``.
    """
    legacy = {
        name: value
        for name, value in zip(
            _LEGACY_OPTION_KWARGS,
            (model, eliminate_sources, bounds, selection_strategy, batch_size, profile),
        )
        if value is not _UNSET
    }
    if options is not None and legacy:
        raise ValidationError(
            "pass options=IMMOptions(...) or the legacy keywords "
            f"({', '.join(sorted(legacy))}), not both"
        )
    if options is None:
        if legacy:
            warnings.warn(
                "run_imm's per-knob keywords are deprecated and will be "
                "removed in repro 2.0; pass "
                "options=IMMOptions(" + ", ".join(f"{k}=..." for k in sorted(legacy)) + ")",
                DeprecationWarning,
                stacklevel=2,
            )
        options = IMMOptions(**legacy)
    if graph.weights is None:
        raise ValidationError("run_imm requires a weighted graph (assign_*_weights)")
    if not 1 <= k <= graph.n:
        raise ValidationError(f"k must be in [1, n]={graph.n}, got {k}")
    check_probability(epsilon, "epsilon")
    if epsilon == 0.0:
        raise ValidationError("epsilon must be positive")
    if graph.n < 2:
        raise ValidationError("need at least two vertices")
    if store is not None:
        if store.graph.fingerprint() != graph.fingerprint():
            raise ValidationError("store was built for a different graph")
        if store.model != options.model:
            raise ValidationError(
                f"store samples {store.model}, options request {options.model}"
            )
        if store.eliminate_sources != options.eliminate_sources:
            raise ValidationError(
                "store and options disagree on eliminate_sources"
            )
    handle = None
    if options.profile and not obs.enabled():
        handle = obs.install()
    # a per-run memory budget pins the process governor for the run's
    # duration (tiering is process-global state); ExitStack keeps the
    # no-budget path allocation-free
    from contextlib import ExitStack

    from repro.memory.budget import budget_scope

    try:
        with ExitStack() as stack:
            if options.memory_budget_mb is not None:
                stack.enter_context(
                    budget_scope(int(options.memory_budget_mb * 1024 * 1024))
                )
            with obs.span("imm.run"):
                result = _run_imm_core(
                    graph, k, epsilon, rng, options, pool, store
                )
            if options.profile:
                result.profile = obs.report()
            return result
    finally:
        if handle is not None:
            obs.uninstall()


def _run_imm_core(
    graph: DirectedGraph,
    k: int,
    epsilon: float,
    rng,
    options: IMMOptions,
    pool: "SamplerPool | None" = None,
    store: "RRRStore | None" = None,
) -> IMMResult:
    bounds = options.bounds or BoundsConfig()
    model = options.model
    eliminate_sources = options.eliminate_sources
    gen = as_generator(rng)
    n = float(graph.n)

    if store is None and pool is None and options.n_jobs > 1:
        from repro.rrr.parallel import shared_pool

        pool = shared_pool(graph, options.n_jobs, data_plane=options.data_plane)

    if pool is not None:
        def draw(count: int) -> tuple[RRRCollection, SampleTrace]:
            return pool.sample(
                model, count, rng=gen,
                eliminate_sources=eliminate_sources,
                batch_size=options.batch_size,
                visited_mode=options.visited_mode,
                resilience=options.resilience,
            )
    else:
        sampler = get_sampler(model)

        def draw(count: int) -> tuple[RRRCollection, SampleTrace]:
            return sampler(
                graph, count, rng=gen,
                eliminate_sources=eliminate_sources,
                batch_size=options.batch_size,
                visited_mode=options.visited_mode,
            )

    ell = adjusted_ell(graph.n, bounds.ell)
    eps_prime = math.sqrt(2.0) * epsilon
    lam_prime = lambda_prime(graph.n, k, eps_prime, ell)

    parts: list[RRRCollection] = []
    trace = empty_trace()
    num_sets = 0
    phases: list[PhaseStat] = []
    lower_bound = 1.0
    max_phase = max(1, int(math.ceil(math.log2(max(n, 2.0)))) - 1)

    collection = RRRCollection(
        np.empty(0, dtype=np.int32), np.zeros(1, dtype=np.int64), graph.n,
        sources=np.empty(0, dtype=np.int64),
    )
    # the selection-side analogue of the sampling amortization: one
    # inverted index, extended as the collection grows, shared by every
    # estimation phase and the final selection (and — via the store —
    # by every run of a k/ε sweep)
    cov_index = CoverageIndex(graph.n) if store is None else None

    def selection_index() -> CoverageIndex:
        if store is not None:
            return store.coverage_index()
        cov_index.extend_to(collection)
        return cov_index

    last_selection: SelectionResult | None = None
    deadline = active_deadline()
    for i in range(1, max_phase + 1):
        # cooperative deadline checkpoint: an expired or cancelled query
        # aborts between estimation phases (the sampling layers below
        # check at finer round/chunk granularity)
        if deadline is not None:
            deadline.check(f"IMM estimation phase {i}")
        with obs.span(f"imm.estimation.phase_{i}"):
            x = n / (2.0**i)
            theta_i = bounds.cap(lam_prime / x)
            if theta_i > num_sets:
                with obs.span("imm.sampling"):
                    if store is not None:
                        collection, trace = store.ensure(theta_i)
                    else:
                        extra, extra_trace = draw(theta_i - num_sets)
                        parts.append(extra)
                        trace = trace.merged_with(extra_trace)
                        collection = RRRCollection.concat(parts)
                        parts = [collection]
                num_sets = theta_i
            with obs.span("imm.selection"):
                sel = select_seeds(
                    collection, k,
                    strategy=options.selection_strategy,
                    index=selection_index(),
                    scan=options.coverage_scan,
                )
            last_selection = sel
            influence_est = n * sel.coverage_fraction
            passed = influence_est >= (1.0 + eps_prime) * x
            phases.append(
                PhaseStat(
                    index=i,
                    x=x,
                    theta_i=theta_i,
                    coverage_fraction=sel.coverage_fraction,
                    influence_estimate=influence_est,
                    passed=passed,
                )
            )
        if passed:
            lower_bound = influence_est / (1.0 + eps_prime)
            break
    else:
        # no guess passed; fall back to the weakest admissible bound
        lower_bound = max(phases[-1].influence_estimate / (1.0 + eps_prime), 1.0)

    theta = bounds.cap(lambda_star(graph.n, k, epsilon, ell) / lower_bound)
    if theta > num_sets:
        if deadline is not None:
            deadline.check("IMM final sampling")
        with obs.span("imm.final_sampling"):
            if store is not None:
                collection, trace = store.ensure(theta)
            else:
                extra, extra_trace = draw(theta - num_sets)
                parts.append(extra)
                trace = trace.merged_with(extra_trace)
                collection = RRRCollection.concat(parts)
        last_selection = None
    final_theta = max(theta, num_sets)

    if last_selection is None:
        # the collection grew since the last estimation-phase selection
        with obs.span("imm.selection"):
            selection = select_seeds(
                collection, k,
                strategy=options.selection_strategy,
                index=selection_index(),
                scan=options.coverage_scan,
            )
    else:
        # the last estimation phase already ran greedy on this exact
        # collection; re-running it would reproduce the result bit for bit
        selection = last_selection
    obs.gauge_max("rrr.flat_bytes", int(collection.flat.nbytes))
    obs.gauge_max("rrr.offsets_bytes", int(collection.offsets.nbytes))
    obs.gauge_set("imm.theta", final_theta)
    obs.gauge_set("imm.lower_bound", lower_bound)
    obs.counter_add("imm.phases", len(phases))
    return IMMResult(
        seeds=selection.seeds,
        selection=selection,
        collection=collection,
        trace=trace,
        theta=final_theta,
        lower_bound=lower_bound,
        k=k,
        epsilon=epsilon,
        model=model,
        eliminate_sources=eliminate_sources,
        phases=phases,
        options=options,
    )
