"""The frozen options bundle behind :func:`repro.imm.run_imm`.

``run_imm`` historically grew one positional keyword per knob; the
stable public API is now ``run_imm(graph, k, epsilon, rng=...,
options=IMMOptions(...))``.  The old keywords keep working through a
deprecation shim (see :func:`repro.imm.imm.run_imm`) so existing
callers migrate at their own pace.

``IMMOptions`` is frozen (hashable, safely shareable across runs of a
sweep) and validates eagerly, so a bad knob fails at construction time
rather than mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.imm.bounds import BoundsConfig
from repro.resilience.options import ResilienceOptions
from repro.utils.errors import ValidationError

_MODELS = ("IC", "LT")
_SELECTION_STRATEGIES = ("fast", "lazy", "reference")


@dataclass(frozen=True)
class IMMOptions:
    """Every algorithmic knob of one :func:`run_imm` invocation.

    Attributes
    ----------
    model:
        Diffusion model, ``"IC"`` or ``"LT"`` (case-insensitive).
    eliminate_sources:
        The paper's §3.4 heuristic (eIM's default; off reproduces
        vanilla IMM as in gIM and cuRipples).
    bounds:
        :class:`~repro.imm.bounds.BoundsConfig` overriding the
        martingale sample-size bounds; ``None`` means exact bounds.
    selection_strategy:
        Greedy max-coverage implementation: ``"fast"`` (argmax +
        inverted index), ``"lazy"`` (CELF-style max-heap over exact
        marginal gains; same seeds and stats, cheaper once coverage
        concentrates), or ``"reference"`` (the Alg. 3 oracle).
    batch_size:
        Sets per lockstep sampler batch (forwarded to pool workers).
    n_jobs:
        Worker processes for RRR sampling; ``1`` keeps everything
        in-process, ``> 1`` fans sampling out over a resident
        :class:`~repro.rrr.parallel.SamplerPool`.
    profile:
        Install live :mod:`repro.obs` collectors for the run and attach
        the report as ``IMMResult.profile``.
    resilience:
        :class:`~repro.resilience.options.ResilienceOptions` governing
        the supervision of parallel sampling (timeouts, retries, serial
        degradation); ``None`` uses the library default policy.
    data_plane:
        How graph and results move between the parent and sampler
        workers: ``"shm"`` (zero-copy shared-memory graph plus
        log-encoded IPC) or ``"pickle"`` (the classic pickled
        initializer / raw results).  ``None`` defers to the
        ``REPRO_DATA_PLANE`` environment variable, then to ``"shm"``
        wherever OS shared memory works.  Output is bit-identical
        across planes.
    visited_mode:
        Sampler visited-bookkeeping implementation: ``"sorted"``
        (merged key array), ``"bitset"`` (dense word-parallel visited
        plane), or ``"auto"`` (bitset whenever the plane fits the
        kernel memory budget).  ``None`` defers to
        ``REPRO_VISITED_MODE``, then ``"auto"``.  Output is
        bit-identical across modes.
    coverage_scan:
        Seed-selection marginal-coverage scan: ``"csr"`` (inverted
        postings), ``"bitset"`` (word-parallel popcount over a packed
        membership plane), or ``"auto"`` (budget-gated).  ``None``
        defers to ``REPRO_COVERAGE_SCAN``, then ``"auto"``.  Seeds and
        statistics are bit-identical across scans.
    memory_budget_mb:
        Process memory budget in MiB, pinned on the shared governor
        (:mod:`repro.memory.budget`) for the duration of the run: RRR
        chunks demote to compressed / spilled tiers and dense kernel
        planes fall back to sparse paths rather than exceed it.  Seeds
        are bit-identical at every budget — only wall-clock and
        residency change.  ``None`` defers to
        ``REPRO_MEMORY_BUDGET_MB`` (then the legacy
        ``REPRO_KERNEL_BUDGET_MB``), else unbounded.
    """

    model: str = "IC"
    eliminate_sources: bool = False
    bounds: BoundsConfig | None = None
    selection_strategy: str = "fast"
    batch_size: int = 16384
    n_jobs: int = 1
    profile: bool = False
    resilience: ResilienceOptions | None = None
    data_plane: str | None = None
    visited_mode: str | None = None
    coverage_scan: str | None = None
    memory_budget_mb: float | None = None

    def __post_init__(self):
        object.__setattr__(self, "model", str(self.model).upper())
        if self.model not in _MODELS:
            raise ValidationError(
                f"unknown diffusion model {self.model!r}; choose IC or LT"
            )
        if self.selection_strategy not in _SELECTION_STRATEGIES:
            raise ValidationError(
                f"unknown selection strategy {self.selection_strategy!r}; "
                f"choose one of {_SELECTION_STRATEGIES}"
            )
        if self.batch_size < 1:
            raise ValidationError("batch_size must be >= 1")
        if self.n_jobs < 1:
            raise ValidationError("n_jobs must be >= 1")
        if self.resilience is not None and not isinstance(
            self.resilience, ResilienceOptions
        ):
            raise ValidationError(
                "resilience must be a ResilienceOptions instance (or None)"
            )
        if self.data_plane is not None:
            plane = str(self.data_plane).strip().lower()
            if plane not in ("pickle", "shm"):
                raise ValidationError(
                    f"unknown data plane {self.data_plane!r}; "
                    "choose 'pickle' or 'shm' (or None for the default)"
                )
            object.__setattr__(self, "data_plane", plane)
        if self.visited_mode is not None:
            from repro.kernels import resolve_visited_mode

            object.__setattr__(
                self, "visited_mode", resolve_visited_mode(self.visited_mode)
            )
        if self.coverage_scan is not None:
            from repro.kernels import resolve_coverage_scan

            object.__setattr__(
                self, "coverage_scan", resolve_coverage_scan(self.coverage_scan)
            )
        if self.memory_budget_mb is not None and not self.memory_budget_mb > 0:
            raise ValidationError("memory_budget_mb must be positive or None")

    def replace(self, **changes) -> "IMMOptions":
        """A copy with ``changes`` applied (frozen-dataclass convenience)."""
        return replace(self, **changes)

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """Names of all option fields (the legacy-keyword surface)."""
        return tuple(f.name for f in fields(cls))
