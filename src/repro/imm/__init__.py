"""The IMM algorithm (Tang et al. 2015) and classical baselines.

:func:`run_imm` is the algorithmic heart of the reproduction — Alg. 1 of
the paper: estimate the required number of RRR sets ``theta`` via the
martingale lower-bound search, sample, and greedily select ``k`` seeds by
maximum coverage.  The engines in :mod:`repro.engines` layer device cost
models over this shared algorithmic core so all three produce identical
seed quality (the paper's §4.1 observation).
"""

from repro.imm.bounds import (
    BoundsConfig,
    lambda_prime,
    lambda_star,
    log_binomial,
)
from repro.imm.celf import run_celf_greedy
from repro.imm.coverage import CoverageIndex
from repro.imm.imm import IMMResult, run_imm
from repro.imm.options import IMMOptions
from repro.imm.oracle import InfluenceOracle
from repro.imm.ris import run_ris
from repro.imm.seed_selection import SelectionResult, select_seeds
from repro.imm.tim import TIMResult, run_tim

__all__ = [
    "BoundsConfig",
    "CoverageIndex",
    "IMMOptions",
    "IMMResult",
    "InfluenceOracle",
    "SelectionResult",
    "TIMResult",
    "lambda_prime",
    "lambda_star",
    "log_binomial",
    "run_celf_greedy",
    "run_imm",
    "run_ris",
    "run_tim",
    "select_seeds",
]
