"""Warp-primitive properties: the shfl_up doubling network computes exact
prefix sums for any lane count, and the LT lane pick agrees with the
mathematical first-crossing definition."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gpu.warp import (
    lt_select_activating_lane,
    warp_ballot,
    warp_inclusive_scan,
    warp_reduce_sum,
)

lane_values = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1, max_size=32,
)


@given(lane_values)
@settings(max_examples=80, deadline=None)
def test_scan_equals_cumsum(values):
    scanned, rounds = warp_inclusive_scan(np.asarray(values))
    assert np.allclose(scanned, np.cumsum(values))
    assert rounds == int(np.ceil(np.log2(len(values)))) if len(values) > 1 else rounds == 0


@given(lane_values)
@settings(max_examples=60, deadline=None)
def test_reduce_equals_sum(values):
    total, _ = warp_reduce_sum(np.asarray(values))
    assert np.isclose(total, sum(values))


@given(st.lists(st.booleans(), min_size=0, max_size=32))
@settings(max_examples=60, deadline=None)
def test_ballot_bits(preds):
    mask = warp_ballot(np.asarray(preds, dtype=bool))
    for lane, flag in enumerate(preds):
        assert bool(mask >> lane & 1) == flag


@given(
    st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=1, max_size=32),
    st.floats(min_value=0.0, max_value=1.0, exclude_min=True),
)
@settings(max_examples=80, deadline=None)
def test_lt_lane_first_crossing_definition(weights, tau):
    w = np.asarray(weights)
    w = w / max(w.sum(), 1.0)  # total <= 1
    cum = np.cumsum(w)
    # tau within float-eps of a prefix sum makes the crossing depend on
    # summation order (cumsum vs shfl_up doubling network) — undefined here
    assume(np.abs(cum - tau).min() > 1e-9)
    lane, _ = lt_select_activating_lane(w, tau)
    crossing = np.flatnonzero(cum >= tau)
    if crossing.size == 0:
        assert lane == -1
    else:
        assert lane == crossing[0]
