"""Graph-representation properties: CSC construction is canonical under
edge permutation, CSC and CSR views describe the same edge set, degrees
are conserved."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import DirectedGraph

N = 12

edges_strategy = st.lists(
    st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)),
    min_size=1,
    max_size=60,
)


@given(edges_strategy, st.randoms())
@settings(max_examples=60, deadline=None)
def test_construction_canonical_under_permutation(edges, rnd):
    shuffled = list(edges)
    rnd.shuffle(shuffled)
    a = DirectedGraph.from_edges([e[0] for e in edges], [e[1] for e in edges], n=N)
    b = DirectedGraph.from_edges(
        [e[0] for e in shuffled], [e[1] for e in shuffled], n=N
    )
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)


@given(edges_strategy)
@settings(max_examples=60, deadline=None)
def test_csc_matches_edge_set(edges):
    g = DirectedGraph.from_edges([e[0] for e in edges], [e[1] for e in edges], n=N)
    expected = set(edges)
    dst = np.repeat(np.arange(N), g.in_degrees())
    got = set(zip(g.indices.tolist(), dst.tolist()))
    assert got == expected


@given(edges_strategy)
@settings(max_examples=60, deadline=None)
def test_degree_conservation(edges):
    g = DirectedGraph.from_edges([e[0] for e in edges], [e[1] for e in edges], n=N)
    assert g.in_degrees().sum() == g.m
    assert g.out_degrees().sum() == g.m


@given(edges_strategy)
@settings(max_examples=40, deadline=None)
def test_double_reverse_is_identity(edges):
    g = DirectedGraph.from_edges([e[0] for e in edges], [e[1] for e in edges], n=N)
    rr = g.reverse().reverse()
    assert np.array_equal(rr.indptr, g.indptr)
    assert np.array_equal(rr.indices, g.indices)


@given(edges_strategy)
@settings(max_examples=40, deadline=None)
def test_neighbor_lists_sorted_unique(edges):
    g = DirectedGraph.from_edges([e[0] for e in edges], [e[1] for e in edges], n=N)
    for v in range(N):
        nbrs = g.in_neighbors(v)
        assert np.all(np.diff(nbrs) > 0)
