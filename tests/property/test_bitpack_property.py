"""Property tests for the log-encoding core: packing must be a lossless
bijection at every width, and packed density can never fall below the
information-theoretic bound."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitpack import pack, required_bits

values_lists = st.lists(st.integers(min_value=0, max_value=2**31 - 1),
                        min_size=0, max_size=200)


@given(values_lists, st.sampled_from([32, 64]))
@settings(max_examples=80, deadline=None)
def test_roundtrip_is_identity(values, container_bits):
    pa = pack(values, container_bits=container_bits)
    assert list(pa.unpack()) == values


@given(values_lists)
@settings(max_examples=50, deadline=None)
def test_packed_never_larger_than_raw_plus_container(values):
    pa = pack(values)
    # at most one container of padding beyond the bit-exact payload
    assert pa.nbytes_packed * 8 < len(values) * pa.n_bits + 32 + 1 if values else True
    assert pa.nbytes_packed <= pa.nbytes_raw + 4


@given(values_lists.filter(lambda v: len(v) > 0))
@settings(max_examples=50, deadline=None)
def test_n_bits_is_minimal(values):
    pa = pack(values)
    assert pa.n_bits == required_bits(max(values))
    assert max(values) < 2**pa.n_bits


@given(
    st.lists(st.integers(min_value=0, max_value=2**15 - 1), min_size=1, max_size=64),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_set_element_matches_list_model(values, data):
    """Random in-place writes behave exactly like writes to a plain list."""
    pa = pack(values, n_bits=15)
    model = list(values)
    for _ in range(10):
        i = data.draw(st.integers(0, len(values) - 1))
        v = data.draw(st.integers(0, 2**15 - 1))
        pa.set_element(i, v)
        model[i] = v
    assert list(pa.unpack()) == model


@given(values_lists.filter(lambda v: len(v) > 1), st.data())
@settings(max_examples=40, deadline=None)
def test_gather_equals_unpack_subset(values, data):
    pa = pack(values)
    idx = data.draw(
        st.lists(st.integers(0, len(values) - 1), min_size=1, max_size=20)
    )
    gathered = pa.gather(np.asarray(idx))
    full = pa.unpack()
    assert list(gathered) == [full[i] for i in idx]
