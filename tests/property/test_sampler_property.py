"""Sampler invariants on randomly generated weighted graphs: sets sorted
and duplicate-free, sources present (absent under elimination), trace
accounting consistent with the stored collection."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import DirectedGraph
from repro.rrr import sample_rrr_ic, sample_rrr_lt

N = 25


@st.composite
def weighted_graphs(draw):
    n_edges = draw(st.integers(1, 80))
    src = draw(
        st.lists(st.integers(0, N - 1), min_size=n_edges, max_size=n_edges)
    )
    dst = draw(
        st.lists(st.integers(0, N - 1), min_size=n_edges, max_size=n_edges)
    )
    keep = [i for i in range(n_edges) if src[i] != dst[i]]
    if not keep:
        keep = [0]
        src[0], dst[0] = 0, 1
    g = DirectedGraph.from_edges([src[i] for i in keep], [dst[i] for i in keep], n=N)
    # degree-based weights keep both models in their standard regime
    deg = g.in_degrees()
    w = np.repeat(1.0 / np.maximum(deg, 1), deg)
    return g.with_weights(w)


@given(weighted_graphs(), st.integers(1, 60), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_ic_sets_sorted_unique_with_source(graph, num_sets, seed):
    coll, trace = sample_rrr_ic(graph, num_sets, rng=seed)
    assert coll.num_sets == num_sets
    assert trace.kept >= num_sets
    for i in range(num_sets):
        s = coll.set_at(i)
        assert np.all(np.diff(s) > 0)
        assert coll.sources[i] in s
        assert s.min() >= 0 and s.max() < N


@given(weighted_graphs(), st.integers(1, 60), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_lt_sets_sorted_unique_with_source(graph, num_sets, seed):
    coll, _ = sample_rrr_lt(graph, num_sets, rng=seed)
    assert coll.num_sets == num_sets
    for i in range(num_sets):
        s = coll.set_at(i)
        assert np.all(np.diff(s) > 0)
        assert coll.sources[i] in s


@given(weighted_graphs(), st.integers(1, 40), st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_elimination_strips_sources_everywhere(graph, num_sets, seed):
    coll, trace = sample_rrr_ic(
        graph, num_sets, rng=seed, eliminate_sources=True
    )
    assert coll.num_sets == num_sets
    assert coll.empty_fraction() == 0.0
    for i in range(num_sets):
        assert coll.sources[i] not in coll.set_at(i)
    assert trace.discarded_empty == trace.attempted - trace.kept


@given(weighted_graphs(), st.integers(1, 40), st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_counts_consistent_with_flat(graph, num_sets, seed):
    coll, _ = sample_rrr_ic(graph, num_sets, rng=seed)
    recount = np.bincount(coll.flat, minlength=N)
    assert np.array_equal(recount, coll.counts)
