"""Diffusion-simulator properties: seeds are always active, activations
respect reachability, LT with explicit thresholds is deterministic."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import simulate_ic, simulate_lt
from repro.graphs import DirectedGraph

N = 15


@st.composite
def graphs_and_seeds(draw):
    n_edges = draw(st.integers(1, 50))
    src = draw(st.lists(st.integers(0, N - 1), min_size=n_edges, max_size=n_edges))
    dst = draw(st.lists(st.integers(0, N - 1), min_size=n_edges, max_size=n_edges))
    keep = [i for i in range(n_edges) if src[i] != dst[i]] or [0]
    if src[keep[0]] == dst[keep[0]]:
        src[keep[0]], dst[keep[0]] = 0, 1
    g = DirectedGraph.from_edges(
        [src[i] for i in keep], [dst[i] for i in keep], n=N
    )
    deg = g.in_degrees()
    w = np.repeat(1.0 / np.maximum(deg, 1), deg)
    seeds = draw(st.lists(st.integers(0, N - 1), min_size=1, max_size=4))
    return g.with_weights(w), sorted(set(seeds))


@given(graphs_and_seeds(), st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_ic_seeds_active_and_within_reachable_set(case, seed):
    graph, seeds = case
    active = simulate_ic(graph, seeds, rng=seed)
    assert all(active[s] for s in seeds)
    # reachability closure bound: nothing outside the forward-reachable set
    reachable = _forward_reachable(graph, seeds)
    assert not np.any(active & ~reachable)


@given(graphs_and_seeds(), st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_lt_seeds_active_and_within_reachable_set(case, seed):
    graph, seeds = case
    active = simulate_lt(graph, seeds, rng=seed)
    assert all(active[s] for s in seeds)
    reachable = _forward_reachable(graph, seeds)
    assert not np.any(active & ~reachable)


@given(graphs_and_seeds(), st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_lt_deterministic_given_thresholds(case, seed):
    graph, seeds = case
    thresholds = np.random.default_rng(seed).random(N)
    a = simulate_lt(graph, seeds, thresholds=thresholds)
    b = simulate_lt(graph, seeds, thresholds=thresholds)
    assert np.array_equal(a, b)


@given(graphs_and_seeds())
@settings(max_examples=30, deadline=None)
def test_ic_with_probability_one_reaches_closure(case):
    graph, seeds = case
    sure = graph.with_weights(np.ones(graph.m))
    active = simulate_ic(sure, seeds, rng=0)
    assert np.array_equal(active, _forward_reachable(graph, seeds))


def _forward_reachable(graph, seeds) -> np.ndarray:
    csr_indptr, csr_indices, _ = graph.csr()
    reach = np.zeros(graph.n, dtype=bool)
    stack = list(seeds)
    reach[list(seeds)] = True
    while stack:
        u = stack.pop()
        for v in csr_indices[csr_indptr[u]: csr_indptr[u + 1]]:
            if not reach[v]:
                reach[v] = True
                stack.append(int(v))
    return reach
