"""Invariants of the RRR store: counts always equal occurrence totals,
coverage is monotone in the seed set, packing roundtrips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rrr import RRRCollection

N = 20

sets_strategy = st.lists(
    st.lists(st.integers(0, N - 1), min_size=0, max_size=8),
    min_size=1,
    max_size=30,
)


def _build(sets):
    dedup = [sorted(set(s)) for s in sets]
    return RRRCollection.from_sets(dedup, n=N), dedup


@given(sets_strategy)
@settings(max_examples=80, deadline=None)
def test_counts_equal_occurrences(sets):
    coll, dedup = _build(sets)
    for v in range(N):
        assert coll.counts[v] == sum(v in s for s in dedup)


@given(sets_strategy, st.lists(st.integers(0, N - 1), max_size=6))
@settings(max_examples=80, deadline=None)
def test_coverage_matches_naive(sets, seeds):
    coll, dedup = _build(sets)
    expected = sum(bool(set(seeds) & set(s)) for s in dedup) / len(dedup)
    assert coll.coverage(seeds) == expected


@given(sets_strategy, st.lists(st.integers(0, N - 1), max_size=4))
@settings(max_examples=50, deadline=None)
def test_coverage_monotone(sets, seeds):
    coll, _ = _build(sets)
    smaller = coll.coverage(seeds[:-1] if seeds else [])
    larger = coll.coverage(seeds)
    assert larger >= smaller


@given(sets_strategy)
@settings(max_examples=50, deadline=None)
def test_packed_roundtrip(sets):
    coll, _ = _build(sets)
    packed_r, packed_o = coll.packed()
    assert np.array_equal(packed_r.unpack(), coll.flat)
    assert np.array_equal(packed_o.unpack(), coll.offsets)
    assert coll.nbytes_packed() <= coll.nbytes_raw() + 8


@given(sets_strategy, st.integers(0, 30))
@settings(max_examples=50, deadline=None)
def test_prefix_consistency(sets, cut):
    coll, dedup = _build(sets)
    cut = min(cut, coll.num_sets)
    pre = coll.prefix(cut)
    assert pre.num_sets == cut
    for i in range(cut):
        assert list(pre.set_at(i)) == list(coll.set_at(i))
