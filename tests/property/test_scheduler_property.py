"""List-scheduling bounds: the makespan always sits between the ideal
balance and Graham's (2 - 1/m) bound, and adding workers never hurts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.scheduler import makespan

costs_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1, max_size=300,
)


@given(costs_strategy, st.integers(1, 32))
@settings(max_examples=80, deadline=None)
def test_graham_bounds(costs, workers):
    arr = np.asarray(costs)
    ms = makespan(arr, workers)
    ideal = arr.sum() / workers
    assert ms >= max(ideal, arr.max()) - 1e-6
    assert ms <= ideal + arr.max() + 1e-6  # list scheduling guarantee


@given(costs_strategy, st.integers(1, 16))
@settings(max_examples=50, deadline=None)
def test_more_workers_never_slower(costs, workers):
    arr = np.asarray(costs)
    assert makespan(arr, workers + 1) <= makespan(arr, workers) + 1e-9


@given(costs_strategy)
@settings(max_examples=40, deadline=None)
def test_single_worker_is_total(costs):
    arr = np.asarray(costs)
    assert np.isclose(makespan(arr, 1), arr.sum())


@given(costs_strategy, st.integers(1, 8), st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=40, deadline=None)
def test_scale_invariance(costs, workers, factor):
    arr = np.asarray(costs)
    assert np.isclose(makespan(arr * factor, workers), factor * makespan(arr, workers))
