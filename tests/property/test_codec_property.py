"""Property tests for the alternative codecs: Huffman roundtrips and
prefix-freedom on arbitrary inputs, bitmap roundtrips and consistent
membership, fixed-point error bounds."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitmap import bitmap_encode
from repro.encoding.fixedpoint import pack_fixed_point, unpack_fixed_point
from repro.encoding.huffman import build_code, huffman_decode, huffman_encode
from repro.rrr import RRRCollection

int_arrays = st.lists(st.integers(0, 5000), min_size=1, max_size=300)


@given(int_arrays)
@settings(max_examples=50, deadline=None)
def test_huffman_roundtrip(values):
    enc = huffman_encode(values)
    assert list(huffman_decode(enc)) == values


@given(int_arrays)
@settings(max_examples=50, deadline=None)
def test_huffman_kraft(values):
    code = build_code(np.asarray(values))
    assert float(np.sum(2.0 ** -code.lengths)) <= 1.0 + 1e-9


@given(int_arrays)
@settings(max_examples=40, deadline=None)
def test_huffman_never_beats_entropy(values):
    """Payload bits >= empirical entropy (Shannon bound)."""
    arr = np.asarray(values)
    _, counts = np.unique(arr, return_counts=True)
    p = counts / arr.size
    entropy_bits = float(-np.sum(p * np.log2(p))) * arr.size
    enc = huffman_encode(arr)
    assert enc.total_bits >= entropy_bits - 1e-6


N = 40
sets_strategy = st.lists(
    st.lists(st.integers(0, N - 1), min_size=0, max_size=30),
    min_size=1, max_size=20,
)


@given(sets_strategy, st.booleans())
@settings(max_examples=50, deadline=None)
def test_bitmap_roundtrip(sets, force):
    coll = RRRCollection.from_sets([sorted(set(s)) for s in sets], n=N)
    enc = bitmap_encode(coll, force_bitmap=force)
    for i in range(coll.num_sets):
        assert np.array_equal(enc.set_at(i), coll.set_at(i))


@given(sets_strategy, st.integers(0, N - 1))
@settings(max_examples=50, deadline=None)
def test_bitmap_membership_matches_sets(sets, v):
    coll = RRRCollection.from_sets([sorted(set(s)) for s in sets], n=N)
    enc = bitmap_encode(coll)
    for i in range(coll.num_sets):
        assert enc.contains(i, v) == (v in set(coll.set_at(i).tolist()))


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
             min_size=1, max_size=200),
    st.integers(4, 24),
)
@settings(max_examples=50, deadline=None)
def test_fixed_point_error_bound(values, bits):
    packed = pack_fixed_point(values, bits=bits)
    restored = unpack_fixed_point(packed)
    assert float(np.abs(restored - np.asarray(values)).max()) <= 2.0**-bits + 1e-12
