"""Greedy-selection properties: the fast inverted-index implementation is
extensionally equal to the literal Alg. 3 reference on arbitrary inputs,
and greedy max-coverage obeys its submodular structure."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imm import select_seeds
from repro.rrr import RRRCollection

N = 15

sets_strategy = st.lists(
    st.lists(st.integers(0, N - 1), min_size=0, max_size=6),
    min_size=1,
    max_size=25,
)


def _coll(sets):
    return RRRCollection.from_sets([sorted(set(s)) for s in sets], n=N)


@given(sets_strategy, st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_fast_equals_reference(sets, k):
    coll = _coll(sets)
    fast = select_seeds(coll, k, "fast")
    ref = select_seeds(coll, k, "reference")
    assert np.array_equal(fast.seeds, ref.seeds)
    assert fast.covered_sets == ref.covered_sets
    assert np.array_equal(fast.marginal_gains, ref.marginal_gains)
    assert np.array_equal(fast.stats.sets_found, ref.stats.sets_found)
    assert np.array_equal(
        fast.stats.elements_decremented, ref.stats.elements_decremented
    )


@given(sets_strategy, st.integers(2, 6))
@settings(max_examples=60, deadline=None)
def test_marginal_gains_non_increasing(sets, k):
    res = select_seeds(_coll(sets), k)
    gains = res.marginal_gains
    assert np.all(gains[:-1] >= gains[1:])


@given(sets_strategy, st.integers(1, 6))
@settings(max_examples=60, deadline=None)
def test_coverage_equals_gain_sum(sets, k):
    res = select_seeds(_coll(sets), k)
    assert res.covered_sets == res.marginal_gains.sum()
    assert 0.0 <= res.coverage_fraction <= 1.0


@given(sets_strategy)
@settings(max_examples=40, deadline=None)
def test_first_seed_is_global_max_count(sets):
    coll = _coll(sets)
    res = select_seeds(coll, 1)
    assert coll.counts[res.seeds[0]] == coll.counts.max()


@given(sets_strategy, st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_greedy_at_least_half_of_best_single_plus(sets, k):
    """Greedy coverage is at least the best single vertex's coverage."""
    coll = _coll(sets)
    res = select_seeds(coll, k)
    best_single = select_seeds(coll, 1)
    assert res.covered_sets >= best_single.covered_sets


@given(sets_strategy, st.integers(1, N))
@settings(max_examples=80, deadline=None)
def test_seeds_always_distinct(sets, k):
    """select_seeds never returns duplicate vertices, for any k up to n —
    even when coverage saturates and every remaining gain is zero."""
    coll = _coll(sets)
    for strategy in ("fast", "reference"):
        res = select_seeds(coll, k, strategy)
        assert res.seeds.size == k
        assert len(set(res.seeds.tolist())) == k
        assert all(0 <= v < N for v in res.seeds.tolist())
