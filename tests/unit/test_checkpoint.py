"""RRR-store checkpointing: chunk-aligned persistence and resume.

The invariant everything here leans on: a chunk is a pure function of
``(store key, chunk index)``, so a store resumed from any completed
prefix — including after a kill mid-write — is bit-identical to one that
sampled straight through.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.resilience import checkpoint as ckpt
from repro.resilience.options import ResilienceOptions
from repro.rrr.store import RRRStore
from repro.utils.errors import CheckpointError

CHUNK = 32  # small chunks -> several files per test


def _store(graph, tmp_path, entropy=(1, 2), **kwargs):
    return RRRStore(graph, entropy=entropy, chunk_sets=CHUNK,
                    checkpoint_dir=tmp_path, **kwargs)


# -- key digests and manifests -----------------------------------------------


def test_key_digest_is_stable_and_key_sensitive():
    key = ("fp", "IC", False, (1, 2), 1, 32, 16384)
    assert ckpt.key_digest(key) == ckpt.key_digest(key)
    assert ckpt.key_digest(key) != ckpt.key_digest(key[:-1] + (8192,))
    assert ckpt.canonical_key(key) == ["fp", "IC", False, [1, 2], 1, 32, 16384]
    subdir = ckpt.store_dir("/base", key)
    assert subdir.name == f"rrr-{ckpt.key_digest(key)}"


def test_manifest_roundtrip_and_mismatch(tmp_path):
    key = ("fp", "IC", False, (1,), 1, 32, 16384)
    directory = tmp_path / "stream"
    ckpt.write_manifest(directory, key)
    ckpt.write_manifest(directory, key)  # idempotent
    ckpt.verify_manifest(directory, key)
    with pytest.raises(CheckpointError, match="different stream"):
        ckpt.verify_manifest(directory, ("other", "IC", False, (1,), 1, 32, 16384))
    with pytest.raises(CheckpointError):
        ckpt.write_manifest(directory, ("other", "IC", False, (1,), 1, 32, 16384))


def test_manifest_bad_format_and_garbage(tmp_path):
    key = ("fp",)
    directory = tmp_path / "stream"
    directory.mkdir()
    (directory / ckpt.MANIFEST).write_text(json.dumps({"format": "v0", "key": ["fp"]}))
    with pytest.raises(CheckpointError, match="format"):
        ckpt.verify_manifest(directory, key)
    (directory / ckpt.MANIFEST).write_text("not json {")
    with pytest.raises(CheckpointError, match="unreadable"):
        ckpt.verify_manifest(directory, key)


def test_load_chunks_missing_directory_is_empty(tmp_path):
    assert ckpt.load_chunks(tmp_path / "nope", ("k",), 4, lambda j: 1) == []


# -- store resume ------------------------------------------------------------


def test_store_resume_is_bit_identical_with_no_resampling(small_ic_graph, tmp_path):
    first = _store(small_ic_graph, tmp_path)
    baseline, _ = first.ensure(200)
    assert first.num_cached >= 200

    # "kill" the process: a brand-new store over the same directory
    resumed = _store(small_ic_graph, tmp_path)
    with obs.profiled() as handle:
        coll, _ = resumed.ensure(200)
    counters = handle.report().counters
    assert np.array_equal(coll.flat, baseline.flat)
    assert np.array_equal(coll.offsets, baseline.offsets)
    assert np.array_equal(coll.sources, baseline.sources)
    assert counters.get("rrr.store.topups", 0) == 0  # nothing resampled
    assert counters["rrr.store.checkpoint_loaded_sets"] == first.num_cached


def test_store_resume_tops_up_past_checkpoint(small_ic_graph, tmp_path):
    _store(small_ic_graph, tmp_path).ensure(100)
    resumed = _store(small_ic_graph, tmp_path)
    grown, _ = resumed.ensure(500)
    fresh, _ = RRRStore(small_ic_graph, entropy=(1, 2), chunk_sets=CHUNK).ensure(500)
    assert np.array_equal(grown.flat, fresh.flat)
    # and the top-up chunks were persisted too: a third store resumes all
    with obs.profiled() as handle:
        third = _store(small_ic_graph, tmp_path)
        third.ensure(500)
    assert handle.report().counters.get("rrr.store.topups", 0) == 0


def test_kill_mid_write_drops_partial_chunk_and_heals(small_ic_graph, tmp_path):
    first = _store(small_ic_graph, tmp_path)
    baseline, _ = first.ensure(200)
    chunk_files = sorted(first._checkpoint_dir.glob("chunk_*.npz"))
    assert len(chunk_files) >= 2
    # a kill mid-write leaves a torn trailing chunk
    torn = chunk_files[-1].read_bytes()
    chunk_files[-1].write_bytes(torn[: len(torn) // 2])

    resumed = _store(small_ic_graph, tmp_path)
    with obs.profiled() as handle:
        coll, _ = resumed.ensure(200)
    counters = handle.report().counters
    assert counters["rrr.store.checkpoint_bad_chunks"] == 1
    assert counters["rrr.store.topups"] == 1  # torn chunk resampled...
    assert np.array_equal(coll.flat, baseline.flat)  # ...bit-identically


def test_mismatched_key_raises_checkpoint_error(small_ic_graph, tmp_path):
    first = _store(small_ic_graph, tmp_path)
    first.ensure(50)
    other = _store(small_ic_graph, tmp_path, entropy=(9, 9))
    # different entropy -> different digest subdirectory; force the clash
    # an operator would cause by pointing a stream at the wrong directory
    other._checkpoint_dir = first._checkpoint_dir
    with pytest.raises(CheckpointError, match="different stream"):
        other.ensure(10)


def test_checkpoint_dir_flows_from_resilience_options(small_ic_graph, tmp_path):
    store = RRRStore(
        small_ic_graph, entropy=3, chunk_sets=CHUNK,
        resilience=ResilienceOptions(checkpoint_dir=tmp_path),
    )
    store.ensure(40)
    assert store._checkpoint_dir is not None
    assert (store._checkpoint_dir / ckpt.MANIFEST).exists()
    assert sorted(store._checkpoint_dir.glob("chunk_*.npz"))


def test_stores_with_different_keys_share_one_base_dir(small_ic_graph, tmp_path):
    a = _store(small_ic_graph, tmp_path, entropy=(1,))
    b = _store(small_ic_graph, tmp_path, entropy=(2,))
    a.ensure(40)
    b.ensure(40)
    assert a._checkpoint_dir != b._checkpoint_dir
    # each resumes its own stream, never the sibling's
    ra, _ = _store(small_ic_graph, tmp_path, entropy=(1,)).ensure(40)
    ca, _ = a.ensure(40)
    assert np.array_equal(ra.flat, ca.flat)
