import numpy as np
import pytest

from repro.rrr import RRRCollection, sample_rrr_ic
from repro.rrr.statistics import (
    collection_statistics,
    coverage_concentration,
    size_histogram,
)
from repro.utils.errors import ValidationError


@pytest.fixture
def coll():
    return RRRCollection.from_sets(
        [[0], [0, 1], [0, 1, 2, 3], [2]], n=5, sources=[0, 1, 3, 2]
    )


def test_statistics_fields(coll):
    stats = collection_statistics(coll)
    assert stats.num_sets == 4
    assert stats.total_elements == 8
    assert stats.mean_size == pytest.approx(2.0)
    assert stats.median_size == pytest.approx(1.5)
    assert stats.max_size == 4
    assert stats.singleton_fraction == 0.5
    assert stats.empty_fraction == 0.0
    assert stats.distinct_vertices == 4
    assert stats.top_vertex_coverage == pytest.approx(0.75)  # vertex 0 in 3/4


def test_statistics_empty_rejected():
    empty = RRRCollection(np.empty(0, dtype=np.int32), np.zeros(1, dtype=np.int64), 3)
    with pytest.raises(ValidationError):
        collection_statistics(empty)
    with pytest.raises(ValidationError):
        size_histogram(empty)
    with pytest.raises(ValidationError):
        coverage_concentration(empty)


def test_size_histogram_counts_everything(coll):
    edges, counts = size_histogram(coll, bins=4)
    assert counts.sum() == coll.num_sets
    assert np.all(np.diff(edges) > 0)


def test_size_histogram_on_real_sample(small_ic_graph):
    sample, _ = sample_rrr_ic(small_ic_graph, 5000, rng=1)
    edges, counts = size_histogram(sample)
    assert counts.sum() == 5000


def test_coverage_concentration_monotone(coll):
    conc = coverage_concentration(coll, top_k=3)
    assert np.all(np.diff(conc) >= 0)
    assert conc[0] == pytest.approx(0.75)
    assert conc[-1] <= 1.0


def test_concentration_saturates_on_real_sample(small_ic_graph):
    sample, _ = sample_rrr_ic(small_ic_graph, 5000, rng=2)
    conc = coverage_concentration(sample, top_k=50)
    assert conc[-1] > conc[0]
    # greedy-by-count proxy should cover a sizable fraction with 50 vertices
    assert conc[-1] > 0.3


def test_concentration_tie_break_lowest_id():
    # two vertices tied on raw count: the concentration order must take
    # the LOWEST id first (the convention greedy selection uses), which
    # a reversed stable ascending argsort gets backwards
    tied = RRRCollection.from_sets([[1], [1], [4], [4], [0]], n=6)
    conc = coverage_concentration(tied, top_k=2)
    # taking 1 then 4 covers 2/5 then 4/5; any other tied order differs
    assert conc[0] == pytest.approx(2 / 5)
    assert conc[1] == pytest.approx(4 / 5)
    order = np.argsort(-tied.counts, kind="stable")[:3]
    assert list(order) == [1, 4, 0]
