"""IMMOptions: validation, the legacy-keyword shim, and parallel runs."""

import dataclasses

import numpy as np
import pytest

from repro import IMMOptions, run_imm
from repro.imm.bounds import BoundsConfig
from repro.utils.errors import ValidationError

BOUNDS = BoundsConfig(theta_scale=0.1)


def test_defaults():
    opts = IMMOptions()
    assert opts.model == "IC"
    assert opts.eliminate_sources is False
    assert opts.bounds is None
    assert opts.selection_strategy == "fast"
    assert opts.batch_size == 16384
    assert opts.n_jobs == 1
    assert opts.profile is False


def test_model_normalized_and_validated():
    assert IMMOptions(model="lt").model == "LT"
    with pytest.raises(ValidationError):
        IMMOptions(model="SIR")


def test_field_validation():
    with pytest.raises(ValidationError):
        IMMOptions(selection_strategy="greedy")
    with pytest.raises(ValidationError):
        IMMOptions(batch_size=0)
    with pytest.raises(ValidationError):
        IMMOptions(n_jobs=0)


def test_frozen_and_replace():
    opts = IMMOptions()
    with pytest.raises(dataclasses.FrozenInstanceError):
        opts.model = "LT"
    other = opts.replace(n_jobs=3, model="lt")
    assert (other.n_jobs, other.model) == (3, "LT")
    assert (opts.n_jobs, opts.model) == (1, "IC")


def test_field_names_cover_legacy_kwargs():
    names = IMMOptions.field_names()
    for kwarg in ("model", "eliminate_sources", "bounds",
                  "selection_strategy", "batch_size", "profile"):
        assert kwarg in names


def test_legacy_kwargs_warn_and_match_options(small_ic_graph):
    with pytest.warns(DeprecationWarning, match="IMMOptions"):
        legacy = run_imm(small_ic_graph, 5, 0.3, model="IC", rng=3,
                         eliminate_sources=True, bounds=BOUNDS)
    new = run_imm(small_ic_graph, 5, 0.3, rng=3,
                  options=IMMOptions(eliminate_sources=True, bounds=BOUNDS))
    assert np.array_equal(legacy.seeds, new.seeds)
    assert legacy.theta == new.theta
    assert np.array_equal(legacy.collection.flat, new.collection.flat)


def test_no_warning_for_pure_options_call(small_ic_graph, recwarn):
    run_imm(small_ic_graph, 3, 0.4, rng=1, options=IMMOptions(bounds=BOUNDS))
    assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]


def test_options_and_legacy_kwargs_conflict(small_ic_graph):
    with pytest.raises(ValidationError, match="not both"):
        run_imm(small_ic_graph, 3, 0.4, model="IC", options=IMMOptions())


def test_result_carries_options(small_ic_graph):
    opts = IMMOptions(bounds=BOUNDS)
    result = run_imm(small_ic_graph, 3, 0.4, rng=0, options=opts)
    assert result.options is opts


def test_parallel_options_reproducible(small_ic_graph):
    # acceptance: n_jobs=4 yields a valid seed set, bit-for-bit stable
    # for a fixed (rng, n_jobs)
    opts = IMMOptions(bounds=BOUNDS, n_jobs=4)
    a = run_imm(small_ic_graph, 5, 0.3, rng=17, options=opts)
    b = run_imm(small_ic_graph, 5, 0.3, rng=17, options=opts)
    assert len(set(a.seeds.tolist())) == 5
    assert np.all((0 <= a.seeds) & (a.seeds < small_ic_graph.n))
    assert a.theta == b.theta
    assert np.array_equal(a.seeds, b.seeds)
    assert np.array_equal(a.collection.flat, b.collection.flat)
    assert np.array_equal(a.collection.offsets, b.collection.offsets)


def test_all_selection_strategies_accepted():
    for strategy in ("fast", "lazy", "reference"):
        assert IMMOptions(selection_strategy=strategy).selection_strategy == strategy
