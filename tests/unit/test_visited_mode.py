"""Visited-mode parity: every sampler bookkeeping mode draws the same
stream, so collections *and* traces must be bit-identical across
``sorted`` / ``bitset`` / ``auto``."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.kernels import ENV_BUDGET_MB, ENV_VISITED_MODE
from repro.rrr import sample_rrr_ic, sample_rrr_lt

SAMPLERS = {"IC": sample_rrr_ic, "LT": sample_rrr_lt}


def _assert_identical(ref, out):
    coll_ref, trace_ref = ref
    coll, trace = out
    np.testing.assert_array_equal(coll.flat, coll_ref.flat)
    np.testing.assert_array_equal(coll.offsets, coll_ref.offsets)
    np.testing.assert_array_equal(coll.sources, coll_ref.sources)
    np.testing.assert_array_equal(coll.counts, coll_ref.counts)
    np.testing.assert_array_equal(trace.sizes, trace_ref.sizes)
    np.testing.assert_array_equal(trace.rounds, trace_ref.rounds)
    np.testing.assert_array_equal(trace.edges_examined, trace_ref.edges_examined)
    np.testing.assert_array_equal(trace.kept_mask, trace_ref.kept_mask)
    np.testing.assert_array_equal(trace.sources, trace_ref.sources)
    assert trace.raw_singletons == trace_ref.raw_singletons


@pytest.mark.parametrize("model", ["IC", "LT"])
@pytest.mark.parametrize("eliminate", [False, True])
def test_parity_matrix(model, eliminate, small_ic_graph, small_lt_graph):
    graph = small_ic_graph if model == "IC" else small_lt_graph
    sampler = SAMPLERS[model]
    ref = sampler(graph, 400, rng=42, eliminate_sources=eliminate,
                  batch_size=128, visited_mode="sorted")
    for mode in ("bitset", "auto"):
        out = sampler(graph, 400, rng=42, eliminate_sources=eliminate,
                      batch_size=128, visited_mode=mode)
        _assert_identical(ref, out)


@pytest.mark.parametrize("model", ["IC", "LT"])
def test_env_var_selects_mode(model, small_ic_graph, small_lt_graph, monkeypatch):
    graph = small_ic_graph if model == "IC" else small_lt_graph
    sampler = SAMPLERS[model]
    ref = sampler(graph, 200, rng=5, visited_mode="sorted")
    monkeypatch.setenv(ENV_VISITED_MODE, "bitset")
    with obs.profiled() as handle:
        out = sampler(graph, 200, rng=5)  # mode resolved from the env
    _assert_identical(ref, out)
    # the bitset path really ran: the visited plane was accounted
    assert handle.report().gauges.get("kernels.bitset.plane_bytes", 0) > 0


@pytest.mark.parametrize("model", ["IC", "LT"])
def test_auto_falls_back_under_tiny_budget(
    model, small_ic_graph, small_lt_graph, monkeypatch
):
    graph = small_ic_graph if model == "IC" else small_lt_graph
    sampler = SAMPLERS[model]
    ref = sampler(graph, 200, rng=9, visited_mode="sorted")
    monkeypatch.setenv(ENV_BUDGET_MB, "0.001")  # ~1 KiB: no plane fits
    with obs.profiled() as handle:
        out = sampler(graph, 200, rng=9, visited_mode="auto")
    _assert_identical(ref, out)
    counters = handle.report().counters
    gauges = handle.report().gauges
    assert counters.get("kernels.bitset.fallbacks", 0) >= 1
    assert gauges.get("kernels.bitset.plane_bytes", 0) == 0  # never built


@pytest.mark.parametrize("model", ["IC", "LT"])
def test_auto_plane_within_budget(model, small_ic_graph, small_lt_graph, monkeypatch):
    """When auto picks bitset, the accounted plane respects the budget."""
    graph = small_ic_graph if model == "IC" else small_lt_graph
    monkeypatch.setenv(ENV_BUDGET_MB, "1")
    with obs.profiled() as handle:
        SAMPLERS[model](graph, 300, rng=3, batch_size=64, visited_mode="auto")
    gauges = handle.report().gauges
    plane_bytes = gauges.get("kernels.bitset.plane_bytes", 0)
    assert 0 < plane_bytes <= 1024 * 1024


def test_bitset_mode_counts_words_and_tiles(small_ic_graph):
    with obs.profiled() as handle:
        sample_rrr_ic(small_ic_graph, 200, rng=1, visited_mode="bitset")
    counters = handle.report().counters
    assert counters.get("kernels.bitset.words_touched", 0) > 0
    assert counters.get("kernels.bitset.tiles", 0) >= 1


def test_singleton_heavy_graph_parity(line_graph):
    """Tiny graphs with near-empty RRR sets exercise the empty-frontier
    paths of both modes."""
    from repro.graphs import assign_ic_weights

    graph = assign_ic_weights(line_graph)
    ref = sample_rrr_ic(graph, 50, rng=0, eliminate_sources=True,
                        visited_mode="sorted")
    out = sample_rrr_ic(graph, 50, rng=0, eliminate_sources=True,
                        visited_mode="bitset")
    _assert_identical(ref, out)


def test_lt_selection_index_cache(small_lt_graph):
    """The per-graph LT selection index is built once and reused."""
    from repro.rrr import clear_selection_indices

    clear_selection_indices()
    with obs.profiled() as handle:
        sample_rrr_lt(small_lt_graph, 50, rng=1)
        sample_rrr_lt(small_lt_graph, 50, rng=2)
    counters = handle.report().counters
    assert counters.get("rrr.lt_index.built", 0) == 1
    assert counters.get("rrr.lt_index.reused", 0) >= 1
    clear_selection_indices()
    with obs.profiled() as handle:
        sample_rrr_lt(small_lt_graph, 50, rng=3)
    assert handle.report().counters.get("rrr.lt_index.built", 0) == 1
