import numpy as np

from repro.utils.segments import segment_ids, segmented_arange


def test_segmented_arange_basic():
    out = segmented_arange(np.array([10, 20]), np.array([3, 2]))
    assert list(out) == [10, 11, 12, 20, 21]


def test_segmented_arange_with_zero_length_segments():
    out = segmented_arange(np.array([5, 7, 9]), np.array([0, 2, 0]))
    assert list(out) == [7, 8]


def test_segmented_arange_empty():
    out = segmented_arange(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    assert out.size == 0


def test_segmented_arange_matches_naive():
    rng = np.random.default_rng(0)
    starts = rng.integers(0, 1000, size=50)
    lengths = rng.integers(0, 20, size=50)
    expected = np.concatenate(
        [np.arange(s, s + l) for s, l in zip(starts, lengths)]
    ) if lengths.sum() else np.empty(0, dtype=np.int64)
    assert np.array_equal(segmented_arange(starts, lengths), expected)


def test_segment_ids():
    out = segment_ids(np.array([2, 0, 3]))
    assert list(out) == [0, 0, 2, 2, 2]
