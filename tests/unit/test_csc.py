import numpy as np
import pytest

from repro.graphs import DirectedGraph
from repro.utils.errors import ValidationError


def test_from_edges_groups_by_destination():
    g = DirectedGraph.from_edges([0, 2, 1], [1, 1, 2], n=3)
    assert g.n == 3 and g.m == 3
    assert list(g.in_neighbors(1)) == [0, 2]  # sorted by source id
    assert list(g.in_neighbors(2)) == [1]
    assert list(g.in_neighbors(0)) == []


def test_from_edges_dedupes_parallel_edges():
    g = DirectedGraph.from_edges([0, 0, 0], [1, 1, 1], n=2)
    assert g.m == 1


def test_from_edges_keeps_duplicates_when_requested():
    g = DirectedGraph.from_edges([0, 0], [1, 1], n=2, dedupe=False)
    assert g.m == 2


def test_from_edges_infers_n():
    g = DirectedGraph.from_edges([0, 5], [5, 3])
    assert g.n == 6


def test_from_edges_rejects_out_of_range_ids():
    with pytest.raises(ValidationError):
        DirectedGraph.from_edges([0], [3], n=2)
    with pytest.raises(ValidationError):
        DirectedGraph.from_edges([-1], [0], n=2)


def test_degrees(diamond_graph):
    assert list(diamond_graph.in_degrees()) == [0, 1, 1, 2]
    assert list(diamond_graph.out_degrees()) == [2, 1, 1, 0]


def test_csr_view_consistent_with_csc(small_ic_graph):
    csr_indptr, csr_indices, csr_weights = small_ic_graph.csr()
    # rebuild the edge set from both views and compare
    csc_dst = np.repeat(np.arange(small_ic_graph.n), small_ic_graph.in_degrees())
    csc_edges = set(zip(small_ic_graph.indices.tolist(), csc_dst.tolist()))
    csr_src = np.repeat(np.arange(small_ic_graph.n), np.diff(csr_indptr))
    csr_edges = set(zip(csr_src.tolist(), csr_indices.tolist()))
    assert csc_edges == csr_edges


def test_csr_weights_follow_edges():
    g = DirectedGraph.from_edges([0, 1], [2, 2], n=3, weights=[0.25, 0.75])
    csr_indptr, csr_indices, csr_weights = g.csr()
    # edge (0,2) carries 0.25, edge (1,2) carries 0.75 in CSR order too
    assert csr_weights[csr_indptr[0]] == 0.25
    assert csr_weights[csr_indptr[1]] == 0.75


def test_reverse_transposes(diamond_graph):
    rev = diamond_graph.reverse()
    assert list(rev.in_neighbors(0)) == [1, 2]
    assert list(rev.in_neighbors(1)) == [3]
    assert rev.m == diamond_graph.m


def test_in_weight_cumsum_per_segment():
    g = DirectedGraph.from_edges([0, 1, 0], [2, 2, 1], n=3, weights=[0.2, 0.3, 1.0])
    cum = g.in_weight_cumsum()
    # vertex 1 segment: [1.0]; vertex 2 segment: [0.2, 0.5]
    assert cum[g.indptr[1]] == pytest.approx(1.0)
    assert cum[g.indptr[2]] == pytest.approx(0.2)
    assert cum[g.indptr[2] + 1] == pytest.approx(0.5)


def test_total_in_weight():
    g = DirectedGraph.from_edges([0, 1], [2, 2], n=3, weights=[0.2, 0.3])
    totals = g.total_in_weight()
    assert totals[0] == 0.0 and totals[2] == pytest.approx(0.5)


def test_weights_validation():
    with pytest.raises(ValidationError):
        DirectedGraph.from_edges([0], [1], n=2, weights=[1.5])
    with pytest.raises(ValidationError):
        DirectedGraph.from_edges([0], [1], n=2, weights=[0.5, 0.5])


def test_in_weights_requires_assignment(diamond_graph):
    with pytest.raises(ValidationError):
        diamond_graph.in_weights(3)


def test_with_weights_shares_topology(diamond_graph):
    w = np.full(diamond_graph.m, 0.5)
    g2 = diamond_graph.with_weights(w)
    assert g2.indices is diamond_graph.indices
    assert g2.weights is not None


def test_nbytes_csc():
    g = DirectedGraph.from_edges([0], [1], n=2, weights=[0.5])
    # 4*(n+1) offsets + 4*m indices + 4*m weights
    assert g.nbytes_csc() == 4 * 3 + 4 + 4
    assert g.nbytes_csc(include_weights=False) == 4 * 3 + 4


def test_empty_graph():
    g = DirectedGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int32))
    assert g.n == 0 and g.m == 0
