import numpy as np
import pytest

from repro.rrr import RRRBuilder, RRRCollection, sample_rrr_ic
from repro.utils.errors import ValidationError


@pytest.fixture
def coll():
    return RRRCollection.from_sets(
        [[0, 2], [1], [0, 1, 3], []], n=4, sources=[2, 1, 3, 0]
    )


def test_counts_track_occurrences(coll):
    assert list(coll.counts) == [2, 2, 1, 1]


def test_shape_queries(coll):
    assert coll.num_sets == 4
    assert coll.total_elements == 6
    assert list(coll.sizes()) == [2, 1, 3, 0]
    assert list(coll.set_at(2)) == [0, 1, 3]


def test_fractions(coll):
    assert coll.singleton_fraction() == 0.25
    assert coll.empty_fraction() == 0.25


def test_sets_containing(coll):
    assert list(coll.sets_containing(0)) == [0, 2]
    assert list(coll.sets_containing(3)) == [2]


def test_coverage(coll):
    assert coll.coverage([0]) == pytest.approx(0.5)
    assert coll.coverage([0, 1]) == pytest.approx(0.75)  # empty set never covered
    assert coll.coverage([]) == 0.0


def test_from_sets_sorts_input():
    c = RRRCollection.from_sets([[3, 1, 2]], n=4)
    assert list(c.set_at(0)) == [1, 2, 3]


def test_memory_accounting(coll):
    raw = coll.nbytes_raw()
    assert raw == 4 * 6 + 8 * 5 + 4 * 4
    assert coll.nbytes_packed() < raw
    report = coll.memory_report()
    assert report.raw_bytes == raw


def test_packed_roundtrip(coll):
    packed_r, packed_o = coll.packed()
    assert np.array_equal(packed_r.unpack(), coll.flat)
    assert np.array_equal(packed_o.unpack(), coll.offsets)


def test_prefix(coll):
    p = coll.prefix(2)
    assert p.num_sets == 2
    assert list(p.counts) == [1, 1, 1, 0]
    with pytest.raises(ValidationError):
        coll.prefix(5)


def test_validation_rejects_bad_offsets():
    with pytest.raises(ValidationError):
        RRRCollection(np.array([0]), np.array([1, 1]), n=2)
    with pytest.raises(ValidationError):
        RRRCollection(np.array([5]), np.array([0, 1]), n=2)


def test_builder_accumulates_and_truncates():
    b = RRRBuilder(n=5)
    b.append_batch(np.array([0, 1, 2], dtype=np.int32), np.array([2, 1]), np.array([0, 2]))
    b.append_batch(np.array([3, 4], dtype=np.int32), np.array([2]), np.array([4]))
    assert b.num_sets == 3
    b.truncate_to(2)
    coll = b.finalize()
    assert coll.num_sets == 2
    assert coll.total_elements == 3
    assert list(coll.sources) == [0, 2]


def test_builder_validates_batches():
    b = RRRBuilder(n=3)
    with pytest.raises(ValidationError):
        b.append_batch(np.array([0], dtype=np.int32), np.array([2]), np.array([1]))
    with pytest.raises(ValidationError):
        b.append_batch(np.array([0], dtype=np.int32), np.array([1]), np.array([1, 2]))


def test_empty_builder():
    coll = RRRBuilder(n=3).finalize()
    assert coll.num_sets == 0 and coll.total_elements == 0
    assert coll.coverage([0]) == 0.0


# -- concat ------------------------------------------------------------------
def test_concat_two_collections():
    a = RRRCollection.from_sets([[0, 1], [2]], n=4, sources=[0, 2])
    b = RRRCollection.from_sets([[3], [1, 3]], n=4, sources=[3, 1])
    merged = RRRCollection.concat([a, b])
    assert merged.num_sets == 4
    assert np.array_equal(merged.set_at(0), [0, 1])
    assert np.array_equal(merged.set_at(2), [3])
    assert np.array_equal(merged.set_at(3), [1, 3])
    assert list(merged.sources) == [0, 2, 3, 1]
    assert list(merged.counts) == [1, 2, 1, 2]


def test_concat_single_part_is_identity(coll):
    assert RRRCollection.concat([coll]) is coll


def test_concat_empty_list_rejected():
    with pytest.raises(ValidationError):
        RRRCollection.concat([])


def test_concat_mismatched_n_rejected():
    a = RRRCollection.from_sets([[0]], n=2)
    b = RRRCollection.from_sets([[0]], n=3)
    with pytest.raises(ValidationError):
        RRRCollection.concat([a, b])


def test_concat_drops_sources_when_any_part_lacks_them():
    a = RRRCollection.from_sets([[0]], n=2, sources=[0])
    b = RRRCollection.from_sets([[1]], n=2)
    merged = RRRCollection.concat([a, b])
    assert merged.sources is None


def test_concat_with_empty_sets():
    a = RRRCollection.from_sets([[], [0]], n=3, sources=[1, 0])
    b = RRRCollection.from_sets([[2], []], n=3, sources=[2, 1])
    merged = RRRCollection.concat([a, b])
    assert merged.num_sets == 4
    assert list(merged.sizes()) == [0, 1, 1, 0]
    assert merged.total_elements == 2


def test_concat_counts_equal_from_scratch_bincount(small_ic_graph):
    # concat sums the parts' known counts instead of re-scanning the
    # concatenated flat array; the result must be indistinguishable
    a, _ = sample_rrr_ic(small_ic_graph, 120, rng=21)
    b, _ = sample_rrr_ic(small_ic_graph, 80, rng=22)
    c, _ = sample_rrr_ic(small_ic_graph, 50, rng=23)
    merged = RRRCollection.concat([a, b, c])
    scratch = np.bincount(merged.flat, minlength=merged.n).astype(np.int64)
    assert merged.counts.dtype == scratch.dtype
    assert np.array_equal(merged.counts, scratch)


def test_prefix_counts_equal_from_scratch_bincount(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 200, rng=24)
    # hits both adjustment paths: small prefix (recount) and large
    # prefix (slice-adjust via the dropped suffix), plus the edges
    for num_sets in (0, 1, 10, 150, 199, 200):
        p = coll.prefix(num_sets)
        scratch = np.bincount(p.flat, minlength=p.n).astype(np.int64)
        assert np.array_equal(p.counts, scratch), num_sets


def test_explicit_counts_validated():
    with pytest.raises(ValidationError):
        RRRCollection(
            np.array([0, 1], dtype=np.int32),
            np.array([0, 2], dtype=np.int64),
            n=3,
            counts=np.array([1, 1], dtype=np.int64),  # wrong length
        )
