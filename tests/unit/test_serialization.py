import numpy as np
import pytest

from repro.graphs import assign_ic_weights
from repro.graphs.generators import powerlaw_configuration
from repro.rrr import sample_rrr_ic
from repro.utils.errors import ValidationError
from repro.utils.serialization import (
    load_collection,
    load_graph,
    save_collection,
    save_graph,
)


@pytest.fixture(scope="module")
def graph():
    return assign_ic_weights(powerlaw_configuration(200, 1200, rng=9))


def test_graph_roundtrip(tmp_path, graph):
    path = tmp_path / "g.npz"
    save_graph(graph, path)
    loaded = load_graph(path)
    assert np.array_equal(loaded.indptr, graph.indptr)
    assert np.array_equal(loaded.indices, graph.indices)
    assert np.allclose(loaded.weights, graph.weights)


def test_unweighted_graph_roundtrip(tmp_path):
    g = powerlaw_configuration(100, 500, rng=1)
    path = tmp_path / "g.npz"
    save_graph(g, path)
    assert load_graph(path).weights is None


def test_collection_roundtrip(tmp_path, graph):
    coll, _ = sample_rrr_ic(graph, 300, rng=2)
    path = tmp_path / "r.npz"
    save_collection(coll, path)
    loaded = load_collection(path)
    assert np.array_equal(loaded.flat, coll.flat)
    assert np.array_equal(loaded.offsets, coll.offsets)
    assert np.array_equal(loaded.counts, coll.counts)
    assert np.array_equal(loaded.sources, coll.sources)
    assert loaded.n == coll.n


def test_loaded_collection_usable_for_selection(tmp_path, graph):
    from repro.imm import select_seeds

    coll, _ = sample_rrr_ic(graph, 500, rng=3)
    path = tmp_path / "r.npz"
    save_collection(coll, path)
    a = select_seeds(coll, 5)
    b = select_seeds(load_collection(path), 5)
    assert np.array_equal(a.seeds, b.seeds)


def test_format_tags_rejected_crosswise(tmp_path, graph):
    coll, _ = sample_rrr_ic(graph, 10, rng=4)
    gpath, cpath = tmp_path / "g.npz", tmp_path / "c.npz"
    save_graph(graph, gpath)
    save_collection(coll, cpath)
    with pytest.raises(ValidationError):
        load_collection(gpath)
    with pytest.raises(ValidationError):
        load_graph(cpath)
