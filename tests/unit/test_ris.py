import math

import pytest

from repro.imm import run_ris
from repro.utils.errors import ValidationError


def test_fixed_num_sets(small_ic_graph):
    res = run_ris(small_ic_graph, 5, num_sets=800, rng=1)
    assert res.collection.num_sets == 800
    assert res.seeds.size == 5
    assert math.isnan(res.work_budget)


def test_budget_rule_spends_enough(small_ic_graph):
    res = run_ris(small_ic_graph, 5, epsilon=0.5, rng=2, budget_constant=0.01)
    assert res.work_spent >= res.work_budget or res.collection.num_sets >= 4096
    assert res.collection.num_sets > 0


def test_budget_grows_with_accuracy(small_ic_graph):
    loose = run_ris(small_ic_graph, 3, epsilon=0.5, rng=3, budget_constant=0.001)
    tight = run_ris(small_ic_graph, 3, epsilon=0.3, rng=3, budget_constant=0.001)
    assert tight.work_budget > loose.work_budget


def test_validation(small_ic_graph, line_graph):
    with pytest.raises(ValidationError):
        run_ris(line_graph, 2)
    with pytest.raises(ValidationError):
        run_ris(small_ic_graph, 0)
    with pytest.raises(ValidationError):
        run_ris(small_ic_graph, 2, epsilon=1.5)


def test_lt_model_supported(small_lt_graph):
    res = run_ris(small_lt_graph, 4, model="LT", num_sets=500, rng=4)
    assert res.seeds.size == 4


def test_quality_close_to_imm(small_ic_graph):
    from repro.diffusion import estimate_spread
    from repro.imm import BoundsConfig, run_imm

    ris = run_ris(small_ic_graph, 6, num_sets=4000, rng=5)
    imm = run_imm(small_ic_graph, 6, 0.25, rng=5, bounds=BoundsConfig(theta_scale=0.1))
    sp_ris = estimate_spread(small_ic_graph, ris.seeds, "IC", 500, rng=6)
    sp_imm = estimate_spread(small_ic_graph, imm.seeds, "IC", 500, rng=6)
    assert sp_ris > 0.85 * sp_imm
