"""Shared-memory segment lifecycle: the data plane's no-leak contract.

Every segment goes through a :class:`SegmentRegistry`; the tests pin the
ledger semantics (create registers, release/close_all unlink exactly
once, idempotently), the attach path (same physical pages, no unlink
duty), and the plane resolution precedence (explicit > env > default).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.shm import (
    ENV_VAR,
    REGISTRY,
    SegmentRegistry,
    attach_shared_memory,
    resolve_data_plane,
    shm_available,
)
from repro.shm.segments import quiet_close
from repro.utils.errors import ValidationError

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="OS shared memory unavailable"
)


def _name_exists(name: str) -> bool:
    try:
        shm = attach_shared_memory(name)
    except FileNotFoundError:
        return False
    quiet_close(shm)
    return True


def test_create_view_roundtrip():
    reg = SegmentRegistry()
    seg = reg.create(8 * 16, tag="t")
    view = seg.view(np.int64, 16)
    view[:] = np.arange(16)
    again = seg.view(np.int64, 16)
    assert np.array_equal(again, np.arange(16))
    assert reg.active_count == 1
    assert reg.resident_bytes == seg.nbytes
    reg.release(seg)
    assert reg.active_count == 0
    assert seg.closed


def test_release_unlinks_name():
    reg = SegmentRegistry()
    seg = reg.create(64, tag="t")
    name = seg.name
    assert _name_exists(name)
    reg.release(seg)
    assert not _name_exists(name)
    reg.release(seg)  # idempotent


def test_close_all_drains_ledger():
    reg = SegmentRegistry()
    names = [reg.create(32, tag="t").name for _ in range(4)]
    assert reg.active_count == 4
    reg.close_all()
    assert reg.active_count == 0
    assert not any(_name_exists(n) for n in names)


def test_view_after_close_raises():
    reg = SegmentRegistry()
    seg = reg.create(32, tag="t")
    reg.release(seg)
    with pytest.raises(ValidationError):
        seg.view(np.int8, 1)


def test_attach_shares_pages():
    reg = SegmentRegistry()
    seg = reg.create(4 * 8, tag="t")
    seg.view(np.int32, 8)[:] = 7
    shm = attach_shared_memory(seg.name)
    other = np.frombuffer(shm.buf, dtype=np.int32, count=8)
    assert np.all(other == 7)
    seg.view(np.int32, 8)[0] = -1  # writes visible through the attach
    assert other[0] == -1
    del other
    quiet_close(shm)
    reg.release(seg)


def test_unlink_with_live_views_still_removes_name():
    """The leak-proofness guarantee: close always unlinks, even while
    NumPy views pin the mapping (unmap then defers to GC)."""
    reg = SegmentRegistry()
    seg = reg.create(64, tag="t")
    view = seg.view(np.int64, 8)
    name = seg.name
    reg.release(seg)
    assert not _name_exists(name)
    assert view[0] == 0  # mapping itself survives until the view dies


def test_registry_gauges():
    handle = obs.install()
    try:
        reg = SegmentRegistry()
        seg = reg.create(128, tag="t")
        assert handle.metrics.gauges["shm.segments_active"] == 1
        assert handle.metrics.gauges["shm.bytes_resident"] == seg.nbytes
        assert handle.metrics.counters["shm.segments_created"] == 1
        reg.release(seg)
        assert handle.metrics.gauges["shm.segments_active"] == 0
        assert handle.metrics.gauges["shm.bytes_resident"] == 0
    finally:
        obs.uninstall()


def test_global_registry_exists():
    # the module-level registry is what pools/arenas default to; it must
    # start (and in a healthy suite, stay) drained between tests
    assert isinstance(REGISTRY, SegmentRegistry)


# -- plane resolution --------------------------------------------------------


def test_resolve_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "shm")
    assert resolve_data_plane("pickle") == "pickle"


def test_resolve_env_beats_default(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "pickle")
    assert resolve_data_plane() == "pickle"


def test_resolve_default_is_shm_when_available(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert resolve_data_plane() == "shm"


def test_resolve_normalizes_case():
    assert resolve_data_plane("  SHM ") == "shm"


def test_resolve_rejects_unknown():
    with pytest.raises(ValidationError):
        resolve_data_plane("carrier-pigeon")
