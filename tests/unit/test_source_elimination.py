import numpy as np
import pytest

from repro.rrr import RRRCollection, eliminate_sources_post_hoc, sample_rrr_ic
from repro.utils.errors import ValidationError


def test_strips_sources_and_drops_empties():
    coll = RRRCollection.from_sets(
        [[0, 2], [1], [0, 1, 3]], n=4, sources=[2, 1, 3]
    )
    out = eliminate_sources_post_hoc(coll)
    assert out.num_sets == 2  # the singleton {1} emptied and was dropped
    assert list(out.set_at(0)) == [0]
    assert list(out.set_at(1)) == [0, 1]


def test_keep_empty_option():
    coll = RRRCollection.from_sets([[1]], n=3, sources=[1])
    out = eliminate_sources_post_hoc(coll, drop_empty=False)
    assert out.num_sets == 1
    assert out.sizes()[0] == 0


def test_requires_sources():
    coll = RRRCollection.from_sets([[0]], n=2)
    with pytest.raises(ValidationError):
        eliminate_sources_post_hoc(coll)


def test_matches_inline_elimination(small_ic_graph):
    """Post-hoc elimination of a vanilla sample equals what the inline
    sampler produces for the same generated sets."""
    vanilla, _ = sample_rrr_ic(small_ic_graph, 500, rng=42)
    stripped = eliminate_sources_post_hoc(vanilla)
    # counts drop by exactly the number of surviving sets' sources removed
    assert stripped.total_elements == vanilla.total_elements - vanilla.num_sets
    assert stripped.num_sets == vanilla.num_sets - int(
        (vanilla.sizes() == 1).sum()
    )
    # no set retains its source
    for i in range(0, stripped.num_sets, 41):
        assert stripped.sources[i] not in stripped.set_at(i)
