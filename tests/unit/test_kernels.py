"""Unit tests for the word-parallel bitset kernels (repro.kernels)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.kernels import (
    DEFAULT_PLANE_BUDGET_BYTES,
    ENV_BUDGET_MB,
    ENV_COVERAGE_SCAN,
    ENV_VISITED_MODE,
    MembershipPlane,
    VisitedPlane,
    andnot_words,
    choose_scan_impl,
    choose_visited_impl,
    decode_bits,
    pack_bits,
    plane_budget_bytes,
    popcount_rows,
    popcount_words,
    resolve_coverage_scan,
    resolve_visited_mode,
    scatter_or,
    split_index,
    tail_mask,
    words_for_bits,
)
from repro.kernels import test_bits as bits_test  # alias: not a pytest case
from repro.utils.errors import ValidationError


# ---------------------------------------------------------------------------
# word primitives
# ---------------------------------------------------------------------------
def test_words_for_bits_boundaries():
    assert words_for_bits(0) == 0
    assert words_for_bits(1) == 1
    assert words_for_bits(64) == 1
    assert words_for_bits(65) == 2
    assert words_for_bits(128) == 2
    assert words_for_bits(129) == 3


def test_tail_mask_exact_multiple_is_all_ones():
    assert int(tail_mask(64)) == (1 << 64) - 1
    assert int(tail_mask(128)) == (1 << 64) - 1


def test_tail_mask_partial_word():
    assert int(tail_mask(1)) == 1
    assert int(tail_mask(65)) == 1
    assert int(tail_mask(67)) == 0b111


@pytest.mark.parametrize("nbits", [1, 5, 63, 64, 65, 127, 128, 200])
def test_pack_decode_roundtrip(nbits):
    rng = np.random.default_rng(nbits)
    ids = np.flatnonzero(rng.random(nbits) < 0.4).astype(np.int64)
    words = pack_bits(ids, nbits)
    assert words.size == words_for_bits(nbits)
    np.testing.assert_array_equal(decode_bits(words, nbits), ids)


def test_pack_bits_matches_scalar_loop():
    """pack_bits is byte-identical to the historical per-vertex |= loop."""
    n = 131
    ids = np.array([0, 1, 63, 64, 65, 100, 130], dtype=np.int64)
    expected = np.zeros(words_for_bits(n), dtype=np.uint64)
    for v in ids.tolist():
        expected[v >> 6] |= np.uint64(1) << np.uint64(v & 63)
    np.testing.assert_array_equal(pack_bits(ids, n), expected)


def test_pack_bits_rejects_out_of_range():
    with pytest.raises(ValidationError):
        pack_bits(np.array([4], dtype=np.int64), 4)
    with pytest.raises(ValidationError):
        pack_bits(np.array([-1], dtype=np.int64), 4)


def test_decode_bits_clips_tail_garbage():
    words = np.array([np.uint64((1 << 64) - 1)])
    np.testing.assert_array_equal(decode_bits(words, 3), [0, 1, 2])


def test_test_bits_matches_membership():
    nbits = 150
    members = np.array([0, 64, 149], dtype=np.int64)
    words = pack_bits(members, nbits)
    probe = np.array([0, 1, 63, 64, 65, 148, 149], dtype=np.int64)
    expected = np.isin(probe, members)
    np.testing.assert_array_equal(bits_test(words, probe), expected)


def test_popcount_words_and_rows():
    words = np.array([0, (1 << 64) - 1, 0b1011], dtype=np.uint64)
    assert popcount_words(words) == 64 + 3
    plane = words.reshape(3, 1)
    np.testing.assert_array_equal(popcount_rows(plane), [0, 64, 3])


def test_andnot_words():
    mine = np.array([0b1111], dtype=np.uint64)
    covered = np.array([0b0101], dtype=np.uint64)
    np.testing.assert_array_equal(andnot_words(mine, covered), [0b1010])


def test_scatter_or_handles_duplicate_words():
    """Duplicate word indices (sorted) must all land — the failure mode
    a plain fancy-index |= silently drops."""
    words = np.zeros(2, dtype=np.uint64)
    ids = np.array([0, 1, 2, 64], dtype=np.int64)  # three bits share word 0
    word_idx, masks = split_index(ids)
    scatter_or(words, word_idx, masks)
    assert int(words[0]) == 0b111
    assert int(words[1]) == 1


# ---------------------------------------------------------------------------
# VisitedPlane
# ---------------------------------------------------------------------------
def test_visited_plane_roundtrip_odd_width():
    batch, n = 5, 67  # n % 64 != 0 exercises the word tail
    plane = VisitedPlane(batch, n)
    sid = np.array([0, 0, 2, 2, 2, 4], dtype=np.int64)
    v = np.array([0, 66, 1, 63, 64, 10], dtype=np.int64)
    plane.set_sorted_keys(sid, v)
    np.testing.assert_array_equal(plane.sizes(), [2, 0, 3, 0, 1])
    np.testing.assert_array_equal(plane.extract_keys(), sid * n + v)
    probe_sid = np.array([0, 0, 1, 2], dtype=np.int64)
    probe_v = np.array([66, 65, 0, 64], dtype=np.int64)
    np.testing.assert_array_equal(
        plane.test(probe_sid, probe_v), [True, False, False, True]
    )


def test_visited_plane_rowwise_unique_matches_sorted_keys():
    plane_a = VisitedPlane(4, 100)
    plane_b = VisitedPlane(4, 100)
    sid = np.array([0, 1, 2, 3], dtype=np.int64)  # each row once
    v = np.array([99, 0, 64, 63], dtype=np.int64)
    plane_a.set_rowwise_unique(sid, v)
    plane_b.set_sorted_keys(sid, v)
    np.testing.assert_array_equal(plane_a.extract_keys(), plane_b.extract_keys())


def test_visited_plane_extract_tiles(monkeypatch):
    """Extraction in tiny tiles is identical to one-shot extraction."""
    import repro.kernels.planes as planes_mod

    rng = np.random.default_rng(7)
    batch, n = 40, 130
    keys = np.unique(rng.integers(0, batch * n, size=300))
    sid, v = np.divmod(keys, n)

    plane = VisitedPlane(batch, n)
    plane.set_sorted_keys(sid, v)
    whole = plane.extract_keys()

    monkeypatch.setattr(planes_mod, "EXTRACT_TILE_WORDS", 4)
    tiled_plane = VisitedPlane(batch, n)
    tiled_plane.set_sorted_keys(sid, v)
    with obs.profiled() as handle:
        tiled = tiled_plane.extract_keys()
    np.testing.assert_array_equal(tiled, whole)
    np.testing.assert_array_equal(tiled, keys)
    assert handle.report().counters.get("kernels.bitset.tiles", 0) > 1


def test_visited_plane_publishes_plane_bytes():
    with obs.profiled() as handle:
        plane = VisitedPlane(8, 64)
    gauges = handle.report().gauges
    assert gauges.get("kernels.bitset.plane_bytes") == plane.nbytes


# ---------------------------------------------------------------------------
# MembershipPlane
# ---------------------------------------------------------------------------
def test_membership_plane_extend_and_grow():
    plane = MembershipPlane(5)
    # sets: 0 -> {0, 3}, 1 -> {1}, then 70 more singleton sets of vertex 2
    plane.extend(np.array([0, 3, 1]), np.array([0, 0, 1]), 2)
    assert plane.num_sets == 2
    assert plane.num_elements == 3
    plane.extend(np.full(70, 2), np.arange(2, 72), 72)  # forces word growth
    assert plane.num_sets == 72

    nwords = words_for_bits(72)
    np.testing.assert_array_equal(decode_bits(plane.row(0, nwords)), [0])
    np.testing.assert_array_equal(decode_bits(plane.row(1, nwords)), [1])
    np.testing.assert_array_equal(decode_bits(plane.row(2, nwords)), np.arange(2, 72))
    np.testing.assert_array_equal(decode_bits(plane.row(3, nwords)), [0])
    assert decode_bits(plane.row(4, nwords)).size == 0


def test_membership_plane_append_only():
    plane = MembershipPlane(3)
    plane.extend(np.array([0]), np.array([0]), 1)
    with pytest.raises(ValidationError):
        plane.extend(np.array([1]), np.array([0]), 0)
    with pytest.raises(ValidationError):
        plane.extend(np.array([1, 2]), np.array([0]), 2)


# ---------------------------------------------------------------------------
# mode resolution and the memory budget
# ---------------------------------------------------------------------------
def test_resolve_precedence_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_VISITED_MODE, "sorted")
    assert resolve_visited_mode("bitset") == "bitset"
    assert resolve_visited_mode(None) == "sorted"
    monkeypatch.delenv(ENV_VISITED_MODE)
    assert resolve_visited_mode(None) == "auto"


def test_resolve_rejects_unknown(monkeypatch):
    with pytest.raises(ValidationError):
        resolve_visited_mode("dense")
    with pytest.raises(ValidationError):
        resolve_coverage_scan("postings")
    monkeypatch.setenv(ENV_COVERAGE_SCAN, "nope")
    with pytest.raises(ValidationError):
        resolve_coverage_scan(None)


def test_plane_budget_env_override(monkeypatch):
    monkeypatch.delenv(ENV_BUDGET_MB, raising=False)
    assert plane_budget_bytes() == DEFAULT_PLANE_BUDGET_BYTES
    monkeypatch.setenv(ENV_BUDGET_MB, "0.5")
    assert plane_budget_bytes() == 512 * 1024
    monkeypatch.setenv(ENV_BUDGET_MB, "oops")
    with pytest.raises(ValidationError):
        plane_budget_bytes()
    monkeypatch.setenv(ENV_BUDGET_MB, "-1")
    with pytest.raises(ValidationError):
        plane_budget_bytes()


def test_choose_visited_impl_budget_fallback(monkeypatch):
    monkeypatch.delenv(ENV_BUDGET_MB, raising=False)
    assert choose_visited_impl("auto", 128, 1000) == "bitset"
    assert choose_visited_impl("sorted", 128, 1000) == "sorted"
    # a plane over budget falls back to sorted and counts the fallback
    monkeypatch.setenv(ENV_BUDGET_MB, "0.001")
    with obs.profiled() as handle:
        assert choose_visited_impl("auto", 4096, 100_000) == "sorted"
    assert handle.report().counters.get("kernels.bitset.fallbacks", 0) == 1
    # explicit bitset is honored even over budget (the caller asked)
    assert choose_visited_impl("bitset", 4096, 100_000) == "bitset"


def test_choose_scan_impl_budget_fallback(monkeypatch):
    monkeypatch.delenv(ENV_BUDGET_MB, raising=False)
    assert choose_scan_impl("auto", 1000, 5000) == "bitset"
    assert choose_scan_impl("csr", 1000, 5000) == "csr"
    monkeypatch.setenv(ENV_BUDGET_MB, "0.001")
    assert choose_scan_impl("auto", 100_000, 1_000_000) == "csr"
