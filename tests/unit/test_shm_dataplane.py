"""End-to-end data-plane contract: shm and pickle are interchangeable.

Three pillars: bit-identity (seeds, RRR sets and traces match across
planes, across ``n_jobs``, and under fault injection), lifecycle (every
shared segment is unlinked after pool close, crash recovery, and store
teardown) and graceful fallback (``REPRO_DATA_PLANE=pickle`` routes the
whole stack through the classic path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.imm import IMMOptions, run_imm
from repro.resilience.faults import ENV_VAR as FAULTS_ENV
from repro.rrr.parallel import SamplerPool, sample_rrr_parallel, shutdown_pools
from repro.rrr.store import RRRStore, clear_stores, shared_store
from repro.shm import ENV_VAR, REGISTRY, shm_available
from repro.utils.errors import ValidationError

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="OS shared memory unavailable"
)


@pytest.fixture(autouse=True)
def _clean_plane(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    # resident pools/stores from earlier test modules legitimately keep
    # their published graph segments alive; drain them so the registry
    # assertions here start from (and must return to) zero
    shutdown_pools()
    clear_stores()
    yield
    shutdown_pools()
    clear_stores()


def _assert_identical(a, b):
    coll_a, trace_a = a
    coll_b, trace_b = b
    assert np.array_equal(coll_a.flat, coll_b.flat)
    assert np.array_equal(coll_a.offsets, coll_b.offsets)
    assert np.array_equal(coll_a.sources, coll_b.sources)
    assert np.array_equal(trace_a.sizes, trace_b.sizes)
    assert np.array_equal(trace_a.rounds, trace_b.rounds)
    assert np.array_equal(trace_a.edges_examined, trace_b.edges_examined)
    assert np.array_equal(trace_a.kept_mask, trace_b.kept_mask)
    assert np.array_equal(trace_a.sources, trace_b.sources)
    assert trace_a.raw_singletons == trace_b.raw_singletons


@pytest.mark.parametrize("n_jobs", [2, 3])
def test_planes_bit_identical(small_ic_graph, n_jobs):
    def run(plane):
        with SamplerPool(small_ic_graph, n_jobs, data_plane=plane) as pool:
            assert pool.data_plane == plane
            return pool.sample("IC", 240, rng=np.random.default_rng(17))

    _assert_identical(run("pickle"), run("shm"))
    assert REGISTRY.active_count == 0


def test_planes_bit_identical_lt_with_elimination(small_lt_graph):
    def run(plane):
        with SamplerPool(small_lt_graph, 2, data_plane=plane) as pool:
            return pool.sample(
                "LT", 200, rng=np.random.default_rng(5), eliminate_sources=True
            )

    _assert_identical(run("pickle"), run("shm"))


def test_env_fallback_routes_pickle(small_ic_graph, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "pickle")
    with SamplerPool(small_ic_graph, 2) as pool:
        assert pool.data_plane == "pickle"
        pool.sample("IC", 100, rng=np.random.default_rng(1))
        assert pool._shared_graph is None
    assert REGISTRY.active_count == 0


def test_pool_close_unlinks_graph_segments(small_ic_graph):
    pool = SamplerPool(small_ic_graph, 2, data_plane="shm")
    pool.sample("IC", 100, rng=np.random.default_rng(2))
    assert REGISTRY.active_count > 0  # published graph arrays
    pool.close()
    assert REGISTRY.active_count == 0


def test_crash_recovery_reattaches_and_matches(small_ic_graph, monkeypatch):
    clean_pool = SamplerPool(small_ic_graph, 2, data_plane="shm")
    clean = clean_pool.sample("IC", 240, rng=np.random.default_rng(3))
    clean_pool.close()

    monkeypatch.setenv(FAULTS_ENV, "crash@0#0")
    handle = obs.install()
    try:
        pool = SamplerPool(small_ic_graph, 2, data_plane="shm")
        faulted = pool.sample("IC", 240, rng=np.random.default_rng(3))
        report = faulted[1].resilience
        assert report is not None and report.rebuilds >= 1
        # the rebuild re-attached the published segments, no re-publish
        assert handle.metrics.counters.get("shm.graph_reattached", 0) >= 1
        assert handle.metrics.counters.get("rrr.parallel.rebuild_attach_seconds", 0) > 0
        pool.close()
    finally:
        obs.uninstall()
    _assert_identical(clean, faulted)
    assert REGISTRY.active_count == 0


def test_abandoned_executor_leaves_no_segments(small_ic_graph):
    """The KeyboardInterrupt path: abandon (terminate) then close."""
    pool = SamplerPool(small_ic_graph, 2, data_plane="shm")
    pool.sample("IC", 100, rng=np.random.default_rng(4))
    pool._abandon_executor(terminate=True)
    pool.close()
    assert REGISTRY.active_count == 0


def test_store_arena_parity_and_teardown(small_ic_graph):
    def run(plane):
        store = RRRStore(
            small_ic_graph, entropy=9, n_jobs=2, chunk_sets=64, data_plane=plane
        )
        try:
            return store.ensure(150), store
        finally:
            pass

    (out_shm, store_shm) = run("shm")
    assert store_shm._arena is not None and store_shm._arena.num_chunks > 0
    (out_pickle, store_pickle) = run("pickle")
    assert store_pickle._arena is None
    coll_a, coll_b = out_shm[0], out_pickle[0]
    assert np.array_equal(coll_a.flat, coll_b.flat)
    assert np.array_equal(coll_a.offsets, coll_b.offsets)
    assert np.array_equal(coll_a.sources, coll_b.sources)
    store_shm.close()
    store_pickle.close()
    shutdown_pools()
    assert REGISTRY.active_count == 0


def test_clear_stores_closes_arenas(small_ic_graph):
    store = shared_store(
        small_ic_graph, entropy=21, n_jobs=2, chunk_sets=64, data_plane="shm"
    )
    store.ensure(100)
    assert store._arena is not None
    clear_stores()
    assert store._arena is None
    shutdown_pools()
    assert REGISTRY.active_count == 0


def test_run_imm_parity_across_planes(small_ic_graph):
    def run(plane):
        result = run_imm(
            small_ic_graph,
            5,
            0.3,
            rng=13,
            options=IMMOptions(n_jobs=2, data_plane=plane),
        )
        shutdown_pools()
        return result

    a, b = run("pickle"), run("shm")
    assert np.array_equal(a.seeds, b.seeds)
    assert a.theta == b.theta
    assert REGISTRY.active_count == 0


def test_immoptions_validates_plane():
    assert IMMOptions(data_plane="SHM").data_plane == "shm"
    assert IMMOptions(data_plane=None).data_plane is None
    with pytest.raises(ValidationError):
        IMMOptions(data_plane="mmap")


def test_experiment_config_plane(monkeypatch):
    from repro.experiments.config import ExperimentConfig

    monkeypatch.setenv(ENV_VAR, "pickle")
    assert ExperimentConfig.from_env().data_plane == "pickle"
    monkeypatch.delenv(ENV_VAR)
    assert ExperimentConfig.from_env().data_plane is None
    with pytest.raises(ValidationError):
        ExperimentConfig(data_plane="mmap")


def test_functional_frontend_accepts_plane(small_ic_graph):
    a, _ = sample_rrr_parallel(
        small_ic_graph, 200, rng=8, n_jobs=2, data_plane="pickle"
    )
    b, _ = sample_rrr_parallel(
        small_ic_graph, 200, rng=8, n_jobs=2, data_plane="shm"
    )
    assert np.array_equal(a.flat, b.flat)
    assert np.array_equal(a.offsets, b.offsets)


def test_spawn_context_attach_is_tracker_clean(small_ic_graph, capfd):
    """Spawn workers share the creator's resource tracker (the fd is
    passed at spawn); an attach there must not unregister the creator's
    entry — the regression mode is a tracker-process KeyError traceback
    on stderr when the pool unlinks its segments."""
    with SamplerPool(small_ic_graph, 2, data_plane="shm", mp_context="spawn") as pool:
        a = pool.sample("IC", 120, rng=np.random.default_rng(31))
        assert a[1].resilience is None or a[1].resilience.clean
    with SamplerPool(small_ic_graph, 2, data_plane="shm") as pool:
        b = pool.sample("IC", 120, rng=np.random.default_rng(31))
    _assert_identical(a, b)
    assert REGISTRY.active_count == 0
    err = capfd.readouterr().err
    assert "KeyError" not in err
    assert "leaked shared_memory" not in err


def test_ipc_counters_published(small_ic_graph):
    handle = obs.install()
    try:
        with SamplerPool(small_ic_graph, 2, data_plane="shm") as pool:
            pool.sample("IC", 200, rng=np.random.default_rng(6))
        counters = handle.metrics.counters
        assert counters["ipc.bytes_sent"] == counters["ipc.bytes_packed"]
        assert 0 < counters["ipc.bytes_packed"] < counters["ipc.bytes_raw"]
        ratio = handle.metrics.gauges["ipc.compression_ratio"]
        assert 0 < ratio < 1
    finally:
        obs.uninstall()
