import pytest

from repro.experiments import ExperimentConfig, figures

CFG = ExperimentConfig(datasets=("WV", "EE", "SE"), sweep_theta_scale=0.1)


def test_fig3_produces_crossover():
    res = figures.fig3_scan_scaling(CFG, n_values=(1_000, 8_000, 64_000))
    assert res.figure == "Fig. 3"
    thread, warp = res.series
    assert thread.name.startswith("thread")
    # warp wins at the smallest N, thread at the largest (paper shape)
    assert warp.y[0] < thread.y[0]
    assert thread.y[-1] < warp.y[-1]
    assert "N (RRR sets)" in res.render()


def test_sec42_savings_positive():
    res = figures.sec42_csc_memory(CFG)
    conservative, implicit = res.series
    assert all(0 < y < 100 for y in conservative.y)
    # dropping the weight array entirely saves strictly more
    assert all(i > c for c, i in zip(conservative.y, implicit.y))


def test_fig4_savings_in_plausible_band():
    res = figures.fig4_log_encoding_memory(CFG, k=10, epsilon=0.3)
    total, rrr = res.series
    assert all(20 < y < 95 for y in total.y)
    assert all(20 < y < 95 for y in rrr.y)


def test_fig5_speedup_positive_and_renders():
    res = figures.fig5_source_elim_speedup(CFG, k=10, epsilon=0.3)
    singles, speedup = res.series
    assert len(speedup.y) == 3
    assert all(s > 0 for s in speedup.y)
    assert "Fig. 5" in res.render()


def test_fig6_memory_change_bounded():
    res = figures.fig6_source_elim_memory(CFG, k=10, epsilon=0.3)
    _, change = res.series
    assert all(-100 < c < 100 for c in change.y)


def test_fig7_speedups():
    res = figures.fig7_ic_speedups(CFG)
    vs_gim, vs_cur = res.series
    assert len(vs_gim.y) == 3
    # cuRipples is always the slowest of the three
    assert all(c > g * 0.9 for g, c in zip(vs_gim.y, vs_cur.y))


@pytest.mark.slow
def test_fig8_lt_speedups():
    res = figures.fig8_lt_speedups(CFG)
    assert len(res.series[0].y) == 3
