import numpy as np
import pytest

from repro.diffusion import estimate_spread
from repro.imm import BoundsConfig, run_imm
from repro.imm.oracle import InfluenceOracle
from repro.rrr import RRRCollection, sample_rrr_ic
from repro.utils.errors import ValidationError


def test_spread_matches_coverage_definition():
    coll = RRRCollection.from_sets([[0, 1], [1], [2], [3]], n=4)
    oracle = InfluenceOracle(coll)
    assert oracle.spread([1]) == pytest.approx(4 * 0.5)
    assert oracle.spread([1, 2]) == pytest.approx(4 * 0.75)
    assert oracle.spread([]) == 0.0


def test_covered_mask():
    coll = RRRCollection.from_sets([[0, 1], [1], [2]], n=3)
    oracle = InfluenceOracle(coll)
    assert list(oracle.sets_covered_by([0])) == [True, False, False]
    assert list(oracle.sets_covered_by([1, 2])) == [True, True, True]


def test_marginal_gain_consistency():
    coll = RRRCollection.from_sets([[0, 1], [1], [2], [0]], n=3)
    oracle = InfluenceOracle(coll)
    gain = oracle.marginal_gain([1], 0)
    assert gain == pytest.approx(oracle.spread([0, 1]) - oracle.spread([1]))
    assert gain >= 0


def test_oracle_matches_monte_carlo(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 30_000, rng=1)
    oracle = InfluenceOracle(coll)
    rng = np.random.default_rng(2)
    seeds = rng.choice(small_ic_graph.n, size=5, replace=False)
    mc = estimate_spread(small_ic_graph, seeds, "IC", 1000, rng=3)
    est = oracle.spread(seeds)
    err = oracle.spread_stderr(seeds)
    assert abs(est - mc) < max(6 * err, 0.15 * mc)


def test_from_imm_result_with_elimination(small_ic_graph):
    result = run_imm(small_ic_graph, 8, 0.2, rng=4, eliminate_sources=True,
                     bounds=BoundsConfig(theta_scale=0.3))
    oracle = InfluenceOracle.from_imm_result(result)
    assert oracle.spread(result.seeds) == pytest.approx(
        result.influence_estimate(), rel=1e-9
    )
    mc = estimate_spread(small_ic_graph, result.seeds, "IC", 800, rng=5)
    assert abs(oracle.spread(result.seeds) - mc) / mc < 0.2


def test_validation():
    empty = RRRCollection(np.empty(0, dtype=np.int32), np.zeros(1, dtype=np.int64), 3)
    with pytest.raises(ValidationError):
        InfluenceOracle(empty)
    coll = RRRCollection.from_sets([[0]], n=2)
    with pytest.raises(ValidationError):
        InfluenceOracle(coll, keep_rate=0.0)
    oracle = InfluenceOracle(coll)
    with pytest.raises(ValidationError):
        oracle.spread([5])


def test_stderr_shrinks_with_sample_size(small_ic_graph):
    small, _ = sample_rrr_ic(small_ic_graph, 2000, rng=6)
    large, _ = sample_rrr_ic(small_ic_graph, 32_000, rng=6)
    seeds = [0, 1, 2]
    assert (InfluenceOracle(large).spread_stderr(seeds)
            < InfluenceOracle(small).spread_stderr(seeds))
