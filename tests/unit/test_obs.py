"""Unit tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro import obs
from repro.obs.export import build_report
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.tracer import NullTracer, Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with the no-op collectors installed."""
    obs.uninstall()
    yield
    obs.uninstall()


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


# -- tracer ------------------------------------------------------------------
def test_nested_spans_nest_correctly():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner_a"):
            pass
        with tracer.span("inner_b"):
            pass
    assert [r.name for r in tracer.records] == ["inner_a", "inner_b", "outer"]
    by_name = {r.name: r for r in tracer.records}
    assert by_name["outer"].depth == 0
    assert by_name["inner_a"].depth == 1
    assert by_name["inner_a"].path == "outer/inner_a"
    assert by_name["inner_b"].path == "outer/inner_b"
    # the fake clock ticks once per call: outer spans its children entirely
    assert by_name["outer"].duration > by_name["inner_a"].duration


def test_span_records_on_exception():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("failing"):
            raise RuntimeError("boom")
    assert [r.name for r in tracer.records] == ["failing"]
    assert tracer._stack == []  # stack unwound despite the exception


def test_sibling_spans_share_depth():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    assert all(r.depth == 0 for r in tracer.records)


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    with tracer.span("anything"):
        pass
    assert len(tracer.records) == 0
    # the null span is one shared object — no per-call allocation
    assert tracer.span("x") is tracer.span("y")


# -- metrics -----------------------------------------------------------------
def test_counters_accumulate():
    reg = MetricsRegistry()
    reg.counter_add("hits")
    reg.counter_add("hits", 4)
    assert reg.counters["hits"] == 5


def test_gauge_set_and_max():
    reg = MetricsRegistry()
    reg.gauge_set("level", 3)
    reg.gauge_set("level", 1)
    assert reg.gauges["level"] == 1
    reg.gauge_max("peak", 10)
    reg.gauge_max("peak", 7)
    reg.gauge_max("peak", 12)
    assert reg.gauges["peak"] == 12


def test_histogram_summary():
    reg = MetricsRegistry()
    for v in (1, 2, 3):
        reg.observe("sizes", v)
    h = reg.histogram_summary("sizes")
    assert h["count"] == 3 and h["sum"] == 6.0
    assert h["min"] == 1.0 and h["max"] == 3.0 and h["mean"] == 2.0
    assert reg.histogram_summary("missing")["count"] == 0


def test_null_metrics_discards_everything():
    reg = NullMetrics()
    reg.counter_add("x", 5)
    reg.gauge_set("y", 1)
    reg.gauge_max("y", 2)
    reg.observe("z", 3)
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


# -- global state ------------------------------------------------------------
def test_disabled_hooks_add_no_entries():
    assert not obs.enabled()
    with obs.span("noop"):
        obs.counter_add("c", 1)
        obs.gauge_set("g", 1)
        obs.observe("h", 1)
    report = obs.report()
    assert report.spans == []
    assert report.counters == {} and report.gauges == {} and report.histograms == {}


def test_install_routes_hooks_and_uninstall_restores():
    handle = obs.install()
    assert obs.enabled()
    with obs.span("work"):
        obs.counter_add("c", 2)
    report = handle.report()
    assert report.span_names() == ["work"]
    assert report.counters == {"c": 2}
    obs.uninstall()
    assert not obs.enabled()
    obs.counter_add("c", 99)  # discarded
    assert handle.report().counters == {"c": 2}


def test_profiled_context_manager():
    with obs.profiled() as handle:
        with obs.span("inside"):
            pass
    assert not obs.enabled()
    assert handle.report().span_names() == ["inside"]


# -- exporters ---------------------------------------------------------------
def _sample_report():
    tracer = Tracer(clock=FakeClock())
    reg = MetricsRegistry()
    with tracer.span("root"):
        with tracer.span("child"):
            pass
    reg.counter_add("edges", 100)
    reg.gauge_set("bytes", 2048)
    reg.observe("batch", 16)
    return build_report(tracer, reg)


def test_render_table_contains_everything():
    text = obs.render_table(_sample_report())
    assert "root" in text and "  child" in text
    assert "edges" in text and "100" in text
    assert "bytes" in text and "2,048" in text
    assert "batch" in text and "count=1" in text


def test_render_table_empty_report():
    text = obs.render_table(obs.ProfileReport())
    assert "no spans" in text


def test_to_json_roundtrips(tmp_path):
    report = _sample_report()
    doc = obs.to_json(report)
    assert json.loads(json.dumps(doc)) == doc
    assert {s["name"] for s in doc["spans"]} == {"root", "child"}
    path = tmp_path / "profile.json"
    obs.write_json(report, path)
    loaded = json.loads(path.read_text())
    assert loaded == doc


def test_write_jsonl(tmp_path):
    path = tmp_path / "profile.jsonl"
    obs.write_jsonl(_sample_report(), path)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = {r["kind"] for r in records}
    assert kinds == {"span", "counter", "gauge", "histogram"}
    assert all("name" in r for r in records)


def test_report_helpers():
    report = _sample_report()
    assert report.find_spans("child")[0].path == "root/child"
    assert report.total_seconds("root") > 0.0
    assert report.total_seconds("missing") == 0.0
