import pytest

from repro.cli import build_parser, main


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "wiki-Vote" in out and "soc-LiveJournal1" in out


def test_seeds_command_on_dataset(capsys):
    rc = main([
        "seeds", "--dataset", "WV", "--k", "3", "--epsilon", "0.4",
        "--theta-scale", "0.05", "--validate", "50",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "seeds:" in out and "Monte-Carlo spread" in out


def test_seeds_command_on_edge_list(tmp_path, capsys):
    path = tmp_path / "g.txt"
    lines = [f"{u} {v}" for u in range(20) for v in range(20) if u != v and (u + v) % 3 == 0]
    path.write_text("\n".join(lines))
    rc = main([
        "seeds", "--edge-list", str(path), "--k", "2", "--epsilon", "0.4",
        "--theta-scale", "0.05",
    ])
    assert rc == 0
    assert "seeds:" in capsys.readouterr().out


def test_seeds_lt_model(capsys):
    rc = main([
        "seeds", "--dataset", "WV", "--k", "3", "--epsilon", "0.4",
        "--model", "LT", "--theta-scale", "0.05", "--no-source-elimination",
    ])
    assert rc == 0


def test_compare_command(capsys):
    rc = main([
        "compare", "--dataset", "WV", "--k", "10", "--epsilon", "0.3",
        "--theta-scale", "0.1",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "eim" in out and "gim" in out and "curipples" in out
    assert "speedup" in out


def test_experiment_command(capsys):
    rc = main(["experiment", "table1", "--datasets", "WV,EE"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table 1" in out


def test_seeds_profile_flag(tmp_path, capsys):
    json_path = tmp_path / "profile.json"
    rc = main([
        "seeds", "--dataset", "WV", "--k", "3", "--epsilon", "0.4",
        "--theta-scale", "0.05", "--profile", "--profile-json", str(json_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "== spans ==" in out and "imm.run" in out
    assert "imm.estimation.phase_1" in out
    assert "== counters ==" in out and "rrr.sets_sampled" in out
    import json

    doc = json.loads(json_path.read_text())
    assert any(s["name"] == "imm.run" for s in doc["spans"])
    assert doc["counters"]["selection.iterations"] >= 3


def test_seeds_without_profile_prints_no_profile(capsys):
    rc = main([
        "seeds", "--dataset", "WV", "--k", "3", "--epsilon", "0.4",
        "--theta-scale", "0.05",
    ])
    assert rc == 0
    assert "== spans ==" not in capsys.readouterr().out


def test_compare_profile_flag(capsys):
    rc = main([
        "compare", "--dataset", "WV", "--k", "5", "--epsilon", "0.3",
        "--theta-scale", "0.1", "--profile",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "== spans ==" in out
    assert "engine.eim.cycles.total" in out


def test_parser_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "table99"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["seeds"])  # needs a source


def test_jobs_flag_parsed_on_both_subcommands():
    parser = build_parser()
    seeds = parser.parse_args(["seeds", "--dataset", "WV", "--jobs", "2"])
    assert seeds.jobs == 2
    compare = parser.parse_args(
        ["compare", "--dataset", "WV", "--jobs", "3", "--warm-start"]
    )
    assert compare.jobs == 3 and compare.warm_start
    # shared workload defaults stay per-subcommand despite the common parent
    assert (seeds.k, seeds.epsilon) == (10, 0.2)
    assert (compare.k, compare.epsilon) == (50, 0.1)


def test_seeds_command_with_jobs(capsys):
    rc = main([
        "seeds", "--dataset", "WV", "--k", "3", "--epsilon", "0.4",
        "--theta-scale", "0.05", "--jobs", "2",
    ])
    assert rc == 0
    assert "seeds:" in capsys.readouterr().out


def test_compare_command_warm_start(capsys):
    rc = main([
        "compare", "--dataset", "WV", "--k", "5", "--epsilon", "0.3",
        "--theta-scale", "0.1", "--warm-start",
    ])
    assert rc == 0
    assert "speedup" in capsys.readouterr().out


def test_selection_strategy_flag_parsed():
    parser = build_parser()
    seeds = parser.parse_args(
        ["seeds", "--dataset", "WV", "--selection-strategy", "lazy"]
    )
    assert seeds.selection_strategy == "lazy"
    compare = parser.parse_args(
        ["compare", "--dataset", "WV", "--selection-strategy", "reference"]
    )
    assert compare.selection_strategy == "reference"
    # default and rejection of unknown strategies
    assert parser.parse_args(["seeds", "--dataset", "WV"]).selection_strategy == "fast"
    with pytest.raises(SystemExit):
        parser.parse_args(["seeds", "--dataset", "WV",
                           "--selection-strategy", "quantum"])


def test_seeds_command_lazy_strategy_matches_fast(capsys):
    args = ["seeds", "--dataset", "WV", "--k", "3", "--epsilon", "0.4",
            "--theta-scale", "0.05"]
    assert main(args + ["--selection-strategy", "lazy"]) == 0
    lazy_out = capsys.readouterr().out
    assert main(args + ["--selection-strategy", "fast"]) == 0
    fast_out = capsys.readouterr().out
    assert "seeds:" in lazy_out
    # strategies are bit-identical, so the printed seed line agrees
    assert (
        [l for l in lazy_out.splitlines() if l.startswith("seeds:")]
        == [l for l in fast_out.splitlines() if l.startswith("seeds:")]
    )


def test_serve_parser_defaults():
    parser = build_parser()
    args = parser.parse_args(["serve", "--stdin"])
    assert args.stdin is True
    assert args.max_inflight == 2 and args.max_queue_depth == 64
    assert args.port == 7473 and args.chunk_sets == 1024


def test_serve_stdin_batch(monkeypatch, capsys):
    import io
    import json
    import sys as _sys

    request = json.dumps({"dataset": "WV", "scale": "tiny",
                          "k": 3, "epsilon": 0.4, "theta_scale": 0.05})
    monkeypatch.setattr(_sys, "stdin", io.StringIO(request + "\n" + request + "\n"))
    assert main(["serve", "--stdin", "--chunk-sets", "256"]) == 0
    captured = capsys.readouterr()
    responses = [json.loads(l) for l in captured.out.splitlines()]
    assert [r["cache"] for r in responses] == ["cold", "exact"]
    assert responses[0]["seeds"] == responses[1]["seeds"]
    assert "served 2 requests" in captured.err
