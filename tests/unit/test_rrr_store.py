"""Warm-start RRR store: prefix determinism, top-ups, and the registry."""

import numpy as np
import pytest

from repro import IMMOptions, obs, run_imm
from repro.imm.bounds import BoundsConfig
from repro.rrr.store import RRRStore, clear_stores, shared_store
from repro.utils.errors import ValidationError

BOUNDS = BoundsConfig(theta_scale=0.1)


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_stores()
    yield
    clear_stores()


def test_validation(small_ic_graph, line_graph):
    with pytest.raises(ValidationError):
        RRRStore(line_graph)  # unweighted
    with pytest.raises(ValidationError):
        RRRStore(small_ic_graph, chunk_sets=0)
    with pytest.raises(ValidationError):
        RRRStore(small_ic_graph, entropy=())
    with pytest.raises(ValidationError):
        RRRStore(small_ic_graph, entropy="nope")


def test_topup_prefix_equals_fresh_sample(small_ic_graph):
    # acceptance: cached-then-topped-up equals a fresh sample of the
    # same stream, bit for bit
    grown_store = RRRStore(small_ic_graph, entropy=(1, 2), chunk_sets=64)
    small, small_trace = grown_store.ensure(100)
    grown, grown_trace = grown_store.ensure(900)

    fresh = RRRStore(small_ic_graph, entropy=(1, 2), chunk_sets=64)
    direct, direct_trace = fresh.ensure(900)

    assert np.array_equal(grown.flat, direct.flat)
    assert np.array_equal(grown.offsets, direct.offsets)
    assert np.array_equal(grown.sources, direct.sources)
    assert np.array_equal(small.flat, direct.prefix(100).flat)
    assert small_trace.attempted == 100
    assert grown_trace.attempted == direct_trace.attempted == 900


def test_prefix_independent_of_call_pattern(small_ic_graph):
    many_steps = RRRStore(small_ic_graph, chunk_sets=32)
    for theta in (10, 33, 70, 200, 450):
        stepped, _ = many_steps.ensure(theta)
    one_step = RRRStore(small_ic_graph, chunk_sets=32)
    direct, _ = one_step.ensure(450)
    assert np.array_equal(stepped.flat, direct.flat)


def test_ensure_reuses_without_resampling(small_ic_graph):
    store = RRRStore(small_ic_graph, chunk_sets=64)
    store.ensure(200)
    cached = store.num_cached
    with obs.profiled() as handle:
        store.ensure(150)
        store.ensure(cached)  # still within the materialized chunks
    counters = handle.report().counters
    assert counters.get("rrr.store.topups", 0) == 0
    assert counters.get("rrr.sets_sampled", 0) == 0
    assert counters["rrr.store.reused_sets"] == 150 + cached


def test_entropy_separates_streams(small_ic_graph):
    a, _ = RRRStore(small_ic_graph, entropy=1, chunk_sets=64).ensure(200)
    b, _ = RRRStore(small_ic_graph, entropy=2, chunk_sets=64).ensure(200)
    assert not np.array_equal(a.flat, b.flat)


def test_elimination_stream_has_no_empty_sets(small_ic_graph):
    coll, _ = RRRStore(small_ic_graph, eliminate_sources=True,
                       chunk_sets=64).ensure(300)
    assert coll.empty_fraction() == 0.0


def test_parallel_store_matches_serial_store(small_ic_graph):
    ser, _ = RRRStore(small_ic_graph, entropy=9, chunk_sets=128).ensure(400)
    par, _ = RRRStore(small_ic_graph, entropy=9, chunk_sets=128,
                      n_jobs=2).ensure(400)
    # n_jobs is part of the stream identity (worker splits reorder the
    # draws), but the parallel stream must be deterministic
    par2, _ = RRRStore(small_ic_graph, entropy=9, chunk_sets=128,
                       n_jobs=2).ensure(400)
    assert np.array_equal(par.flat, par2.flat)
    assert par.num_sets == ser.num_sets == 400


def test_shared_store_identity(small_ic_graph):
    a = shared_store(small_ic_graph, model="IC", entropy=5)
    b = shared_store(small_ic_graph, model="IC", entropy=5)
    c = shared_store(small_ic_graph, model="IC", entropy=5,
                     eliminate_sources=True)
    assert a is b
    assert a is not c
    clear_stores()
    assert shared_store(small_ic_graph, model="IC", entropy=5) is not a


def test_run_imm_serves_growing_theta_from_one_store(small_ic_graph):
    store = RRRStore(small_ic_graph, chunk_sets=256)
    opts = IMMOptions(bounds=BOUNDS)
    r1 = run_imm(small_ic_graph, 3, 0.4, options=opts, store=store)
    r2 = run_imm(small_ic_graph, 6, 0.3, options=opts, store=store)
    assert r2.theta >= r1.theta
    # the smaller run's collection is literally a prefix of the larger's
    assert np.array_equal(r1.collection.flat,
                          r2.collection.flat[: r1.collection.flat.size])
    assert len(set(r2.seeds.tolist())) == 6


def test_run_imm_rejects_mismatched_store(small_ic_graph):
    from repro.graphs import assign_ic_weights
    from repro.graphs.generators import powerlaw_configuration

    store = RRRStore(small_ic_graph, model="IC")
    other_graph = assign_ic_weights(powerlaw_configuration(100, 400, rng=1))
    with pytest.raises(ValidationError, match="options request LT"):
        run_imm(small_ic_graph, 3, 0.4, options=IMMOptions(model="LT"),
                store=store)
    with pytest.raises(ValidationError, match="eliminate_sources"):
        run_imm(small_ic_graph, 3, 0.4,
                options=IMMOptions(eliminate_sources=True), store=store)
    with pytest.raises(ValidationError, match="different graph"):
        run_imm(other_graph, 3, 0.4, options=IMMOptions(), store=store)
