"""Unit tests for the influence-query serving tier.

Covers the service's three pillars one at a time: the multi-tier cache
(exact / prefix / cold classification, LRU eviction, eviction safety),
the admission-controlled scheduler (overload rejection, coalescing
bookkeeping, fault isolation), and the service facade (graph registry,
determinism contract, lifecycle).
"""

import threading
import time
from concurrent.futures import Future

import pytest

from repro.imm.imm import run_imm
from repro.imm.options import IMMOptions
from repro.rrr.store import RRRStore
from repro.service import (
    InfluenceQuery,
    InfluenceService,
    QueryOutcome,
    ServiceClosedError,
    ServiceOptions,
    ServiceOverloadedError,
)
from repro.service.cache import ExactResultCache, SubstrateTable
from repro.service.scheduler import QueryScheduler, ScheduledJob
from repro.utils.errors import ValidationError

FAST = ServiceOptions(max_inflight=2, max_queue_depth=8, chunk_sets=256)


def _query(k=5, epsilon=0.3, **kw):
    return InfluenceQuery("g", k=k, epsilon=epsilon, **kw)


@pytest.fixture
def service(small_ic_graph):
    svc = InfluenceService(FAST)
    svc.register_graph("g", small_ic_graph)
    yield svc
    svc.close()


# -- ServiceOptions ----------------------------------------------------------


def test_service_options_validation():
    with pytest.raises(ValidationError):
        ServiceOptions(max_inflight=0)
    with pytest.raises(ValidationError):
        ServiceOptions(max_queue_depth=0)
    with pytest.raises(ValidationError):
        ServiceOptions(max_substrates=0)
    with pytest.raises(ValidationError):
        ServiceOptions(exact_cache_size=-1)
    replaced = ServiceOptions().replace(max_inflight=7)
    assert replaced.max_inflight == 7


def test_query_validation(small_ic_graph):
    with pytest.raises(ValidationError):
        InfluenceQuery("g", k=0, epsilon=0.3)
    with pytest.raises(ValidationError):
        InfluenceQuery("g", k=5, epsilon=0.0)
    with pytest.raises(ValidationError):
        InfluenceQuery("g", k=5, epsilon=1.5)
    with pytest.raises(ValidationError):
        InfluenceQuery(42, k=5, epsilon=0.3)
    with pytest.raises(ValidationError):
        InfluenceQuery("g", k=5, epsilon=0.3, options={"model": "IC"})


def test_query_keys_mirror_store_identity(small_ic_graph):
    q = InfluenceQuery(small_ic_graph, k=5, epsilon=0.3)
    store = RRRStore(small_ic_graph, chunk_sets=256)
    assert q.coalesce_key(small_ic_graph, 256) == store.key()
    store.close()
    # result key extends the coalescing key with the answer shape
    r1 = q.result_key(small_ic_graph, 256)
    r2 = InfluenceQuery(small_ic_graph, k=6, epsilon=0.3).result_key(
        small_ic_graph, 256
    )
    assert r1[: len(q.coalesce_key(small_ic_graph, 256))] == r2[: len(r1) - 4]
    assert r1 != r2


# -- tier 1: exact result cache ----------------------------------------------


def test_exact_cache_lru_eviction():
    cache = ExactResultCache(capacity=2)
    cache.put(("a",), "ra")
    cache.put(("b",), "rb")
    assert cache.get(("a",)) == "ra"  # refresh a
    cache.put(("c",), "rc")  # evicts b, the LRU
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) == "ra"
    assert cache.get(("c",)) == "rc"
    assert len(cache) == 2


def test_exact_cache_zero_capacity_disables():
    cache = ExactResultCache(capacity=0)
    cache.put(("a",), "ra")
    assert cache.get(("a",)) is None


# -- tier 2: substrate table -------------------------------------------------


def test_substrate_table_coalesces_and_evicts_idle():
    class FakeStore:
        def __init__(self):
            self.closed = False

        def close(self):
            self.closed = True

    table = SubstrateTable(capacity=1)
    s1, warm1 = table.acquire(("k1",), FakeStore)
    assert not warm1
    again, warm2 = table.acquire(("k1",), FakeStore)
    assert warm2 and again is s1
    # k1 is pinned twice; adding k2 over capacity must NOT evict it
    s2, _ = table.acquire(("k2",), FakeStore)
    assert not s1.store.closed
    table.release(s1)
    table.release(s1)
    table.release(s2)
    # now k1 is idle: the next over-capacity insert evicts and closes it
    s3, _ = table.acquire(("k3",), FakeStore)
    assert s1.store.closed
    table.release(s3)
    table.close()
    assert s3.store.closed


# -- scheduler ---------------------------------------------------------------


def test_scheduler_overload_rejects_with_depth():
    release = threading.Event()
    started = threading.Event()

    def execute(job):
        started.set()
        release.wait(10)
        return job.query

    sched = QueryScheduler(max_inflight=1, max_queue_depth=2, execute=execute)
    q = _query()
    futures = [sched.submit(ScheduledJob(query=q, key=("k",)))]
    started.wait(10)  # the worker holds job 1; queue is now empty
    futures += [
        sched.submit(ScheduledJob(query=q, key=("k",))) for _ in range(2)
    ]
    with pytest.raises(ServiceOverloadedError) as info:
        sched.submit(ScheduledJob(query=q, key=("k",)))
    assert info.value.max_queue_depth == 2
    release.set()
    assert all(f.result(10) is q for f in futures)
    sched.close()


def test_scheduler_marks_coalesced_siblings():
    release = threading.Event()
    started = threading.Event()

    def execute(job):
        started.set()
        release.wait(10)
        return job.coalesced

    sched = QueryScheduler(max_inflight=1, max_queue_depth=8, execute=execute)
    q = _query()
    first = sched.submit(ScheduledJob(query=q, key=("k",)))
    started.wait(10)
    sibling = sched.submit(ScheduledJob(query=q, key=("k",)))
    stranger = sched.submit(ScheduledJob(query=q, key=("other",)))
    release.set()
    assert first.result(10) is False
    assert sibling.result(10) is True
    assert stranger.result(10) is False
    sched.close()


def test_scheduler_isolates_execution_errors():
    def execute(job):
        if job.key == ("boom",):
            raise RuntimeError("worker exploded")
        return "fine"

    sched = QueryScheduler(max_inflight=1, max_queue_depth=8, execute=execute)
    q = _query()
    bad = sched.submit(ScheduledJob(query=q, key=("boom",)))
    good = sched.submit(ScheduledJob(query=q, key=("ok",)))
    with pytest.raises(RuntimeError, match="worker exploded"):
        bad.result(10)
    assert good.result(10) == "fine"  # the worker survived the explosion
    sched.close()


def test_scheduler_close_rejects_new_submits():
    sched = QueryScheduler(max_inflight=1, max_queue_depth=2,
                           execute=lambda job: None)
    sched.close()
    with pytest.raises(ServiceClosedError):
        sched.submit(ScheduledJob(query=_query(), key=("k",)))


# -- service -----------------------------------------------------------------


def test_service_tiers_cold_exact_prefix(service):
    cold = service.query(_query(k=5))
    assert isinstance(cold, QueryOutcome)
    assert cold.cache_tier == "cold" and cold.sampled_sets > 0

    exact = service.query(_query(k=5))
    assert exact.cache_tier == "exact" and exact.sampled_sets == 0
    assert list(exact.seeds) == list(cold.seeds)

    prefix = service.query(_query(k=3))
    assert prefix.cache_tier == "prefix" and prefix.sampled_sets == 0
    assert list(prefix.seeds) == list(cold.seeds)[:3]


def test_service_matches_direct_run_imm(service, small_ic_graph):
    served = service.query(_query(k=5))
    store = RRRStore(small_ic_graph, chunk_sets=FAST.chunk_sets)
    direct = run_imm(small_ic_graph, 5, 0.3, options=IMMOptions(), store=store)
    store.close()
    assert list(served.seeds) == list(direct.seeds)
    assert served.result.theta == direct.theta


def test_service_rejects_unknown_graph_and_bad_k(service):
    with pytest.raises(ValidationError, match="unknown graph"):
        service.query(InfluenceQuery("nope", k=5, epsilon=0.3))
    with pytest.raises(ValidationError, match="k must be"):
        service.query(_query(k=10_000))


def test_service_requires_weighted_graph(small_ic_graph):
    from repro.graphs.generators import powerlaw_configuration

    svc = InfluenceService(FAST)
    with pytest.raises(ValidationError, match="weighted"):
        svc.register_graph("raw", powerlaw_configuration(50, 200, rng=1))
    svc.close()


def test_service_distinct_entropy_distinct_substrates(service):
    a = service.query(_query(k=5, entropy=0))
    b = service.query(_query(k=5, entropy=1))
    assert service.stats()["substrates"] == 2
    assert b.cache_tier == "cold"  # different stream, no sharing
    assert a.sampled_sets > 0 and b.sampled_sets > 0


def test_service_substrate_eviction_keeps_serving(small_ic_graph):
    svc = InfluenceService(FAST.replace(max_substrates=1))
    svc.register_graph("g", small_ic_graph)
    svc.query(_query(k=5, entropy=0))
    svc.query(_query(k=5, entropy=1))  # evicts entropy=0's substrate
    assert svc.stats()["substrates"] == 1
    # a repeat of the evicted stream still answers (exact tier), and a
    # new cell on it rebuilds the substrate from scratch
    assert svc.query(_query(k=5, entropy=0)).cache_tier == "exact"
    rebuilt = svc.query(_query(k=4, entropy=0))
    assert rebuilt.cache_tier == "cold"
    svc.close()


def test_service_closed_rejects_submit(service):
    service.close()
    with pytest.raises(ServiceClosedError):
        service.submit(_query())


def test_service_context_manager(small_ic_graph):
    with InfluenceService(FAST) as svc:
        svc.register_graph("g", small_ic_graph)
        outcome = svc.query(_query(k=3))
        assert len(outcome.seeds) == 3
    with pytest.raises(ServiceClosedError):
        svc.submit(_query())


def test_service_submit_returns_future(service):
    future = service.submit(_query(k=4))
    assert isinstance(future, Future)
    outcome = future.result(timeout=60)
    assert outcome.query.k == 4


def test_service_stats_shape(service):
    service.query(_query(k=3))
    stats = service.stats()
    assert stats["registered_graphs"] == 1
    assert stats["substrates"] == 1
    assert stats["exact_cache_entries"] == 1
    assert stats["closed"] is False


# -- registry thread-safety (satellite) --------------------------------------


def test_shared_registries_single_instance_under_races(small_ic_graph):
    from repro.rrr.parallel import shared_pool, shutdown_pools
    from repro.rrr.store import clear_stores, shared_store

    stores, pools = [], []
    barrier = threading.Barrier(8)

    def hammer():
        barrier.wait()
        stores.append(shared_store(small_ic_graph, chunk_sets=128))
        pools.append(shared_pool(small_ic_graph, 2))

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    try:
        assert len({id(s) for s in stores}) == 1
        assert len({id(p) for p in pools}) == 1
    finally:
        clear_stores()
        shutdown_pools()
