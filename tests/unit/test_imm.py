import numpy as np
import pytest

from repro.imm import BoundsConfig, run_imm
from repro.utils.errors import ValidationError

BOUNDS = BoundsConfig(theta_scale=0.05)


def test_validations(small_ic_graph, line_graph):
    with pytest.raises(ValidationError):
        run_imm(line_graph, 1, 0.2)  # unweighted
    with pytest.raises(ValidationError):
        run_imm(small_ic_graph, 0, 0.2)
    with pytest.raises(ValidationError):
        run_imm(small_ic_graph, small_ic_graph.n + 1, 0.2)
    with pytest.raises(ValidationError):
        run_imm(small_ic_graph, 5, 0.0)
    with pytest.raises(ValidationError):
        run_imm(small_ic_graph, 5, 1.5)


def test_result_structure(small_ic_graph):
    res = run_imm(small_ic_graph, 5, 0.3, rng=1, bounds=BOUNDS)
    assert res.seeds.size == 5
    assert len(set(res.seeds.tolist())) == 5  # distinct seeds
    assert res.collection.num_sets >= res.theta or res.theta > 0
    assert res.lower_bound >= 1.0
    assert res.phases and res.phases[-1].passed
    assert 0.0 < res.coverage_fraction <= 1.0


def test_theta_grows_as_epsilon_shrinks(small_ic_graph):
    hi = run_imm(small_ic_graph, 5, 0.4, rng=1, bounds=BOUNDS)
    lo = run_imm(small_ic_graph, 5, 0.2, rng=1, bounds=BOUNDS)
    assert lo.theta > hi.theta


def test_influence_estimate_tracks_monte_carlo(small_ic_graph):
    from repro.diffusion import estimate_spread

    res = run_imm(small_ic_graph, 8, 0.2, rng=2, bounds=BoundsConfig(theta_scale=0.2))
    mc = estimate_spread(small_ic_graph, res.seeds, "IC", 800, rng=3)
    assert abs(res.influence_estimate() - mc) / mc < 0.2


def test_source_elimination_quality_parity(small_ic_graph):
    from repro.diffusion import estimate_spread

    plain = run_imm(small_ic_graph, 8, 0.25, rng=4, bounds=BOUNDS)
    elim = run_imm(small_ic_graph, 8, 0.25, rng=4, bounds=BOUNDS,
                   eliminate_sources=True)
    sp_plain = estimate_spread(small_ic_graph, plain.seeds, "IC", 600, rng=5)
    sp_elim = estimate_spread(small_ic_graph, elim.seeds, "IC", 600, rng=5)
    assert sp_elim > 0.9 * sp_plain


def test_lt_model(small_lt_graph):
    res = run_imm(small_lt_graph, 5, 0.3, model="LT", rng=6, bounds=BOUNDS)
    assert res.model == "LT"
    assert res.seeds.size == 5


def test_max_theta_cap(small_ic_graph):
    res = run_imm(small_ic_graph, 5, 0.3, rng=7,
                  bounds=BoundsConfig(theta_scale=0.05, max_theta=50))
    assert res.collection.num_sets <= 50


def test_deterministic_given_seed(small_ic_graph):
    a = run_imm(small_ic_graph, 5, 0.3, rng=11, bounds=BOUNDS)
    b = run_imm(small_ic_graph, 5, 0.3, rng=11, bounds=BOUNDS)
    assert np.array_equal(a.seeds, b.seeds)
    assert a.theta == b.theta


def test_selects_high_degree_hub():
    """On a star graph the hub must be the first seed."""
    from repro.graphs import DirectedGraph, assign_ic_weights

    n = 50
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    g = assign_ic_weights(DirectedGraph.from_edges(src, dst, n=n))
    res = run_imm(g, 1, 0.3, rng=1, bounds=BoundsConfig(theta_scale=0.5))
    assert res.seeds[0] == 0
