import pytest

from repro.gpu.memory import GlobalMemoryPool
from repro.utils.errors import DeviceOOMError, ValidationError


def test_allocate_free_cycle():
    pool = GlobalMemoryPool(1000)
    a = pool.allocate(400, "x")
    b = pool.allocate(600, "y")
    assert pool.in_use == 1000 and pool.free_bytes == 0
    pool.free(a)
    assert pool.in_use == 600
    c = pool.allocate(400, "z")
    assert pool.peak == 1000
    pool.free(b)
    pool.free(c)
    assert pool.in_use == 0


def test_oom_raised_with_context():
    pool = GlobalMemoryPool(100)
    pool.allocate(80, "base")
    with pytest.raises(DeviceOOMError) as exc:
        pool.allocate(30, "overflow")
    assert exc.value.in_use == 80
    assert exc.value.capacity == 100
    assert exc.value.requested == 30


def test_exact_fit_allowed():
    pool = GlobalMemoryPool(100)
    pool.allocate(100, "all")
    assert pool.free_bytes == 0


def test_double_free_rejected():
    pool = GlobalMemoryPool(100)
    a = pool.allocate(10, "x")
    pool.free(a)
    with pytest.raises(ValidationError):
        pool.free(a)


def test_negative_allocation_rejected():
    pool = GlobalMemoryPool(100)
    with pytest.raises(ValidationError):
        pool.allocate(-1)


def test_zero_capacity_rejected():
    with pytest.raises(ValidationError):
        GlobalMemoryPool(0)


def test_live_bytes_by_label():
    pool = GlobalMemoryPool(1000)
    pool.allocate(100, "graph")
    pool.allocate(200, "rrr")
    pool.allocate(50, "graph")
    assert pool.live_bytes_by_label() == {"graph": 150, "rrr": 200}


def test_peak_tracks_high_water_mark():
    pool = GlobalMemoryPool(1000)
    a = pool.allocate(700)
    pool.free(a)
    pool.allocate(100)
    assert pool.peak == 700
