"""Targeted tests for corners the main suites leave thin: CLI figure
regeneration, multi-device memory faults, the CPU engine's host-RAM
scaling, Huffman stream corruption, and bitmap byte accounting."""

import numpy as np
import pytest

from repro.cli import main
from repro.encoding.bitmap import bitmap_encode
from repro.encoding.huffman import huffman_decode, huffman_encode
from repro.engines.ripples_cpu import HOST_RAM_BYTES, RipplesCPUEngine
from repro.gpu import RTX_A6000
from repro.gpu.multi import run_multi_device_eim
from repro.rrr import RRRCollection
from repro.utils.errors import ValidationError


def test_cli_figure_experiment(capsys):
    rc = main(["experiment", "sec42", "--datasets", "WV,PG"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "log encoding" in out and "WV" in out


def test_cli_table1b_experiment(capsys):
    rc = main(["experiment", "table1b", "--datasets", "EE"])
    assert rc == 0
    assert "zero-in" in capsys.readouterr().out


def test_multi_device_flags_oom_per_device():
    import repro.graphs as graphs
    from repro.imm import BoundsConfig, run_imm

    g = graphs.assign_ic_weights(graphs.powerlaw_configuration(500, 3000, rng=3))
    imm = run_imm(g, 10, 0.2, rng=1, eliminate_sources=True,
                  bounds=BoundsConfig(theta_scale=0.3))
    tiny = RTX_A6000.scaled(10_000_000)  # a few KB per device
    res = run_multi_device_eim(imm, g, tiny, 4)
    assert res.oom  # even a shard of R cannot fit


def test_cpu_engine_host_ram_scales_with_device():
    engine = RipplesCPUEngine()
    full = engine._adapt_spec(RTX_A6000)
    assert full.global_mem_bytes == HOST_RAM_BYTES
    scaled = engine._adapt_spec(RTX_A6000.scaled(1000))
    assert scaled.global_mem_bytes == pytest.approx(HOST_RAM_BYTES / 1000, rel=0.01)


def test_huffman_corrupt_stream_detected():
    enc = huffman_encode([5, 6, 7, 5, 5])
    enc.words = enc.words.copy()
    enc.words[:] = np.uint64(0xFFFFFFFFFFFFFFFF)  # garbage bits
    decoded_or_error = None
    try:
        decoded_or_error = huffman_decode(enc)
    except ValidationError:
        return  # detected corruption
    # with a complete code every bit pattern decodes *to something*;
    # then the roundtrip must at least differ from the original
    assert list(decoded_or_error) != [5, 6, 7, 5, 5]


def test_bitmap_flag_bits_counted():
    coll = RRRCollection.from_sets([[0]] * 9, n=8)
    enc = bitmap_encode(coll)
    # 9 sets -> 2 flag bytes + 9 arrays of one int32
    assert enc.nbytes_total() == 2 + 9 * 4


def test_bitmap_single_vertex_graph():
    coll = RRRCollection.from_sets([[0], []], n=1)
    enc = bitmap_encode(coll, force_bitmap=True)
    assert list(enc.set_at(0)) == [0]
    assert enc.set_at(1).size == 0
