import numpy as np
import pytest

from repro.gpu.scheduler import makespan
from repro.utils.errors import ValidationError


def test_single_worker_sums():
    assert makespan(np.array([1.0, 2.0, 3.0]), 1) == 6.0


def test_fewer_items_than_workers():
    assert makespan(np.array([5.0, 1.0]), 8) == 5.0


def test_list_scheduling_order_dependence():
    # arrival order [3,3,3,1] on 2 workers: 3+3 vs 3+1 -> makespan 6
    assert makespan(np.array([3.0, 3.0, 3.0, 1.0]), 2) == 6.0


def test_perfect_balance():
    costs = np.ones(100)
    assert makespan(costs, 10) == 10.0


def test_lower_bounds_respected():
    rng = np.random.default_rng(0)
    costs = rng.random(500) * 10
    for workers in (3, 7, 16):
        ms = makespan(costs, workers)
        assert ms >= costs.sum() / workers - 1e-9
        assert ms >= costs.max()
        assert ms <= costs.sum() / workers + costs.max()


def test_analytic_fallback_close_to_exact():
    rng = np.random.default_rng(1)
    costs = rng.exponential(1.0, 50_000)
    exact = makespan(costs, 64)
    approx = makespan(costs, 64, exact_limit=1000)
    assert abs(approx - exact) / exact < 0.05


def test_empty_and_validation():
    assert makespan(np.array([]), 4) == 0.0
    with pytest.raises(ValidationError):
        makespan(np.array([1.0]), 0)
    with pytest.raises(ValidationError):
        makespan(np.array([-1.0]), 2)
