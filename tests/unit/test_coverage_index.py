"""CoverageIndex: extendable CSR inverted index parity and lifecycle."""

import numpy as np
import pytest

from repro.imm.coverage import CoverageIndex
from repro.rrr import RRRCollection, sample_rrr_ic
from repro.utils.errors import ValidationError


def _reference_postings(flat, n, v):
    """Ground truth: ascending positions of v in flat."""
    return np.flatnonzero(np.asarray(flat) == v).astype(np.int64)


def _assert_index_matches(index, flat, n, limit=None):
    flat = np.asarray(flat)
    for v in range(n):
        expected = _reference_postings(flat, n, v)
        if limit is not None:
            expected = expected[expected < limit]
        got = index.postings(v, limit)
        assert np.array_equal(got, expected), f"vertex {v}"


def test_build_matches_flat_scan(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 300, rng=1)
    index = CoverageIndex.build(coll)
    assert index.num_elements == coll.total_elements
    _assert_index_matches(index, coll.flat, coll.n)


def test_extend_parity_with_fresh_build(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 400, rng=2)
    fresh = CoverageIndex.build(coll)
    grown = CoverageIndex(coll.n)
    for num_sets in (50, 120, 121, 320, 400):
        grown.extend_to(coll.prefix(num_sets))
    assert grown.num_elements == fresh.num_elements
    for v in range(coll.n):
        assert np.array_equal(grown.postings(v), fresh.postings(v))


def test_extend_with_empty_segment_is_noop():
    index = CoverageIndex(5)
    index.extend(np.empty(0, dtype=np.int32))
    assert index.num_elements == 0
    assert index.num_blocks == 0


def test_extend_to_shorter_collection_is_noop(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 200, rng=3)
    index = CoverageIndex.build(coll)
    before = index.num_elements
    index.extend_to(coll.prefix(50))  # sweep cell revisiting a smaller theta
    assert index.num_elements == before


def test_prefix_limit_clips_postings(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 300, rng=4)
    index = CoverageIndex.build(coll)
    for num_sets in (1, 7, 150, 299):
        limit = int(coll.offsets[num_sets])
        _assert_index_matches(index, coll.flat, coll.n, limit=limit)


def test_partial_block_limit():
    # one block, limit cuts through the middle of it
    flat = np.array([3, 1, 3, 0, 3, 1], dtype=np.int32)
    index = CoverageIndex(4)
    index.extend(flat)
    assert np.array_equal(index.postings(3, 3), [0, 2])
    assert np.array_equal(index.postings(3, None), [0, 2, 4])
    assert np.array_equal(index.postings(1, 1), [])
    assert np.array_equal(index.postings(1, 2), [1])


def test_counts_with_and_without_limit(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 250, rng=5)
    index = CoverageIndex(coll.n)
    index.extend_to(coll.prefix(100))
    index.extend_to(coll)
    assert np.array_equal(index.counts(), coll.counts)
    limit = int(coll.offsets[100])
    assert np.array_equal(index.counts(limit), coll.prefix(100).counts)


def test_compaction_preserves_postings(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 240, rng=6)
    index = CoverageIndex(coll.n, max_blocks=3)
    for num_sets in range(40, 241, 40):  # 6 extends > max_blocks
        index.extend_to(coll.prefix(num_sets))
    assert index.num_blocks <= 3 + 1
    fresh = CoverageIndex.build(coll)
    for v in range(coll.n):
        assert np.array_equal(index.postings(v), fresh.postings(v))
    # limits still respected after the merge
    limit = int(coll.offsets[100])
    _assert_index_matches(index, coll.flat, coll.n, limit=limit)


def test_extend_granularity_is_irrelevant():
    rng = np.random.default_rng(0)
    flat = rng.integers(0, 20, size=500).astype(np.int32)
    one = CoverageIndex(20)
    one.extend(flat)
    many = CoverageIndex(20)
    for lo in range(0, 500, 37):
        many.extend(flat[lo : lo + 37])
    for v in range(20):
        assert np.array_equal(one.postings(v), many.postings(v))


def test_validation():
    with pytest.raises(ValidationError):
        CoverageIndex(0)
    with pytest.raises(ValidationError):
        CoverageIndex(4, max_blocks=0)
    index = CoverageIndex(4)
    with pytest.raises(ValidationError):
        index.extend(np.array([1, 4], dtype=np.int32))  # out of range
    with pytest.raises(ValidationError):
        index.extend(np.array([-1], dtype=np.int32))
    other = RRRCollection.from_sets([[0]], n=9)
    with pytest.raises(ValidationError):
        index.extend_to(other)  # mismatched n
