"""The unified Engine.run contract: all four engines accept one
IMMOptions with identical semantics, and the legacy per-knob keywords
ride a deprecation shim mirroring run_imm's."""

import warnings

import pytest

from repro.api import (
    CuRipplesEngine,
    EIMEngine,
    GIMEngine,
    IMMOptions,
    RipplesCPUEngine,
)
from repro.imm.bounds import BoundsConfig
from repro.utils.errors import ValidationError

ENGINES = [EIMEngine, GIMEngine, CuRipplesEngine, RipplesCPUEngine]
OPTS = IMMOptions(model="IC", bounds=BoundsConfig(theta_scale=0.1))


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_every_engine_accepts_options(small_ic_graph, engine_cls):
    result = engine_cls().run(small_ic_graph, 5, 0.3, rng=3, options=OPTS)
    assert result.model == "IC"
    assert len(result.seeds) == 5
    # elimination stays an engine property, never a caller knob
    assert result.imm.eliminate_sources == engine_cls().eliminate_sources


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_engine_overrides_options_elimination(small_ic_graph, engine_cls):
    wrong = OPTS.replace(
        eliminate_sources=not engine_cls().eliminate_sources
    )
    result = engine_cls().run(small_ic_graph, 5, 0.3, rng=3, options=wrong)
    assert result.imm.eliminate_sources == engine_cls().eliminate_sources


def test_legacy_keywords_warn_and_match_options(small_ic_graph):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = EIMEngine().run(
            small_ic_graph, 5, 0.3, "IC", rng=3,
            bounds=BoundsConfig(theta_scale=0.1),
        )
    messages = [str(w.message) for w in caught
                if issubclass(w.category, DeprecationWarning)]
    assert messages and "repro 2.0" in messages[0]

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        modern = EIMEngine().run(small_ic_graph, 5, 0.3, rng=3, options=OPTS)
    assert list(legacy.seeds) == list(modern.seeds)
    assert legacy.total_cycles == modern.total_cycles


def test_mixing_options_and_legacy_raises(small_ic_graph):
    with pytest.raises(ValidationError, match="not both"):
        EIMEngine().run(small_ic_graph, 5, 0.3, "IC", options=OPTS)
    with pytest.raises(ValidationError, match="not both"):
        GIMEngine().run(small_ic_graph, 5, 0.3, options=OPTS,
                        selection_strategy="lazy")


def test_options_must_be_imm_options(small_ic_graph):
    with pytest.raises(ValidationError, match="IMMOptions"):
        EIMEngine().run(small_ic_graph, 5, 0.3, options={"model": "IC"})


def test_run_imm_legacy_warning_names_removal_release(small_ic_graph):
    from repro.imm.imm import run_imm

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        run_imm(small_ic_graph, 3, 0.4, "IC",
                bounds=BoundsConfig(theta_scale=0.1))
    messages = [str(w.message) for w in caught
                if issubclass(w.category, DeprecationWarning)]
    assert messages and "repro 2.0" in messages[0]


def test_resolve_options_forces_engine_elimination():
    from repro.engines.base import _UNSET

    engine = EIMEngine()  # eliminate_sources=True by default
    opts = engine._resolve_options(
        OPTS.replace(eliminate_sources=False),
        _UNSET, _UNSET, _UNSET, _UNSET, _UNSET,
    )
    assert opts.eliminate_sources is True
    assert opts.model == OPTS.model and opts.bounds == OPTS.bounds
