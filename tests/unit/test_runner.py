import math

import numpy as np
import pytest

from repro.engines.base import EngineResult
from repro.experiments import ExperimentConfig, average_results, compare_engines

CFG = ExperimentConfig(datasets=("WV", "EE"), sweep_theta_scale=0.1)


def _result(cycles: float, oom: bool = False) -> EngineResult:
    return EngineResult(
        engine="eim", model="IC", k=5, epsilon=0.2,
        seeds=None if oom else np.arange(5),
        oom=oom, oom_detail="x" if oom else "",
        total_cycles=float("nan") if oom else cycles,
        seconds=float("nan") if oom else cycles / 1e9,
        peak_device_bytes=100, rrr_store_bytes=50, theta=10,
        coverage=float("nan") if oom else 0.5,
    )


def test_average_results_mean_cycles():
    avg = average_results([_result(100.0), _result(200.0)])
    assert avg.total_cycles == 150.0


def test_average_results_oom_dominates():
    avg = average_results([_result(100.0), _result(0, oom=True)])
    assert avg.oom


def test_compare_engines_end_to_end():
    row = compare_engines("WV", 10, 0.2, "IC", CFG,
                          bounds=CFG.bounds(sweep=True))
    assert row.dataset == "WV" and row.model == "IC"
    assert not row.eim.oom and not row.gim.oom
    assert row.curipples is not None
    assert row.speedup_vs_gim > 0
    assert row.speedup_vs_curipples > row.speedup_vs_gim  # cuRipples slower
    cell = row.table_cell_vs_gim()
    assert "OOM" not in cell


def test_compare_without_curipples():
    row = compare_engines("EE", 5, 0.3, "IC", CFG, include_curipples=False,
                          bounds=CFG.bounds(sweep=True))
    assert row.curipples is None
    assert math.isnan(row.speedup_vs_curipples)


def test_oom_cell_format():
    row = compare_engines("WV", 10, 0.2, "IC", CFG,
                          include_curipples=False,
                          device=CFG.device().scaled(3000),  # ~5 KB: everyone OOMs
                          bounds=CFG.bounds(sweep=True))
    assert row.eim.oom
    assert row.table_cell_vs_gim() == "OOM(eIM)"


def test_k_clamped_to_n():
    row = compare_engines("WV", 10_000, 0.3, "IC", CFG, include_curipples=False,
                          bounds=CFG.bounds(sweep=True))
    assert row.k == CFG.graph("WV").n
