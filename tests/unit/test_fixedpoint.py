import numpy as np
import pytest

from repro.encoding.fixedpoint import pack_fixed_point, unpack_fixed_point
from repro.utils.errors import ValidationError


def test_roundtrip_error_bounded():
    rng = np.random.default_rng(3)
    values = rng.random(500)
    for bits in (8, 16, 24):
        packed = pack_fixed_point(values, bits=bits)
        restored = unpack_fixed_point(packed)
        assert np.abs(restored - values).max() <= 2.0 ** -(bits) + 1e-12


def test_exact_endpoints():
    packed = pack_fixed_point([0.0, 1.0], bits=16)
    restored = unpack_fixed_point(packed)
    assert restored[0] == 0.0 and restored[1] == 1.0


def test_rejects_out_of_range():
    with pytest.raises(ValidationError):
        pack_fixed_point([1.2])
    with pytest.raises(ValidationError):
        pack_fixed_point([-0.1])


def test_rejects_bad_bits():
    with pytest.raises(ValidationError):
        pack_fixed_point([0.5], bits=0)
    with pytest.raises(ValidationError):
        pack_fixed_point([0.5], bits=33)


def test_memory_smaller_than_float32():
    packed = pack_fixed_point(np.linspace(0, 1, 1000), bits=16)
    assert packed.nbytes_packed < 4 * 1000
