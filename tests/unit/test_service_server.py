"""Tests for the JSON-lines service front-ends (stdin batch and TCP)."""

import io
import json
import threading

import pytest

from repro.service import InfluenceService, ServiceOptions
from repro.service.server import (
    InfluenceTCPServer,
    build_query,
    handle_request,
    request_once,
    serve_stdin,
)
from repro.utils.errors import ValidationError

FAST = ServiceOptions(max_inflight=2, chunk_sets=256)


@pytest.fixture
def service(small_ic_graph):
    svc = InfluenceService(FAST)
    svc.register_graph("g", small_ic_graph)
    yield svc
    svc.close()


# -- request translation -----------------------------------------------------


def test_build_query_minimal(service):
    q = build_query(service, {"graph": "g", "k": 5, "epsilon": 0.3})
    assert q.graph == "g" and q.k == 5 and q.epsilon == 0.3
    assert q.options.model == "IC"


def test_build_query_full_options(service):
    q = build_query(service, {
        "graph": "g", "k": 3, "epsilon": 0.4, "model": "lt",
        "eliminate_sources": True, "entropy": [1, 2],
        "selection_strategy": "lazy", "theta_scale": 0.5,
    })
    assert q.options.model == "LT"
    assert q.options.eliminate_sources is True
    assert q.options.selection_strategy == "lazy"
    assert q.options.bounds.theta_scale == 0.5
    assert q.entropy == (1, 2)


@pytest.mark.parametrize("request_dict,match", [
    ({"graph": "g", "k": 5}, "missing 'epsilon'"),
    ({"graph": "g", "epsilon": 0.3}, "missing 'k'"),
    ({"k": 5, "epsilon": 0.3}, "needs 'graph'"),
    ({"graph": "g", "k": 5, "epsilon": 0.3, "epsilonn": 1}, "unknown request"),
    ({"dataset": "NOPE", "k": 5, "epsilon": 0.3}, "unknown dataset"),
])
def test_build_query_rejects_malformed(service, request_dict, match):
    with pytest.raises(ValidationError, match=match):
        build_query(service, request_dict)


def test_handle_request_success_and_failure_shapes(service):
    ok = handle_request(service, {"graph": "g", "k": 5, "epsilon": 0.3})
    assert ok["ok"] is True
    assert len(ok["seeds"]) == 5
    assert ok["cache"] == "cold" and ok["theta"] > 0
    repeat = handle_request(service, {"graph": "g", "k": 5, "epsilon": 0.3})
    assert repeat["cache"] == "exact"
    assert repeat["seeds"] == ok["seeds"]

    bad = handle_request(service, {"graph": "missing", "k": 5, "epsilon": 0.3})
    assert bad["ok"] is False and bad["overloaded"] is False
    assert "unknown graph" in bad["error"]


def test_handle_request_dataset_autoload(service):
    first = handle_request(
        service, {"dataset": "WV", "scale": "tiny", "k": 4, "epsilon": 0.3}
    )
    assert first["ok"] is True
    # the loaded graph is registered: the repeat is an exact cache hit
    again = handle_request(
        service, {"dataset": "WV", "scale": "tiny", "k": 4, "epsilon": 0.3}
    )
    assert again["cache"] == "exact"


# -- stdin batch mode --------------------------------------------------------


def test_serve_stdin_batch(service):
    lines = [
        json.dumps({"graph": "g", "k": 5, "epsilon": 0.3}),
        "",  # blank lines are skipped, not answered
        "this is not json",
        json.dumps({"graph": "g", "k": 5, "epsilon": 0.3}),
    ]
    out = io.StringIO()
    served = serve_stdin(service, io.StringIO("\n".join(lines) + "\n"), out)
    responses = [json.loads(l) for l in out.getvalue().splitlines()]
    assert served == 3 and len(responses) == 3
    assert responses[0]["ok"] is True and responses[0]["cache"] == "cold"
    assert responses[1]["ok"] is False and "bad JSON" in responses[1]["error"]
    assert responses[2]["cache"] == "exact"
    assert responses[2]["seeds"] == responses[0]["seeds"]


# -- TCP mode ----------------------------------------------------------------


def test_tcp_roundtrip_ephemeral_port(service):
    server = InfluenceTCPServer(service, port=0)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        first = request_once(host, port, {"graph": "g", "k": 5, "epsilon": 0.3})
        assert first["ok"] is True and len(first["seeds"]) == 5
        assert first["degraded"] is False
        repeat = request_once(host, port, {"graph": "g", "k": 5, "epsilon": 0.3})
        assert repeat["cache"] == "exact"
        assert repeat["seeds"] == first["seeds"]
        garbage = request_once(host, port, {"graph": "g", "k": 5})
        assert garbage["ok"] is False
    finally:
        server.shutdown()
        server.server_close()


# -- protocol robustness (one bad connection never kills the accept loop) ----


@pytest.fixture
def tcp_server(service):
    server = InfluenceTCPServer(service, port=0, read_timeout=2.0,
                                max_request_bytes=4096)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.server_address
    server.shutdown()
    server.server_close()


def _connect(address):
    import socket

    return socket.create_connection(address, timeout=10)


def _send_line(conn, payload: bytes):
    conn.sendall(payload + b"\n")


def _read_line(conn) -> bytes:
    buffer = b""
    while not buffer.endswith(b"\n"):
        chunk = conn.recv(65536)
        if not chunk:
            break
        buffer += chunk
    return buffer


def test_malformed_then_valid_on_same_connection(tcp_server):
    with _connect(tcp_server) as conn:
        _send_line(conn, b"{not json at all")
        bad = json.loads(_read_line(conn))
        assert bad["ok"] is False and "bad JSON" in bad["error"]
        # the connection survived the poison line
        _send_line(conn, json.dumps(
            {"graph": "g", "k": 3, "epsilon": 0.3}).encode())
        good = json.loads(_read_line(conn))
        assert good["ok"] is True and len(good["seeds"]) == 3


def test_oversized_request_errors_one_connection_only(tcp_server):
    with _connect(tcp_server) as conn:
        _send_line(conn, b"x" * 10_000)  # over the 4096-byte limit
        response = json.loads(_read_line(conn))
        assert response["ok"] is False and "exceeds" in response["error"]
        assert _read_line(conn) == b""  # server closed this connection
    # the accept loop is alive: a fresh connection still serves
    host, port = tcp_server
    ok = request_once(host, port, {"graph": "g", "k": 3, "epsilon": 0.3})
    assert ok["ok"] is True


def test_client_disconnect_mid_request_keeps_serving(tcp_server):
    with _connect(tcp_server) as conn:
        conn.sendall(b'{"graph": "g", "k": 3')  # no newline: mid-frame
    # abrupt close; the handler thread ends quietly and the accept loop
    # keeps serving new connections
    host, port = tcp_server
    ok = request_once(host, port, {"graph": "g", "k": 3, "epsilon": 0.3})
    assert ok["ok"] is True


def test_read_timeout_closes_idle_connection(service):
    server = InfluenceTCPServer(service, port=0, read_timeout=0.2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with _connect(server.server_address) as conn:
            response = json.loads(_read_line(conn))  # we sent nothing
            assert response["ok"] is False and "timeout" in response["error"]
            assert _read_line(conn) == b""
        host, port = server.server_address
        ok = request_once(host, port, {"graph": "g", "k": 3, "epsilon": 0.3})
        assert ok["ok"] is True
    finally:
        server.shutdown()
        server.server_close()


def test_health_request_over_tcp(tcp_server):
    host, port = tcp_server
    request_once(host, port, {"graph": "g", "k": 3, "epsilon": 0.3})
    response = request_once(host, port, {"health": True})
    assert response["ok"] is True
    health = response["health"]
    assert health["status"] == "ok"
    assert health["workers_alive"] >= 1
    assert health["counters"]["service.queries"] >= 1


def test_deadline_request_field(service):
    expired = handle_request(
        service,
        {"graph": "g", "k": 5, "epsilon": 0.3, "deadline": 1e-4},
    )
    # so small a budget expires in the queue or at admission
    assert expired["ok"] is False and expired["deadline_expired"] is True
    ok = handle_request(
        service, {"graph": "g", "k": 5, "epsilon": 0.3, "deadline": 60.0}
    )
    assert ok["ok"] is True and len(ok["seeds"]) == 5
