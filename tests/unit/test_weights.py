import numpy as np
import pytest

from repro.graphs import assign_ic_weights, assign_lt_weights
from repro.graphs.generators import powerlaw_configuration
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def graph():
    return powerlaw_configuration(400, 2400, rng=17)


def test_ic_indegree_weights(graph):
    g = assign_ic_weights(graph)
    deg = g.in_degrees()
    for v in (0, 13, 200):
        if deg[v]:
            assert np.allclose(g.in_weights(v), 1.0 / deg[v])


def test_ic_uniform_random_bounded(graph):
    g = assign_ic_weights(graph, scheme="uniform_random", rng=3, p=0.2)
    assert g.weights.max() <= 0.2
    assert g.weights.min() >= 0.0


def test_ic_trivalency(graph):
    g = assign_ic_weights(graph, scheme="trivalency", rng=3)
    assert set(np.unique(g.weights)) <= {0.1, 0.01, 0.001}


def test_ic_constant(graph):
    g = assign_ic_weights(graph, scheme="constant", p=0.07)
    assert np.allclose(g.weights, 0.07)


def test_ic_unknown_scheme(graph):
    with pytest.raises(ValidationError):
        assign_ic_weights(graph, scheme="nope")


def test_lt_indegree_sums_to_one(graph):
    g = assign_lt_weights(graph)
    totals = g.total_in_weight()
    deg = g.in_degrees()
    assert np.allclose(totals[deg > 0], 1.0)
    assert np.all(totals[deg == 0] == 0.0)


def test_lt_random_normalized_sums_below_one(graph):
    g = assign_lt_weights(graph, scheme="random_normalized", rng=5)
    totals = g.total_in_weight()
    assert totals.max() <= 1.0 + 1e-9


def test_lt_unknown_scheme(graph):
    with pytest.raises(ValidationError):
        assign_lt_weights(graph, scheme="nope")


def test_assignment_does_not_mutate_original(graph):
    assert graph.weights is None
    assign_ic_weights(graph)
    assert graph.weights is None
