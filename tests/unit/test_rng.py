import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


def test_as_generator_from_int_is_deterministic():
    a = as_generator(42).random(5)
    b = as_generator(42).random(5)
    assert np.array_equal(a, b)


def test_as_generator_passthrough_shares_state():
    gen = np.random.default_rng(7)
    assert as_generator(gen) is gen


def test_as_generator_none_gives_fresh_entropy():
    a = as_generator(None).random(4)
    b = as_generator(None).random(4)
    assert not np.array_equal(a, b)


def test_spawn_generators_independent_streams():
    children = spawn_generators(3, 4)
    draws = [c.random(8) for c in children]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.array_equal(draws[i], draws[j])


def test_spawn_generators_deterministic_given_seed():
    a = [g.random(3) for g in spawn_generators(11, 2)]
    b = [g.random(3) for g in spawn_generators(11, 2)]
    assert all(np.array_equal(x, y) for x, y in zip(a, b))


def test_spawn_negative_count_rejected():
    with pytest.raises(ValueError):
        spawn_generators(0, -1)


def test_spawn_zero_returns_empty():
    assert spawn_generators(0, 0) == []
