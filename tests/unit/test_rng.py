import pickle

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators, spawn_seed_sequences


def test_as_generator_from_int_is_deterministic():
    a = as_generator(42).random(5)
    b = as_generator(42).random(5)
    assert np.array_equal(a, b)


def test_as_generator_passthrough_shares_state():
    gen = np.random.default_rng(7)
    assert as_generator(gen) is gen


def test_as_generator_none_gives_fresh_entropy():
    a = as_generator(None).random(4)
    b = as_generator(None).random(4)
    assert not np.array_equal(a, b)


def test_spawn_generators_independent_streams():
    children = spawn_generators(3, 4)
    draws = [c.random(8) for c in children]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.array_equal(draws[i], draws[j])


def test_spawn_generators_deterministic_given_seed():
    a = [g.random(3) for g in spawn_generators(11, 2)]
    b = [g.random(3) for g in spawn_generators(11, 2)]
    assert all(np.array_equal(x, y) for x, y in zip(a, b))


def test_spawn_negative_count_rejected():
    with pytest.raises(ValueError):
        spawn_generators(0, -1)


def test_spawn_zero_returns_empty():
    assert spawn_generators(0, 0) == []


def test_spawn_seed_sequences_back_generators():
    children = spawn_seed_sequences(5, 3)
    via_seq = [np.random.Generator(np.random.PCG64(c)) for c in children]
    via_helper = spawn_generators(5, 3)
    for a, b in zip(via_seq, via_helper):
        assert np.array_equal(a.random(8), b.random(8))


def test_spawn_seed_sequences_survive_pickling():
    # the parallel sampler ships these to worker processes
    children = spawn_seed_sequences(5, 2)
    for child in children:
        clone = pickle.loads(pickle.dumps(child))
        a = np.random.Generator(np.random.PCG64(child)).random(8)
        b = np.random.Generator(np.random.PCG64(clone)).random(8)
        assert np.array_equal(a, b)


def test_spawn_seed_sequences_negative_rejected():
    with pytest.raises(ValueError):
        spawn_seed_sequences(0, -2)
