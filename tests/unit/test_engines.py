import numpy as np
import pytest

from repro.engines import CuRipplesEngine, EIMEngine, ENGINES, GIMEngine
from repro.gpu import RTX_A6000
from repro.imm import BoundsConfig, run_imm

BOUNDS = BoundsConfig(theta_scale=1.0)
SPEC = RTX_A6000.scaled(1000)
# the paper's regime: selection weight grows with k (default there k=50)
K, EPS = 40, 0.1


@pytest.fixture(scope="module")
def results(request):
    import repro.graphs as graphs

    g = graphs.assign_ic_weights(graphs.powerlaw_configuration(400, 2400, rng=31))
    out = {}
    vanilla = run_imm(g, K, EPS, rng=5, bounds=BOUNDS)
    out["graph"] = g
    out["eim"] = EIMEngine().run(g, K, EPS, rng=5, bounds=BOUNDS, device_spec=SPEC)
    out["gim"] = GIMEngine().run(g, K, EPS, bounds=BOUNDS, device_spec=SPEC,
                                 imm_result=vanilla)
    out["curipples"] = CuRipplesEngine().run(g, K, EPS, bounds=BOUNDS,
                                             device_spec=SPEC, imm_result=vanilla)
    return out


def test_registry():
    assert set(ENGINES) == {"eim", "gim", "curipples", "ripples_cpu"}


def test_all_engines_produce_seeds(results):
    for name in ("eim", "gim", "curipples"):
        r = results[name]
        assert not r.oom
        assert r.seeds.size == K
        assert r.total_cycles > 0
        assert r.seconds > 0
        assert 0 < r.coverage <= 1.0


def test_gim_and_curipples_share_seeds(results):
    assert np.array_equal(results["gim"].seeds, results["curipples"].seeds)


def test_eim_stores_fewer_bytes(results):
    assert results["eim"].rrr_store_bytes < results["gim"].rrr_store_bytes


def test_eim_fastest(results):
    assert results["eim"].total_cycles < results["gim"].total_cycles
    assert results["eim"].total_cycles < results["curipples"].total_cycles


def test_curipples_pays_transfer_costs(results):
    bd = results["curipples"].breakdown
    assert bd.get("offload_to_host", 0) > 0
    assert bd.get("reload_to_device", 0) > 0
    assert "offload_to_host" not in results["eim"].breakdown


def test_speedup_over(results):
    s = results["eim"].speedup_over(results["gim"])
    assert s == pytest.approx(
        results["gim"].total_cycles / results["eim"].total_cycles
    )


def test_eim_ablation_toggles(results):
    g = results["graph"]
    full = results["eim"]
    no_pack = EIMEngine(log_encoding=False).run(
        g, K, EPS, rng=5, bounds=BOUNDS, device_spec=SPEC
    )
    assert no_pack.rrr_store_bytes > full.rrr_store_bytes
    no_elim = EIMEngine(eliminate_sources=False).run(
        g, K, EPS, rng=5, bounds=BOUNDS, device_spec=SPEC
    )
    assert no_elim.theta >= full.theta
    warp_scan = EIMEngine(thread_scan=False).run(
        g, K, EPS, rng=5, bounds=BOUNDS, device_spec=SPEC
    )
    assert warp_scan.breakdown["selection_scan"] != full.breakdown["selection_scan"]


def test_oom_result_shape():
    import repro.graphs as graphs

    g = graphs.assign_ic_weights(graphs.powerlaw_configuration(400, 2400, rng=31))
    tiny_spec = RTX_A6000.scaled(5_000_000)  # ~10 KB device
    r = GIMEngine().run(g, 5, 0.3, rng=1, bounds=BoundsConfig(theta_scale=0.1), device_spec=tiny_spec)
    assert r.oom
    assert r.seeds is None
    assert np.isnan(r.total_cycles)
    assert "OOM" in r.oom_detail or "oom" in r.oom_detail.lower() or r.oom_detail
    assert np.isnan(r.speedup_over(r))


def test_lt_model_runs():
    import repro.graphs as graphs

    g = graphs.assign_lt_weights(graphs.powerlaw_configuration(400, 2400, rng=31))
    r = EIMEngine().run(g, 8, 0.3, "LT", rng=2, bounds=BoundsConfig(theta_scale=0.1), device_spec=SPEC)
    assert not r.oom and r.model == "LT"


def test_gim_spill_fragmentation_grows_memory():
    """Force tiny shared queues: gIM's footprint must include fragmentation."""
    import repro.graphs as graphs

    g = graphs.assign_ic_weights(graphs.powerlaw_configuration(400, 2400, rng=31))
    tight = GIMEngine(shared_queue_fraction=0.001)
    r = tight.run(g, 10, 0.2, rng=5, bounds=BoundsConfig(theta_scale=0.1), device_spec=SPEC)
    assert not r.oom
    assert r.breakdown["sampling"] > 0


def test_gim_can_win_at_small_theta():
    """The paper's caveat: with few RRR sets, gIM's shared-memory queues
    can outweigh eIM's advantages (it is 'slightly faster ... in which the
    number of generated RRR sets is relatively small')."""
    import repro.graphs as graphs

    g = graphs.assign_ic_weights(graphs.powerlaw_configuration(400, 2400, rng=31))
    loose = BoundsConfig(theta_scale=0.02)
    vanilla = run_imm(g, 5, 0.4, rng=5, bounds=loose)
    eim = EIMEngine().run(g, 5, 0.4, rng=5, bounds=loose, device_spec=SPEC)
    gim = GIMEngine().run(g, 5, 0.4, bounds=loose, device_spec=SPEC,
                          imm_result=vanilla)
    # no strict winner asserted at this size; the ratio must just be mild
    ratio = eim.total_cycles / gim.total_cycles
    assert 0.5 < ratio < 2.0
