import gzip

import numpy as np
import pytest

from repro.graphs import load_edgelist, save_edgelist
from repro.graphs.csc import DirectedGraph
from repro.utils.errors import GraphFormatError


def test_load_snap_format(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# Directed graph\n# Nodes: 3 Edges: 2\n0\t1\n1\t2\n")
    g = load_edgelist(path)
    assert g.n == 3 and g.m == 2
    assert list(g.in_neighbors(1)) == [0]


def test_load_relabels_sparse_ids(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("100 200\n200 300\n")
    g = load_edgelist(path)
    assert g.n == 3 and g.m == 2


def test_load_undirected_doubles_edges(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n")
    g = load_edgelist(path, directed=False)
    assert g.m == 2
    assert list(g.in_neighbors(0)) == [1]


def test_load_gzip(tmp_path):
    path = tmp_path / "g.txt.gz"
    with gzip.open(path, "wt") as fh:
        fh.write("0 1\n1 0\n")
    g = load_edgelist(path)
    assert g.m == 2


def test_load_rejects_malformed(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0\n")
    with pytest.raises(GraphFormatError):
        load_edgelist(path)
    path.write_text("a b\n")
    with pytest.raises(GraphFormatError):
        load_edgelist(path)


def test_roundtrip(tmp_path):
    g = DirectedGraph.from_edges([0, 2, 1, 3], [1, 1, 3, 0], n=4)
    path = tmp_path / "out.txt"
    save_edgelist(g, path, header="test graph")
    g2 = load_edgelist(path, relabel=False)
    assert g2.n == g.n and g2.m == g.m
    assert np.array_equal(g2.indptr, g.indptr)
    assert np.array_equal(g2.indices, g.indices)
