import pytest

from repro.gpu import RTX_A6000
from repro.gpu.multi import MultiDeviceResult, allreduce_cycles, run_multi_device_eim
from repro.imm import BoundsConfig, run_imm
from repro.utils.errors import ValidationError

SPEC = RTX_A6000.scaled(1000)


@pytest.fixture(scope="module")
def workload():
    """A sampling-heavy workload (deep cascades, many sets) — the regime
    multi-GPU striping targets."""
    import repro.graphs as graphs

    g = graphs.assign_ic_weights(
        graphs.powerlaw_configuration(1200, 2900, 2.1, 2.1, rng=13)
    )
    imm = run_imm(g, 50, 0.05, rng=1, eliminate_sources=True,
                  bounds=BoundsConfig(theta_scale=0.25))
    return g, imm


def test_allreduce_cost_properties():
    assert allreduce_cycles(SPEC, 10_000, 1) == 0.0
    two = allreduce_cycles(SPEC, 10_000, 2)
    four = allreduce_cycles(SPEC, 10_000, 4)
    assert two > 0 and four > two  # more devices move more relative volume
    assert allreduce_cycles(SPEC, 0, 4) > 0  # latency floor
    with pytest.raises(ValidationError):
        allreduce_cycles(SPEC, 10, 0)


def test_single_device_matches_structure(workload):
    g, imm = workload
    res = run_multi_device_eim(imm, g, SPEC, 1)
    assert isinstance(res, MultiDeviceResult)
    assert res.collective_cycles == 0.0
    assert res.total_cycles > 0 and not res.oom


def test_sampling_scales_down_with_devices(workload):
    g, imm = workload
    one = run_multi_device_eim(imm, g, SPEC, 1)
    four = run_multi_device_eim(imm, g, SPEC, 4)
    assert four.sampling_cycles < one.sampling_cycles
    assert four.selection_cycles < one.selection_cycles
    assert four.collective_cycles > 0


def test_speedup_saturates(workload):
    """Amdahl shape: 2 devices help on a sampling-heavy workload; at very
    high device counts the all-reduce term stops the scaling."""
    g, imm = workload
    totals = [run_multi_device_eim(imm, g, SPEC, d).total_cycles
              for d in (1, 2, 64)]
    assert totals[1] < totals[0]
    speedup_64 = totals[0] / totals[2]
    assert speedup_64 < 64 * 0.9  # nowhere near linear at 64


def test_per_device_memory_shrinks(workload):
    g, imm = workload
    one = run_multi_device_eim(imm, g, SPEC, 1)
    eight = run_multi_device_eim(imm, g, SPEC, 8)
    assert eight.per_device_peak_bytes < one.per_device_peak_bytes


def test_validation(workload):
    g, imm = workload
    with pytest.raises(ValidationError):
        run_multi_device_eim(imm, g, SPEC, 0)
