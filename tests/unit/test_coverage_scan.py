"""Coverage-scan parity: the word-parallel bitset scan must pick the
same seeds with the same :class:`SelectionStats` as the CSR postings
walk, for both the fast and the lazy strategy, including prefix views
of a shared warm index."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.imm.coverage import CoverageIndex
from repro.imm.seed_selection import select_seeds
from repro.kernels import ENV_BUDGET_MB, ENV_COVERAGE_SCAN
from repro.rrr import sample_rrr_ic


def _assert_same_selection(ref, out):
    np.testing.assert_array_equal(out.seeds, ref.seeds)
    assert out.covered_sets == ref.covered_sets
    assert out.num_sets == ref.num_sets
    np.testing.assert_array_equal(out.marginal_gains, ref.marginal_gains)
    np.testing.assert_array_equal(out.stats.sets_scanned, ref.stats.sets_scanned)
    np.testing.assert_array_equal(out.stats.sets_found, ref.stats.sets_found)
    np.testing.assert_array_equal(
        out.stats.elements_decremented, ref.stats.elements_decremented
    )
    assert out.stats.avg_set_size == ref.stats.avg_set_size


@pytest.fixture
def collection(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 500, rng=17)
    return coll


@pytest.mark.parametrize("strategy", ["fast", "lazy"])
def test_scan_parity(collection, strategy):
    ref = select_seeds(collection, 8, strategy, scan="csr")
    for scan in ("bitset", "auto"):
        _assert_same_selection(ref, select_seeds(collection, 8, strategy, scan=scan))
    # both agree with the Alg. 3 oracle
    oracle = select_seeds(collection, 8, "reference")
    np.testing.assert_array_equal(ref.seeds, oracle.seeds)


def test_env_var_selects_scan(collection, monkeypatch):
    ref = select_seeds(collection, 5, scan="csr")
    monkeypatch.setenv(ENV_COVERAGE_SCAN, "bitset")
    with obs.profiled() as handle:
        out = select_seeds(collection, 5)
    _assert_same_selection(ref, out)
    counters = handle.report().counters
    assert counters.get("selection.scan.words_touched", 0) > 0
    assert counters.get("selection.scan.posting_reads", 0) == 0


def test_auto_falls_back_under_tiny_budget(collection, monkeypatch):
    monkeypatch.setenv(ENV_BUDGET_MB, "0.001")
    ref = select_seeds(collection, 5, scan="csr")
    with obs.profiled() as handle:
        out = select_seeds(collection, 5, scan="auto")
    _assert_same_selection(ref, out)
    counters = handle.report().counters
    assert counters.get("kernels.bitset.fallbacks", 0) >= 1
    assert counters.get("selection.scan.posting_reads", 0) > 0


@pytest.mark.parametrize("strategy", ["fast", "lazy"])
def test_prefix_view_through_shared_index(small_ic_graph, strategy):
    """A CoverageIndex (and its cached membership plane) that already
    covers the full stream serves any collection prefix — the tail bits
    beyond the prefix must be masked out."""
    full, _ = sample_rrr_ic(small_ic_graph, 600, rng=23)
    prefix = full.prefix(250)
    index = CoverageIndex.build(full)  # ahead of the prefix
    ref = select_seeds(prefix, 6, strategy, index=index, scan="csr")
    out = select_seeds(prefix, 6, strategy, index=index, scan="bitset")
    _assert_same_selection(ref, out)
    # and the same membership plane then serves the full collection
    ref_full = select_seeds(full, 6, strategy, index=index, scan="csr")
    out_full = select_seeds(full, 6, strategy, index=index, scan="bitset")
    _assert_same_selection(ref_full, out_full)


def test_membership_plane_grows_with_index(small_ic_graph):
    """Selecting on a growing stream through one index reuses and
    extends the same membership plane instead of rebuilding it."""
    full, _ = sample_rrr_ic(small_ic_graph, 400, rng=31)
    index = CoverageIndex(full.n)
    planes = []
    for theta in (100, 250, 400):
        view = full.prefix(theta)
        index.extend_to(view)
        select_seeds(view, 4, index=index, scan="bitset")
        planes.append(index._membership)
        assert index._membership.num_sets == theta
    assert planes[0] is planes[1] is planes[2]


def test_bitset_scan_beats_csr_on_element_touches(collection):
    """The gate's mechanism in miniature: scanning words touches far
    fewer elements than walking postings."""
    with obs.profiled() as handle:
        select_seeds(collection, 8, scan="bitset")
    words = handle.report().counters.get("selection.scan.words_touched", 0)
    with obs.profiled() as handle:
        select_seeds(collection, 8, scan="csr")
    reads = handle.report().counters.get("selection.scan.posting_reads", 0)
    assert words > 0 and reads > 0
