"""The process memory governor: ledger, budget precedence, pressure."""

import pytest

from repro.memory.budget import (
    ENV_KERNEL_BUDGET_MB,
    ENV_MEMORY_BUDGET_MB,
    MemoryBudget,
    budget_scope,
    env_budget_bytes,
    governor,
)
from repro.utils.errors import ValidationError

MB = 1024 * 1024


@pytest.fixture()
def gov():
    return MemoryBudget()


def test_ledger_accounts_and_credits(gov):
    gov.account("a", "resident", 100)
    gov.account("b", "compressed", 50)
    gov.account("b", "spilled", 25)
    assert gov.charged_bytes == 150  # resident + compressed, not spilled
    assert gov.tier_bytes("spilled") == 25
    gov.account("a", "resident", -100)
    assert gov.charged_bytes == 50
    # credits floor at zero — a double-release cannot go negative
    gov.account("b", "compressed", -500)
    assert gov.charged_bytes == 0


def test_peak_tracks_high_water_mark(gov):
    gov.account("a", "resident", 300)
    gov.account("a", "resident", -200)
    gov.account("a", "resident", 50)
    assert gov.charged_bytes == 150
    assert gov.peak_charged_bytes == 300


def test_unknown_tier_rejected(gov):
    with pytest.raises(ValidationError):
        gov.account("a", "warm", 1)


def test_budget_precedence(gov, monkeypatch):
    # unbounded by default
    monkeypatch.delenv(ENV_MEMORY_BUDGET_MB, raising=False)
    monkeypatch.delenv(ENV_KERNEL_BUDGET_MB, raising=False)
    assert gov.budget_bytes is None
    # the legacy kernel env feeds the shared budget now
    monkeypatch.setenv(ENV_KERNEL_BUDGET_MB, "2")
    assert gov.budget_bytes == 2 * MB
    # the new env wins over the legacy alias
    monkeypatch.setenv(ENV_MEMORY_BUDGET_MB, "8")
    assert gov.budget_bytes == 8 * MB
    # an explicit set wins over both; None pins explicitly-unbounded
    gov.set_budget(MB)
    assert gov.budget_bytes == MB
    gov.set_budget(None)
    assert gov.budget_bytes is None
    # clearing hands resolution back to the environment
    gov.clear_budget()
    assert gov.budget_bytes == 8 * MB


def test_env_budget_rejects_garbage(monkeypatch):
    monkeypatch.setenv(ENV_MEMORY_BUDGET_MB, "lots")
    with pytest.raises(ValidationError):
        env_budget_bytes()
    monkeypatch.setenv(ENV_MEMORY_BUDGET_MB, "-3")
    with pytest.raises(ValidationError):
        env_budget_bytes()


def test_would_fit_and_overcommitted(gov):
    assert gov.would_fit(10**12)  # unbounded
    gov.set_budget(MB)
    gov.account("a", "resident", MB // 2)
    assert gov.would_fit(MB // 2)
    assert not gov.would_fit(MB)
    assert not gov.overcommitted()
    gov.account("a", "resident", MB)
    assert gov.overcommitted()
    assert gov.headroom() < 0


def test_request_walks_handlers_in_priority_order(gov):
    calls = []

    def shed_a(deficit):
        calls.append(("a", deficit))
        gov.account("x", "resident", -MB)
        return MB

    def shed_b(deficit):
        calls.append(("b", deficit))
        return 0

    gov.add_pressure_handler(shed_b, priority=20)
    gov.add_pressure_handler(shed_a, priority=10)
    gov.set_budget(MB)
    gov.account("x", "resident", 2 * MB)
    assert gov.request(0) is True
    # priority 10 ran first and freed enough: priority 20 never ran
    assert [name for name, _ in calls] == ["a"]
    assert calls[0][1] == MB  # the deficit it was asked to clear


def test_request_overcommits_gracefully(gov):
    gov.set_budget(MB)
    gov.account("x", "resident", 4 * MB)
    assert gov.request(0) is False  # nothing registered to shed
    assert gov.snapshot()["overcommits"] == 1


def test_request_survives_raising_handler(gov):
    def bad(deficit):
        raise RuntimeError("boom")

    def good(deficit):
        gov.account("x", "resident", -2 * MB)
        return 2 * MB

    gov.add_pressure_handler(bad, priority=0)
    gov.add_pressure_handler(good, priority=1)
    gov.set_budget(MB)
    gov.account("x", "resident", 2 * MB)
    assert gov.request(0) is True


def test_remove_pressure_handler(gov):
    calls = []
    handle = gov.add_pressure_handler(lambda d: calls.append(d) or 0)
    gov.remove_pressure_handler(handle)
    gov.set_budget(MB)
    gov.account("x", "resident", 2 * MB)
    gov.request(0)
    assert calls == []


def test_budget_scope_restores_prior_state(monkeypatch):
    monkeypatch.delenv(ENV_MEMORY_BUDGET_MB, raising=False)
    monkeypatch.delenv(ENV_KERNEL_BUDGET_MB, raising=False)
    gov = governor()
    before = gov.budget_bytes
    with budget_scope(3 * MB) as scoped:
        assert scoped is gov
        assert gov.budget_bytes == 3 * MB
        with budget_scope(MB):
            assert gov.budget_bytes == MB
        assert gov.budget_bytes == 3 * MB
    assert gov.budget_bytes == before


def test_snapshot_shape(gov):
    gov.account("rrr.chunks", "resident", 10)
    snap = gov.snapshot()
    assert snap["resident_bytes"] == 10
    assert snap["accounts"]["rrr.chunks"]["resident"] == 10
    for key in ("budget_bytes", "compressed_bytes", "spilled_bytes",
                "peak_charged_bytes", "demotions", "promotions",
                "overcommits"):
        assert key in snap


def test_exhausted_tier_forensics(gov):
    assert gov.exhausted_tier() == "host"  # no budget: the host was the wall
    gov.set_budget(MB)
    assert gov.exhausted_tier() == "resident"
    gov.account("a", "resident", 10)
    assert gov.exhausted_tier() == "resident"
    gov.account("a", "compressed", 10)
    assert gov.exhausted_tier() == "compressed"
    gov.account("a", "spilled", 10)
    assert gov.exhausted_tier() == "spilled"
