import pytest

from repro.encoding.memory import MemoryReport, memory_report


def test_percent_saved():
    r = MemoryReport("x", 100, 60)
    assert r.saved_bytes == 40
    assert r.percent_saved == pytest.approx(40.0)


def test_zero_raw_bytes():
    assert MemoryReport("x", 0, 0).percent_saved == 0.0


def test_addition_combines_components():
    total = MemoryReport("a", 100, 50) + MemoryReport("b", 200, 100)
    assert total.raw_bytes == 300 and total.packed_bytes == 150
    assert total.percent_saved == pytest.approx(50.0)


def test_constructor_validates():
    with pytest.raises(ValueError):
        memory_report("x", -1, 0)
