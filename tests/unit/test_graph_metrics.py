import numpy as np
import pytest

from repro.graphs import DirectedGraph, load_dataset
from repro.graphs.generators import erdos_renyi_directed, powerlaw_configuration
from repro.graphs.metrics import (
    GraphMetrics,
    compute_metrics,
    gini,
    powerlaw_tail_exponent,
    reciprocity,
)
from repro.utils.errors import ValidationError


def test_gini_uniform_is_zero():
    assert gini(np.full(100, 7.0)) == pytest.approx(0.0)


def test_gini_extreme_concentration():
    values = np.zeros(1000)
    values[0] = 100.0
    assert gini(values) > 0.99


def test_gini_validation():
    with pytest.raises(ValidationError):
        gini(np.array([]))
    with pytest.raises(ValidationError):
        gini(np.array([-1.0]))
    assert gini(np.zeros(5)) == 0.0


def test_tail_exponent_recovers_pareto():
    rng = np.random.default_rng(2)
    alpha_true = 2.5
    samples = np.floor(rng.pareto(alpha_true - 1.0, 200_000) + 1.0)
    estimated = powerlaw_tail_exponent(samples)
    assert abs(estimated - alpha_true) < 0.3


def test_tail_exponent_no_tail():
    assert powerlaw_tail_exponent(np.array([1, 1, 1])) == float("inf")


def test_reciprocity_symmetric_graph():
    g = DirectedGraph.from_edges([0, 1, 1, 2], [1, 0, 2, 1], n=3)
    assert reciprocity(g) == 1.0


def test_reciprocity_dag_is_zero():
    g = DirectedGraph.from_edges([0, 1], [1, 2], n=3)
    assert reciprocity(g) == 0.0


def test_reciprocity_vectorized_path_matches_set_path():
    g = powerlaw_configuration(400, 2000, rng=1, bidirectional=True)
    small = reciprocity(g)
    assert small == pytest.approx(1.0)


def test_compute_metrics_fields():
    g = powerlaw_configuration(500, 3000, rng=3)
    metrics = compute_metrics(g)
    assert isinstance(metrics, GraphMetrics)
    assert metrics.n == 500 and metrics.m == g.m
    assert metrics.avg_degree == pytest.approx(g.m / 500)
    assert 0 <= metrics.zero_in_fraction <= 1
    assert metrics.max_in_degree == g.in_degrees().max()
    assert len(metrics.as_row()) == 8


def test_distinguishes_generator_families():
    """The calibration point: power-law graphs must show heavier tails
    and higher degree inequality than ER graphs."""
    pl = compute_metrics(powerlaw_configuration(2000, 12000, 2.0, 2.0, rng=4))
    er = compute_metrics(erdos_renyi_directed(2000, 12000, rng=4))
    assert pl.gini_in_degree > er.gini_in_degree
    assert pl.max_in_degree > er.max_in_degree


def test_undirected_dataset_high_reciprocity():
    ca = compute_metrics(load_dataset("CA", "tiny", rng=1))
    wv = compute_metrics(load_dataset("WV", "tiny", rng=1))
    assert ca.reciprocity > 0.95
    assert wv.reciprocity < 0.5


def test_empty_graph_rejected():
    g = DirectedGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int32))
    with pytest.raises(ValidationError):
        compute_metrics(g)
