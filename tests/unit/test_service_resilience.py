"""Service-level resilience: deadlines, circuit breaking, degraded
serving, graceful lifecycle, and the service-scoped chaos grammar."""

import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError

import pytest

from repro.resilience.deadline import Deadline
from repro.resilience.faults import (
    ENV_VAR,
    FaultPlan,
    ServiceFaultInjector,
    service_injector,
)
from repro.service import (
    InfluenceQuery,
    InfluenceService,
    ServiceOptions,
)
from repro.service.scheduler import QueryScheduler, ScheduledJob
from repro.utils.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ServiceClosedError,
    ValidationError,
)

CHUNK_SETS = 256


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


def _query(k=5, epsilon=0.3, **kw):
    return InfluenceQuery("g", k=k, epsilon=epsilon, **kw)


def _service(small_ic_graph, **options):
    options.setdefault("chunk_sets", CHUNK_SETS)
    svc = InfluenceService(ServiceOptions(**options))
    svc.register_graph("g", small_ic_graph)
    return svc


# -- options and query validation --------------------------------------------


def test_new_option_knobs_validate():
    with pytest.raises(ValidationError):
        ServiceOptions(default_deadline=0)
    with pytest.raises(ValidationError):
        ServiceOptions(breaker_failure_threshold=0)
    with pytest.raises(ValidationError):
        ServiceOptions(breaker_reset_timeout=0)
    with pytest.raises(ValidationError):
        ServiceOptions(degraded_epsilon_slack=0.5)
    assert ServiceOptions(default_deadline=2.5).default_deadline == 2.5


def test_query_deadline_validates():
    with pytest.raises(ValidationError):
        InfluenceQuery("g", k=3, epsilon=0.3, deadline=0)
    assert InfluenceQuery("g", k=3, epsilon=0.3, deadline=1.5).deadline == 1.5


# -- service-scoped fault grammar --------------------------------------------


def test_grammar_parses_service_clauses():
    plan = FaultPlan.parse(
        "crash@1;slow(0.5)@queries;oom@substrate#0,2;crash@worker-thread#*"
    )
    scopes = [c.scope for c in plan.clauses]
    assert scopes == ["job", "queries", "substrate", "worker-thread"]
    slow = plan.clauses[1]
    assert slow.kind == "slow" and slow.seconds == 0.5 and slow.jobs is None
    oom = plan.clauses[2]
    assert oom.kind == "oom" and oom.jobs == frozenset((0, 2))


def test_grammar_rejects_bad_service_kind():
    with pytest.raises(ValidationError, match="service fault kind"):
        FaultPlan.parse("hang@queries")


def test_job_clauses_never_fire_in_service_scope():
    injector = ServiceFaultInjector(FaultPlan.parse("crash@*#*"))
    assert not injector.active


def test_injector_counts_occurrences_per_scope():
    injector = service_injector("oom@substrate#1")
    injector.fire("substrate")  # occurrence 0: clean
    injector.fire("queries")  # different scope, own counter
    with pytest.raises(MemoryError, match="occurrence 1"):
        injector.fire("substrate")
    injector.fire("substrate")  # occurrence 2: clean again


def test_injector_slow_is_deadline_aware():
    from repro.resilience.deadline import deadline_scope

    injector = service_injector("slow(5.0)@queries")
    begin = time.perf_counter()
    with deadline_scope(Deadline.after(0.05)):
        with pytest.raises(DeadlineExceededError):
            injector.fire("queries")
    assert time.perf_counter() - begin < 2.0


# -- scheduler lifecycle (satellites) ----------------------------------------


def test_scheduler_drain_reports_timeout_expiry():
    release = threading.Event()
    started = threading.Event()

    def execute(job):
        started.set()
        release.wait(10)
        return "done"

    sched = QueryScheduler(max_inflight=1, max_queue_depth=4, execute=execute)
    future = sched.submit(ScheduledJob(query=_query(), key=("k",)))
    started.wait(10)
    assert sched.drain(timeout=0.05) is False  # still running: surfaced
    release.set()
    assert sched.drain(timeout=10) is True
    assert future.result(10) == "done"
    sched.close()


def test_scheduler_close_fails_queued_futures():
    release = threading.Event()
    started = threading.Event()

    def execute(job):
        started.set()
        release.wait(10)
        return "ran"

    sched = QueryScheduler(max_inflight=1, max_queue_depth=8, execute=execute)
    running = sched.submit(ScheduledJob(query=_query(), key=("k",)))
    started.wait(10)
    queued = [
        sched.submit(ScheduledJob(query=_query(), key=("k",)))
        for _ in range(3)
    ]
    closer = threading.Thread(target=sched.close, daemon=True)
    closer.start()
    for future in queued:
        with pytest.raises(ServiceClosedError):
            future.result(timeout=10)  # resolved, not stranded
    release.set()
    assert running.result(10) == "ran"  # in-flight work still finishes
    closer.join(10)
    assert not closer.is_alive()


def test_scheduler_submit_close_race_never_strands_futures():
    """Submits racing close() either reject or resolve — never hang."""
    for _ in range(20):
        sched = QueryScheduler(max_inflight=2, max_queue_depth=64,
                               execute=lambda job: "ok")
        barrier = threading.Barrier(5)
        futures, outcomes = [], []
        lock = threading.Lock()

        def submit_some():
            barrier.wait()
            for _ in range(4):
                try:
                    f = sched.submit(ScheduledJob(query=_query(), key=("k",)))
                except ServiceClosedError:
                    continue
                with lock:
                    futures.append(f)

        def close_it():
            barrier.wait()
            sched.close(wait=False)

        threads = [threading.Thread(target=submit_some) for _ in range(4)]
        threads.append(threading.Thread(target=close_it))
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        for f in futures:
            try:
                outcomes.append(f.result(timeout=10))
            except ServiceClosedError:
                outcomes.append("closed")
        assert len(outcomes) == len(futures)
        sched.close()


def test_scheduler_drops_expired_queued_jobs():
    release = threading.Event()
    started = threading.Event()

    def execute(job):
        started.set()
        release.wait(10)
        return "ran"

    sched = QueryScheduler(max_inflight=1, max_queue_depth=8, execute=execute)
    running = sched.submit(ScheduledJob(query=_query(), key=("k",)))
    started.wait(10)
    doomed = sched.submit(ScheduledJob(
        query=_query(), key=("k",), deadline=Deadline.after(0.02),
    ))
    time.sleep(0.05)  # expires while queued behind the running job
    release.set()
    with pytest.raises(DeadlineExceededError, match="queued wait"):
        doomed.result(timeout=10)
    assert running.result(10) == "ran"
    sched.close()


# -- deadlines through the service -------------------------------------------


def test_queued_deadline_expiry_frees_slot_and_counts(small_ic_graph,
                                                      monkeypatch):
    monkeypatch.setenv(ENV_VAR, "slow(0.3)@queries#0")
    svc = _service(small_ic_graph, max_inflight=1)
    try:
        blocker = svc.submit(_query(k=2))  # occupies the only worker 0.3s
        doomed = svc.submit(_query(k=3, deadline=0.05))
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=10)
        assert len(blocker.result(timeout=30).seeds) == 2
        # the slot is free again: a clean query completes
        assert len(svc.query(_query(k=4)).seeds) == 4
        assert svc.health()["counters"]["service.deadline_expired"] >= 1
    finally:
        svc.close()


def test_default_deadline_applies_and_expires(small_ic_graph, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "slow(5.0)@queries")
    svc = _service(small_ic_graph, default_deadline=0.1)
    try:
        begin = time.perf_counter()
        with pytest.raises(DeadlineExceededError):
            svc.query(_query(k=2))
        assert time.perf_counter() - begin < 3.0
    finally:
        svc.close()


def test_query_timeout_cancels_running_job(small_ic_graph, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "slow(5.0)@queries#0")
    svc = _service(small_ic_graph, max_inflight=1)
    try:
        begin = time.perf_counter()
        with pytest.raises(FuturesTimeoutError):
            svc.query(_query(k=2), timeout=0.1)
        # the abandoned job aborts cooperatively instead of holding the
        # only worker for the full 5s slow fault
        assert len(svc.query(_query(k=3), timeout=30).seeds) == 3
        assert time.perf_counter() - begin < 4.0
        assert svc.health()["counters"]["service.deadline_expired"] >= 1
    finally:
        svc.close()


def test_completed_queries_unaffected_by_generous_deadline(small_ic_graph):
    svc = _service(small_ic_graph)
    try:
        with_deadline = svc.query(_query(k=5, deadline=60.0))
        plain = svc.query(_query(k=5))
        assert list(plain.seeds) == list(with_deadline.seeds)
        assert not with_deadline.degraded
    finally:
        svc.close()


# -- circuit breaker + degraded serving --------------------------------------


def _trip_breaker(svc, ks=(3, 4, 6)):
    """Drive three consecutive substrate OOMs (distinct cells so the
    exact cache can't shortcut them)."""
    for k in ks:
        with pytest.raises(MemoryError):
            svc.query(_query(k=k))


def test_breaker_opens_and_fast_fails(small_ic_graph, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "oom@substrate")
    svc = _service(small_ic_graph, breaker_failure_threshold=3,
                   degraded_serving=False)
    try:
        _trip_breaker(svc)
        health = svc.health()
        (state,) = health["breakers"].values()
        assert state["state"] == "open"
        assert health["counters"]["service.breaker.opened"] == 1
        begin = time.perf_counter()
        with pytest.raises(CircuitOpenError, match="retry in"):
            svc.submit(_query(k=7))
        assert time.perf_counter() - begin < 1.0  # fast-fail, not queued
    finally:
        svc.close()


def test_breaker_serves_degraded_exact_while_open(small_ic_graph,
                                                  monkeypatch):
    monkeypatch.setenv(ENV_VAR, "oom@substrate#1,2,3")
    svc = _service(small_ic_graph, breaker_failure_threshold=3)
    try:
        healthy = svc.query(_query(k=2))  # occurrence 0: clean, cached
        assert not healthy.degraded
        _trip_breaker(svc)
        degraded = svc.query(_query(k=2))
        assert degraded.degraded and degraded.cache_tier == "exact"
        assert list(degraded.seeds) == list(healthy.seeds)
        # a cell with no cached stand-in still fails fast
        with pytest.raises(CircuitOpenError):
            svc.query(_query(k=9))
        assert svc.health()["counters"]["service.degraded"] >= 1
    finally:
        svc.close()


def test_breaker_serves_epsilon_relaxed_while_open(small_ic_graph,
                                                   monkeypatch):
    monkeypatch.setenv(ENV_VAR, "oom@substrate#1,2,3")
    svc = _service(small_ic_graph, breaker_failure_threshold=3,
                   degraded_epsilon_slack=2.0)
    try:
        tight = svc.query(_query(k=2, epsilon=0.3))  # cached at eps=0.3
        _trip_breaker(svc)
        relaxed = svc.query(_query(k=2, epsilon=0.5))
        assert relaxed.degraded
        assert list(relaxed.seeds) == list(tight.seeds)
        assert relaxed.result.epsilon == 0.3  # the stand-in's epsilon
    finally:
        svc.close()


def test_breaker_half_open_probe_recovers(small_ic_graph, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "oom@substrate#0,1,2")
    svc = _service(small_ic_graph, breaker_failure_threshold=3,
                   breaker_reset_timeout=0.1, degraded_serving=False)
    try:
        _trip_breaker(svc, ks=(3, 4, 6))
        time.sleep(0.15)  # reset timeout elapses -> next query probes
        probe = svc.query(_query(k=5))  # occurrence 3: substrate healthy
        assert not probe.degraded and len(probe.seeds) == 5
        (state,) = svc.health()["breakers"].values()
        assert state["state"] == "closed"
        # normal serving resumed
        assert len(svc.query(_query(k=7)).seeds) == 7
    finally:
        svc.close()


def test_validation_errors_do_not_trip_breaker(small_ic_graph):
    svc = _service(small_ic_graph, breaker_failure_threshold=1)
    try:
        for _ in range(3):
            with pytest.raises(ValidationError):
                svc.query(InfluenceQuery("nope", k=3, epsilon=0.3))
        assert svc.health()["breakers"] == {}
        assert len(svc.query(_query(k=3)).seeds) == 3
    finally:
        svc.close()


# -- worker-thread chaos and lifecycle ---------------------------------------


def test_worker_thread_fault_fails_one_future_only(small_ic_graph,
                                                   monkeypatch):
    from repro.resilience.faults import InjectedFaultError

    monkeypatch.setenv(ENV_VAR, "crash@worker-thread#0")
    svc = _service(small_ic_graph, max_inflight=1)
    try:
        with pytest.raises(InjectedFaultError):
            svc.query(_query(k=3))
        health = svc.health()
        assert health["workers_alive"] == 1  # the thread survived
        assert len(svc.query(_query(k=3)).seeds) == 3
    finally:
        svc.close()


def test_service_close_resolves_queued_futures(small_ic_graph, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "slow(0.5)@queries#0")
    svc = _service(small_ic_graph, max_inflight=1)
    try:
        blocker = svc.submit(_query(k=2))
        queued = [svc.submit(_query(k=3 + i)) for i in range(3)]
    finally:
        svc.close(wait=True)
    resolved = 0
    for future in [blocker] + queued:
        # every admitted future resolves: either the worker finished it
        # or close() failed it — never a stranded waiter
        try:
            assert future.result(timeout=10) is not None
        except ServiceClosedError:
            pass
        resolved += 1
    assert resolved == len(queued) + 1


def test_service_drain_returns_bool(small_ic_graph, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "slow(0.4)@queries#0")
    svc = _service(small_ic_graph)
    try:
        svc.submit(_query(k=2))
        assert svc.drain(timeout=0.05) is False
        assert svc.drain(timeout=30) is True
    finally:
        svc.close()


def test_health_snapshot_shape(small_ic_graph):
    svc = _service(small_ic_graph, max_inflight=2)
    try:
        svc.query(_query(k=3))
        health = svc.health()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0 and health["inflight"] == 0
        assert health["workers_alive"] == 2
        assert health["counters"]["service.queries"] == 1
        (residency,) = health["substrates"]
        assert residency["cached_sets"] > 0 and residency["queries"] == 1
    finally:
        svc.close()
    assert svc.health()["status"] == "closed"
