import numpy as np
import pytest

from repro.graphs import DirectedGraph, assign_ic_weights
from repro.imm import run_celf_greedy
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def tiny_graph():
    """Star + chain: hub 0 dominates, vertex 10 starts a short chain."""
    src = [0] * 8 + [10, 11]
    dst = list(range(1, 9)) + [11, 12]
    return assign_ic_weights(
        DirectedGraph.from_edges(src, dst, n=13), scheme="constant", p=0.9
    )


def test_hub_selected_first(tiny_graph):
    res = run_celf_greedy(tiny_graph, 1, num_samples=150, rng=1)
    assert res.seeds[0] == 0
    assert res.spread > 5


def test_lazy_evaluation_saves_work(tiny_graph):
    res = run_celf_greedy(tiny_graph, 3, num_samples=80, rng=2)
    # upper bound on naive greedy evaluations: n * k
    assert res.evaluations < tiny_graph.n * 3
    assert res.seeds.size == 3
    assert len(set(res.seeds.tolist())) == 3


def test_candidate_pool(tiny_graph):
    res = run_celf_greedy(tiny_graph, 2, num_samples=50, rng=3,
                          candidates=[0, 10, 12])
    assert set(res.seeds.tolist()) <= {0, 10, 12}


def test_validation(tiny_graph, line_graph):
    with pytest.raises(ValidationError):
        run_celf_greedy(line_graph, 1)
    with pytest.raises(ValidationError):
        run_celf_greedy(tiny_graph, 0)
    with pytest.raises(ValidationError):
        run_celf_greedy(tiny_graph, 3, candidates=[0, 1])


def test_agreement_with_imm(small_ic_graph):
    """CELF and IMM should find seed sets of comparable quality."""
    from repro.diffusion import estimate_spread
    from repro.imm import BoundsConfig, run_imm

    celf = run_celf_greedy(small_ic_graph, 3, num_samples=60, rng=4)
    imm = run_imm(small_ic_graph, 3, 0.3, rng=4, bounds=BoundsConfig(theta_scale=0.2))
    sp_celf = estimate_spread(small_ic_graph, celf.seeds, "IC", 400, rng=5)
    sp_imm = estimate_spread(small_ic_graph, imm.seeds, "IC", 400, rng=5)
    assert sp_celf > 0.8 * sp_imm


def test_round_one_uses_initial_gains_exactly(tiny_graph):
    # regression: the initial singleton gains were pushed as round-0 so
    # the round-1 loop re-estimated every popped candidate — for k == 1
    # that burned extra num_samples-cascade evaluations beyond the pool
    res = run_celf_greedy(tiny_graph, 1, num_samples=40, rng=6)
    assert res.evaluations == tiny_graph.n


def test_round_one_exactness_with_candidate_pool(tiny_graph):
    pool = [0, 5, 10, 12]
    res = run_celf_greedy(tiny_graph, 1, num_samples=40, rng=7, candidates=pool)
    assert res.evaluations == len(pool)


def test_later_rounds_still_reevaluate(tiny_graph):
    # k > 1 must keep lazy re-evaluation: strictly more evaluations than
    # the initial pass, but far fewer than naive n*k
    res = run_celf_greedy(tiny_graph, 3, num_samples=40, rng=8)
    assert tiny_graph.n < res.evaluations < tiny_graph.n * 3
