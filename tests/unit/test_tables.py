import pytest

from repro.experiments import ExperimentConfig, tables

CFG = ExperimentConfig(datasets=("WV", "EE"), sweep_theta_scale=0.08)


def test_table1_lists_stats():
    res = tables.table1_datasets(CFG)
    out = res.render()
    assert "wiki-Vote" in out and "email-EuAll" in out
    assert "8,298" in out  # paper-scale vertices
    assert len(res.rows) == 2


def test_table2_shape_and_cells():
    res = tables.table2_ic_k_sweep(CFG)
    assert res.headers[0] == "Dataset"
    assert res.headers[1:] == ["k=20", "k=40", "k=60", "k=80", "k=100"]
    assert len(res.rows) == 2
    assert ("WV", 20) in res.cells
    # every cell is either a speedup number or an OOM marker
    for row in res.rows:
        for cell in row[1:]:
            assert cell.replace(".", "").replace("OOM/", "").replace("OOM(eIM)", "0").replace("-", "").isdigit() or "OOM" in cell


def test_table2_speedup_grows_with_k():
    res = tables.table2_ic_k_sweep(CFG)
    row = res.cells[("EE", 20)], res.cells[("EE", 100)]
    if not (row[0].gim.oom or row[1].gim.oom):
        assert row[1].speedup_vs_gim > row[0].speedup_vs_gim * 0.7


def test_table3_eps_sweep_headers():
    cfg = ExperimentConfig(datasets=("WV",), sweep_theta_scale=0.08)
    res = tables.table3_ic_eps_sweep(cfg)
    assert res.headers[1] == "eps=0.5"
    assert res.headers[-1] == "eps=0.05"
    assert len(res.cells) == 10


@pytest.mark.slow
def test_table4_lt_k_sweep():
    cfg = ExperimentConfig(datasets=("WV",), sweep_theta_scale=0.08)
    res = tables.table4_lt_k_sweep(cfg)
    assert len(res.cells) == 5
    assert "LT" in res.title


@pytest.mark.slow
def test_table5_lt_eps_sweep():
    cfg = ExperimentConfig(datasets=("WV",), sweep_theta_scale=0.08)
    res = tables.table5_lt_eps_sweep(cfg)
    assert len(res.cells) == 10
