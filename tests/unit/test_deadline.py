"""Tests for the cooperative deadline token and its ambient scope."""

import threading

import pytest

from repro.resilience.deadline import Deadline, active_deadline, deadline_scope
from repro.utils.errors import DeadlineExceededError, ValidationError


def test_after_none_is_unbounded():
    d = Deadline.after(None)
    assert not d.expired
    assert d.remaining() is None
    d.check("anything")  # never raises


def test_after_rejects_nonpositive():
    with pytest.raises(ValidationError):
        Deadline.after(0)
    with pytest.raises(ValidationError):
        Deadline.after(-1.5)


def test_expiry_and_check():
    d = Deadline.after(0.01)
    assert d.remaining() <= 0.01
    deadline_hit = threading.Event()
    deadline_hit.wait(0.05)
    assert d.expired
    assert d.remaining() == 0.0
    with pytest.raises(DeadlineExceededError, match="during sampling"):
        d.check("sampling")


def test_cancel_expires_immediately():
    d = Deadline.never()
    assert not d.expired and d.remaining() is None
    d.cancel()
    assert d.cancelled and d.expired
    assert d.remaining() == 0.0
    with pytest.raises(DeadlineExceededError, match="cancelled"):
        d.check()


def test_deadline_exceeded_is_timeout_error():
    # callers catching builtin TimeoutError must see deadline expiry
    assert issubclass(DeadlineExceededError, TimeoutError)
    exc = DeadlineExceededError("a phase", cancelled=True)
    assert exc.cancelled and "a phase" in str(exc)


def test_ambient_scope_set_and_restore():
    assert active_deadline() is None
    outer = Deadline.after(60)
    with deadline_scope(outer):
        assert active_deadline() is outer
        inner = Deadline.after(1)
        with deadline_scope(inner):
            assert active_deadline() is inner
        assert active_deadline() is outer
    assert active_deadline() is None


def test_ambient_scope_none_clears_inherited():
    with deadline_scope(Deadline.after(60)):
        with deadline_scope(None):
            assert active_deadline() is None
        assert active_deadline() is not None


def test_ambient_scope_is_per_thread():
    seen = []
    with deadline_scope(Deadline.after(60)):
        t = threading.Thread(target=lambda: seen.append(active_deadline()))
        t.start()
        t.join()
    assert seen == [None]  # fresh threads don't inherit the scope
