"""State-machine tests for the per-stream circuit breaker (fake clock)."""

import pytest

from repro.service.breaker import CircuitBreaker, key_digest
from repro.utils.errors import ValidationError

KEY = ("graph", "IC", 0)
OTHER = ("graph", "LT", 1)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    counts = []
    b = CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                       clock=clock, counter=counts.append)
    b.counts = counts
    return b


def test_validation():
    with pytest.raises(ValidationError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValidationError):
        CircuitBreaker(reset_timeout=0)


def test_stays_closed_below_threshold(breaker):
    breaker.record_failure(KEY)
    breaker.record_failure(KEY)
    assert breaker.state(KEY) == "closed"
    assert breaker.admit(KEY) == "closed"


def test_success_resets_consecutive_count(breaker):
    breaker.record_failure(KEY)
    breaker.record_failure(KEY)
    breaker.record_success(KEY)
    breaker.record_failure(KEY)
    breaker.record_failure(KEY)
    assert breaker.state(KEY) == "closed"  # never 3 in a row


def test_opens_at_threshold_and_rejects(breaker):
    for _ in range(3):
        breaker.record_failure(KEY)
    assert breaker.state(KEY) == "open"
    assert breaker.admit(KEY) == "open"
    assert "service.breaker.opened" in breaker.counts
    assert 0.0 < breaker.retry_after(KEY) <= 10.0


def test_streams_are_independent(breaker):
    for _ in range(3):
        breaker.record_failure(KEY)
    assert breaker.admit(OTHER) == "closed"
    assert breaker.state(OTHER) == "closed"


def test_half_open_single_probe(breaker, clock):
    for _ in range(3):
        breaker.record_failure(KEY)
    clock.advance(10.0)
    assert breaker.admit(KEY) == "probe"
    assert breaker.state(KEY) == "half_open"
    # while the probe is in flight everyone else stays degraded
    assert breaker.admit(KEY) == "open"


def test_probe_success_closes(breaker, clock):
    for _ in range(3):
        breaker.record_failure(KEY)
    clock.advance(10.0)
    assert breaker.admit(KEY) == "probe"
    breaker.record_success(KEY)
    assert breaker.state(KEY) == "closed"
    assert breaker.admit(KEY) == "closed"
    assert "service.breaker.closed" in breaker.counts


def test_probe_failure_reopens_and_restarts_timer(breaker, clock):
    for _ in range(3):
        breaker.record_failure(KEY)
    clock.advance(10.0)
    assert breaker.admit(KEY) == "probe"
    breaker.record_failure(KEY)  # a single failure re-opens from half-open
    assert breaker.state(KEY) == "open"
    clock.advance(9.0)
    assert breaker.admit(KEY) == "open"  # timer restarted at probe failure
    clock.advance(1.0)
    assert breaker.admit(KEY) == "probe"


def test_release_probe_lets_next_arrival_probe(breaker, clock):
    for _ in range(3):
        breaker.record_failure(KEY)
    clock.advance(10.0)
    assert breaker.admit(KEY) == "probe"
    # the probe left without substrate evidence (e.g. exact cache hit)
    breaker.release_probe(KEY)
    assert breaker.state(KEY) == "half_open"
    assert breaker.admit(KEY) == "probe"


def test_snapshot_shape(breaker):
    for _ in range(4):
        breaker.record_failure(KEY)
    snap = breaker.snapshot()
    entry = snap[key_digest(KEY)]
    assert entry["state"] == "open"
    assert entry["failures_total"] == 4
    assert entry["opened_total"] == 1
    assert all(len(digest) == 12 for digest in snap)
