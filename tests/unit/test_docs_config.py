"""docs/configuration.md must cover the entire configuration surface.

The reference page is generated-by-hand but *checked* by machine: this
test enumerates every ``IMMOptions`` / ``ServiceOptions`` field, every
``REPRO_*`` environment variable the source tree reads, and every CLI
flag ``repro.cli`` defines, and fails if any is missing from the docs —
so adding a knob without documenting it breaks CI.
"""

import dataclasses
import re
from pathlib import Path

import pytest

from repro.imm.options import IMMOptions
from repro.service.options import ServiceOptions

REPO = Path(__file__).resolve().parents[2]
DOC = REPO / "docs" / "configuration.md"
SRC = REPO / "src" / "repro"


@pytest.fixture(scope="module")
def doc_text():
    assert DOC.exists(), "docs/configuration.md is missing"
    return DOC.read_text()


def _source_env_vars():
    names = set()
    for path in SRC.rglob("*.py"):
        names.update(re.findall(r"REPRO_[A-Z_]+[A-Z]", path.read_text()))
    return names


def _cli_flags():
    text = (SRC / "cli.py").read_text()
    return set(re.findall(r'"(--[a-z][a-z-]*)"', text))


def test_every_imm_option_documented(doc_text):
    missing = [
        f.name for f in dataclasses.fields(IMMOptions)
        if f"`{f.name}`" not in doc_text
    ]
    assert not missing, f"IMMOptions fields missing from {DOC}: {missing}"


def test_every_service_option_documented(doc_text):
    missing = [
        f.name for f in dataclasses.fields(ServiceOptions)
        if f"`{f.name}`" not in doc_text
    ]
    assert not missing, f"ServiceOptions fields missing from {DOC}: {missing}"


def test_every_env_var_documented(doc_text):
    env_vars = _source_env_vars()
    assert env_vars, "no REPRO_* variables found in src — test is broken"
    missing = sorted(v for v in env_vars if f"`{v}`" not in doc_text)
    assert not missing, f"env vars missing from {DOC}: {missing}"


def test_every_cli_flag_documented(doc_text):
    flags = _cli_flags()
    assert flags, "no CLI flags found in repro.cli — test is broken"
    missing = sorted(f for f in flags if f"`{f}`" not in doc_text)
    assert not missing, f"CLI flags missing from {DOC}: {missing}"
