import numpy as np

from repro.rrr.trace import SampleTrace, empty_trace


def _trace(sizes, kept=None):
    sizes = np.asarray(sizes, dtype=np.int64)
    kept = np.ones(sizes.size, dtype=bool) if kept is None else np.asarray(kept)
    return SampleTrace(
        sizes=sizes,
        rounds=np.ones_like(sizes),
        edges_examined=sizes * 2,
        kept_mask=kept,
        raw_singletons=int((sizes == 1).sum()),
        sources=np.zeros_like(sizes),
    )


def test_counters():
    t = _trace([1, 3, 2], kept=[True, True, False])
    assert t.attempted == 3
    assert t.kept == 2
    assert t.discarded_empty == 1
    assert t.raw_singleton_fraction == 1 / 3
    assert t.total_edges_examined() == 12
    assert t.total_stored_elements() == 4


def test_merge():
    merged = _trace([1, 2]).merged_with(_trace([3]))
    assert merged.attempted == 3
    assert merged.raw_singletons == 1
    assert merged.total_stored_elements() == 6


def test_empty_trace_identity():
    t = empty_trace()
    assert t.attempted == 0
    assert t.raw_singleton_fraction == 0.0
    merged = t.merged_with(_trace([5]))
    assert merged.attempted == 1
