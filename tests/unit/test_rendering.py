from repro.experiments.rendering import Series, format_series, format_table


def test_format_table_alignment():
    out = format_table(["Name", "Val"], [["a", "1"], ["longer", "22"]], "T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "Name" in lines[1] and "Val" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert lines[3].startswith("a")
    # right alignment of the numeric column
    assert lines[3].endswith(" 1")


def test_format_series_rows():
    s1 = Series("alpha")
    s2 = Series("beta")
    for x in (1, 2):
        s1.add(x, x * 1.0)
        s2.add(x, x * 10.0)
    out = format_series([s1, s2], "title", "x", "y")
    assert "alpha" in out and "beta" in out
    assert "10.00" in out


def test_nan_renders_as_oom():
    s = Series("s")
    s.add("A", float("nan"))
    out = format_series([s], "t", "x", "y")
    assert "OOM" in out


def test_large_and_small_numbers():
    s = Series("s")
    s.add("A", 123456.0)
    s.add("B", 0.0001)
    out = format_series([s], "t", "x", "y")
    assert "1.23e+05" in out
    assert "0.0001" in out
